//! Self-tests of the schedule explorer: known-buggy protocols must be caught,
//! known-correct ones must pass exhaustively.

use std::sync::PoisonError;

use interleave::sync::atomic::{AtomicUsize, Ordering};
use interleave::sync::{mpsc, Arc, Condvar, Mutex};
use interleave::time::{Duration, Instant};
use interleave::{check, explore, thread, Config};

fn lock<T>(mutex: &Mutex<T>) -> interleave::sync::MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// A classic unsynchronised read-modify-write: two threads each do
/// `load; store(+1)` on an atomic. The explorer must find the interleaving
/// where one increment is lost.
#[test]
fn finds_lost_update_race() {
    let outcome = explore(&Config::exhaustive(2, 4096), || {
        let counter = Arc::new(AtomicUsize::new(0));
        let racer = {
            let counter = Arc::clone(&counter);
            thread::spawn(move || {
                let seen = counter.load(Ordering::SeqCst);
                counter.store(seen + 1, Ordering::SeqCst);
            })
        };
        let seen = counter.load(Ordering::SeqCst);
        counter.store(seen + 1, Ordering::SeqCst);
        racer.join().expect("racer panicked");
        assert_eq!(counter.load(Ordering::SeqCst), 2, "an increment was lost");
    });
    let failure = outcome.failure.expect("explorer missed the lost update");
    assert!(
        failure.message.contains("an increment was lost"),
        "unexpected failure: {}",
        failure.message
    );
}

/// The same protocol with the read-modify-write under a mutex is correct; the
/// DFS must exhaust the schedule space without finding anything.
#[test]
fn passes_locked_counter_exhaustively() {
    let outcome = check(&Config::exhaustive(2, 4096), || {
        let counter = Arc::new(Mutex::new(0usize));
        let worker = {
            let counter = Arc::clone(&counter);
            thread::spawn(move || *lock(&counter) += 1)
        };
        *lock(&counter) += 1;
        worker.join().expect("worker panicked");
        assert_eq!(*lock(&counter), 2);
    });
    assert!(outcome.complete, "DFS frontier not exhausted");
    assert!(outcome.schedules > 1, "no schedule diversity explored");
}

/// AB-BA lock ordering: the explorer must find the schedule where each thread
/// holds one lock and waits for the other, and report it as a deadlock.
#[test]
fn finds_lock_order_deadlock() {
    let outcome = explore(&Config::exhaustive(2, 4096), || {
        let a = Arc::new(Mutex::new(()));
        let b = Arc::new(Mutex::new(()));
        let crossed = {
            let a = Arc::clone(&a);
            let b = Arc::clone(&b);
            thread::spawn(move || {
                let held_b = lock(&b);
                let held_a = lock(&a);
                drop((held_a, held_b));
            })
        };
        let held_a = lock(&a);
        let held_b = lock(&b);
        drop((held_b, held_a));
        crossed.join().expect("crossed panicked");
    });
    let failure = outcome.failure.expect("explorer missed the AB-BA deadlock");
    assert!(
        failure.message.contains("deadlock"),
        "unexpected failure: {}",
        failure.message
    );
}

/// Check-then-wait without re-checking under the lock: the notifier can fire
/// between the flag check and the `wait`, losing the wakeup. Presents as a
/// deadlock (waiter blocked on the condvar, nobody left to notify).
#[test]
fn finds_lost_wakeup() {
    let outcome = explore(&Config::exhaustive(2, 4096), || {
        let flag = Arc::new((Mutex::new(false), Condvar::new()));
        let notifier = {
            let flag = Arc::clone(&flag);
            thread::spawn(move || {
                *lock(&flag.0) = true;
                flag.1.notify_one();
            })
        };
        // BUG under test: checks the flag, drops the lock, then waits —
        // the notify can land in the gap.
        let ready = *lock(&flag.0);
        if !ready {
            let guard = lock(&flag.0);
            drop(flag.1.wait(guard).unwrap_or_else(PoisonError::into_inner));
        }
        notifier.join().expect("notifier panicked");
    });
    let failure = outcome.failure.expect("explorer missed the lost wakeup");
    assert!(
        failure.message.contains("deadlock"),
        "unexpected failure: {}",
        failure.message
    );
}

/// The correct predicate-loop version of the same protocol passes
/// exhaustively: every wait re-checks the flag under the lock.
#[test]
fn passes_predicate_loop_wait_exhaustively() {
    let outcome = check(&Config::exhaustive(2, 4096), || {
        let flag = Arc::new((Mutex::new(false), Condvar::new()));
        let notifier = {
            let flag = Arc::clone(&flag);
            thread::spawn(move || {
                *lock(&flag.0) = true;
                flag.1.notify_one();
            })
        };
        let mut guard = lock(&flag.0);
        while !*guard {
            guard = flag.1.wait(guard).unwrap_or_else(PoisonError::into_inner);
        }
        drop(guard);
        notifier.join().expect("notifier panicked");
    });
    assert!(outcome.complete, "DFS frontier not exhausted");
}

/// Rendezvous channel semantics: a capacity-0 `send` must not complete before
/// the receiver consumes the message.
#[test]
fn rendezvous_send_blocks_until_received() {
    let outcome = check(&Config::exhaustive(2, 2048), || {
        let (tx, rx) = mpsc::sync_channel::<u32>(0);
        let send_done = Arc::new(AtomicUsize::new(0));
        let producer = {
            let send_done = Arc::clone(&send_done);
            thread::spawn(move || {
                tx.send(7).expect("receiver vanished");
                send_done.store(1, Ordering::SeqCst);
            })
        };
        // In every schedule, the send cannot have completed before this recv
        // consumes the message: a buggy non-blocking rendezvous would let the
        // explorer reach this load with the flag already set.
        assert_eq!(
            send_done.load(Ordering::SeqCst),
            0,
            "rendezvous send completed before the receive"
        );
        let value = rx.recv().expect("producer vanished");
        assert_eq!(value, 7);
        producer.join().expect("producer panicked");
    });
    assert!(outcome.complete, "DFS frontier not exhausted");
}

/// Timeout races: under exploration, `recv_timeout` on an empty-then-filled
/// channel must visit both outcomes — the timely receive and the timeout.
#[test]
fn explores_both_timeout_outcomes() {
    let timed_out = Arc::new(std::sync::atomic::AtomicUsize::new(0));
    let delivered = Arc::new(std::sync::atomic::AtomicUsize::new(0));
    let outcome = {
        let timed_out = Arc::clone(&timed_out);
        let delivered = Arc::clone(&delivered);
        check(&Config::exhaustive(2, 2048), move || {
            let (tx, rx) = mpsc::channel::<u32>();
            let producer = thread::spawn(move || {
                tx.send(1).expect("receiver vanished");
            });
            match rx.recv_timeout(Duration::from_millis(50)) {
                Ok(value) => {
                    assert_eq!(value, 1);
                    delivered.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
                }
                Err(mpsc::RecvTimeoutError::Timeout) => {
                    timed_out.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
                }
                Err(mpsc::RecvTimeoutError::Disconnected) => {
                    panic!("sender dropped before sending")
                }
            }
            producer.join().expect("producer panicked");
        })
    };
    assert!(outcome.complete, "DFS frontier not exhausted");
    assert!(
        delivered.load(std::sync::atomic::Ordering::SeqCst) > 0,
        "timely delivery never explored"
    );
    assert!(
        timed_out.load(std::sync::atomic::Ordering::SeqCst) > 0,
        "timeout firing never explored"
    );
}

/// Scoped threads: borrowed-data workers through the façade `scope` are
/// modelled, and the implicit scope join is deadlock-free.
#[test]
fn scoped_threads_exhaustive() {
    let outcome = check(&Config::exhaustive(2, 2048), || {
        let total = Mutex::new(0u32);
        thread::scope(|scope| {
            for _ in 0..2 {
                scope.spawn(|| *lock(&total) += 1);
            }
        });
        assert_eq!(*lock(&total), 2);
    });
    assert!(outcome.complete, "DFS frontier not exhausted");
}

/// The virtual clock is monotonic inside a model execution and real outside.
#[test]
fn instant_monotonic_in_both_modes() {
    let real_start = Instant::now();
    assert!(real_start.elapsed() >= Duration::ZERO);
    check(&Config::exhaustive(0, 64), || {
        let start = Instant::now();
        let later = Instant::now();
        assert!(later.saturating_duration_since(start) > Duration::ZERO);
        assert_eq!(start.saturating_duration_since(later), Duration::ZERO);
    });
}

/// The random phase is reproducible: the same seed explores the same
/// schedules (same schedule count to first failure).
#[test]
fn random_phase_is_seeded() {
    let run = |seed: u64| {
        let config = Config {
            max_schedules: 4,
            preemption_bound: Some(0),
            random_schedules: 64,
            seed,
            ..Config::default()
        };
        explore(&config, || {
            let counter = Arc::new(AtomicUsize::new(0));
            let racer = {
                let counter = Arc::clone(&counter);
                thread::spawn(move || {
                    let seen = counter.load(Ordering::SeqCst);
                    counter.store(seen + 1, Ordering::SeqCst);
                })
            };
            let seen = counter.load(Ordering::SeqCst);
            counter.store(seen + 1, Ordering::SeqCst);
            racer.join().expect("racer panicked");
            assert_eq!(counter.load(Ordering::SeqCst), 2, "an increment was lost");
        })
        .schedules
    };
    assert_eq!(run(42), run(42), "same seed diverged");
}
