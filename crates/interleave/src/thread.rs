//! Instrumented thread spawning and joining with the `std::thread` API shape
//! the modelled protocols use: [`spawn`], [`Builder`], [`JoinHandle`], and
//! scoped threads via [`scope`].
//!
//! Inside a model execution, spawned threads become *managed*: they are
//! registered with the scheduler on the spawning thread (so thread ids are
//! schedule-independent), parked until first picked, and their panics are
//! reported as model failures with the failing schedule attached. Outside a
//! model execution everything delegates to `std::thread` directly.

pub use std::thread::available_parallelism;

use std::io;
use std::panic::{self, AssertUnwindSafe};
use std::sync::{Arc, Mutex as StdMutex, PoisonError};

use crate::scheduler::{current, set_current, Execution, ModelAbort};

/// Runs `f` as managed thread `id` of `exec`: gate until first scheduled,
/// report panics as model failures, and hand the token on when done.
fn managed<T>(exec: Arc<Execution>, id: usize, f: impl FnOnce() -> T) -> T {
    set_current(Some((Arc::clone(&exec), id)));
    exec.gate_start(id);
    let result = panic::catch_unwind(AssertUnwindSafe(f));
    match result {
        Ok(value) => {
            exec.finish_thread(id);
            set_current(None);
            value
        }
        Err(payload) => {
            if !payload.is::<ModelAbort>() {
                exec.record_failure(format!(
                    "managed thread {id} panicked: {}",
                    crate::scheduler::payload_message(payload.as_ref())
                ));
            }
            set_current(None);
            panic::resume_unwind(payload)
        }
    }
}

/// An owned handle to join a spawned thread, mirroring
/// `std::thread::JoinHandle`.
#[derive(Debug)]
pub struct JoinHandle<T> {
    inner: std::thread::JoinHandle<T>,
    model: Option<(Arc<Execution>, usize)>,
}

impl<T> JoinHandle<T> {
    /// Waits for the thread to finish and returns its result.
    ///
    /// # Errors
    ///
    /// Returns the thread's panic payload if it panicked, like `std`.
    pub fn join(self) -> std::thread::Result<T> {
        if let Some((exec, target)) = &self.model {
            if let Some((_, me)) = current() {
                // Model-level join first: block on the scheduler until the
                // target's last step has been scheduled. The real join below
                // then returns promptly (the OS thread is already exiting),
                // so holding the scheduler token across it cannot deadlock.
                exec.join_wait(me, *target);
            }
        }
        self.inner.join()
    }
}

/// A thread factory mirroring `std::thread::Builder` (name configuration
/// only).
#[derive(Debug)]
pub struct Builder {
    inner: std::thread::Builder,
}

impl Default for Builder {
    fn default() -> Builder {
        Builder::new()
    }
}

impl Builder {
    /// Creates a builder with default settings.
    #[must_use]
    pub fn new() -> Builder {
        Builder {
            inner: std::thread::Builder::new(),
        }
    }

    /// Names the thread.
    #[must_use]
    pub fn name(self, name: String) -> Builder {
        Builder {
            inner: self.inner.name(name),
        }
    }

    /// Spawns a thread running `f`.
    ///
    /// # Errors
    ///
    /// Propagates the OS-level spawn failure, like `std`.
    pub fn spawn<F, T>(self, f: F) -> io::Result<JoinHandle<T>>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        match current() {
            None => self
                .inner
                .spawn(f)
                .map(|inner| JoinHandle { inner, model: None }),
            Some((exec, _)) => {
                let id = exec.register_thread();
                let child_exec = Arc::clone(&exec);
                let inner = self.inner.spawn(move || managed(child_exec, id, f))?;
                Ok(JoinHandle {
                    inner,
                    model: Some((exec, id)),
                })
            }
        }
    }
}

/// Spawns a thread running `f`, panicking on OS-level spawn failure, like
/// `std::thread::spawn`.
pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    // lint: allow(unwrap) — mirrors std::thread::spawn's own panic on
    // OS-level spawn failure.
    Builder::new().spawn(f).expect("failed to spawn thread")
}

/// A scope handle mirroring `std::thread::Scope`, passed by reference to the
/// [`scope`] closure.
///
/// Unlike `std`'s, this wrapper also tracks the managed ids of spawned
/// threads so the scope can *model-join* them all before `std`'s real
/// implicit join runs — otherwise the scope exit would block on an OS join
/// while holding the scheduler token, deadlocking the model for real.
#[derive(Debug)]
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
    spawned: StdMutex<Vec<usize>>,
}

/// An owned handle to join a scoped thread, mirroring
/// `std::thread::ScopedJoinHandle`.
#[derive(Debug)]
pub struct ScopedJoinHandle<'scope, T> {
    inner: std::thread::ScopedJoinHandle<'scope, T>,
    model: Option<(Arc<Execution>, usize)>,
}

impl<T> ScopedJoinHandle<'_, T> {
    /// Waits for the scoped thread to finish and returns its result.
    ///
    /// # Errors
    ///
    /// Returns the thread's panic payload if it panicked, like `std`.
    pub fn join(self) -> std::thread::Result<T> {
        if let Some((exec, target)) = &self.model {
            if let Some((_, me)) = current() {
                exec.join_wait(me, *target);
            }
        }
        self.inner.join()
    }
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a scoped thread running `f`, mirroring
    /// `std::thread::Scope::spawn`.
    pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
    where
        F: FnOnce() -> T + Send + 'scope,
        T: Send + 'scope,
    {
        match current() {
            None => ScopedJoinHandle {
                inner: self.inner.spawn(f),
                model: None,
            },
            Some((exec, _)) => {
                let id = exec.register_thread();
                self.spawned
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .push(id);
                let child_exec = Arc::clone(&exec);
                let inner = self.inner.spawn(move || managed(child_exec, id, f));
                ScopedJoinHandle {
                    inner,
                    model: Some((exec, id)),
                }
            }
        }
    }
}

/// Creates a scope for spawning borrowed-data threads, mirroring
/// `std::thread::scope` (the closure receives `&Scope` rather than
/// `&'scope Scope`; spawned closures only need the `'scope` bound).
pub fn scope<'env, F, T>(f: F) -> T
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> T,
{
    std::thread::scope(|inner| {
        let wrapper = Scope {
            inner,
            spawned: StdMutex::new(Vec::new()),
        };
        let result = f(&wrapper);
        // Model-join every scoped thread (including ones whose handles the
        // closure dropped) before std's implicit real join below.
        if let Some((exec, me)) = current() {
            let spawned = std::mem::take(
                &mut *wrapper
                    .spawned
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner),
            );
            for id in spawned {
                exec.join_wait(me, id);
            }
        }
        result
    })
}
