//! Instrumented drop-in replacements for the `std::sync` primitives the
//! modelled protocols use.
//!
//! Each primitive mirrors the `std` API shape (including `LockResult` /
//! `PoisonError` signatures, so poison-recovery call sites compile unchanged)
//! and has **two behaviours**:
//!
//! * inside a model execution (under [`explore`](crate::explore)), every
//!   operation is a scheduler yield point and blocking is virtual — the
//!   scheduler decides who runs, detects deadlocks, and explores wake orders;
//! * outside a model execution, operations delegate to the real `std`
//!   primitives, so code compiled against the instrumented façade still runs
//!   normally (the non-model unit tests of an instrumented crate, for
//!   example).
//!
//! [`Arc`], [`OnceLock`] and the `LockResult` family are re-exported from
//! `std` unchanged: they need no instrumentation (`Arc` is immutable
//! refcounting; `OnceLock` is used for process-global singletons that model
//! tests never touch).

pub use std::sync::{Arc, LockResult, OnceLock, PoisonError};

use std::ops::{Deref, DerefMut};
use std::sync::{Condvar as StdCondvar, Mutex as StdMutex, MutexGuard as StdMutexGuard};

use crate::scheduler::{current, Execution};

/// Grabs a `std` mutex whose model-level lock is already held: always free
/// (the model lock is exclusive), but possibly poisoned by a panicking
/// schedule explored earlier in the same run — recover the data in that case.
fn acquire_inner<T>(inner: &StdMutex<T>) -> StdMutexGuard<'_, T> {
    match inner.try_lock() {
        Ok(guard) => guard,
        Err(std::sync::TryLockError::Poisoned(poisoned)) => poisoned.into_inner(),
        Err(std::sync::TryLockError::WouldBlock) => {
            unreachable!("model lock held but inner lock contended")
        }
    }
}

/// Model-level state of one [`Mutex`]: whether it is held, and which managed
/// threads are parked on it.
#[derive(Debug, Default)]
struct ModelLock {
    locked: bool,
    waiters: Vec<usize>,
}

/// An instrumented mutual-exclusion lock with the `std::sync::Mutex` API.
///
/// Under a model execution, acquisition order among contending threads is a
/// scheduler decision (all parked waiters are woken on release and re-race),
/// and lock/unlock are yield points.
#[derive(Debug, Default)]
pub struct Mutex<T> {
    inner: StdMutex<T>,
    model: StdMutex<ModelLock>,
}

impl<T> Mutex<T> {
    /// Creates a new unlocked mutex.
    pub fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: StdMutex::new(value),
            model: StdMutex::new(ModelLock::default()),
        }
    }

    fn model_state(&self) -> StdMutexGuard<'_, ModelLock> {
        self.model.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires the model-level lock for managed thread `me`, parking on the
    /// scheduler while it is held elsewhere. No yield point of its own —
    /// callers yield first.
    fn model_acquire(&self, exec: &Arc<Execution>, me: usize) {
        loop {
            {
                let mut model = self.model_state();
                if !model.locked {
                    model.locked = true;
                    return;
                }
                model.waiters.push(me);
            }
            exec.block(me, "mutex", false);
        }
    }

    /// Releases the model-level lock and wakes every parked waiter (they
    /// re-race; the scheduler picks the winner). No yield point.
    fn model_release(&self, exec: &Arc<Execution>) {
        let waiters = {
            let mut model = self.model_state();
            model.locked = false;
            std::mem::take(&mut model.waiters)
        };
        for waiter in waiters {
            exec.unblock(waiter);
        }
    }

    /// Acquires the lock, blocking until it is available.
    ///
    /// # Errors
    ///
    /// Like `std`, returns a [`PoisonError`] (still holding the guard) when a
    /// previous holder panicked. Under a model execution, panics abort the
    /// whole schedule, so the model path always returns `Ok`.
    pub fn lock(&self) -> LockResult<MutexGuard<'_, T>> {
        match current() {
            None => match self.inner.lock() {
                Ok(inner) => Ok(MutexGuard {
                    lock: self,
                    inner: Some(inner),
                    model: None,
                }),
                Err(poisoned) => Err(PoisonError::new(MutexGuard {
                    lock: self,
                    inner: Some(poisoned.into_inner()),
                    model: None,
                })),
            },
            Some((exec, me)) => {
                exec.yield_point(me);
                self.model_acquire(&exec, me);
                // The model-level lock is exclusive, so the inner lock is
                // always free here (a poisoned inner lock only means an
                // earlier schedule panicked while holding it).
                let inner = acquire_inner(&self.inner);
                Ok(MutexGuard {
                    lock: self,
                    inner: Some(inner),
                    model: Some((exec, me)),
                })
            }
        }
    }
}

/// RAII guard of an instrumented [`Mutex`]; releasing it is a yield point
/// under a model execution.
pub struct MutexGuard<'a, T> {
    lock: &'a Mutex<T>,
    inner: Option<StdMutexGuard<'a, T>>,
    model: Option<(Arc<Execution>, usize)>,
}

impl<T> MutexGuard<'_, T> {
    /// Releases the lock without a trailing yield point and without running
    /// `Drop` — the atomic first half of a condvar wait.
    fn release_for_wait(mut self) {
        self.inner.take();
        if let Some((exec, _)) = self.model.take() {
            self.lock.model_release(&exec);
        }
        std::mem::forget(self);
    }
}

impl<T> Deref for MutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard accessed after release")
    }
}

impl<T> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard accessed after release")
    }
}

impl<T> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        self.inner.take();
        if let Some((exec, me)) = self.model.take() {
            self.lock.model_release(&exec);
            // Releasing a lock is a preemption point — but not while this
            // thread is already unwinding (the scheduler would park a
            // panicking thread).
            if !std::thread::panicking() {
                exec.yield_point(me);
            }
        }
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.inner.as_ref().fmt(f)
    }
}

/// An instrumented condition variable with the `std::sync::Condvar` API
/// (minus spurious wakeups, which the modelled protocols must already
/// tolerate via their predicate loops).
///
/// Under a model execution, `notify_one` with several waiters is a recorded
/// scheduler decision, so every wake order gets explored; a `notify` with no
/// waiters is a no-op exactly like `std`, which is what lets the explorer
/// catch lost-wakeup protocols as deadlocks.
#[derive(Debug, Default)]
pub struct Condvar {
    inner: StdCondvar,
    waiters: StdMutex<Vec<usize>>,
}

impl Condvar {
    /// Creates a condition variable with no waiters.
    pub fn new() -> Condvar {
        Condvar::default()
    }

    fn model_waiters(&self) -> StdMutexGuard<'_, Vec<usize>> {
        self.waiters.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Atomically releases `guard`'s mutex and waits for a notification,
    /// reacquiring the mutex before returning.
    ///
    /// # Errors
    ///
    /// Mirrors `std`'s poison reporting; the model path always returns `Ok`
    /// (panics abort the schedule instead of poisoning).
    pub fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> LockResult<MutexGuard<'a, T>> {
        match &guard.model {
            None => {
                // Delegate to the real condvar on the real inner guard.
                let lock = guard.lock;
                let mut guard = guard;
                let inner = guard.inner.take().expect("guard accessed after release");
                std::mem::forget(guard);
                match self.inner.wait(inner) {
                    Ok(inner) => Ok(MutexGuard {
                        lock,
                        inner: Some(inner),
                        model: None,
                    }),
                    Err(poisoned) => Err(PoisonError::new(MutexGuard {
                        lock,
                        inner: Some(poisoned.into_inner()),
                        model: None,
                    })),
                }
            }
            Some((exec, me)) => {
                let exec = Arc::clone(exec);
                let me = *me;
                let lock = guard.lock;
                // Register as a waiter *before* releasing the mutex: no yield
                // point separates the two, so wait is atomic and a notify
                // between release and park cannot be lost.
                self.model_waiters().push(me);
                guard.release_for_wait();
                exec.block(me, "condvar", false);
                exec.yield_point(me);
                lock.model_acquire(&exec, me);
                let inner = acquire_inner(&lock.inner);
                Ok(MutexGuard {
                    lock,
                    inner: Some(inner),
                    model: Some((exec, me)),
                })
            }
        }
    }

    /// Wakes one waiter; which one is a scheduler decision under a model
    /// execution.
    pub fn notify_one(&self) {
        if let Some((exec, _)) = current() {
            let waiter = {
                let mut waiters = self.model_waiters();
                if waiters.is_empty() {
                    None
                } else {
                    let chosen = exec.decide(waiters.len());
                    Some(waiters.swap_remove(chosen))
                }
            };
            if let Some(waiter) = waiter {
                exec.unblock(waiter);
            }
        }
        self.inner.notify_one();
    }

    /// Wakes every waiter.
    pub fn notify_all(&self) {
        if let Some((exec, _)) = current() {
            let waiters = std::mem::take(&mut *self.model_waiters());
            for waiter in waiters {
                exec.unblock(waiter);
            }
        }
        self.inner.notify_all();
    }
}

/// Instrumented atomic integers: sequentially-consistent exploration with a
/// yield point before every access, mirroring the `std::sync::atomic` API
/// shape the protocols use.
pub mod atomic {
    pub use std::sync::atomic::Ordering;

    use super::current;

    fn yield_before_access() {
        if let Some((exec, me)) = current() {
            exec.yield_point(me);
        }
    }

    macro_rules! instrumented_atomic {
        ($name:ident, $std:ty, $value:ty) => {
            /// An instrumented atomic: every access is a scheduler yield
            /// point under a model execution, and a plain delegation outside
            /// one.
            #[derive(Debug, Default)]
            pub struct $name {
                inner: $std,
            }

            impl $name {
                /// Creates a new atomic with `value`.
                #[must_use]
                pub const fn new(value: $value) -> $name {
                    $name {
                        inner: <$std>::new(value),
                    }
                }

                /// Loads the value.
                pub fn load(&self, order: Ordering) -> $value {
                    yield_before_access();
                    self.inner.load(order)
                }

                /// Stores `value`.
                pub fn store(&self, value: $value, order: Ordering) {
                    yield_before_access();
                    self.inner.store(value, order);
                }

                /// Adds, returning the previous value.
                pub fn fetch_add(&self, value: $value, order: Ordering) -> $value {
                    yield_before_access();
                    self.inner.fetch_add(value, order)
                }

                /// Maximum, returning the previous value.
                pub fn fetch_max(&self, value: $value, order: Ordering) -> $value {
                    yield_before_access();
                    self.inner.fetch_max(value, order)
                }
            }
        };
    }

    instrumented_atomic!(AtomicUsize, std::sync::atomic::AtomicUsize, usize);
    instrumented_atomic!(AtomicU64, std::sync::atomic::AtomicU64, u64);

    /// An instrumented atomic boolean.
    #[derive(Debug, Default)]
    pub struct AtomicBool {
        inner: std::sync::atomic::AtomicBool,
    }

    impl AtomicBool {
        /// Creates a new atomic with `value`.
        #[must_use]
        pub const fn new(value: bool) -> AtomicBool {
            AtomicBool {
                inner: std::sync::atomic::AtomicBool::new(value),
            }
        }

        /// Loads the value.
        pub fn load(&self, order: Ordering) -> bool {
            yield_before_access();
            self.inner.load(order)
        }

        /// Stores `value`.
        pub fn store(&self, value: bool, order: Ordering) {
            yield_before_access();
            self.inner.store(value, order);
        }

        /// Swaps in `value`, returning the previous value.
        pub fn swap(&self, value: bool, order: Ordering) -> bool {
            yield_before_access();
            self.inner.swap(value, order)
        }
    }
}

/// Instrumented multi-producer single-consumer channels mirroring the
/// `std::sync::mpsc` subset the serve loop uses: [`mpsc::channel`] (unbounded)
/// and [`mpsc::sync_channel`] (bounded, including the capacity-0 rendezvous
/// form whose
/// `send` blocks until the message is received), with `recv`, `recv_timeout`
/// and disconnection semantics.
///
/// Under a model execution, a `recv_timeout` may have its timer fired by the
/// scheduler at any yield point — both the timely and the timed-out outcome
/// of every race get explored, regardless of the nominal duration (virtual
/// time has no fixed rate). Outside a model execution the ops run on real
/// condvars and real clocks.
pub mod mpsc {
    pub use std::sync::mpsc::{RecvError, RecvTimeoutError, SendError, TryRecvError};

    use std::collections::VecDeque;
    use std::sync::{Condvar as StdCondvar, Mutex as StdMutex, MutexGuard as StdMutexGuard};
    use std::time::Duration;

    use super::{current, Arc, PoisonError};

    #[derive(Debug)]
    struct ChanState<T> {
        queue: VecDeque<T>,
        /// Buffered capacity; `None` = unbounded, `Some(0)` = rendezvous.
        cap: Option<usize>,
        senders: usize,
        receiver_alive: bool,
        /// Total messages ever enqueued / dequeued: a rendezvous sender waits
        /// until `consumed` passes its own message's index.
        sent: u64,
        consumed: u64,
        recv_waiters: Vec<usize>,
        send_waiters: Vec<usize>,
    }

    #[derive(Debug)]
    struct Chan<T> {
        state: StdMutex<ChanState<T>>,
        /// Real-mode parking (model-mode blocking goes via the scheduler).
        recv_ready: StdCondvar,
        send_ready: StdCondvar,
    }

    impl<T> Chan<T> {
        fn new(cap: Option<usize>) -> Arc<Chan<T>> {
            Arc::new(Chan {
                state: StdMutex::new(ChanState {
                    queue: VecDeque::new(),
                    cap,
                    senders: 1,
                    receiver_alive: true,
                    sent: 0,
                    consumed: 0,
                    recv_waiters: Vec::new(),
                    send_waiters: Vec::new(),
                }),
                recv_ready: StdCondvar::new(),
                send_ready: StdCondvar::new(),
            })
        }

        fn state(&self) -> StdMutexGuard<'_, ChanState<T>> {
            self.state.lock().unwrap_or_else(PoisonError::into_inner)
        }

        fn wake_receivers(&self, st: &mut ChanState<T>) {
            if let Some((exec, _)) = current() {
                for waiter in st.recv_waiters.drain(..) {
                    exec.unblock(waiter);
                }
            }
            self.recv_ready.notify_all();
        }

        fn wake_senders(&self, st: &mut ChanState<T>) {
            if let Some((exec, _)) = current() {
                for waiter in st.send_waiters.drain(..) {
                    exec.unblock(waiter);
                }
            }
            self.send_ready.notify_all();
        }

        /// Core send with `block_until_consumed` selecting rendezvous
        /// semantics (capacity 0).
        fn send(&self, value: T) -> Result<(), SendError<T>> {
            let model = current();
            if let Some((exec, me)) = &model {
                exec.yield_point(*me);
            }
            // Bounded (cap > 0): wait for buffer room first.
            loop {
                let mut st = self.state();
                if !st.receiver_alive {
                    return Err(SendError(value));
                }
                match st.cap {
                    Some(cap) if cap > 0 && st.queue.len() >= cap => match &model {
                        Some((exec, me)) => {
                            st.send_waiters.push(*me);
                            drop(st);
                            exec.block(*me, "channel send (full)", false);
                            continue;
                        }
                        None => {
                            drop(self.send_ready.wait(st));
                            continue;
                        }
                    },
                    _ => {
                        let my_index = st.sent;
                        st.sent += 1;
                        st.queue.push_back(value);
                        self.wake_receivers(&mut st);
                        let rendezvous = st.cap == Some(0);
                        drop(st);
                        if rendezvous {
                            return self.wait_consumed(my_index, &model);
                        }
                        return Ok(());
                    }
                }
            }
        }

        /// The rendezvous tail of a capacity-0 send: block until the message
        /// is consumed, or pull it back out if the receiver disconnects.
        fn wait_consumed(
            &self,
            my_index: u64,
            model: &Option<(Arc<crate::scheduler::Execution>, usize)>,
        ) -> Result<(), SendError<T>> {
            loop {
                let mut st = self.state();
                if st.consumed > my_index {
                    return Ok(());
                }
                if !st.receiver_alive {
                    // The receiver is gone and our message is still in the
                    // queue, `my_index - consumed` entries from the front.
                    let position = (my_index - st.consumed) as usize;
                    let value = st
                        .queue
                        .remove(position)
                        .expect("unconsumed rendezvous message disappeared");
                    return Err(SendError(value));
                }
                match model {
                    Some((exec, me)) => {
                        st.send_waiters.push(*me);
                        drop(st);
                        exec.block(*me, "channel send (rendezvous)", false);
                    }
                    None => drop(self.send_ready.wait(st)),
                }
            }
        }

        fn recv_inner(&self, timeout: Option<Duration>) -> Result<T, RecvTimeoutError> {
            let model = current();
            if let Some((exec, me)) = &model {
                exec.yield_point(*me);
            }
            // Real-mode timeouts are deadline-based so a wakeup that loses the
            // race for a message does not restart the full wait.
            let deadline = match (&model, timeout) {
                (None, Some(duration)) => Some(std::time::Instant::now() + duration),
                _ => None,
            };
            loop {
                let mut st = self.state();
                if let Some(value) = st.queue.pop_front() {
                    st.consumed += 1;
                    self.wake_senders(&mut st);
                    return Ok(value);
                }
                if st.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                match &model {
                    Some((exec, me)) => {
                        st.recv_waiters.push(*me);
                        drop(st);
                        // With a timeout, the scheduler may fire the timer at
                        // any point; without one, only a send or disconnect
                        // wakes us.
                        let timed_out = exec.block(*me, "channel recv", timeout.is_some());
                        if timed_out {
                            return Err(RecvTimeoutError::Timeout);
                        }
                    }
                    None => match deadline {
                        Some(deadline) => {
                            let remaining =
                                deadline.saturating_duration_since(std::time::Instant::now());
                            if remaining.is_zero() {
                                return Err(RecvTimeoutError::Timeout);
                            }
                            let (state, _) = self
                                .recv_ready
                                .wait_timeout(st, remaining)
                                .unwrap_or_else(PoisonError::into_inner);
                            drop(state);
                        }
                        None => drop(self.recv_ready.wait(st)),
                    },
                }
            }
        }
    }

    /// The sending half of an unbounded [`channel`].
    #[derive(Debug)]
    pub struct Sender<T>(Arc<Chan<T>>);

    /// The sending half of a bounded [`sync_channel`].
    #[derive(Debug)]
    pub struct SyncSender<T>(Arc<Chan<T>>);

    /// The receiving half of either channel flavour.
    #[derive(Debug)]
    pub struct Receiver<T>(Arc<Chan<T>>);

    fn clone_sender<T>(chan: &Arc<Chan<T>>) -> Arc<Chan<T>> {
        chan.state().senders += 1;
        Arc::clone(chan)
    }

    fn drop_sender<T>(chan: &Chan<T>) {
        let mut st = chan.state();
        st.senders -= 1;
        if st.senders == 0 {
            chan.wake_receivers(&mut st);
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Sender<T> {
            Sender(clone_sender(&self.0))
        }
    }

    impl<T> Clone for SyncSender<T> {
        fn clone(&self) -> SyncSender<T> {
            SyncSender(clone_sender(&self.0))
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            drop_sender(&self.0);
        }
    }

    impl<T> Drop for SyncSender<T> {
        fn drop(&mut self) {
            drop_sender(&self.0);
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut st = self.0.state();
            st.receiver_alive = false;
            self.0.wake_senders(&mut st);
        }
    }

    impl<T> Sender<T> {
        /// Sends without blocking (unbounded buffer).
        ///
        /// # Errors
        ///
        /// Returns the value back when the receiver has been dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.0.send(value)
        }
    }

    impl<T> SyncSender<T> {
        /// Sends, blocking while the buffer is full — or, for a capacity-0
        /// rendezvous channel, until the receiver takes the message.
        ///
        /// # Errors
        ///
        /// Returns the value back when the receiver has been dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.0.send(value)
        }
    }

    impl<T> Receiver<T> {
        /// Receives, blocking until a message or disconnection.
        ///
        /// # Errors
        ///
        /// [`RecvError`] when every sender has been dropped and the buffer is
        /// drained.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv_inner(None).map_err(|_| RecvError)
        }

        /// Receives with a deadline.
        ///
        /// # Errors
        ///
        /// `Timeout` when the timer fires first (under a model execution the
        /// scheduler decides), `Disconnected` when every sender is gone.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.0.recv_inner(Some(timeout))
        }
    }

    /// An unbounded channel, like `std::sync::mpsc::channel`.
    #[must_use]
    pub fn channel<T>() -> (Sender<T>, Receiver<T>) {
        let chan = Chan::new(None);
        (Sender(Arc::clone(&chan)), Receiver(chan))
    }

    /// A bounded channel, like `std::sync::mpsc::sync_channel`; `bound == 0`
    /// is the rendezvous form.
    #[must_use]
    pub fn sync_channel<T>(bound: usize) -> (SyncSender<T>, Receiver<T>) {
        let chan = Chan::new(Some(bound));
        (SyncSender(Arc::clone(&chan)), Receiver(chan))
    }
}
