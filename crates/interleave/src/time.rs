//! An instrumented [`Instant`] backed by the scheduler's virtual clock.
//!
//! Real wall-clock time is meaningless inside a model execution — threads run
//! one at a time and wait virtually — so `Instant::now()` there reads a
//! virtual nanosecond counter that the scheduler bumps at every yield point.
//! The counter is monotonic and schedule-dependent, which is exactly the
//! point: elapsed times differ across schedules the way they differ across
//! real runs, and timeout races stay explorable. Outside a model execution,
//! `Instant` is the real `std::time::Instant`.

pub use std::time::Duration;

use std::ops::Add;

use crate::scheduler::current;

/// A measurement of a monotonically nondecreasing clock, mirroring the
/// `std::time::Instant` subset the serve loop uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct Instant(Repr);

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Repr {
    // lint: allow(timing) — this is the instrumentation layer's real-mode
    // fallback; everything else reaches time through it.
    Real(std::time::Instant),
    Virtual(u64),
}

impl Instant {
    /// The current instant: virtual inside a model execution, real outside.
    #[must_use]
    pub fn now() -> Instant {
        match current() {
            Some((exec, _)) => Instant(Repr::Virtual(exec.clock_nanos())),
            None => Instant(Repr::Real(std::time::Instant::now())),
        }
    }

    /// Time elapsed since this instant.
    #[must_use]
    pub fn elapsed(&self) -> Duration {
        Instant::now().saturating_duration_since(*self)
    }

    /// Time elapsed from `earlier` to this instant, or zero when this instant
    /// is the earlier one.
    #[must_use]
    pub fn saturating_duration_since(&self, earlier: Instant) -> Duration {
        match (self.0, earlier.0) {
            (Repr::Real(this), Repr::Real(earlier)) => this.saturating_duration_since(earlier),
            (Repr::Virtual(this), Repr::Virtual(earlier)) => {
                Duration::from_nanos(this.saturating_sub(earlier))
            }
            // Instants from different modes are incomparable; zero is the
            // saturating answer (and unreachable in practice — a model
            // execution never sees instants taken outside it).
            _ => Duration::ZERO,
        }
    }
}

impl Add<Duration> for Instant {
    type Output = Instant;

    fn add(self, duration: Duration) -> Instant {
        match self.0 {
            Repr::Real(real) => Instant(Repr::Real(real + duration)),
            Repr::Virtual(nanos) => Instant(Repr::Virtual(
                nanos.saturating_add(u64::try_from(duration.as_nanos()).unwrap_or(u64::MAX)),
            )),
        }
    }
}
