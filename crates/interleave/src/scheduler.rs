//! The deterministic-schedule controller behind [`explore`](crate::explore).
//!
//! One **execution** runs the model closure once under one schedule. Every
//! thread that touches an instrumented primitive is *managed*: exactly one
//! managed thread runs at a time, and at every instrumented operation (a
//! *yield point*) the running thread hands control to the scheduler, which
//! picks the next thread to run. The sequence of picks is the **schedule**;
//! recording it as a decision trace makes executions replayable, and
//! replaying a prefix with the last branch advanced turns repeated execution
//! into a depth-first search over schedules.
//!
//! Exploration strategies:
//!
//! * **Bounded-exhaustive DFS** — enumerate every schedule, optionally under a
//!   *preemption bound* (CHESS-style): switching away from a thread that could
//!   continue costs one unit of a small budget, which prunes the search space
//!   to the schedules that find practically all concurrency bugs first.
//! * **Seeded random** — PCT-flavoured deeper exploration: after (or instead
//!   of) the DFS frontier, run extra schedules choosing uniformly among the
//!   enabled threads from a seeded xorshift generator, with no preemption
//!   bound, so long schedules beyond the DFS budget still get sampled
//!   reproducibly.
//!
//! Failure conditions an execution can report: a panic in the model closure
//! or any managed thread (assertion failures in model tests), a **deadlock**
//! (no thread can run but not all have finished), or a step-budget overrun
//! (livelock guard). The failing decision trace is attached for reproduction.
//!
//! The scheduler models sequential consistency: instrumented atomics yield
//! before each access but are not reordered, so weak-memory-only bugs are out
//! of scope (every protocol under test here pairs atomics with mutexes for
//! publication).

use std::cell::RefCell;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar as StdCondvar, Mutex as StdMutex, MutexGuard as StdMutexGuard};

/// Exploration budgets and strategy knobs of one [`explore`] call.
#[derive(Debug, Clone, Copy)]
pub struct Config {
    /// Maximum DFS schedules to run before giving up on exhaustiveness.
    pub max_schedules: usize,
    /// CHESS-style preemption bound for the DFS phase: how many times a
    /// schedule may switch away from a thread that could have continued.
    /// `None` removes the bound (full interleaving exhaustion).
    pub preemption_bound: Option<usize>,
    /// Extra seeded-random schedules run after the DFS phase (no preemption
    /// bound), sampling deeper interleavings than the bounded search reaches.
    pub random_schedules: usize,
    /// Seed of the random phase; the same seed replays the same schedules.
    pub seed: u64,
    /// Per-execution yield-point budget: exceeding it fails the schedule as a
    /// livelock.
    pub max_steps: u64,
}

impl Default for Config {
    fn default() -> Config {
        Config {
            max_schedules: 4096,
            preemption_bound: Some(2),
            random_schedules: 256,
            seed: 0x5eed_cafe_f00d,
            max_steps: 1 << 20,
        }
    }
}

impl Config {
    /// A configuration that only runs the bounded-exhaustive DFS phase.
    #[must_use]
    pub fn exhaustive(preemption_bound: usize, max_schedules: usize) -> Config {
        Config {
            max_schedules,
            preemption_bound: Some(preemption_bound),
            random_schedules: 0,
            ..Config::default()
        }
    }
}

/// One failing schedule: the failure message plus the branch choices that
/// reproduce it.
#[derive(Debug, Clone)]
pub struct Failure {
    /// What went wrong: the panic payload, deadlock diagnosis, or livelock.
    pub message: String,
    /// The branch decisions (position chosen at each multi-option yield
    /// point) reproducing the failing schedule.
    pub trace: Vec<usize>,
}

/// The result of one [`explore`] call.
#[derive(Debug)]
pub struct Outcome {
    /// Schedules actually executed (DFS + random phases).
    pub schedules: usize,
    /// Whether the DFS frontier was exhausted within
    /// [`Config::max_schedules`] — i.e. the exploration was exhaustive under
    /// the configured preemption bound.
    pub complete: bool,
    /// The first failing schedule found, if any; exploration stops at it.
    pub failure: Option<Failure>,
}

/// What a managed thread is currently doing, from the scheduler's viewpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Status {
    /// Can be picked to run.
    Runnable,
    /// Waiting on a resource; only a wake from another thread makes it
    /// runnable again.
    Blocked,
    /// Waiting with a timeout: the scheduler may fire the timer at any yield
    /// point, so both the timely and the timed-out outcome are explored.
    TimedBlocked,
    /// Returned from its closure.
    Finished,
}

#[derive(Debug)]
struct ThreadState {
    status: Status,
    /// Set when the scheduler woke this thread by firing its timeout; the
    /// blocking primitive consumes it to return its `Timeout` variant.
    timed_out: bool,
    /// Diagnostic label of the resource a blocked thread waits on.
    blocked_on: &'static str,
    /// Threads blocked in `join` on this one, woken when it finishes.
    joiners: Vec<usize>,
}

impl ThreadState {
    fn new() -> ThreadState {
        ThreadState {
            status: Status::Runnable,
            timed_out: false,
            blocked_on: "",
            joiners: Vec::new(),
        }
    }
}

/// One recorded scheduling decision: how many options were enabled and which
/// position was taken. Single-option points are not recorded (no branch).
#[derive(Debug, Clone)]
struct Decision {
    options: usize,
    chosen: usize,
}

/// The choice strategy of one execution.
#[derive(Debug)]
enum Driver {
    /// Replay `replay` at the branch points, then take the first option.
    Dfs { replay: Vec<usize>, pos: usize },
    /// Seeded xorshift over the options.
    Random { state: u64 },
}

impl Driver {
    fn choose(&mut self, options: usize) -> usize {
        match self {
            Driver::Dfs { replay, pos } => {
                let choice = replay.get(*pos).copied().unwrap_or(0);
                *pos += 1;
                // A divergent replay (non-deterministic model closure) would
                // index past the options; clamp rather than panic inside the
                // scheduler — the run still explores a valid schedule.
                choice.min(options - 1)
            }
            Driver::Random { state } => {
                // xorshift64: deterministic, dependency-free, good enough to
                // scatter schedules.
                *state ^= *state << 13;
                *state ^= *state >> 7;
                *state ^= *state << 17;
                (*state % options as u64) as usize
            }
        }
    }
}

#[derive(Debug)]
struct ExecState {
    threads: Vec<ThreadState>,
    /// Index of the one thread allowed to run; `usize::MAX` once every
    /// thread has finished.
    active: usize,
    driver: Driver,
    trace: Vec<Decision>,
    /// Remaining preemption budget (`None` = unbounded).
    preemptions_left: Option<usize>,
    steps: u64,
    max_steps: u64,
    /// Virtual nanosecond clock: bumped once per yield point, read by the
    /// instrumented `Instant`.
    clock_nanos: u64,
    failed: Option<String>,
}

/// One model execution: the scheduler state plus the rendezvous condvar every
/// managed thread parks on between turns.
#[derive(Debug)]
pub(crate) struct Execution {
    state: StdMutex<ExecState>,
    turn: StdCondvar,
}

thread_local! {
    static CURRENT: RefCell<Option<(Arc<Execution>, usize)>> = const { RefCell::new(None) };
}

/// The execution and managed-thread id of the calling thread, when it is
/// running inside a model execution.
pub(crate) fn current() -> Option<(Arc<Execution>, usize)> {
    CURRENT.with(|current| current.borrow().clone())
}

pub(crate) fn set_current(value: Option<(Arc<Execution>, usize)>) {
    CURRENT.with(|current| *current.borrow_mut() = value);
}

/// The panic payload managed threads unwind with when the execution has
/// already failed (deadlock, another thread's panic): carries no message of
/// its own and is silenced by the panic hook.
pub(crate) struct ModelAbort;

fn abort_thread() -> ! {
    panic::panic_any(ModelAbort)
}

/// Installs (once) a panic hook that silences panics on threads currently
/// inside a model execution: the explorer reports them with the failing
/// schedule instead, so thousands of explored-and-caught panics do not spam
/// stderr. Panics outside model executions go to the previous hook.
fn install_hook() {
    static INSTALLED: AtomicBool = AtomicBool::new(false);
    if INSTALLED.swap(true, Ordering::SeqCst) {
        return;
    }
    let previous = panic::take_hook();
    panic::set_hook(Box::new(move |info| {
        if current().is_some() || info.payload().is::<ModelAbort>() {
            return;
        }
        previous(info);
    }));
}

pub(crate) fn payload_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(text) = payload.downcast_ref::<&str>() {
        (*text).to_string()
    } else if let Some(text) = payload.downcast_ref::<String>() {
        text.clone()
    } else {
        "panic with non-string payload".to_string()
    }
}

impl Execution {
    fn new(config: &Config, driver: Driver) -> Execution {
        let preemptions_left = match driver {
            Driver::Dfs { .. } => config.preemption_bound,
            // The random phase samples deep schedules; bounding it would just
            // re-sample the DFS space.
            Driver::Random { .. } => None,
        };
        Execution {
            state: StdMutex::new(ExecState {
                threads: Vec::new(),
                active: 0,
                driver,
                trace: Vec::new(),
                preemptions_left,
                steps: 0,
                max_steps: config.max_steps,
                clock_nanos: 0,
                failed: None,
            }),
            turn: StdCondvar::new(),
        }
    }

    /// Locks the scheduler state, recovering from poison: a managed thread
    /// that panicked records a failure and every other thread bails out, so
    /// the state itself stays consistent.
    fn state(&self) -> StdMutexGuard<'_, ExecState> {
        self.state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Registers a new managed thread (runnable, not active) and returns its
    /// id. Called on the *spawning* thread so ids are schedule-independent.
    pub(crate) fn register_thread(&self) -> usize {
        let mut st = self.state();
        st.threads.push(ThreadState::new());
        st.threads.len() - 1
    }

    /// Records the execution's failure (first writer wins) and wakes every
    /// parked thread so they can bail out.
    pub(crate) fn record_failure(&self, message: String) {
        let mut st = self.state();
        if st.failed.is_none() {
            st.failed = Some(message);
        }
        drop(st);
        self.turn.notify_all();
    }

    /// Reads and bumps the virtual clock (no yield point).
    pub(crate) fn clock_nanos(&self) -> u64 {
        let mut st = self.state();
        st.clock_nanos += 1;
        st.clock_nanos
    }

    /// An extra scheduling decision not tied to picking the next thread —
    /// e.g. which of several condvar waiters a `notify_one` wakes. Returns a
    /// position into `options`.
    pub(crate) fn decide(&self, options: usize) -> usize {
        if options <= 1 {
            return 0;
        }
        let mut st = self.state();
        let chosen = st.driver.choose(options);
        st.trace.push(Decision { options, chosen });
        chosen
    }

    /// Core scheduling step of thread `me`: adopt `status`, pick the next
    /// active thread, and (unless finishing) park until re-selected.
    fn reschedule(self: &Arc<Self>, me: usize, status: Status, blocked_on: &'static str) {
        let mut st = self.state();
        if st.failed.is_some() {
            drop(st);
            abort_thread();
        }
        st.threads[me].status = status;
        st.threads[me].blocked_on = blocked_on;
        self.pick_next(&mut st, me);
        if status == Status::Finished {
            return;
        }
        loop {
            if st.failed.is_some() {
                drop(st);
                abort_thread();
            }
            if st.active == me && st.threads[me].status == Status::Runnable {
                return;
            }
            st = self
                .turn
                .wait(st)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }

    /// Picks the next active thread among the enabled ones (runnable threads,
    /// plus timed-blocked threads whose timer the scheduler may fire),
    /// recording the decision when there is a real branch.
    fn pick_next(self: &Arc<Self>, st: &mut ExecState, me: usize) {
        st.steps += 1;
        st.clock_nanos += 1;
        if st.steps > st.max_steps {
            self.fail_locked(
                st,
                "step budget exceeded — livelock or unbounded retry".to_string(),
            );
            return;
        }
        let mut options: Vec<usize> = Vec::new();
        for (id, thread) in st.threads.iter().enumerate() {
            if matches!(thread.status, Status::Runnable | Status::TimedBlocked) {
                options.push(id);
            }
        }
        if options.is_empty() {
            if st.threads.iter().all(|t| t.status == Status::Finished) {
                st.active = usize::MAX;
                self.turn.notify_all();
                return;
            }
            let stuck: Vec<String> = st
                .threads
                .iter()
                .enumerate()
                .filter(|(_, t)| t.status == Status::Blocked)
                .map(|(id, t)| format!("thread {id} on {}", t.blocked_on))
                .collect();
            self.fail_locked(st, format!("deadlock: {}", stuck.join(", ")));
            return;
        }
        // Preemption bounding: switching away from a thread that could have
        // continued spends budget; once it is gone the running thread keeps
        // running whenever it can.
        let my_status = st.threads[me].status;
        if my_status == Status::Runnable && st.preemptions_left == Some(0) {
            options = vec![me];
        }
        let pos = if options.len() == 1 {
            0
        } else {
            let chosen = st.driver.choose(options.len());
            st.trace.push(Decision {
                options: options.len(),
                chosen,
            });
            chosen
        };
        let chosen = options[pos];
        if chosen != me && my_status == Status::Runnable {
            if let Some(left) = st.preemptions_left.as_mut() {
                *left = left.saturating_sub(1);
            }
        }
        if st.threads[chosen].status == Status::TimedBlocked {
            st.threads[chosen].status = Status::Runnable;
            st.threads[chosen].timed_out = true;
        }
        st.active = chosen;
        self.turn.notify_all();
    }

    fn fail_locked(&self, st: &mut ExecState, message: String) {
        if st.failed.is_none() {
            st.failed = Some(message);
        }
        self.turn.notify_all();
    }

    /// A plain yield point: stay runnable, let the scheduler preempt.
    pub(crate) fn yield_point(self: &Arc<Self>, me: usize) {
        self.reschedule(me, Status::Runnable, "");
    }

    /// Blocks `me` on `what` until another thread calls [`Execution::unblock`]
    /// (or, when `timed`, until the scheduler fires the timeout). Returns
    /// whether the wake was a timeout.
    pub(crate) fn block(self: &Arc<Self>, me: usize, what: &'static str, timed: bool) -> bool {
        let status = if timed {
            Status::TimedBlocked
        } else {
            Status::Blocked
        };
        self.reschedule(me, status, what);
        let mut st = self.state();
        let timed_out = st.threads[me].timed_out;
        st.threads[me].timed_out = false;
        timed_out
    }

    /// Marks a blocked thread runnable (it still runs only when the scheduler
    /// picks it). Waking a thread that is not blocked is a no-op.
    pub(crate) fn unblock(&self, id: usize) {
        let mut st = self.state();
        if matches!(
            st.threads[id].status,
            Status::Blocked | Status::TimedBlocked
        ) {
            st.threads[id].status = Status::Runnable;
            st.threads[id].timed_out = false;
            st.threads[id].blocked_on = "";
        }
    }

    /// Parks a freshly spawned managed thread until the scheduler first picks
    /// it.
    pub(crate) fn gate_start(self: &Arc<Self>, me: usize) {
        let mut st = self.state();
        loop {
            if st.failed.is_some() {
                drop(st);
                abort_thread();
            }
            if st.active == me && st.threads[me].status == Status::Runnable {
                return;
            }
            st = self
                .turn
                .wait(st)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }

    /// Marks `me` finished, wakes its joiners, and hands the token on.
    pub(crate) fn finish_thread(self: &Arc<Self>, me: usize) {
        {
            let mut st = self.state();
            if st.failed.is_some() {
                return;
            }
            let joiners = std::mem::take(&mut st.threads[me].joiners);
            for joiner in joiners {
                if matches!(
                    st.threads[joiner].status,
                    Status::Blocked | Status::TimedBlocked
                ) {
                    st.threads[joiner].status = Status::Runnable;
                }
            }
        }
        self.reschedule(me, Status::Finished, "");
    }

    /// Blocks the harness thread until every managed thread has finished (or
    /// the execution failed): the decision trace is only complete once the
    /// last thread has scheduled its final step.
    fn wait_all_finished(&self) {
        let mut st = self.state();
        loop {
            if st.failed.is_some() || st.active == usize::MAX {
                return;
            }
            st = self
                .turn
                .wait(st)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }

    /// Blocks `me` until managed thread `target` finishes. Safe against the
    /// target finishing first (checks before blocking; the check-then-block
    /// pair is atomic because no yield point separates them).
    pub(crate) fn join_wait(self: &Arc<Self>, me: usize, target: usize) {
        loop {
            {
                let mut st = self.state();
                if st.failed.is_some() {
                    drop(st);
                    abort_thread();
                }
                if st.threads[target].status == Status::Finished {
                    return;
                }
                st.threads[target].joiners.push(me);
            }
            self.block(me, "join", false);
        }
    }
}

/// Runs one execution of `f` under `driver`, returning the recorded decision
/// trace and the failure (if any).
fn run_one<F: Fn()>(config: &Config, driver: Driver, f: &F) -> (Vec<Decision>, Option<String>) {
    let exec = Arc::new(Execution::new(config, driver));
    let main_id = exec.register_thread();
    debug_assert_eq!(main_id, 0);
    set_current(Some((Arc::clone(&exec), main_id)));
    let result = panic::catch_unwind(AssertUnwindSafe(f));
    match result {
        Ok(()) => exec.finish_thread(main_id),
        Err(payload) => {
            if !payload.is::<ModelAbort>() {
                exec.record_failure(format!(
                    "model closure panicked: {}",
                    payload_message(payload.as_ref())
                ));
            }
            // Ensure no other thread waits forever on a token the panicked
            // main thread still holds.
            exec.record_failure("model closure panicked".to_string());
        }
    }
    // Let every spawned thread run its final scheduling step (or bail out
    // after a failure) before reading the trace: a half-finished schedule
    // would corrupt the DFS frontier. The OS threads themselves exit on their
    // own — once finished (or aborted) they never touch this execution again.
    exec.wait_all_finished();
    set_current(None);
    let mut st = exec.state();
    let trace = std::mem::take(&mut st.trace);
    let failed = st.failed.take();
    (trace, failed)
}

/// The next DFS replay prefix after `trace`, or `None` when the frontier is
/// exhausted: backtrack to the deepest branch with an untaken option and
/// advance it.
fn next_replay(trace: &[Decision]) -> Option<Vec<usize>> {
    for depth in (0..trace.len()).rev() {
        if trace[depth].chosen + 1 < trace[depth].options {
            let mut replay: Vec<usize> = trace[..depth]
                .iter()
                .map(|decision| decision.chosen)
                .collect();
            replay.push(trace[depth].chosen + 1);
            return Some(replay);
        }
    }
    None
}

/// Explores schedules of `f` under `config`: bounded-exhaustive DFS first,
/// then the seeded random phase. Stops at the first failing schedule.
///
/// The closure runs many times and must be deterministic apart from
/// scheduling: derive all inputs inside it, and do not consult real time or
/// OS randomness.
pub fn explore<F: Fn()>(config: &Config, f: F) -> Outcome {
    install_hook();
    let mut schedules = 0;
    let mut complete = false;
    let mut replay: Vec<usize> = Vec::new();
    let mut failure = None;

    while schedules < config.max_schedules {
        let driver = Driver::Dfs {
            replay: std::mem::take(&mut replay),
            pos: 0,
        };
        let (trace, failed) = run_one(config, driver, &f);
        schedules += 1;
        if let Some(message) = failed {
            failure = Some(Failure {
                message,
                trace: trace.iter().map(|decision| decision.chosen).collect(),
            });
            break;
        }
        match next_replay(&trace) {
            Some(next) => replay = next,
            None => {
                complete = true;
                break;
            }
        }
    }

    if failure.is_none() {
        let mut seed = config.seed | 1;
        for round in 0..config.random_schedules {
            // Decorrelate rounds: each gets its own generator state.
            seed = seed
                .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                .wrapping_add(round as u64);
            let driver = Driver::Random { state: seed | 1 };
            let (trace, failed) = run_one(config, driver, &f);
            schedules += 1;
            if let Some(message) = failed {
                failure = Some(Failure {
                    message,
                    trace: trace.iter().map(|decision| decision.chosen).collect(),
                });
                break;
            }
        }
    }

    Outcome {
        schedules,
        complete,
        failure,
    }
}

/// Like [`explore`], but panics with the failing schedule if one is found —
/// the assertion form model tests use.
pub fn check<F: Fn()>(config: &Config, f: F) -> Outcome {
    let outcome = explore(config, f);
    if let Some(failure) = &outcome.failure {
        panic!(
            "interleave: schedule {} of {} failed: {}\nreplay trace: {:?}",
            outcome.schedules, outcome.schedules, failure.message, failure.trace
        );
    }
    outcome
}
