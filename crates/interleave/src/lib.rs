//! A miniature deterministic-schedule explorer for the repo's lock-step
//! concurrency protocols, in the spirit of `loom` and CHESS but dependency-
//! free and scoped to exactly what march-codex needs.
//!
//! # How it fits together
//!
//! The [`sync`], [`thread`] and [`time`] modules mirror the `std` APIs the
//! protocols under test use (`Mutex`, `Condvar`, atomics, `mpsc` channels,
//! spawning, scoped threads, `Instant`). Crates that want their protocols
//! model-checked import those primitives through a local `sync` façade module
//! that re-exports `std` in normal builds and this crate's instrumented
//! versions under `--cfg interleave` — production code paths are untouched
//! unless the cfg is on.
//!
//! A model test calls [`check`] (or [`explore`]) with a closure that builds
//! the protocol state *inside the closure*, runs a handful of threads over
//! it, and asserts the invariant. The explorer runs the closure under many
//! schedules:
//!
//! * a bounded-exhaustive DFS over every scheduling decision, with a
//!   CHESS-style preemption bound pruning the space to the schedules that
//!   empirically find nearly all bugs;
//! * a seeded random phase sampling deeper interleavings past the DFS budget,
//!   reproducible from the seed.
//!
//! Assertion failures, deadlocks (including lost wakeups, which present as
//! deadlocks) and livelocks are reported with the decision trace that
//! reproduces them.
//!
//! # Example
//!
//! ```
//! use interleave::{check, Config};
//! use interleave::sync::{Arc, Mutex};
//! use interleave::thread;
//!
//! check(&Config::default(), || {
//!     let counter = Arc::new(Mutex::new(0u32));
//!     let worker = {
//!         let counter = Arc::clone(&counter);
//!         thread::spawn(move || {
//!             *counter.lock().unwrap_or_else(|poisoned| poisoned.into_inner()) += 1;
//!         })
//!     };
//!     *counter.lock().unwrap_or_else(|poisoned| poisoned.into_inner()) += 1;
//!     worker.join().expect("worker panicked");
//!     let total = *counter.lock().unwrap_or_else(|poisoned| poisoned.into_inner());
//!     assert_eq!(total, 2);
//! });
//! ```

#![forbid(unsafe_code)]

mod scheduler;
pub mod sync;
pub mod thread;
pub mod time;

pub use scheduler::{check, explore, Config, Failure, Outcome};
