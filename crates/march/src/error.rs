//! Errors produced while parsing or building march tests.

use std::error::Error;
use std::fmt;

/// Error returned when a march test, element or address order cannot be parsed or
/// assembled.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ParseMarchError {
    /// The address-order marker is unknown (expected `⇑`, `⇓`, `⇕` or an ASCII
    /// equivalent).
    UnknownAddressOrder(String),
    /// A memory operation inside an element could not be parsed.
    InvalidOperation(String),
    /// A march element is syntactically malformed (missing parentheses, …).
    MalformedElement(String),
    /// A march element contains no operations.
    EmptyElement,
    /// A march test contains no elements.
    EmptyTest,
}

impl fmt::Display for ParseMarchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseMarchError::UnknownAddressOrder(text) => {
                write!(f, "unknown address order `{text}`")
            }
            ParseMarchError::InvalidOperation(text) => {
                write!(f, "invalid memory operation `{text}`")
            }
            ParseMarchError::MalformedElement(text) => {
                write!(f, "malformed march element `{text}`")
            }
            ParseMarchError::EmptyElement => write!(f, "march element contains no operations"),
            ParseMarchError::EmptyTest => write!(f, "march test contains no elements"),
        }
    }
}

impl Error for ParseMarchError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_non_empty_and_lowercase() {
        for err in [
            ParseMarchError::UnknownAddressOrder("x".into()),
            ParseMarchError::InvalidOperation("w2".into()),
            ParseMarchError::MalformedElement("(w0".into()),
            ParseMarchError::EmptyElement,
            ParseMarchError::EmptyTest,
        ] {
            let text = err.to_string();
            assert!(!text.is_empty());
            assert!(text.chars().next().unwrap().is_lowercase());
        }
    }

    #[test]
    fn is_std_error() {
        fn assert_error<E: Error + Send + Sync + 'static>() {}
        assert_error::<ParseMarchError>();
    }
}
