//! March elements: a sequence of operations applied to every cell in one address
//! order.

use std::fmt;
use std::str::FromStr;

use sram_fault_model::{Bit, Operation};

use crate::{AddressOrder, ParseMarchError};

/// A march element: a non-empty sequence of memory operations applied to every
/// memory cell, visiting the cells in a given [`AddressOrder`].
///
/// # Examples
///
/// ```
/// use march_test::{AddressOrder, MarchElement};
/// use sram_fault_model::Operation;
///
/// let element: MarchElement = "⇑(r0,w1)".parse()?;
/// assert_eq!(element.order(), AddressOrder::Ascending);
/// assert_eq!(element.operations(), &[Operation::R0, Operation::W1]);
/// assert_eq!(element.len(), 2);
/// assert_eq!(element.to_string(), "⇑(r0,w1)");
/// # Ok::<(), march_test::ParseMarchError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct MarchElement {
    order: AddressOrder,
    operations: Vec<Operation>,
}

impl MarchElement {
    /// Creates a march element from an address order and its operations.
    ///
    /// # Errors
    ///
    /// Returns [`ParseMarchError::EmptyElement`] if `operations` is empty.
    pub fn new(
        order: AddressOrder,
        operations: Vec<Operation>,
    ) -> Result<MarchElement, ParseMarchError> {
        if operations.is_empty() {
            return Err(ParseMarchError::EmptyElement);
        }
        Ok(MarchElement { order, operations })
    }

    /// Convenience constructor for the ubiquitous initialisation element `⇕(w0)`.
    #[must_use]
    pub fn initialise(value: Bit) -> MarchElement {
        MarchElement {
            order: AddressOrder::Any,
            operations: vec![Operation::Write(value)],
        }
    }

    /// The address order of the element.
    #[must_use]
    pub fn order(&self) -> AddressOrder {
        self.order
    }

    /// The operations applied to each cell, in application order.
    #[must_use]
    pub fn operations(&self) -> &[Operation] {
        &self.operations
    }

    /// The number of operations per cell (the element's contribution to the `Xn`
    /// complexity of the march test).
    #[must_use]
    pub fn len(&self) -> usize {
        self.operations.len()
    }

    /// Always `false`: elements are non-empty by construction.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.operations.is_empty()
    }

    /// Returns a copy of the element with the opposite address order.
    #[must_use]
    pub fn reversed(&self) -> MarchElement {
        MarchElement {
            order: self.order.reversed(),
            operations: self.operations.clone(),
        }
    }

    /// Returns a copy of the element with every data value complemented
    /// (`w0 ↔ w1`, `r0 ↔ r1`); useful when exploiting the data-background symmetry
    /// of march tests.
    #[must_use]
    pub fn complemented(&self) -> MarchElement {
        MarchElement {
            order: self.order,
            operations: self
                .operations
                .iter()
                .map(|op| match op {
                    Operation::Write(bit) => Operation::Write(bit.flipped()),
                    Operation::Read(Some(bit)) => Operation::Read(Some(bit.flipped())),
                    other => *other,
                })
                .collect(),
        }
    }

    /// Returns `true` if the element contains at least one read operation (and can
    /// therefore observe faults).
    #[must_use]
    pub fn observes(&self) -> bool {
        self.operations.iter().any(|op| op.is_read())
    }
}

impl fmt::Display for MarchElement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.order)?;
        for (index, op) in self.operations.iter().enumerate() {
            if index > 0 {
                write!(f, ",")?;
            }
            write!(f, "{op}")?;
        }
        write!(f, ")")
    }
}

impl FromStr for MarchElement {
    type Err = ParseMarchError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let text = s.trim();
        let open = text
            .find('(')
            .ok_or_else(|| ParseMarchError::MalformedElement(text.to_string()))?;
        if !text.ends_with(')') {
            return Err(ParseMarchError::MalformedElement(text.to_string()));
        }
        let order: AddressOrder = text[..open].trim().parse()?;
        let body = &text[open + 1..text.len() - 1];
        let operations = body
            .split([',', ';'])
            .map(str::trim)
            .filter(|token| !token.is_empty())
            .map(|token| {
                token
                    .parse::<Operation>()
                    .map_err(|_| ParseMarchError::InvalidOperation(token.to_string()))
            })
            .collect::<Result<Vec<_>, _>>()?;
        MarchElement::new(order, operations)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_requires_operations() {
        assert_eq!(
            MarchElement::new(AddressOrder::Ascending, vec![]).unwrap_err(),
            ParseMarchError::EmptyElement
        );
        let element =
            MarchElement::new(AddressOrder::Descending, vec![Operation::R1, Operation::W0])
                .unwrap();
        assert_eq!(element.len(), 2);
        assert!(!element.is_empty());
        assert!(element.observes());
    }

    #[test]
    fn initialise_element() {
        let init = MarchElement::initialise(Bit::Zero);
        assert_eq!(init.to_string(), "⇕(w0)");
        assert!(!init.observes());
    }

    #[test]
    fn parse_variants() {
        let unicode: MarchElement = "⇓(r1,w0,r0)".parse().unwrap();
        assert_eq!(unicode.order(), AddressOrder::Descending);
        assert_eq!(unicode.len(), 3);

        let ascii: MarchElement = "up(r0, w1)".parse().unwrap();
        assert_eq!(ascii.order(), AddressOrder::Ascending);
        assert_eq!(ascii.operations(), &[Operation::R0, Operation::W1]);

        let any: MarchElement = "c(w0)".parse().unwrap();
        assert_eq!(any.order(), AddressOrder::Any);

        assert!("".parse::<MarchElement>().is_err());
        assert!("⇑r0".parse::<MarchElement>().is_err());
        assert!("⇑()".parse::<MarchElement>().is_err());
        assert!("⇑(q9)".parse::<MarchElement>().is_err());
        assert!("sideways(r0)".parse::<MarchElement>().is_err());
    }

    #[test]
    fn display_round_trip() {
        for text in ["⇑(r0,w1)", "⇓(r1,r1,w1,r1,w0,w0,r0)", "⇕(w0)"] {
            let element: MarchElement = text.parse().unwrap();
            assert_eq!(element.to_string(), text);
        }
    }

    #[test]
    fn reversed_and_complemented() {
        let element: MarchElement = "⇑(r0,w1)".parse().unwrap();
        assert_eq!(element.reversed().to_string(), "⇓(r0,w1)");
        assert_eq!(element.complemented().to_string(), "⇑(r1,w0)");
        let wait: MarchElement = "⇕(t,r0)".parse().unwrap();
        assert_eq!(wait.complemented().to_string(), "⇕(t,r1)");
    }
}
