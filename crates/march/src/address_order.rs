//! Address orders of march elements.

use std::fmt;
use std::str::FromStr;

use crate::ParseMarchError;

/// The address order of a march element (Definition 10 of the paper).
///
/// * [`Ascending`](AddressOrder::Ascending) (`⇑`) visits the cells from the lowest
///   address to the highest;
/// * [`Descending`](AddressOrder::Descending) (`⇓`) visits them from the highest to
///   the lowest;
/// * [`Any`](AddressOrder::Any) (`⇕`, written `c` in the paper's Table 1) allows
///   either order; implementations conventionally use the ascending one.
///
/// # Examples
///
/// ```
/// use march_test::AddressOrder;
///
/// assert_eq!("⇑".parse::<AddressOrder>()?, AddressOrder::Ascending);
/// assert_eq!("d".parse::<AddressOrder>()?, AddressOrder::Descending);
/// assert_eq!(AddressOrder::Any.symbol(), "⇕");
/// assert_eq!(AddressOrder::Descending.reversed(), AddressOrder::Ascending);
/// # Ok::<(), march_test::ParseMarchError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum AddressOrder {
    /// Visit cells from address `0` upwards (`⇑`).
    Ascending,
    /// Visit cells from the highest address downwards (`⇓`).
    Descending,
    /// Either order is acceptable (`⇕` / `c`).
    #[default]
    Any,
}

impl AddressOrder {
    /// All three address orders.
    pub const ALL: [AddressOrder; 3] = [
        AddressOrder::Ascending,
        AddressOrder::Descending,
        AddressOrder::Any,
    ];

    /// The Unicode symbol of the order (`⇑`, `⇓`, `⇕`).
    #[must_use]
    pub const fn symbol(self) -> &'static str {
        match self {
            AddressOrder::Ascending => "⇑",
            AddressOrder::Descending => "⇓",
            AddressOrder::Any => "⇕",
        }
    }

    /// A plain-ASCII marker (`up`, `down`, `any`), useful for machine-readable
    /// output.
    #[must_use]
    pub const fn ascii(self) -> &'static str {
        match self {
            AddressOrder::Ascending => "up",
            AddressOrder::Descending => "down",
            AddressOrder::Any => "any",
        }
    }

    /// The opposite order; [`AddressOrder::Any`] is its own opposite.
    #[must_use]
    pub const fn reversed(self) -> AddressOrder {
        match self {
            AddressOrder::Ascending => AddressOrder::Descending,
            AddressOrder::Descending => AddressOrder::Ascending,
            AddressOrder::Any => AddressOrder::Any,
        }
    }

    /// Returns `true` if a march element with this order may legally be executed by
    /// visiting addresses in ascending order.
    #[must_use]
    pub const fn allows_ascending(self) -> bool {
        matches!(self, AddressOrder::Ascending | AddressOrder::Any)
    }

    /// Returns `true` if a march element with this order may legally be executed by
    /// visiting addresses in descending order.
    #[must_use]
    pub const fn allows_descending(self) -> bool {
        matches!(self, AddressOrder::Descending | AddressOrder::Any)
    }

    /// The concrete sequence of cell addresses visited by an element with this order
    /// on a memory of `cells` cells ([`AddressOrder::Any`] uses the ascending
    /// sequence).
    #[must_use]
    pub fn addresses(self, cells: usize) -> Vec<usize> {
        match self {
            AddressOrder::Ascending | AddressOrder::Any => (0..cells).collect(),
            AddressOrder::Descending => (0..cells).rev().collect(),
        }
    }
}

impl fmt::Display for AddressOrder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.symbol())
    }
}

impl FromStr for AddressOrder {
    type Err = ParseMarchError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.trim() {
            "⇑" | "up" | "u" | "^" | "UP" | "U" | "asc" | "ascending" => {
                Ok(AddressOrder::Ascending)
            }
            "⇓" | "down" | "d" | "DOWN" | "D" | "desc" | "descending" => {
                Ok(AddressOrder::Descending)
            }
            "⇕" | "any" | "c" | "C" | "b" | "ANY" => Ok(AddressOrder::Any),
            other => Err(ParseMarchError::UnknownAddressOrder(other.to_string())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn symbols_round_trip() {
        for order in AddressOrder::ALL {
            assert_eq!(order.symbol().parse::<AddressOrder>().unwrap(), order);
            assert_eq!(order.ascii().parse::<AddressOrder>().unwrap(), order);
        }
        assert!("sideways".parse::<AddressOrder>().is_err());
    }

    #[test]
    fn paper_table_marker_c_is_any() {
        assert_eq!("c".parse::<AddressOrder>().unwrap(), AddressOrder::Any);
    }

    #[test]
    fn reversal() {
        assert_eq!(AddressOrder::Ascending.reversed(), AddressOrder::Descending);
        assert_eq!(AddressOrder::Descending.reversed(), AddressOrder::Ascending);
        assert_eq!(AddressOrder::Any.reversed(), AddressOrder::Any);
    }

    #[test]
    fn address_sequences() {
        assert_eq!(AddressOrder::Ascending.addresses(3), vec![0, 1, 2]);
        assert_eq!(AddressOrder::Descending.addresses(3), vec![2, 1, 0]);
        assert_eq!(AddressOrder::Any.addresses(2), vec![0, 1]);
        assert!(AddressOrder::Ascending.addresses(0).is_empty());
    }

    #[test]
    fn execution_permissions() {
        assert!(AddressOrder::Any.allows_ascending());
        assert!(AddressOrder::Any.allows_descending());
        assert!(AddressOrder::Ascending.allows_ascending());
        assert!(!AddressOrder::Ascending.allows_descending());
        assert!(!AddressOrder::Descending.allows_ascending());
    }
}
