//! March tests: named sequences of march elements.

use std::fmt;

use sram_fault_model::{Bit, Operation};

use crate::{AddressOrder, MarchElement, ParseMarchError};

/// A march test (Definition 10 of the paper): a named, ordered sequence of
/// [`MarchElement`]s.
///
/// The *complexity* of a march test is the total number of operations applied to
/// each cell; a test of complexity `k` is conventionally referred to as a "`k`·n"
/// test because it performs `k · n` operations on an `n`-cell memory.
///
/// # Examples
///
/// ```
/// use march_test::MarchTest;
///
/// let march_c = MarchTest::parse(
///     "March C-",
///     "⇕(w0); ⇑(r0,w1); ⇑(r1,w0); ⇓(r0,w1); ⇓(r1,w0); ⇕(r0)",
/// )?;
/// assert_eq!(march_c.complexity(), 10);
/// assert_eq!(march_c.operation_count(1024), 10 * 1024);
/// # Ok::<(), march_test::ParseMarchError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct MarchTest {
    name: String,
    elements: Vec<MarchElement>,
}

impl MarchTest {
    /// Creates a march test from its elements.
    ///
    /// # Errors
    ///
    /// Returns [`ParseMarchError::EmptyTest`] if `elements` is empty.
    pub fn new(
        name: impl Into<String>,
        elements: Vec<MarchElement>,
    ) -> Result<MarchTest, ParseMarchError> {
        if elements.is_empty() {
            return Err(ParseMarchError::EmptyTest);
        }
        Ok(MarchTest {
            name: name.into(),
            elements,
        })
    }

    /// Parses a march test from the standard notation, e.g.
    /// `"⇕(w0); ⇑(r0,w1); ⇓(r1,w0)"`. Elements are separated by `;` (outside
    /// parentheses) or whitespace between closing and opening parentheses.
    ///
    /// # Errors
    ///
    /// Propagates element parse errors and returns [`ParseMarchError::EmptyTest`]
    /// when no element is found.
    pub fn parse(name: impl Into<String>, text: &str) -> Result<MarchTest, ParseMarchError> {
        let mut elements = Vec::new();
        let mut current = String::new();
        let mut depth = 0usize;
        for c in text.chars() {
            match c {
                '(' => {
                    depth += 1;
                    current.push(c);
                }
                ')' => {
                    depth = depth.saturating_sub(1);
                    current.push(c);
                    if depth == 0 {
                        let token = current.trim();
                        if !token.is_empty() {
                            elements.push(token.parse::<MarchElement>()?);
                        }
                        current.clear();
                    }
                }
                ';' if depth == 0 => {
                    // Separator between elements; the element was already flushed at
                    // its closing parenthesis.
                    current.clear();
                }
                _ => current.push(c),
            }
        }
        if !current.trim().is_empty() {
            return Err(ParseMarchError::MalformedElement(
                current.trim().to_string(),
            ));
        }
        MarchTest::new(name, elements)
    }

    /// The test's name (e.g. `"March SL"`).
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Returns a copy of the test under a different name.
    #[must_use]
    pub fn with_name(&self, name: impl Into<String>) -> MarchTest {
        MarchTest {
            name: name.into(),
            elements: self.elements.clone(),
        }
    }

    /// The march elements in application order.
    #[must_use]
    pub fn elements(&self) -> &[MarchElement] {
        &self.elements
    }

    /// The complexity coefficient: total operations applied to each cell
    /// (the `k` of a "`k`·n" test).
    #[must_use]
    pub fn complexity(&self) -> usize {
        self.elements.iter().map(MarchElement::len).sum()
    }

    /// Total number of memory operations performed on an `cells`-cell memory.
    #[must_use]
    pub fn operation_count(&self, cells: usize) -> usize {
        self.complexity() * cells
    }

    /// Number of read operations per cell (observability budget of the test).
    #[must_use]
    pub fn read_count(&self) -> usize {
        self.elements
            .iter()
            .flat_map(|element| element.operations())
            .filter(|op| op.is_read())
            .count()
    }

    /// The complexity expressed in the conventional `"<k>n"` form, e.g. `"41n"`.
    #[must_use]
    pub fn complexity_label(&self) -> String {
        format!("{}n", self.complexity())
    }

    /// Iterates over `(element index, element)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &MarchElement)> {
        self.elements.iter().enumerate()
    }

    /// Returns a copy of the test with every data value complemented
    /// (`w0 ↔ w1`, `r0 ↔ r1`).
    #[must_use]
    pub fn complemented(&self) -> MarchTest {
        MarchTest {
            name: format!("{} (complemented)", self.name),
            elements: self
                .elements
                .iter()
                .map(MarchElement::complemented)
                .collect(),
        }
    }

    /// The notation of the test without its name, e.g. `"⇕(w0); ⇑(r0,w1)"`.
    #[must_use]
    pub fn notation(&self) -> String {
        self.elements
            .iter()
            .map(MarchElement::to_string)
            .collect::<Vec<_>>()
            .join("; ")
    }
}

impl fmt::Display for MarchTest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.name, self.notation())
    }
}

/// Incremental builder for march tests, convenient for generators.
///
/// # Examples
///
/// ```
/// use march_test::{AddressOrder, MarchTestBuilder};
/// use sram_fault_model::{Bit, Operation};
///
/// let test = MarchTestBuilder::new("example")
///     .initialise(Bit::Zero)
///     .element(AddressOrder::Ascending, [Operation::R0, Operation::W1])?
///     .element(AddressOrder::Descending, [Operation::R1, Operation::W0])?
///     .build()?;
/// assert_eq!(test.complexity(), 5);
/// # Ok::<(), march_test::ParseMarchError>(())
/// ```
#[derive(Debug, Clone)]
pub struct MarchTestBuilder {
    name: String,
    elements: Vec<MarchElement>,
}

impl MarchTestBuilder {
    /// Starts building a march test with the given name.
    #[must_use]
    pub fn new(name: impl Into<String>) -> MarchTestBuilder {
        MarchTestBuilder {
            name: name.into(),
            elements: Vec::new(),
        }
    }

    /// Appends the initialisation element `⇕(w<value>)`.
    #[must_use]
    pub fn initialise(mut self, value: Bit) -> MarchTestBuilder {
        self.elements.push(MarchElement::initialise(value));
        self
    }

    /// Appends an element from an address order and operations.
    ///
    /// # Errors
    ///
    /// Returns [`ParseMarchError::EmptyElement`] if no operation is supplied.
    pub fn element(
        mut self,
        order: AddressOrder,
        operations: impl IntoIterator<Item = Operation>,
    ) -> Result<MarchTestBuilder, ParseMarchError> {
        let element = MarchElement::new(order, operations.into_iter().collect())?;
        self.elements.push(element);
        Ok(self)
    }

    /// Appends an already built element.
    #[must_use]
    pub fn push(mut self, element: MarchElement) -> MarchTestBuilder {
        self.elements.push(element);
        self
    }

    /// Number of elements added so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.elements.len()
    }

    /// Returns `true` if no element has been added yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.elements.is_empty()
    }

    /// Finalises the march test.
    ///
    /// # Errors
    ///
    /// Returns [`ParseMarchError::EmptyTest`] if no element was added.
    pub fn build(self) -> Result<MarchTest, ParseMarchError> {
        MarchTest::new(self.name, self.elements)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn complexity_of_known_tests() {
        let mats = MarchTest::parse("MATS+", "⇕(w0); ⇑(r0,w1); ⇓(r1,w0)").unwrap();
        assert_eq!(mats.complexity(), 5);
        assert_eq!(mats.complexity_label(), "5n");
        assert_eq!(mats.operation_count(16), 80);
        assert_eq!(mats.read_count(), 2);
        assert_eq!(mats.elements().len(), 3);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert_eq!(
            MarchTest::parse("empty", "").unwrap_err(),
            ParseMarchError::EmptyTest
        );
        assert!(MarchTest::parse("bad", "⇑(r0,w1); trailing").is_err());
        assert!(MarchTest::parse("bad", "⇑(zz)").is_err());
    }

    #[test]
    fn parse_accepts_whitespace_separated_elements() {
        let test = MarchTest::parse("t", "c(w0) ⇑(r0,w1) ⇓(r1,w0)").unwrap();
        assert_eq!(test.elements().len(), 3);
        assert_eq!(test.complexity(), 5);
    }

    #[test]
    fn display_round_trip() {
        let text = "⇕(w0); ⇑(r0,r0,w0,r0,w1,w1,r1); ⇓(r1,w0)";
        let test = MarchTest::parse("X", text).unwrap();
        assert_eq!(test.notation(), text);
        assert_eq!(test.to_string(), format!("X: {text}"));
        let reparsed = MarchTest::parse("X", &test.notation()).unwrap();
        assert_eq!(reparsed, test);
    }

    #[test]
    fn builder() {
        let test = MarchTestBuilder::new("b")
            .initialise(Bit::Zero)
            .element(AddressOrder::Ascending, [Operation::R0, Operation::W1])
            .unwrap()
            .build()
            .unwrap();
        assert_eq!(test.complexity(), 3);
        assert!(MarchTestBuilder::new("e").build().is_err());
        assert!(MarchTestBuilder::new("e").is_empty());
    }

    #[test]
    fn complemented_swaps_polarities() {
        let test = MarchTest::parse("t", "⇕(w0); ⇑(r0,w1)").unwrap();
        assert_eq!(test.complemented().notation(), "⇕(w1); ⇑(r1,w0)");
    }

    #[test]
    fn with_name_preserves_elements() {
        let test = MarchTest::parse("a", "⇕(w0)").unwrap();
        let renamed = test.with_name("b");
        assert_eq!(renamed.name(), "b");
        assert_eq!(renamed.elements(), test.elements());
    }
}
