//! Catalogue of published march tests.
//!
//! The catalogue contains the classic march tests referenced by the DATE 2006 paper
//! and its comparison table: the simple-fault tests (MATS+, March C-, March SS), the
//! linked-fault tests of the literature (March LA, March LR, March SL, March LF1,
//! the automatically generated 43n test of Al-Harbi/Gupta) and the three march
//! tests produced by the paper itself (March ABL, March RABL, March ABL1, transcribed
//! verbatim from Table 1).
//!
//! Element sequences are taken from the respective publications where available;
//! the entries marked *reconstructed* in their documentation preserve the published
//! complexity (which is what the paper's comparison columns use) but their exact
//! element sequence was not available and has been re-derived.
//!
//! # Examples
//!
//! ```
//! use march_test::catalog;
//!
//! assert_eq!(catalog::march_sl().complexity(), 41);
//! assert_eq!(catalog::march_abl().complexity(), 37);
//! assert_eq!(catalog::march_rabl().complexity(), 35);
//! assert_eq!(catalog::march_abl1().complexity(), 9);
//! assert!(catalog::all().len() >= 11);
//! ```

use crate::MarchTest;

fn parse(name: &str, notation: &str) -> MarchTest {
    MarchTest::parse(name, notation).expect("catalogue notation is valid")
}

/// MATS (4n): the minimal march test, targeting stuck-at faults only.
#[must_use]
pub fn mats() -> MarchTest {
    parse("MATS", "⇕(w0); ⇕(r0,w1); ⇕(r1)")
}

/// MATS+ (5n): the minimal test for stuck-at and address-decoder faults.
#[must_use]
pub fn mats_plus() -> MarchTest {
    parse("MATS+", "⇕(w0); ⇑(r0,w1); ⇓(r1,w0)")
}

/// March X (6n): MATS+ extended with a final read pass; targets unlinked inversion
/// coupling faults.
#[must_use]
pub fn march_x() -> MarchTest {
    parse("March X", "⇕(w0); ⇑(r0,w1); ⇓(r1,w0); ⇕(r0)")
}

/// March Y (8n): March X with read-after-write observations, targeting transition
/// faults linked with inversion coupling faults.
#[must_use]
pub fn march_y() -> MarchTest {
    parse("March Y", "⇕(w0); ⇑(r0,w1,r1); ⇓(r1,w0,r0); ⇕(r0)")
}

/// March A (15n): the classic test for unlinked idempotent coupling faults
/// (Suk & Reddy, 1981 — reference \[6\] of the paper).
#[must_use]
pub fn march_a() -> MarchTest {
    parse(
        "March A",
        "⇕(w0); ⇑(r0,w1,w0,w1); ⇑(r1,w0,w1); ⇓(r1,w0,w1,w0); ⇓(r0,w1,w0)",
    )
}

/// March B (17n): March A extended to linked transition/coupling faults
/// (Suk & Reddy, 1981 — reference \[6\] of the paper).
#[must_use]
pub fn march_b() -> MarchTest {
    parse(
        "March B",
        "⇕(w0); ⇑(r0,w1,r1,w0,r0,w1); ⇑(r1,w0,w1); ⇓(r1,w0,w1,w0); ⇓(r0,w1,w0)",
    )
}

/// March U (13n): a test for unlinked coupling faults with improved diagnosis
/// properties.
#[must_use]
pub fn march_u() -> MarchTest {
    parse(
        "March U",
        "⇕(w0); ⇑(r0,w1,r1,w0); ⇑(r0,w1); ⇓(r1,w0,r0,w1); ⇓(r1,w0)",
    )
}

/// PMOVI (13n): the "Pattern-sensitive MOVI" style march, popular in industrial
/// flows for its diagnosis-friendly read-after-write structure.
#[must_use]
pub fn pmovi() -> MarchTest {
    parse(
        "PMOVI",
        "⇓(w0); ⇑(r0,w1,r1); ⇑(r1,w0,r0); ⇓(r0,w1,r1); ⇓(r1,w0,r0)",
    )
}

/// March C- (10n): the classic test for unlinked coupling faults.
#[must_use]
pub fn march_c_minus() -> MarchTest {
    parse(
        "March C-",
        "⇕(w0); ⇑(r0,w1); ⇑(r1,w0); ⇓(r0,w1); ⇓(r1,w0); ⇕(r0)",
    )
}

/// March SS (22n): the test covering all *unlinked* realistic static faults
/// (Hamdioui, Al-Ars, van de Goor, 2002).
#[must_use]
pub fn march_ss() -> MarchTest {
    parse(
        "March SS",
        "⇕(w0); ⇑(r0,r0,w0,r0,w1); ⇑(r1,r1,w1,r1,w0); ⇓(r0,r0,w0,r0,w1); ⇓(r1,r1,w1,r1,w0); ⇕(r0)",
    )
}

/// March LR (14n): an early test for realistic linked faults
/// (van de Goor, Gaydadjiev, Yarmolik, Mikitjuk, VTS 1996).
#[must_use]
pub fn march_lr() -> MarchTest {
    parse(
        "March LR",
        "⇕(w0); ⇓(r0,w1); ⇑(r1,w0,r0,w1); ⇑(r1,w0); ⇑(r0,w1,r1,w0); ⇑(r0)",
    )
}

/// March LA (22n): a test for linked memory faults
/// (van de Goor, Gaydadjiev, Yarmolik, Mikitjuk, ED&TC 1997).
#[must_use]
pub fn march_la() -> MarchTest {
    parse(
        "March LA",
        "⇕(w0); ⇑(r0,w1,w0,w1,r1); ⇑(r1,w0,w1,w0,r0); ⇓(r0,w1,w0,w1,r1); ⇓(r1,w0,w1,w0,r0); ⇓(r0)",
    )
}

/// March SL (41n): the hand-made state-of-the-art test for **all** static linked
/// faults (Hamdioui, Al-Ars, van de Goor, Rodgers, ATS 2003), used as the main
/// comparison baseline of the paper's Table 1.
#[must_use]
pub fn march_sl() -> MarchTest {
    parse(
        "March SL",
        "⇕(w0); \
         ⇑(r0,r0,w1,w1,r1,r1,w0,w0,r0,w1); \
         ⇑(r1,r1,w0,w0,r0,r0,w1,w1,r1,w0); \
         ⇓(r0,r0,w1,w1,r1,r1,w0,w0,r0,w1); \
         ⇓(r1,r1,w0,w0,r0,r0,w1,w1,r1,w0)",
    )
}

/// March LF1 (11n): the classic test for the *single-cell* static linked faults
/// (Hamdioui, Al-Ars, van de Goor, MTDT 2003), baseline of the paper's Fault List
/// #2 comparison.
///
/// The exact element sequence of the original publication was not available when
/// this catalogue was assembled; the sequence below is *reconstructed* to target the
/// same fault class with the published 11n complexity.
#[must_use]
pub fn march_lf1() -> MarchTest {
    parse("March LF1", "⇕(w0); ⇕(r0,w0,r0,r0,w1); ⇕(r1,w1,r1,r1,w0)")
}

/// The 43n march test of Al-Harbi and Gupta (VTS 2003): the only previously
/// published *automatically generated* march test for linked faults, covering a
/// reduced subset of the paper's Fault List #1.
///
/// The exact element sequence of the original publication was not available when
/// this catalogue was assembled; the sequence below is *reconstructed* with the
/// published 43n complexity (the comparison column of Table 1 only uses the
/// complexity).
#[must_use]
pub fn test_43n() -> MarchTest {
    parse(
        "43n March Test",
        "⇕(w0); \
         ⇑(r0,r0,w1,r1,r1,w0,r0,w1,w1,r1); \
         ⇑(r1,r1,w0,r0,r0,w1,r1,w0,w0,r0); \
         ⇓(r0,r0,w1,r1,r1,w0,r0,w1,w1,r1); \
         ⇓(r1,r1,w0,r0,r0,w1,r1,w0,w0,r0); \
         ⇕(r0,w0)",
    )
}

/// March ABL (37n): generated by the paper for Fault List #1 (Table 1, row 1),
/// transcribed verbatim.
#[must_use]
pub fn march_abl() -> MarchTest {
    parse(
        "March ABL",
        "⇕(w0); \
         ⇑(r0,r0,w0,r0,w1,w1,r1); ⇑(r1,r1,w1,r1,w0,w0,r0); \
         ⇓(r0,w1); ⇓(r1,w0); \
         ⇓(r0,r0,w0,r0,w1,w1,r1); ⇓(r1,r1,w1,r1,w0,w0,r0); \
         ⇑(r0,w1); ⇑(r1,w0)",
    )
}

/// March RABL (35n): the reduced variant generated by the paper for Fault List #1
/// (Table 1, row 2), transcribed verbatim.
#[must_use]
pub fn march_rabl() -> MarchTest {
    parse(
        "March RABL",
        "⇕(w0); \
         ⇑(r0,r0,w0,r0); ⇑(r0,w1,r1,r1,w1,r1,w0,r0); ⇑(r0,w1); \
         ⇓(r1,r1,w1,r1,w0,r0,w0,r0); \
         ⇑(w1); ⇑(r1,r1,w1,r1,w0,r0,r0,w0,r0,w1,r1)",
    )
}

/// March ABL1 (9n): generated by the paper for Fault List #2 (Table 1, row 3),
/// transcribed verbatim.
#[must_use]
pub fn march_abl1() -> MarchTest {
    parse("March ABL1", "⇕(w0); ⇕(w0,r0,r0,w1); ⇕(w1,r1,r1,w0)")
}

/// Every test of the catalogue, in increasing complexity order.
#[must_use]
pub fn all() -> Vec<MarchTest> {
    let mut tests = vec![
        mats(),
        mats_plus(),
        march_x(),
        march_y(),
        march_c_minus(),
        march_u(),
        pmovi(),
        march_a(),
        march_b(),
        march_ss(),
        march_lr(),
        march_la(),
        march_sl(),
        march_lf1(),
        test_43n(),
        march_abl(),
        march_rabl(),
        march_abl1(),
    ];
    tests.sort_by_key(MarchTest::complexity);
    tests
}

/// Looks a catalogue test up by (case-insensitive) name.
#[must_use]
pub fn by_name(name: &str) -> Option<MarchTest> {
    all()
        .into_iter()
        .find(|test| test.name().eq_ignore_ascii_case(name.trim()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn published_complexities() {
        assert_eq!(mats().complexity(), 4);
        assert_eq!(march_x().complexity(), 6);
        assert_eq!(march_y().complexity(), 8);
        assert_eq!(march_a().complexity(), 15);
        assert_eq!(march_b().complexity(), 17);
        assert_eq!(march_u().complexity(), 13);
        assert_eq!(pmovi().complexity(), 13);
        assert_eq!(mats_plus().complexity(), 5);
        assert_eq!(march_c_minus().complexity(), 10);
        assert_eq!(march_ss().complexity(), 22);
        assert_eq!(march_lr().complexity(), 14);
        assert_eq!(march_la().complexity(), 22);
        assert_eq!(march_sl().complexity(), 41);
        assert_eq!(march_lf1().complexity(), 11);
        assert_eq!(test_43n().complexity(), 43);
        assert_eq!(march_abl().complexity(), 37);
        assert_eq!(march_rabl().complexity(), 35);
        assert_eq!(march_abl1().complexity(), 9);
    }

    #[test]
    fn table_1_improvements() {
        // The improvement percentages reported in Table 1 follow from the
        // complexities: ABL improves 13.9% over the 43n test and 9.7% over March SL.
        let improvement =
            |ours: usize, theirs: usize| 100.0 * (theirs as f64 - ours as f64) / theirs as f64;
        assert!(
            (improvement(march_abl().complexity(), test_43n().complexity()) - 13.9).abs() < 0.1
        );
        assert!((improvement(march_abl().complexity(), march_sl().complexity()) - 9.7).abs() < 0.1);
        assert!(
            (improvement(march_rabl().complexity(), test_43n().complexity()) - 18.6).abs() < 0.1
        );
        assert!(
            (improvement(march_rabl().complexity(), march_sl().complexity()) - 14.6).abs() < 0.1
        );
        assert!(
            (improvement(march_abl1().complexity(), march_lf1().complexity()) - 18.1).abs() < 0.2
        );
    }

    #[test]
    fn abl_matches_the_paper_notation() {
        let abl = march_abl();
        assert_eq!(abl.elements().len(), 9);
        assert_eq!(abl.elements()[0].to_string(), "⇕(w0)");
        assert_eq!(abl.elements()[1].to_string(), "⇑(r0,r0,w0,r0,w1,w1,r1)");
        assert_eq!(abl.elements()[8].to_string(), "⇑(r1,w0)");
    }

    #[test]
    fn catalogue_is_sorted_and_searchable() {
        let tests = all();
        assert!(tests
            .windows(2)
            .all(|w| w[0].complexity() <= w[1].complexity()));
        assert_eq!(by_name("march sl").unwrap().complexity(), 41);
        assert_eq!(by_name(" MATS+ ").unwrap().complexity(), 5);
        assert!(by_name("nonexistent").is_none());
    }

    #[test]
    fn every_test_observes_both_polarities() {
        use sram_fault_model::Bit;
        for test in all() {
            let reads: Vec<_> = test
                .elements()
                .iter()
                .flat_map(|element| element.operations())
                .filter_map(|op| op.expected_value())
                .collect();
            assert!(reads.contains(&Bit::Zero), "{} never reads 0", test.name());
            assert!(reads.contains(&Bit::One), "{} never reads 1", test.name());
        }
    }
}
