//! Exporting march tests to external formats: ASCII notation, C test routines and
//! Markdown comparison tables.
//!
//! Generated march tests are ultimately consumed by memory BIST controllers or by
//! production test programs; this module renders a [`MarchTest`] into the formats
//! such flows typically start from.

use std::fmt::Write as _;

use sram_fault_model::Operation;

use crate::{AddressOrder, MarchTest};

/// Renders the test in a plain-ASCII notation (`any(w0); up(r0,w1); down(r1,w0)`),
/// convenient for tool flows that cannot ingest the `⇑⇓⇕` arrows.
///
/// # Examples
///
/// ```
/// use march_test::{catalog, export};
///
/// assert_eq!(
///     export::to_ascii(&catalog::mats_plus()),
///     "any(w0); up(r0,w1); down(r1,w0)"
/// );
/// ```
#[must_use]
pub fn to_ascii(test: &MarchTest) -> String {
    test.elements()
        .iter()
        .map(|element| {
            let ops = element
                .operations()
                .iter()
                .map(|op| op.to_string())
                .collect::<Vec<_>>()
                .join(",");
            format!("{}({})", element.order().ascii(), ops)
        })
        .collect::<Vec<_>>()
        .join("; ")
}

/// Renders the test as a self-contained C function operating on a
/// `volatile unsigned char *memory` of `size` cells, returning the number of
/// failing reads — the shape of a software-based memory test routine.
///
/// The generated code uses one loop per march element, ascending or descending
/// according to the element's address order (`⇕` elements use the ascending loop).
#[must_use]
pub fn to_c_function(test: &MarchTest, function_name: &str) -> String {
    let mut code = String::new();
    let _ = writeln!(
        code,
        "/* {} — generated from the march test: {} */",
        function_name,
        to_ascii(test)
    );
    let _ = writeln!(
        code,
        "unsigned long {function_name}(volatile unsigned char *memory, unsigned long size) {{"
    );
    let _ = writeln!(code, "    unsigned long errors = 0;");
    let _ = writeln!(code, "    unsigned long i;");
    for (index, element) in test.iter() {
        let _ = writeln!(code, "    /* element {index}: {element} */");
        let (init, condition, step) = match element.order() {
            AddressOrder::Ascending | AddressOrder::Any => ("0", "i < size", "i++"),
            AddressOrder::Descending => ("size", "i-- > 0", ""),
        };
        if element.order() == AddressOrder::Descending {
            let _ = writeln!(code, "    for (i = {init}; {condition};) {{");
        } else {
            let _ = writeln!(code, "    for (i = {init}; {condition}; {step}) {{");
        }
        for op in element.operations() {
            match op {
                Operation::Write(bit) => {
                    let _ = writeln!(code, "        memory[i] = {};", bit.as_u8());
                }
                Operation::Read(Some(bit)) => {
                    let _ = writeln!(
                        code,
                        "        if (memory[i] != {}) {{ errors++; }}",
                        bit.as_u8()
                    );
                }
                Operation::Read(None) => {
                    let _ = writeln!(code, "        (void)memory[i];");
                }
                Operation::Wait => {
                    let _ = writeln!(code, "        /* retention wait */");
                }
            }
        }
        let _ = writeln!(code, "    }}");
    }
    let _ = writeln!(code, "    return errors;");
    let _ = writeln!(code, "}}");
    code
}

/// Renders a set of march tests as a Markdown comparison table (name, complexity,
/// number of elements, reads per cell, notation) — the shape of the comparison
/// tables used in the memory-testing literature.
#[must_use]
pub fn to_markdown_table(tests: &[MarchTest]) -> String {
    let mut table = String::new();
    table.push_str("| march test | O(n) | elements | reads/cell | notation |\n");
    table.push_str("|---|---|---|---|---|\n");
    for test in tests {
        let _ = writeln!(
            table,
            "| {} | {} | {} | {} | `{}` |",
            test.name(),
            test.complexity_label(),
            test.elements().len(),
            test.read_count(),
            to_ascii(test)
        );
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog;

    #[test]
    fn ascii_round_trips_through_the_parser() {
        for test in catalog::all() {
            let ascii = to_ascii(&test);
            let reparsed = MarchTest::parse(test.name(), &ascii).expect("ascii notation parses");
            assert_eq!(reparsed.notation(), test.notation(), "{}", test.name());
        }
    }

    #[test]
    fn c_export_contains_one_loop_per_element() {
        let code = to_c_function(&catalog::march_c_minus(), "march_c_minus");
        assert_eq!(code.matches("for (").count(), 6);
        assert!(code.contains("unsigned long march_c_minus"));
        assert!(code.contains("memory[i] = 0;"));
        assert!(code.contains("if (memory[i] != 1) { errors++; }"));
        assert!(code.contains("return errors;"));
    }

    #[test]
    fn c_export_handles_descending_and_wait_elements() {
        let test = MarchTest::parse("t", "⇓(r1,w0); ⇕(t,r0); ⇑(r)").unwrap();
        let code = to_c_function(&test, "t");
        assert!(code.contains("for (i = size; i-- > 0;)"));
        assert!(code.contains("retention wait"));
        assert!(code.contains("(void)memory[i];"));
    }

    #[test]
    fn markdown_table_lists_every_test() {
        let tests = catalog::all();
        let table = to_markdown_table(&tests);
        for test in &tests {
            assert!(table.contains(test.name()), "missing {}", test.name());
        }
        assert!(table.lines().count() >= tests.len() + 2);
    }
}
