//! Property-based tests of the march-test crate: notation round-trips and
//! complexity algebra.

use march_test::{catalog, AddressOrder, MarchElement, MarchTest};
use proptest::prelude::*;
use sram_fault_model::Operation;

fn arbitrary_operation() -> impl Strategy<Value = Operation> {
    prop_oneof![
        Just(Operation::W0),
        Just(Operation::W1),
        Just(Operation::R0),
        Just(Operation::R1),
        Just(Operation::Read(None)),
        Just(Operation::Wait),
    ]
}

fn arbitrary_element() -> impl Strategy<Value = MarchElement> {
    (
        prop::sample::select(AddressOrder::ALL.to_vec()),
        prop::collection::vec(arbitrary_operation(), 1..12),
    )
        .prop_map(|(order, ops)| MarchElement::new(order, ops).expect("non-empty"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Element printing and parsing round-trip.
    #[test]
    fn element_notation_round_trips(element in arbitrary_element()) {
        let printed = element.to_string();
        let reparsed: MarchElement = printed.parse().expect("printed notation parses");
        prop_assert_eq!(reparsed, element);
    }

    /// Test printing and parsing round-trip, including the name.
    #[test]
    fn test_notation_round_trips(elements in prop::collection::vec(arbitrary_element(), 1..8)) {
        let test = MarchTest::new("prop", elements).expect("non-empty");
        let reparsed = MarchTest::parse("prop", &test.notation()).expect("parses");
        prop_assert_eq!(&reparsed, &test);
        prop_assert_eq!(reparsed.complexity(), test.complexity());
    }

    /// Reversing an element twice and complementing twice are both identities, and
    /// they preserve the element length.
    #[test]
    fn element_symmetries(element in arbitrary_element()) {
        prop_assert_eq!(element.reversed().reversed(), element.clone());
        prop_assert_eq!(element.complemented().complemented(), element.clone());
        prop_assert_eq!(element.reversed().len(), element.len());
        prop_assert_eq!(element.complemented().len(), element.len());
        prop_assert_eq!(element.complemented().observes(), element.observes());
    }

    /// Complementing a whole test preserves complexity and read count.
    #[test]
    fn test_complement_preserves_counts(elements in prop::collection::vec(arbitrary_element(), 1..6)) {
        let test = MarchTest::new("prop", elements).expect("non-empty");
        let complemented = test.complemented();
        prop_assert_eq!(complemented.complexity(), test.complexity());
        prop_assert_eq!(complemented.read_count(), test.read_count());
        prop_assert_eq!(complemented.elements().len(), test.elements().len());
    }

    /// The address sequences of ⇑ and ⇓ are reverses of each other for any size.
    #[test]
    fn address_orders_are_reverses(cells in 0usize..100) {
        let up = AddressOrder::Ascending.addresses(cells);
        let mut down = AddressOrder::Descending.addresses(cells);
        down.reverse();
        prop_assert_eq!(up, down);
    }
}

#[test]
fn catalogue_round_trips_through_the_parser() {
    for test in catalog::all() {
        let reparsed = MarchTest::parse(test.name(), &test.notation()).expect("catalogue parses");
        assert_eq!(reparsed, test);
    }
}

#[test]
fn catalogue_always_initialises_before_reading() {
    // Every catalogue test begins with a write element so that later expected-value
    // annotations are meaningful.
    for test in catalog::all() {
        let first = &test.elements()[0];
        assert!(
            first.operations()[0].is_write(),
            "{} does not start with a write",
            test.name()
        );
    }
}
