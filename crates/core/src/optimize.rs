//! Redundancy removal: shortening a march test while preserving its coverage.

use std::sync::Arc;

use march_test::{MarchElement, MarchTest, MarchTestBuilder};
use sram_fault_model::FaultList;
use sram_sim::{CoverageLane, PlacementStrategy, Session, SimulationBackend, TargetKind};

use crate::targets::enumerate_target_lanes;
use crate::GeneratorConfig;

/// Removes redundant operations from `test` while preserving complete coverage of
/// `list` under the generation configuration `config`.
///
/// The pass works at operation granularity, scanning from the last operation of the
/// last element towards the front: each operation is tentatively removed (dropping
/// the whole element when it becomes empty) and the shortened test is re-verified
/// with the fault simulator over every `(fault, placement, background)` instance; the
/// removal is kept only if coverage stays complete. This is the step that turns an
/// "ABL"-style greedy result into the shorter "RABL"-style test of the paper's
/// Table 1.
///
/// Each re-verification runs on `config.backend` and shards its fault targets
/// over `config.threads` workers; every target early-exits at its first
/// undetected lane. The minimised test is identical for every backend, batch
/// size and thread count.
///
/// Returns the minimised test and the number of operations removed.
///
/// # Panics
///
/// Panics if `config.memory_cells < 4`.
#[must_use]
pub fn minimise(
    test: &MarchTest,
    list: &FaultList,
    config: &GeneratorConfig,
) -> (MarchTest, usize) {
    minimise_with(&config.session(), test, list, config)
}

/// The session form of [`minimise`]: every removal trial's re-verification
/// shards its fault targets over the session's resident worker pool (the
/// target lanes are snapshotted once, not per trial). The minimised test is
/// byte-identical to [`minimise`] for every backend, batch size and thread
/// count.
#[must_use]
pub fn minimise_with(
    session: &Session,
    test: &MarchTest,
    list: &FaultList,
    config: &GeneratorConfig,
) -> (MarchTest, usize) {
    let targets = enumerate_target_lanes(
        list,
        config.memory_cells,
        config.strategy,
        &config.backgrounds,
    );

    // Nothing to preserve: return the test untouched.
    if targets.is_empty() {
        return (test.clone(), 0);
    }

    let oracle = CoverageOracle::new(session, targets, config.memory_cells);

    // Only minimise tests that are complete to begin with, otherwise "preserving
    // coverage" is ill-defined.
    if !oracle.covers_all(session, test) {
        return (test.clone(), 0);
    }

    let mut elements: Vec<MarchElement> = test.elements().to_vec();
    let mut removed = 0usize;

    // Iterate until a full sweep removes nothing more.
    loop {
        let mut changed = false;
        let mut element_index = elements.len();
        while element_index > 0 {
            element_index -= 1;
            let mut op_index = elements[element_index].len();
            while op_index > 0 {
                op_index -= 1;
                let candidate = remove_operation(&elements, element_index, op_index);
                if candidate.is_empty() {
                    continue;
                }
                let trial = rebuild(test.name(), &candidate);
                if oracle.covers_all(session, &trial) {
                    elements = candidate;
                    removed += 1;
                    changed = true;
                    if element_index >= elements.len() {
                        break;
                    }
                    op_index = op_index.min(elements[element_index].len());
                }
            }
        }
        if !changed {
            break;
        }
    }

    (rebuild(test.name(), &elements), removed)
}

/// The re-verification oracle of the removal scan: the enumerated target
/// lanes, snapshotted once per minimisation run so repeated trials share one
/// allocation across the session's workers.
struct CoverageOracle {
    targets: Arc<Vec<(TargetKind, Vec<CoverageLane>)>>,
    backend: Arc<dyn SimulationBackend>,
    memory_cells: usize,
}

impl CoverageOracle {
    fn new(
        session: &Session,
        targets: Vec<(TargetKind, Vec<CoverageLane>)>,
        memory_cells: usize,
    ) -> CoverageOracle {
        CoverageOracle {
            targets: Arc::new(targets),
            backend: session.backend_instance(),
            memory_cells,
        }
    }

    /// Returns `true` if `test` detects every lane of every target. Serial
    /// sessions early-exit at the first uncovered target (which the removal
    /// scan's mostly-covered trials favour); parallel sessions shard the
    /// targets over the resident pool.
    fn covers_all(&self, session: &Session, test: &MarchTest) -> bool {
        if session.is_parallel() {
            let backend = Arc::clone(&self.backend);
            let test = test.clone();
            let memory_cells = self.memory_cells;
            session
                .execute(Arc::clone(&self.targets), move |(target, lanes)| {
                    backend
                        .first_undetected(&test, target, lanes, memory_cells)
                        .is_none()
                })
                .into_iter()
                .all(|covered| covered)
        } else {
            self.targets.iter().all(|(target, lanes)| {
                self.backend
                    .first_undetected(test, target, lanes, self.memory_cells)
                    .is_none()
            })
        }
    }
}

/// Returns a copy of `elements` with operation `op_index` of element
/// `element_index` removed; the element itself is dropped when it becomes empty.
fn remove_operation(
    elements: &[MarchElement],
    element_index: usize,
    op_index: usize,
) -> Vec<MarchElement> {
    let mut result = Vec::with_capacity(elements.len());
    for (index, element) in elements.iter().enumerate() {
        if index != element_index {
            result.push(element.clone());
            continue;
        }
        let mut operations = element.operations().to_vec();
        operations.remove(op_index);
        if !operations.is_empty() {
            result.push(
                MarchElement::new(element.order(), operations)
                    .expect("non-empty operations after removal"),
            );
        }
    }
    result
}

fn rebuild(name: &str, elements: &[MarchElement]) -> MarchTest {
    let mut builder = MarchTestBuilder::new(name);
    for element in elements {
        builder = builder.push(element.clone());
    }
    builder
        .build()
        .expect("minimised tests keep at least one element")
}

/// Convenience wrapper: minimises `test` against `list` with the default generator
/// configuration but a caller-supplied placement strategy.
#[must_use]
pub fn minimise_with_strategy(
    test: &MarchTest,
    list: &FaultList,
    strategy: PlacementStrategy,
) -> (MarchTest, usize) {
    let config = GeneratorConfig {
        strategy,
        ..GeneratorConfig::default()
    };
    minimise(test, list, &config)
}

#[cfg(test)]
mod tests {
    use super::*;
    use march_test::catalog;

    #[test]
    fn removes_padding_operations() {
        // March ABL1 with two useless extra reads appended: the pass removes them.
        let padded = MarchTest::parse(
            "padded ABL1",
            "⇕(w0); ⇕(w0,r0,r0,w1); ⇕(w1,r1,r1,w0); ⇕(r0,r0)",
        )
        .unwrap();
        let list = FaultList::list_2();
        let config = GeneratorConfig::default();
        let (minimised, removed) = minimise(&padded, &list, &config);
        assert!(removed >= 2, "removed {removed}");
        assert!(minimised.complexity() <= catalog::march_abl1().complexity());
        // The minimised test still covers the list, serially and sharded over
        // a parallel session's pool.
        let targets = enumerate_target_lanes(
            &list,
            config.memory_cells,
            config.strategy,
            &config.backgrounds,
        );
        for threads in [1usize, 4] {
            let session = config.clone().with_threads(threads).session();
            let oracle = CoverageOracle::new(&session, targets.clone(), config.memory_cells);
            assert!(oracle.covers_all(&session, &minimised), "threads {threads}");
        }
    }

    #[test]
    fn thread_counts_minimise_identically() {
        let padded = MarchTest::parse(
            "padded ABL1",
            "⇕(w0); ⇕(w0,r0,r0,w1); ⇕(w1,r1,r1,w0); ⇕(r0,r0)",
        )
        .unwrap();
        let list = FaultList::list_2();
        let serial = minimise(&padded, &list, &GeneratorConfig::default());
        let sharded = minimise(&padded, &list, &GeneratorConfig::default().with_threads(0));
        assert_eq!(serial.0.notation(), sharded.0.notation());
        assert_eq!(serial.1, sharded.1);
    }

    #[test]
    fn backends_minimise_identically() {
        let padded = MarchTest::parse(
            "padded ABL1",
            "⇕(w0); ⇕(w0,r0,r0,w1); ⇕(w1,r1,r1,w0); ⇕(r0,r0)",
        )
        .unwrap();
        let list = FaultList::list_2();
        let scalar = minimise(&padded, &list, &GeneratorConfig::default());
        let packed = minimise(
            &padded,
            &list,
            &GeneratorConfig::default().with_backend(sram_sim::BackendKind::Packed),
        );
        assert_eq!(scalar.0.notation(), packed.0.notation());
        assert_eq!(scalar.1, packed.1);
    }

    #[test]
    fn incomplete_tests_are_left_untouched() {
        let mats = catalog::mats_plus();
        let list = FaultList::list_2();
        let (unchanged, removed) = minimise(&mats, &list, &GeneratorConfig::default());
        assert_eq!(removed, 0);
        assert_eq!(unchanged, mats);
    }

    #[test]
    fn empty_lists_are_a_no_op() {
        let test = catalog::march_abl1();
        let empty = FaultList::new("empty");
        let (unchanged, removed) = minimise(&test, &empty, &GeneratorConfig::default());
        assert_eq!(removed, 0);
        assert_eq!(unchanged.notation(), test.notation());
    }

    #[test]
    fn strategy_wrapper_runs() {
        let test = catalog::march_abl1();
        let list = FaultList::list_2();
        let (minimised, _) =
            minimise_with_strategy(&test, &list, PlacementStrategy::Representative);
        assert!(minimised.complexity() <= test.complexity());
    }
}
