//! Redundancy removal: shortening a march test while preserving its coverage.
//!
//! The pass is **suffix-only**: as the minimiser walks the test back-to-front
//! it records one [`BatchSnapshot`] per march element for every fault target,
//! so the trial for "remove operation *i* of element *e*" restores the
//! checkpoint taken before *e* and re-simulates only the suffix — the prefix
//! is untouched by the removal, so every lane it already detected stays
//! detected. This turns the pass from quadratic in test length (every trial
//! re-simulating the whole shortened test) into one bounded by the suffix
//! lengths, while producing byte-identical results to the full re-simulation
//! oracle ([`minimise_full_resim`]).

use std::sync::{Arc, Mutex};

use march_test::{MarchElement, MarchTest, MarchTestBuilder};
use sram_fault_model::FaultList;
use sram_sim::{
    BackendKind, BatchSnapshot, CoverageLane, LaneWidth, PlacementStrategy, Session,
    SimulationBackend, TargetBatch, TargetKind,
};

use crate::targets::enumerate_target_lanes;
use crate::GeneratorConfig;

/// Removes redundant operations from `test` while preserving complete coverage of
/// `list` under the generation configuration `config`.
///
/// The pass works at operation granularity, scanning from the last operation of the
/// last element towards the front: each operation is tentatively removed (dropping
/// the whole element when it becomes empty) and the shortened test is re-verified
/// with the fault simulator over every `(fault, placement, background)` instance; the
/// removal is kept only if coverage stays complete. This is the step that turns an
/// "ABL"-style greedy result into the shorter "RABL"-style test of the paper's
/// Table 1.
///
/// Re-verification is *suffix-only*: each target carries per-element
/// checkpoints of its lane state, so a trial restores the checkpoint before
/// the edited element and re-simulates just the suffix (with early-exit per
/// target as before). The minimised test is identical for every backend,
/// batch size and thread count — and byte-identical to the full
/// re-simulation of earlier releases, see [`minimise_full_resim`].
///
/// Returns the minimised test and the number of operations removed.
///
/// # Panics
///
/// Panics if `config.memory_cells < 4`.
#[must_use]
pub fn minimise(
    test: &MarchTest,
    list: &FaultList,
    config: &GeneratorConfig,
) -> (MarchTest, usize) {
    minimise_with(&config.session(), test, list, config)
}

/// The session form of [`minimise`]: target lanes come from the session's
/// memoised artifact cache and every removal trial shards its `(target ×
/// suffix)` re-verifications over the session's resident worker pool. The
/// minimised test is byte-identical to [`minimise`] for every backend, batch
/// size and thread count.
#[must_use]
pub fn minimise_with(
    session: &Session,
    test: &MarchTest,
    list: &FaultList,
    config: &GeneratorConfig,
) -> (MarchTest, usize) {
    let targets = session
        .target_lanes_scoped(
            list,
            config.memory_cells,
            config.strategy,
            &config.backgrounds,
        )
        .expect("minimisation scope hosts the fault-list placements");

    // Nothing to preserve: return the test untouched.
    if targets.is_empty() {
        return (test.clone(), 0);
    }

    // Only minimise tests that are complete to begin with, otherwise
    // "preserving coverage" is ill-defined. This is the legacy fail-fast
    // check (first undetected lane ends the scan), so incomplete tests bail
    // out exactly as cheaply as before the suffix rewrite.
    let oracle = CoverageOracle {
        targets: Arc::clone(&targets),
        backend: session.backend_instance(),
        memory_cells: config.memory_cells,
    };
    if !oracle.covers_all(session, test) {
        return (test.clone(), 0);
    }

    let policy = session.policy();
    let states: Arc<Vec<Mutex<TargetState>>> = Arc::new(
        targets
            .iter()
            .map(|(target, lanes)| {
                Mutex::new(TargetState::new(
                    target.clone(),
                    lanes.clone(),
                    config.memory_cells,
                    policy.backend,
                    policy.lane_width,
                ))
            })
            .collect(),
    );
    // The sharding unit: one index per fault target. Each worker locks its
    // target's state (disjoint by construction), restores the checkpoint and
    // runs the trial suffix.
    let indices: Arc<Vec<usize>> = Arc::new((0..states.len()).collect());

    let mut elements: Vec<MarchElement> = test.elements().to_vec();
    // The immutable prefix snapshot the workers advance checkpoints with;
    // re-published whenever a removal is accepted.
    let mut shared: Arc<Vec<MarchElement>> = Arc::new(elements.clone());

    // The serial fast path probes targets in most-recently-failed-first
    // order: most trials are rejected, and consecutive rejections tend to
    // fail on the same few targets, so the early exit usually costs one
    // suffix run. The verdict ("do ALL targets stay covered?") is
    // order-independent, so the minimised test is unaffected.
    let mut probe_order: Vec<usize> = (0..states.len()).collect();

    let mut removed = 0usize;

    // Iterate until a full sweep removes nothing more.
    loop {
        let mut changed = false;
        let mut element_index = elements.len();
        while element_index > 0 {
            element_index -= 1;
            let mut op_index = elements[element_index].len();
            while op_index > 0 {
                op_index -= 1;
                // The tentative edit: operation `op_index` dropped from
                // element `element_index`, the element itself dropped when it
                // empties out. Skip the trial that would empty the whole test.
                let mut operations = elements[element_index].operations().to_vec();
                operations.remove(op_index);
                let edited = (!operations.is_empty()).then(|| {
                    MarchElement::new(elements[element_index].order(), operations)
                        .expect("non-empty operations after removal")
                });
                if edited.is_none() && elements.len() == 1 {
                    continue;
                }
                // The trial suffix: the edited element followed by everything
                // after the edit point — the prefix needs no re-simulation.
                let mut suffix: Vec<MarchElement> =
                    Vec::with_capacity(elements.len() - element_index);
                suffix.extend(edited.iter().cloned());
                suffix.extend_from_slice(&elements[element_index + 1..]);
                let suffix = Arc::new(suffix);
                let covered = trial_all_targets(
                    session,
                    &states,
                    &indices,
                    &shared,
                    &mut probe_order,
                    element_index,
                    &suffix,
                );
                if covered {
                    match edited {
                        Some(element) => elements[element_index] = element,
                        None => {
                            elements.remove(element_index);
                        }
                    }
                    removed += 1;
                    changed = true;
                    // The accepted trial's own simulation becomes the new
                    // checkpoint trail: targets that recorded it commit their
                    // staged snapshots, the rest rewind to the last valid
                    // checkpoint and re-advance lazily.
                    for state in states.iter() {
                        state
                            .lock()
                            .expect("target state lock")
                            .commit_or_invalidate(element_index);
                    }
                    shared = Arc::new(elements.clone());
                    if element_index >= elements.len() {
                        break;
                    }
                    op_index = op_index.min(elements[element_index].len());
                }
            }
        }
        if !changed {
            break;
        }
    }

    (rebuild(test.name(), &elements), removed)
}

/// Evaluates one removal trial over every target: parallel sessions shard the
/// targets over the resident pool; serial sessions probe targets in
/// most-recently-failed-first order (`probe_order`) and early-exit at the
/// first failing target, moving it to the front. The front probe runs
/// fail-fast without recording; the rest record their suffix simulation as
/// staged checkpoints, so an accepted trial's work is committed instead of
/// re-simulated. The all-targets verdict is order-independent, so the result
/// is identical either way.
#[allow(clippy::too_many_arguments)]
fn trial_all_targets(
    session: &Session,
    states: &Arc<Vec<Mutex<TargetState>>>,
    indices: &Arc<Vec<usize>>,
    elements: &Arc<Vec<MarchElement>>,
    probe_order: &mut [usize],
    at: usize,
    suffix: &Arc<Vec<MarchElement>>,
) -> bool {
    if session.is_parallel() {
        let states = Arc::clone(states);
        let elements = Arc::clone(elements);
        let suffix = Arc::clone(suffix);
        return session
            .execute(Arc::clone(indices), move |&index| {
                let mut state = states[index].lock().expect("target state lock");
                state.trial_covers(&elements, at, &suffix, Record::Staged)
            })
            .into_iter()
            .all(|covered| covered);
    }
    for position in 0..probe_order.len() {
        let index = probe_order[position];
        let record = if position == 0 {
            Record::Discarded
        } else {
            Record::Staged
        };
        let covered = {
            let mut state = states[index].lock().expect("target state lock");
            state.trial_covers(elements, at, suffix, record)
        };
        if !covered {
            probe_order[..=position].rotate_right(1);
            return false;
        }
    }
    true
}

/// Whether a removal trial stages its suffix simulation as checkpoints.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Record {
    /// Fail-fast probe: run the suffix chunk-major and keep nothing — the
    /// cheap mode for the target expected to reject the trial.
    Discarded,
    /// Record one staged snapshot per suffix element, so an accepted trial
    /// commits its own simulation as the new checkpoint trail.
    Staged,
}

/// One fault target of the minimisation run: its lane batch advanced through
/// the current element prefix, the per-element snapshots taken along the way,
/// and a scratch batch trials restore into (buffer-reusing, so repeated
/// trials allocate nothing).
///
/// Once the prefix detects every lane of the target, the state stops
/// simulating: detection is monotone and the prefix is never edited by a
/// trial at or after the detection point, so every later checkpoint is
/// trivially pending-free and every later trial answers `true` without a
/// restore.
struct TargetState {
    /// The lane state after `elements[..simulated]`.
    batch: TargetBatch,
    /// Number of elements `batch` has actually executed.
    simulated: usize,
    /// Number of elements accounted for (`>= simulated`; the gap is the
    /// all-lanes-detected tail that needs no simulation).
    advanced: usize,
    /// `checkpoints[k]` = lane state after elements `0..k`, valid for
    /// `k <= simulated`; later slots are stale but keep their buffers for
    /// in-place refresh.
    checkpoints: Vec<BatchSnapshot>,
    /// `pending_at[k]` = still-undetected lanes after elements `0..k`, valid
    /// for `k <= advanced`.
    pending_at: Vec<usize>,
    /// The scratch batch each trial restores a checkpoint into.
    trial: TargetBatch,
    /// Per-suffix-element snapshots recorded by the latest staged trial
    /// (slot-reused across trials), plus their pending counts.
    staged: Vec<BatchSnapshot>,
    staged_pending: Vec<usize>,
    /// `Some((at, executed))` when `staged[..executed]` holds the trial run
    /// from checkpoint `at`; `None` after any unstaged or failed trial.
    staged_run: Option<(usize, usize)>,
}

impl TargetState {
    fn new(
        target: TargetKind,
        lanes: Vec<CoverageLane>,
        memory_cells: usize,
        backend: BackendKind,
        lane_width: LaneWidth,
    ) -> TargetState {
        let batch = TargetBatch::new_with_width(target, lanes, memory_cells, backend, lane_width);
        let checkpoints = vec![batch.snapshot()];
        let pending_at = vec![batch.pending()];
        let trial = batch.clone();
        TargetState {
            batch,
            simulated: 0,
            advanced: 0,
            checkpoints,
            pending_at,
            trial,
            staged: Vec::new(),
            staged_pending: Vec::new(),
            staged_run: None,
        }
    }

    /// Advances the checkpoint trail through `elements[..upto]`. Elements past
    /// the point where every lane detected are accounted without simulation;
    /// stale slots left behind by [`TargetState::invalidate`] are refreshed in
    /// place with buffer-reusing [`TargetBatch::snapshot_into`].
    fn ensure(&mut self, elements: &[MarchElement], upto: usize) {
        while self.advanced < upto {
            self.advanced += 1;
            if self.batch.pending() == 0 {
                Self::record(&mut self.pending_at, self.advanced, 0);
                continue;
            }
            self.batch.advance(&elements[self.advanced - 1]);
            self.simulated = self.advanced;
            if self.advanced < self.checkpoints.len() {
                self.batch
                    .snapshot_into(&mut self.checkpoints[self.advanced]);
            } else {
                self.checkpoints.push(self.batch.snapshot());
            }
            Self::record(&mut self.pending_at, self.advanced, self.batch.pending());
        }
    }

    /// The suffix-only removal trial: restore the checkpoint before element
    /// `at` and check that `suffix` detects every lane still pending there.
    /// Targets the prefix already covers answer without restoring anything.
    ///
    /// In [`Record::Staged`] mode the run additionally snapshots the trial
    /// state after each suffix element, so that if the whole removal is
    /// accepted, [`TargetState::commit_or_invalidate`] promotes the staged
    /// snapshots to the real checkpoint trail instead of re-simulating the
    /// suffix. Both modes return the same verdict.
    fn trial_covers(
        &mut self,
        elements: &[MarchElement],
        at: usize,
        suffix: &[MarchElement],
        record: Record,
    ) -> bool {
        self.staged_run = None;
        self.ensure(elements, at);
        if self.pending_at[at] == 0 {
            return true;
        }
        self.trial.restore(&self.checkpoints[at]);
        if record == Record::Discarded {
            return self.trial.covers_suffix(suffix);
        }
        let mut pending = self.pending_at[at];
        let mut executed = 0usize;
        for element in suffix {
            if pending == 0 {
                break;
            }
            self.trial.advance(element);
            pending = self.trial.pending();
            executed += 1;
            if executed - 1 < self.staged.len() {
                self.trial.snapshot_into(&mut self.staged[executed - 1]);
                self.staged_pending[executed - 1] = pending;
            } else {
                self.staged.push(self.trial.snapshot());
                self.staged_pending.push(pending);
            }
        }
        if pending == 0 {
            self.staged_run = Some((at, executed));
            true
        } else {
            false
        }
    }

    /// After an accepted removal at element `keep`: if this target staged the
    /// accepted trial, its snapshots become the checkpoint trail (no
    /// re-simulation); otherwise the stale checkpoints are dropped and the
    /// batch rewinds to the last valid one, to be re-advanced lazily.
    fn commit_or_invalidate(&mut self, keep: usize) {
        if let Some((at, executed)) = self.staged_run.take() {
            if at == keep && executed > 0 {
                for index in 0..executed {
                    let slot = at + 1 + index;
                    if slot < self.checkpoints.len() {
                        std::mem::swap(&mut self.checkpoints[slot], &mut self.staged[index]);
                    } else {
                        self.checkpoints.push(self.staged[index].clone());
                    }
                    Self::record(&mut self.pending_at, slot, self.staged_pending[index]);
                }
                self.simulated = at + executed;
                self.advanced = at + executed;
                self.batch.restore(&self.checkpoints[self.simulated]);
                return;
            }
        }
        self.invalidate(keep);
    }

    /// Marks the checkpoints an accepted removal at element `keep` stales
    /// (everything after it) and rewinds the main batch to the last valid
    /// one. Stale slots stay allocated for [`TargetState::ensure`] to refresh
    /// in place.
    fn invalidate(&mut self, keep: usize) {
        if self.advanced <= keep {
            return;
        }
        if self.simulated > keep {
            self.batch.restore(&self.checkpoints[keep]);
            self.simulated = keep;
        }
        self.advanced = keep;
    }

    /// Writes `value` at `index`, growing the vector by exactly one slot when
    /// needed (ensure only ever steps one element at a time).
    fn record(values: &mut Vec<usize>, index: usize, value: usize) {
        if index < values.len() {
            values[index] = value;
        } else {
            values.push(value);
        }
    }
}

/// The legacy full re-simulation pass, kept verbatim as the equivalence
/// oracle: every removal trial re-verifies the *whole* shortened test over
/// every `(fault, placement, background)` lane from scratch. Quadratic in
/// test length — superseded by the suffix-only [`minimise_with`], which the
/// `minimise_equivalence` property tests and the `backend_bench` minimise
/// workloads hold byte-identical to this reference.
#[doc(hidden)]
#[must_use]
pub fn minimise_full_resim(
    session: &Session,
    test: &MarchTest,
    list: &FaultList,
    config: &GeneratorConfig,
) -> (MarchTest, usize) {
    let targets = enumerate_target_lanes(
        list,
        config.memory_cells,
        config.strategy,
        &config.backgrounds,
    );

    if targets.is_empty() {
        return (test.clone(), 0);
    }

    let oracle = CoverageOracle::new(session, targets, config.memory_cells);

    if !oracle.covers_all(session, test) {
        return (test.clone(), 0);
    }

    let mut elements: Vec<MarchElement> = test.elements().to_vec();
    let mut removed = 0usize;

    loop {
        let mut changed = false;
        let mut element_index = elements.len();
        while element_index > 0 {
            element_index -= 1;
            let mut op_index = elements[element_index].len();
            while op_index > 0 {
                op_index -= 1;
                let candidate = remove_operation(&elements, element_index, op_index);
                if candidate.is_empty() {
                    continue;
                }
                let trial = rebuild(test.name(), &candidate);
                if oracle.covers_all(session, &trial) {
                    elements = candidate;
                    removed += 1;
                    changed = true;
                    if element_index >= elements.len() {
                        break;
                    }
                    op_index = op_index.min(elements[element_index].len());
                }
            }
        }
        if !changed {
            break;
        }
    }

    (rebuild(test.name(), &elements), removed)
}

/// The re-verification oracle of the legacy full re-simulation scan: the
/// enumerated target lanes, snapshotted once per minimisation run so repeated
/// trials share one allocation across the session's workers.
struct CoverageOracle {
    targets: Arc<Vec<(TargetKind, Vec<CoverageLane>)>>,
    backend: Arc<dyn SimulationBackend>,
    memory_cells: usize,
}

impl CoverageOracle {
    fn new(
        session: &Session,
        targets: Vec<(TargetKind, Vec<CoverageLane>)>,
        memory_cells: usize,
    ) -> CoverageOracle {
        CoverageOracle {
            targets: Arc::new(targets),
            backend: session.backend_instance(),
            memory_cells,
        }
    }

    /// Returns `true` if `test` detects every lane of every target. Serial
    /// sessions early-exit at the first uncovered target (which the removal
    /// scan's mostly-covered trials favour); parallel sessions shard the
    /// targets over the resident pool.
    fn covers_all(&self, session: &Session, test: &MarchTest) -> bool {
        if session.is_parallel() {
            let backend = Arc::clone(&self.backend);
            let test = test.clone();
            let memory_cells = self.memory_cells;
            session
                .execute(Arc::clone(&self.targets), move |(target, lanes)| {
                    backend
                        .first_undetected(&test, target, lanes, memory_cells)
                        .is_none()
                })
                .into_iter()
                .all(|covered| covered)
        } else {
            self.targets.iter().all(|(target, lanes)| {
                self.backend
                    .first_undetected(test, target, lanes, self.memory_cells)
                    .is_none()
            })
        }
    }
}

/// Returns a copy of `elements` with operation `op_index` of element
/// `element_index` removed; the element itself is dropped when it becomes empty.
fn remove_operation(
    elements: &[MarchElement],
    element_index: usize,
    op_index: usize,
) -> Vec<MarchElement> {
    let mut result = Vec::with_capacity(elements.len());
    for (index, element) in elements.iter().enumerate() {
        if index != element_index {
            result.push(element.clone());
            continue;
        }
        let mut operations = element.operations().to_vec();
        operations.remove(op_index);
        if !operations.is_empty() {
            result.push(
                MarchElement::new(element.order(), operations)
                    .expect("non-empty operations after removal"),
            );
        }
    }
    result
}

fn rebuild(name: &str, elements: &[MarchElement]) -> MarchTest {
    let mut builder = MarchTestBuilder::new(name);
    for element in elements {
        builder = builder.push(element.clone());
    }
    builder
        .build()
        .expect("minimised tests keep at least one element")
}

/// Convenience wrapper: minimises `test` against `list` with the default generator
/// configuration but a caller-supplied placement strategy.
#[must_use]
pub fn minimise_with_strategy(
    test: &MarchTest,
    list: &FaultList,
    strategy: PlacementStrategy,
) -> (MarchTest, usize) {
    let config = GeneratorConfig {
        strategy,
        ..GeneratorConfig::default()
    };
    minimise(test, list, &config)
}

#[cfg(test)]
mod tests {
    use super::*;
    use march_test::catalog;

    #[test]
    fn removes_padding_operations() {
        // March ABL1 with two useless extra reads appended: the pass removes them.
        let padded = MarchTest::parse(
            "padded ABL1",
            "⇕(w0); ⇕(w0,r0,r0,w1); ⇕(w1,r1,r1,w0); ⇕(r0,r0)",
        )
        .unwrap();
        let list = FaultList::list_2();
        let config = GeneratorConfig::default();
        let (minimised, removed) = minimise(&padded, &list, &config);
        assert!(removed >= 2, "removed {removed}");
        assert!(minimised.complexity() <= catalog::march_abl1().complexity());
        // The minimised test still covers the list, serially and sharded over
        // a parallel session's pool.
        let targets = enumerate_target_lanes(
            &list,
            config.memory_cells,
            config.strategy,
            &config.backgrounds,
        );
        for threads in [1usize, 4] {
            let session = config.clone().with_threads(threads).session();
            let oracle = CoverageOracle::new(&session, targets.clone(), config.memory_cells);
            assert!(oracle.covers_all(&session, &minimised), "threads {threads}");
        }
    }

    #[test]
    fn suffix_pass_matches_the_full_resim_oracle() {
        let padded = MarchTest::parse(
            "padded ABL1",
            "⇕(w0); ⇕(w0,r0,r0,w1); ⇕(w1,r1,r1,w0); ⇕(r0,r0)",
        )
        .unwrap();
        let list = FaultList::list_2();
        let config = GeneratorConfig::default();
        let session = config.session();
        let suffix = minimise_with(&session, &padded, &list, &config);
        let full = minimise_full_resim(&session, &padded, &list, &config);
        assert_eq!(suffix.0.notation(), full.0.notation());
        assert_eq!(suffix.1, full.1);
    }

    #[test]
    fn thread_counts_minimise_identically() {
        let padded = MarchTest::parse(
            "padded ABL1",
            "⇕(w0); ⇕(w0,r0,r0,w1); ⇕(w1,r1,r1,w0); ⇕(r0,r0)",
        )
        .unwrap();
        let list = FaultList::list_2();
        let serial = minimise(&padded, &list, &GeneratorConfig::default());
        let sharded = minimise(&padded, &list, &GeneratorConfig::default().with_threads(0));
        assert_eq!(serial.0.notation(), sharded.0.notation());
        assert_eq!(serial.1, sharded.1);
    }

    #[test]
    fn backends_minimise_identically() {
        let padded = MarchTest::parse(
            "padded ABL1",
            "⇕(w0); ⇕(w0,r0,r0,w1); ⇕(w1,r1,r1,w0); ⇕(r0,r0)",
        )
        .unwrap();
        let list = FaultList::list_2();
        let scalar = minimise(
            &padded,
            &list,
            &GeneratorConfig::default().with_backend(sram_sim::BackendKind::Scalar),
        );
        let packed = minimise(&padded, &list, &GeneratorConfig::default());
        assert_eq!(scalar.0.notation(), packed.0.notation());
        assert_eq!(scalar.1, packed.1);
    }

    #[test]
    fn incomplete_tests_are_left_untouched() {
        let mats = catalog::mats_plus();
        let list = FaultList::list_2();
        let (unchanged, removed) = minimise(&mats, &list, &GeneratorConfig::default());
        assert_eq!(removed, 0);
        assert_eq!(unchanged, mats);
    }

    #[test]
    fn empty_lists_are_a_no_op() {
        let test = catalog::march_abl1();
        let empty = FaultList::new("empty");
        let (unchanged, removed) = minimise(&test, &empty, &GeneratorConfig::default());
        assert_eq!(removed, 0);
        assert_eq!(unchanged.notation(), test.notation());
    }

    #[test]
    fn strategy_wrapper_runs() {
        let test = catalog::march_abl1();
        let list = FaultList::list_2();
        let (minimised, _) =
            minimise_with_strategy(&test, &list, PlacementStrategy::Representative);
        assert!(minimised.complexity() <= test.complexity());
    }
}
