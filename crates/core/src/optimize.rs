//! Redundancy removal: shortening a march test while preserving its coverage.

use march_test::{MarchElement, MarchTest, MarchTestBuilder};
use sram_fault_model::FaultList;
use sram_sim::{parallel_map, CoverageLane, PlacementStrategy, SimulationBackend, TargetKind};

use crate::targets::enumerate_target_lanes;
use crate::GeneratorConfig;

/// Removes redundant operations from `test` while preserving complete coverage of
/// `list` under the generation configuration `config`.
///
/// The pass works at operation granularity, scanning from the last operation of the
/// last element towards the front: each operation is tentatively removed (dropping
/// the whole element when it becomes empty) and the shortened test is re-verified
/// with the fault simulator over every `(fault, placement, background)` instance; the
/// removal is kept only if coverage stays complete. This is the step that turns an
/// "ABL"-style greedy result into the shorter "RABL"-style test of the paper's
/// Table 1.
///
/// Each re-verification runs on `config.backend` and shards its fault targets
/// over `config.threads` workers; every target early-exits at its first
/// undetected lane. The minimised test is identical for every backend, batch
/// size and thread count.
///
/// Returns the minimised test and the number of operations removed.
///
/// # Panics
///
/// Panics if `config.memory_cells < 4`.
#[must_use]
pub fn minimise(
    test: &MarchTest,
    list: &FaultList,
    config: &GeneratorConfig,
) -> (MarchTest, usize) {
    let targets = enumerate_target_lanes(
        list,
        config.memory_cells,
        config.strategy,
        &config.backgrounds,
    );

    // Nothing to preserve: return the test untouched.
    if targets.is_empty() {
        return (test.clone(), 0);
    }

    let backend = config.backend.instance();

    // Only minimise tests that are complete to begin with, otherwise "preserving
    // coverage" is ill-defined.
    if !covers_all(
        test,
        &targets,
        config.memory_cells,
        backend.as_ref(),
        config.threads,
    ) {
        return (test.clone(), 0);
    }

    let mut elements: Vec<MarchElement> = test.elements().to_vec();
    let mut removed = 0usize;

    // Iterate until a full sweep removes nothing more.
    loop {
        let mut changed = false;
        let mut element_index = elements.len();
        while element_index > 0 {
            element_index -= 1;
            let mut op_index = elements[element_index].len();
            while op_index > 0 {
                op_index -= 1;
                let candidate = remove_operation(&elements, element_index, op_index);
                if candidate.is_empty() {
                    continue;
                }
                let trial = rebuild(test.name(), &candidate);
                if covers_all(
                    &trial,
                    &targets,
                    config.memory_cells,
                    backend.as_ref(),
                    config.threads,
                ) {
                    elements = candidate;
                    removed += 1;
                    changed = true;
                    if element_index >= elements.len() {
                        break;
                    }
                    op_index = op_index.min(elements[element_index].len());
                }
            }
        }
        if !changed {
            break;
        }
    }

    (rebuild(test.name(), &elements), removed)
}

/// Returns `true` if `test` detects every lane of every target. The targets
/// are sharded over `threads` workers (`1` = serial with per-target
/// early-exit, which the removal scan's mostly-covered trials favour).
fn covers_all(
    test: &MarchTest,
    targets: &[(TargetKind, Vec<CoverageLane>)],
    memory_cells: usize,
    backend: &dyn SimulationBackend,
    threads: usize,
) -> bool {
    if threads == 1 {
        return targets.iter().all(|(target, lanes)| {
            backend
                .first_undetected(test, target, lanes, memory_cells)
                .is_none()
        });
    }
    parallel_map(targets, threads, |(target, lanes)| {
        backend
            .first_undetected(test, target, lanes, memory_cells)
            .is_none()
    })
    .into_iter()
    .all(|covered| covered)
}

/// Returns a copy of `elements` with operation `op_index` of element
/// `element_index` removed; the element itself is dropped when it becomes empty.
fn remove_operation(
    elements: &[MarchElement],
    element_index: usize,
    op_index: usize,
) -> Vec<MarchElement> {
    let mut result = Vec::with_capacity(elements.len());
    for (index, element) in elements.iter().enumerate() {
        if index != element_index {
            result.push(element.clone());
            continue;
        }
        let mut operations = element.operations().to_vec();
        operations.remove(op_index);
        if !operations.is_empty() {
            result.push(
                MarchElement::new(element.order(), operations)
                    .expect("non-empty operations after removal"),
            );
        }
    }
    result
}

fn rebuild(name: &str, elements: &[MarchElement]) -> MarchTest {
    let mut builder = MarchTestBuilder::new(name);
    for element in elements {
        builder = builder.push(element.clone());
    }
    builder
        .build()
        .expect("minimised tests keep at least one element")
}

/// Convenience wrapper: minimises `test` against `list` with the default generator
/// configuration but a caller-supplied placement strategy.
#[must_use]
pub fn minimise_with_strategy(
    test: &MarchTest,
    list: &FaultList,
    strategy: PlacementStrategy,
) -> (MarchTest, usize) {
    let config = GeneratorConfig {
        strategy,
        ..GeneratorConfig::default()
    };
    minimise(test, list, &config)
}

#[cfg(test)]
mod tests {
    use super::*;
    use march_test::catalog;

    #[test]
    fn removes_padding_operations() {
        // March ABL1 with two useless extra reads appended: the pass removes them.
        let padded = MarchTest::parse(
            "padded ABL1",
            "⇕(w0); ⇕(w0,r0,r0,w1); ⇕(w1,r1,r1,w0); ⇕(r0,r0)",
        )
        .unwrap();
        let list = FaultList::list_2();
        let config = GeneratorConfig::default();
        let (minimised, removed) = minimise(&padded, &list, &config);
        assert!(removed >= 2, "removed {removed}");
        assert!(minimised.complexity() <= catalog::march_abl1().complexity());
        // The minimised test still covers the list.
        let targets = enumerate_target_lanes(
            &list,
            config.memory_cells,
            config.strategy,
            &config.backgrounds,
        );
        let backend = config.backend.instance();
        assert!(covers_all(
            &minimised,
            &targets,
            config.memory_cells,
            backend.as_ref(),
            1
        ));
        // Sharding the re-verification over threads changes nothing.
        assert!(covers_all(
            &minimised,
            &targets,
            config.memory_cells,
            backend.as_ref(),
            4
        ));
    }

    #[test]
    fn thread_counts_minimise_identically() {
        let padded = MarchTest::parse(
            "padded ABL1",
            "⇕(w0); ⇕(w0,r0,r0,w1); ⇕(w1,r1,r1,w0); ⇕(r0,r0)",
        )
        .unwrap();
        let list = FaultList::list_2();
        let serial = minimise(&padded, &list, &GeneratorConfig::default());
        let sharded = minimise(&padded, &list, &GeneratorConfig::default().with_threads(0));
        assert_eq!(serial.0.notation(), sharded.0.notation());
        assert_eq!(serial.1, sharded.1);
    }

    #[test]
    fn backends_minimise_identically() {
        let padded = MarchTest::parse(
            "padded ABL1",
            "⇕(w0); ⇕(w0,r0,r0,w1); ⇕(w1,r1,r1,w0); ⇕(r0,r0)",
        )
        .unwrap();
        let list = FaultList::list_2();
        let scalar = minimise(&padded, &list, &GeneratorConfig::default());
        let packed = minimise(
            &padded,
            &list,
            &GeneratorConfig::default().with_backend(sram_sim::BackendKind::Packed),
        );
        assert_eq!(scalar.0.notation(), packed.0.notation());
        assert_eq!(scalar.1, packed.1);
    }

    #[test]
    fn incomplete_tests_are_left_untouched() {
        let mats = catalog::mats_plus();
        let list = FaultList::list_2();
        let (unchanged, removed) = minimise(&mats, &list, &GeneratorConfig::default());
        assert_eq!(removed, 0);
        assert_eq!(unchanged, mats);
    }

    #[test]
    fn empty_lists_are_a_no_op() {
        let test = catalog::march_abl1();
        let empty = FaultList::new("empty");
        let (unchanged, removed) = minimise(&test, &empty, &GeneratorConfig::default());
        assert_eq!(removed, 0);
        assert_eq!(unchanged.notation(), test.notation());
    }

    #[test]
    fn strategy_wrapper_runs() {
        let test = catalog::march_abl1();
        let list = FaultList::list_2();
        let (minimised, _) =
            minimise_with_strategy(&test, &list, PlacementStrategy::Representative);
        assert!(minimised.complexity() <= test.complexity());
    }
}
