//! Simulator-backed verification of march tests (the paper's Section 6 validation
//! step).

use march_test::MarchTest;
use sram_fault_model::FaultList;
use sram_sim::{measure_coverage, CoverageConfig, CoverageReport};

/// Verifies `test` against `list` by fault simulation and returns the coverage
/// report.
///
/// This is a thin, re-exported wrapper over [`sram_sim::measure_coverage`] so that
/// users of the generator crate can validate any march test — generated or taken
/// from the [`march_test::catalog`] — without depending on the simulator crate
/// directly, mirroring how the paper validates every generated test with its
/// in-house fault simulator.
///
/// # Examples
///
/// ```
/// use march_gen::verify;
/// use march_test::catalog;
/// use sram_fault_model::FaultList;
/// use sram_sim::CoverageConfig;
///
/// let report = verify(
///     &catalog::march_abl1(),
///     &FaultList::list_2(),
///     &CoverageConfig::thorough(),
/// );
/// assert!(report.is_complete());
/// ```
#[must_use]
pub fn verify(test: &MarchTest, list: &FaultList, config: &CoverageConfig) -> CoverageReport {
    measure_coverage(test, list, config)
}

#[cfg(test)]
mod tests {
    use super::*;
    use march_test::catalog;

    #[test]
    fn verification_matches_direct_measurement() {
        let list = FaultList::list_2();
        let config = CoverageConfig::default();
        let ours = verify(&catalog::march_c_minus(), &list, &config);
        let direct = measure_coverage(&catalog::march_c_minus(), &list, &config);
        assert_eq!(ours.covered(), direct.covered());
        assert_eq!(ours.total(), direct.total());
    }

    #[test]
    fn march_sl_covers_the_single_cell_linked_faults() {
        let report = verify(
            &catalog::march_sl(),
            &FaultList::list_2(),
            &CoverageConfig::thorough(),
        );
        assert!(report.is_complete(), "escapes: {:?}", report.escapes());
    }
}
