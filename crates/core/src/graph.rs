//! The fault-free memory model `G0`: a Mealy automaton over the states of a small
//! memory (Section 4 of the paper, Figure 2).

use std::fmt;

use sram_fault_model::{Bit, MemoryState, Operation};

use crate::GenerationError;

/// The maximum number of cells supported by the explicit state graph (2¹⁰ states).
pub const MAX_GRAPH_CELLS: usize = 10;

/// One edge of the fault-free memory graph: applying `operation` to `cell` in state
/// `from` moves the memory to state `to` and produces `output` (for reads).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct GraphEdge {
    /// Source state index.
    pub from: usize,
    /// Destination state index.
    pub to: usize,
    /// The cell the operation is applied to.
    pub cell: usize,
    /// The operation labelling the edge.
    pub operation: Operation,
    /// The read output (`d` in the paper's `x/d` label), `None` for writes/waits.
    pub output: Option<Bit>,
}

impl fmt::Display for GraphEdge {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} -[{}[{}]/", self.from, self.operation, self.cell)?;
        match self.output {
            Some(bit) => write!(f, "{bit}")?,
            None => write!(f, "-")?,
        }
        write!(f, "]-> {}", self.to)
    }
}

/// The fault-free memory model `G0 = (Q, X, Y, δ, λ)` represented as an explicit
/// labelled digraph over the `2^cells` memory states.
///
/// States are indexed by the integer whose bit `k` is the content of cell `k`
/// (cell 0 is the least-significant bit, i.e. the lowest address).
///
/// # Examples
///
/// ```
/// use march_gen::MemoryGraph;
/// use sram_fault_model::{Bit, Operation};
///
/// // The 2-cell model of the paper's Figure 2.
/// let g0 = MemoryGraph::new(2)?;
/// assert_eq!(g0.state_count(), 4);
///
/// // From state 00, writing 1 into cell i (cell 0) moves to state 01 (bit 0 set).
/// let (next, output) = g0.successor(0b00, 0, Operation::W1);
/// assert_eq!(next, 0b01);
/// assert_eq!(output, None);
///
/// // Reading cell j (cell 1) in state 10 returns 1 and stays.
/// let (next, output) = g0.successor(0b10, 1, Operation::Read(None));
/// assert_eq!(next, 0b10);
/// assert_eq!(output, Some(Bit::One));
/// # Ok::<(), march_gen::GenerationError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemoryGraph {
    cells: usize,
}

impl MemoryGraph {
    /// Creates the fault-free model of a memory with `cells` cells.
    ///
    /// # Errors
    ///
    /// Returns [`GenerationError::TooManyCells`] if `cells` exceeds
    /// [`MAX_GRAPH_CELLS`] and [`GenerationError::InvalidConfiguration`] for a
    /// zero-cell memory.
    pub fn new(cells: usize) -> Result<MemoryGraph, GenerationError> {
        if cells == 0 {
            return Err(GenerationError::InvalidConfiguration(
                "memory graph needs at least one cell".to_string(),
            ));
        }
        if cells > MAX_GRAPH_CELLS {
            return Err(GenerationError::TooManyCells {
                requested: cells,
                maximum: MAX_GRAPH_CELLS,
            });
        }
        Ok(MemoryGraph { cells })
    }

    /// The number of cells of the modelled memory.
    #[must_use]
    pub fn cells(&self) -> usize {
        self.cells
    }

    /// The number of states, `2^cells` (`|V|` of the graph representation).
    #[must_use]
    pub fn state_count(&self) -> usize {
        1 << self.cells
    }

    /// The content of cell `cell` in state `state`.
    ///
    /// # Panics
    ///
    /// Panics if `cell` is out of range.
    #[must_use]
    pub fn cell_value(&self, state: usize, cell: usize) -> Bit {
        assert!(cell < self.cells, "cell {cell} out of range");
        if (state >> cell) & 1 == 1 {
            Bit::One
        } else {
            Bit::Zero
        }
    }

    /// The bits of a state, cell 0 first.
    #[must_use]
    pub fn state_bits(&self, state: usize) -> Vec<Bit> {
        (0..self.cells)
            .map(|cell| self.cell_value(state, cell))
            .collect()
    }

    /// The state index corresponding to the given cell contents (cell 0 first).
    ///
    /// # Panics
    ///
    /// Panics if the slice length differs from the number of cells.
    #[must_use]
    pub fn state_of(&self, bits: &[Bit]) -> usize {
        assert_eq!(bits.len(), self.cells, "state width mismatch");
        bits.iter().enumerate().fold(0usize, |state, (cell, bit)| {
            state | ((bit.as_u8() as usize) << cell)
        })
    }

    /// Every state index whose content satisfies the (possibly partially
    /// constrained) `state` description.
    ///
    /// # Panics
    ///
    /// Panics if the description width differs from the number of cells.
    #[must_use]
    pub fn states_matching(&self, state: &MemoryState) -> Vec<usize> {
        assert_eq!(state.len(), self.cells, "state width mismatch");
        (0..self.state_count())
            .filter(|&index| state.matches_bits(&self.state_bits(index)))
            .collect()
    }

    /// The transition function `δ` and output function `λ`: applying `operation` to
    /// `cell` in `state` yields the next state and, for reads, the value read.
    ///
    /// # Panics
    ///
    /// Panics if `cell` is out of range.
    #[must_use]
    pub fn successor(
        &self,
        state: usize,
        cell: usize,
        operation: Operation,
    ) -> (usize, Option<Bit>) {
        assert!(cell < self.cells, "cell {cell} out of range");
        match operation {
            Operation::Write(bit) => {
                let cleared = state & !(1 << cell);
                let next = cleared | ((bit.as_u8() as usize) << cell);
                (next, None)
            }
            Operation::Read(_) => (state, Some(self.cell_value(state, cell))),
            Operation::Wait => (state, None),
        }
    }

    /// Enumerates every edge of the graph: for each state, each cell and each
    /// operation in `{w0, w1, r, t}` (reads are labelled with their output).
    #[must_use]
    pub fn edges(&self) -> Vec<GraphEdge> {
        let operations = [
            Operation::W0,
            Operation::W1,
            Operation::Read(None),
            Operation::Wait,
        ];
        let mut edges = Vec::with_capacity(self.state_count() * self.cells * operations.len());
        for state in 0..self.state_count() {
            for cell in 0..self.cells {
                for operation in operations {
                    let (to, output) = self.successor(state, cell, operation);
                    edges.push(GraphEdge {
                        from: state,
                        to,
                        cell,
                        operation,
                        output,
                    });
                }
            }
        }
        edges
    }

    /// The shortest sequence of operations **on a single cell** that takes the
    /// memory from `from` to a state in which `cell` holds `target`; the empty
    /// sequence if it already does.
    ///
    /// Because operations on one cell can only toggle that cell, the result is at
    /// most one write.
    #[must_use]
    pub fn drive_cell(&self, from: usize, cell: usize, target: Bit) -> Vec<Operation> {
        if self.cell_value(from, cell) == target {
            Vec::new()
        } else {
            vec![Operation::Write(target)]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure_2_shape() {
        // The 2-cell G0 has 4 vertices and 4 (states) × 2 (cells) × 4 (ops) edges.
        let g0 = MemoryGraph::new(2).unwrap();
        assert_eq!(g0.state_count(), 4);
        assert_eq!(g0.edges().len(), 32);
        // Self loops: reads and waits never change the state.
        assert!(g0
            .edges()
            .iter()
            .filter(|edge| edge.operation.is_read() || edge.operation.is_wait())
            .all(|edge| edge.from == edge.to));
    }

    #[test]
    fn construction_limits() {
        assert!(MemoryGraph::new(0).is_err());
        assert!(MemoryGraph::new(MAX_GRAPH_CELLS + 1).is_err());
        assert!(MemoryGraph::new(3).is_ok());
    }

    #[test]
    fn state_round_trip() {
        let g0 = MemoryGraph::new(3).unwrap();
        for state in 0..g0.state_count() {
            assert_eq!(g0.state_of(&g0.state_bits(state)), state);
        }
        assert_eq!(g0.state_of(&[Bit::One, Bit::Zero, Bit::One]), 0b101);
        assert_eq!(g0.cell_value(0b101, 0), Bit::One);
        assert_eq!(g0.cell_value(0b101, 1), Bit::Zero);
    }

    #[test]
    fn successor_semantics() {
        let g0 = MemoryGraph::new(2).unwrap();
        assert_eq!(g0.successor(0b00, 1, Operation::W1), (0b10, None));
        assert_eq!(g0.successor(0b11, 0, Operation::W0), (0b10, None));
        assert_eq!(g0.successor(0b10, 1, Operation::R1), (0b10, Some(Bit::One)));
        assert_eq!(
            g0.successor(0b10, 0, Operation::Read(None)),
            (0b10, Some(Bit::Zero))
        );
        assert_eq!(g0.successor(0b01, 0, Operation::Wait), (0b01, None));
    }

    #[test]
    fn states_matching_partial_descriptions() {
        let g0 = MemoryGraph::new(3).unwrap();
        let description: MemoryState = "1-0".parse().unwrap();
        let matching = g0.states_matching(&description);
        assert_eq!(matching, vec![0b001, 0b011]);
    }

    #[test]
    fn drive_cell_is_at_most_one_write() {
        let g0 = MemoryGraph::new(2).unwrap();
        assert!(g0.drive_cell(0b01, 0, Bit::One).is_empty());
        assert_eq!(g0.drive_cell(0b01, 1, Bit::One), vec![Operation::W1]);
        assert_eq!(g0.drive_cell(0b11, 0, Bit::Zero), vec![Operation::W0]);
    }

    #[test]
    fn edge_display() {
        let g0 = MemoryGraph::new(2).unwrap();
        let edge = g0
            .edges()
            .into_iter()
            .find(|edge| edge.from == 0 && edge.cell == 0 && edge.operation == Operation::W1)
            .unwrap();
        assert_eq!(edge.to, 1);
        assert!(!edge.to_string().is_empty());
    }
}
