//! Sequences of operations (Definitions 9–13 of the paper).

use std::fmt;

use march_test::{AddressOrder, MarchElement, ParseMarchError};
use sram_fault_model::Operation;

/// A *valid* Sequence of Operations (SO): a sequence of memory operations all bound
/// to the same cell address (its *address specification*, Definition 12).
///
/// A valid SO translates directly into a march element (Definition 10): the
/// operations are applied to every cell, and the address order is fixed by the
/// address specification — operations bound to the lowest-address cell (`i` in the
/// paper's 2-cell model) become an ascending element `⇑`, operations bound to the
/// highest-address cell (`j`) become a descending element `⇓`.
///
/// # Examples
///
/// ```
/// use march_gen::SequenceOfOperations;
/// use march_test::AddressOrder;
/// use sram_fault_model::Operation;
///
/// let mut so = SequenceOfOperations::new(0);
/// so.push(Operation::R0);
/// so.push(Operation::W1);
/// let element = so.to_march_element(2)?;
/// assert_eq!(element.order(), AddressOrder::Ascending);
/// assert_eq!(element.to_string(), "⇑(r0,w1)");
/// # Ok::<(), march_test::ParseMarchError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SequenceOfOperations {
    address_spec: usize,
    operations: Vec<Operation>,
}

impl SequenceOfOperations {
    /// Creates an empty sequence with the given address specification.
    #[must_use]
    pub fn new(address_spec: usize) -> SequenceOfOperations {
        SequenceOfOperations {
            address_spec,
            operations: Vec::new(),
        }
    }

    /// Creates a sequence from an address specification and operations.
    #[must_use]
    pub fn with_operations(
        address_spec: usize,
        operations: Vec<Operation>,
    ) -> SequenceOfOperations {
        SequenceOfOperations {
            address_spec,
            operations,
        }
    }

    /// The cell address every operation of the sequence is bound to
    /// (Definition 12).
    #[must_use]
    pub fn address_spec(&self) -> usize {
        self.address_spec
    }

    /// The operations of the sequence.
    #[must_use]
    pub fn operations(&self) -> &[Operation] {
        &self.operations
    }

    /// Number of operations.
    #[must_use]
    pub fn len(&self) -> usize {
        self.operations.len()
    }

    /// Returns `true` if the sequence contains no operation yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.operations.is_empty()
    }

    /// Appends an operation (the operation is bound to the address specification,
    /// so the sequence remains valid by construction — Definition 11).
    pub fn push(&mut self, operation: Operation) {
        self.operations.push(operation);
    }

    /// Returns `true` if another operation bound to cell `cell` could join this
    /// sequence without violating the single-address constraint of Definition 11.
    #[must_use]
    pub fn accepts_cell(&self, cell: usize) -> bool {
        self.address_spec == cell
    }

    /// The address order the derived march element must use, following the paper's
    /// rule for a memory of `cells` cells: the lowest address maps to `⇑`, the
    /// highest to `⇓`; intermediate addresses (possible only for 3-cell pattern
    /// graphs) default to `⇑`.
    #[must_use]
    pub fn address_order(&self, cells: usize) -> AddressOrder {
        if cells > 0 && self.address_spec == cells - 1 {
            AddressOrder::Descending
        } else {
            AddressOrder::Ascending
        }
    }

    /// Translates the sequence into a march element by removing the address
    /// specification and attaching the address order (Section 5 of the paper).
    ///
    /// # Errors
    ///
    /// Returns [`ParseMarchError::EmptyElement`] if the sequence is empty.
    pub fn to_march_element(&self, cells: usize) -> Result<MarchElement, ParseMarchError> {
        MarchElement::new(self.address_order(cells), self.operations.clone())
    }
}

impl fmt::Display for SequenceOfOperations {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SO[{}](", self.address_spec)?;
        for (index, op) in self.operations.iter().enumerate() {
            if index > 0 {
                write!(f, ",")?;
            }
            write!(f, "{op}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_accessors() {
        let mut so = SequenceOfOperations::new(1);
        assert!(so.is_empty());
        so.push(Operation::R1);
        so.push(Operation::W0);
        assert_eq!(so.len(), 2);
        assert_eq!(so.address_spec(), 1);
        assert_eq!(so.operations(), &[Operation::R1, Operation::W0]);
        assert!(so.accepts_cell(1));
        assert!(!so.accepts_cell(0));
        assert_eq!(so.to_string(), "SO[1](r1,w0)");
    }

    #[test]
    fn address_order_rule() {
        // 2-cell model: cell i (0) → ⇑, cell j (1) → ⇓, per the paper.
        let on_i = SequenceOfOperations::with_operations(0, vec![Operation::R0]);
        let on_j = SequenceOfOperations::with_operations(1, vec![Operation::R0]);
        assert_eq!(on_i.address_order(2), AddressOrder::Ascending);
        assert_eq!(on_j.address_order(2), AddressOrder::Descending);
        // 3-cell model: the middle cell defaults to ⇑, the last to ⇓.
        let on_mid = SequenceOfOperations::with_operations(1, vec![Operation::R0]);
        assert_eq!(on_mid.address_order(3), AddressOrder::Ascending);
        let on_last = SequenceOfOperations::with_operations(2, vec![Operation::R0]);
        assert_eq!(on_last.address_order(3), AddressOrder::Descending);
    }

    #[test]
    fn march_element_translation() {
        let so = SequenceOfOperations::with_operations(1, vec![Operation::R1, Operation::W0]);
        let element = so.to_march_element(2).unwrap();
        assert_eq!(element.to_string(), "⇓(r1,w0)");
        let empty = SequenceOfOperations::new(0);
        assert!(empty.to_march_element(2).is_err());
    }
}
