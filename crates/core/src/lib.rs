//! # `march-gen`
//!
//! Automatic march-test generation for **static linked faults** in SRAMs — a Rust
//! reproduction of A. Benso, A. Bosio, S. Di Carlo, G. Di Natale, P. Prinetto,
//! *"Automatic March Tests Generations for Static Linked Faults in SRAMs"*,
//! DATE 2006.
//!
//! The crate ties the workspace together:
//!
//! * [`MemoryGraph`] and [`PatternGraph`] implement the memory model of Section 4 of
//!   the paper — the fault-free Mealy automaton `G0` and the pattern graph obtained
//!   by adding one *faulty edge* per test pattern;
//! * [`SequenceOfOperations`] implements the valid-SO notion of Section 5
//!   (Definitions 9–13): a sequence of operations bound to one cell address which
//!   translates directly into a march element with the address order dictated by the
//!   address specification;
//! * [`MarchGenerator`] implements the generation algorithm: a greedy,
//!   simulation-backed set-cover over candidate march elements (the SO library plus
//!   targeted sequences derived on demand), followed by an optional
//!   redundancy-removal pass ([`minimise`]) — the step that turns the "ABL"-style
//!   result into the shorter "RABL"-style one in the paper's Table 1;
//! * [`verify`] re-checks any march test against a fault list with the fault
//!   simulator, exactly as the paper validates its generated tests.
//!
//! # Quickstart
//!
//! ```
//! use march_gen::{GeneratorConfig, MarchGenerator};
//! use sram_fault_model::FaultList;
//!
//! // Generate a march test for the single-cell static linked faults
//! // (the paper's Fault List #2).
//! let generator = MarchGenerator::new(FaultList::list_2());
//! let generated = generator.generate();
//! assert!(generated.report().is_complete());
//! // The generated test is competitive with the 11n March LF1 baseline.
//! assert!(generated.test().complexity() <= 11);
//! # let _ = GeneratorConfig::default();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod candidates;
mod error;
mod generator;
mod graph;
mod optimize;
mod pattern_graph;
mod session;
mod so;
mod targets;
mod verify;

pub use candidates::{exhaustive_candidates, library_candidates};
pub use error::GenerationError;
pub use generator::{
    score_candidates, score_candidates_with, GeneratedTest, GenerationReport, GeneratorConfig,
    MarchGenerator,
};
pub use graph::{GraphEdge, MemoryGraph, MAX_GRAPH_CELLS};
pub use optimize::{minimise, minimise_full_resim, minimise_with, minimise_with_strategy};
pub use pattern_graph::{FaultyEdge, PatternGraph};
pub use session::{MinimisationReport, SessionExt};
pub use so::SequenceOfOperations;
pub use targets::TargetInstance;
pub use verify::verify;

/// Convenience result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, GenerationError>;
