//! The pattern graph: the fault-free memory model plus one faulty edge per test
//! pattern (Section 4 of the paper, Figures 3 and 4).

use std::fmt;

use sram_fault_model::{
    AddressedFaultPrimitive, Bit, FaultList, FaultPrimitive, LinkTopology, LinkedFault, Operation,
    Placement, TestPattern,
};

use crate::{GenerationError, MemoryGraph};

/// A faulty edge of the pattern graph.
///
/// A faulty edge models one [`TestPattern`]: when the memory is in state
/// [`from`](FaultyEdge::from) and the sensitizing operation is applied, the *faulty*
/// memory moves to state [`to`](FaultyEdge::to) (instead of the fault-free
/// successor); the fault is observed by reading
/// [`observe_cell`](FaultyEdge::observe_cell) and comparing against
/// [`observe_expected`](FaultyEdge::observe_expected).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultyEdge {
    /// Unique identifier of the edge within its pattern graph.
    pub id: usize,
    /// Index of the originating fault in the fault list (into
    /// [`FaultList::linked`] or [`FaultList::simple`], see
    /// [`is_linked`](FaultyEdge::is_linked)).
    pub fault_index: usize,
    /// `true` if the edge originates from a linked fault, `false` for a simple
    /// primitive.
    pub is_linked: bool,
    /// Which component of the linked fault the edge models (0 = masked FP1,
    /// 1 = masking FP2); always 0 for simple primitives.
    pub component: usize,
    /// Source state index (a concrete expansion of the AFP's initial state `I`).
    pub from: usize,
    /// Destination state index (the corresponding faulty state `Fv`).
    pub to: usize,
    /// The cell the sensitizing operation targets, if the primitive has one.
    pub cell: Option<usize>,
    /// The sensitizing operation, if any (state faults have none).
    pub operation: Option<Operation>,
    /// The victim cell read by the observing operation of the test pattern.
    pub observe_cell: usize,
    /// The value the observing read expects on a fault-free memory.
    pub observe_expected: Option<Bit>,
    /// The edge modelling the other component of the same linked fault, if any.
    pub partner: Option<usize>,
}

impl fmt::Display for FaultyEdge {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "f{}: {} -> {}", self.id, self.from, self.to)?;
        if let (Some(cell), Some(op)) = (self.cell, self.operation) {
            write!(f, " via {op}[{cell}]")?;
        }
        write!(f, ", observe r[{}]", self.observe_cell)
    }
}

/// The pattern graph `PG = {Vp, Ep ∪ Fp}` of a fault list: the fault-free memory
/// graph (`Ep`, provided by [`MemoryGraph`]) plus the faulty edges (`Fp`) of every
/// test pattern obtained by instantiating the list on a canonical cell assignment.
///
/// # Examples
///
/// The paper's Figure 4 (`PG_CF`): the disturb-coupling fault linked to a
/// disturb-coupling fault adds two faulty edges to the 2-cell graph `G0`:
///
/// ```
/// use march_gen::PatternGraph;
/// use sram_fault_model::{FaultListBuilder, Ffm, LinkTopology, LinkedFault};
///
/// let find = |notation: &str| {
///     Ffm::DisturbCoupling
///         .fault_primitives()
///         .into_iter()
///         .find(|fp| fp.notation() == notation)
///         .expect("realistic CFds primitive")
/// };
/// let lf = LinkedFault::link(
///     find("<0w1;0/1/->"),
///     find("<1w0;1/0/->"),
///     LinkTopology::Lf2SharedAggressor,
/// )?;
/// let list = FaultListBuilder::new("PGcf").linked(lf).build()?;
/// let pg = PatternGraph::from_fault_list(&list)?;
/// assert_eq!(pg.graph().state_count(), 4);
/// assert_eq!(pg.faulty_edges().len(), 2);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct PatternGraph {
    graph: MemoryGraph,
    faulty_edges: Vec<FaultyEdge>,
}

impl PatternGraph {
    /// Builds the pattern graph of a fault list.
    ///
    /// The number of cells is the largest cell count required by any fault of the
    /// list (at least 2, matching the paper's `G0`); every fault is instantiated on
    /// the canonical assignment `a1 = 0, a2 = 1, v = last` used throughout the
    /// paper's examples.
    ///
    /// # Errors
    ///
    /// Returns [`GenerationError::EmptyFaultList`] for an empty list and propagates
    /// [`MemoryGraph::new`] errors.
    pub fn from_fault_list(list: &FaultList) -> Result<PatternGraph, GenerationError> {
        if list.is_empty() {
            return Err(GenerationError::EmptyFaultList);
        }
        let cells = list.max_cells().max(2);
        let graph = MemoryGraph::new(cells)?;
        let mut builder = EdgeBuilder::new(graph.clone());

        for (index, primitive) in list.simple().iter().enumerate() {
            let placement = canonical_simple_placement(primitive, cells);
            let afp = AddressedFaultPrimitive::instantiate(primitive, placement)
                .expect("canonical placements match the primitive shape");
            builder.add_pattern(&TestPattern::new(afp), index, false, 0, None);
        }

        for (index, fault) in list.linked().iter().enumerate() {
            let (first_placement, second_placement) = canonical_linked_placements(fault, cells);
            let first = AddressedFaultPrimitive::instantiate(fault.first(), first_placement)
                .expect("canonical placements match the primitive shape");
            let second = AddressedFaultPrimitive::instantiate(fault.second(), second_placement)
                .expect("canonical placements match the primitive shape");
            let first_ids = builder.add_pattern(&TestPattern::new(first), index, true, 0, None);
            let second_ids = builder.add_pattern(
                &TestPattern::new(second),
                index,
                true,
                1,
                first_ids.first().copied(),
            );
            // Cross-link the first edges of each component so callers can navigate
            // from FP1's edge to FP2's edge and back.
            if let (Some(&first_id), Some(&second_id)) = (first_ids.first(), second_ids.first()) {
                builder.edges[first_id].partner = Some(second_id);
            }
        }

        Ok(PatternGraph {
            graph,
            faulty_edges: builder.edges,
        })
    }

    /// The underlying fault-free memory graph (`Ep`).
    #[must_use]
    pub fn graph(&self) -> &MemoryGraph {
        &self.graph
    }

    /// The faulty edges (`Fp`).
    #[must_use]
    pub fn faulty_edges(&self) -> &[FaultyEdge] {
        &self.faulty_edges
    }

    /// Number of vertices of the pattern graph (`|Vp| = 2^cells`).
    #[must_use]
    pub fn vertex_count(&self) -> usize {
        self.graph.state_count()
    }

    /// The faulty edges whose sensitizing operation targets `cell` (the
    /// SO-compatibility pre-filter of Definition 13).
    #[must_use]
    pub fn edges_on_cell(&self, cell: usize) -> Vec<&FaultyEdge> {
        self.faulty_edges
            .iter()
            .filter(|edge| edge.cell == Some(cell))
            .collect()
    }
}

struct EdgeBuilder {
    graph: MemoryGraph,
    edges: Vec<FaultyEdge>,
}

impl EdgeBuilder {
    fn new(graph: MemoryGraph) -> EdgeBuilder {
        EdgeBuilder {
            graph,
            edges: Vec::new(),
        }
    }

    /// Adds the faulty edges of one test pattern (one per concrete expansion of the
    /// pattern's initial state) and returns their identifiers.
    fn add_pattern(
        &mut self,
        pattern: &TestPattern,
        fault_index: usize,
        is_linked: bool,
        component: usize,
        partner: Option<usize>,
    ) -> Vec<usize> {
        let afp = pattern.afp();
        let victim = afp.victim();
        let fault_value = afp.primitive().fault_value().to_bit();
        let mut ids = Vec::new();

        for from in self.graph.states_matching(afp.initial()) {
            let mut to_bits = self.graph.state_bits(from);
            if let Some(op) = afp.operations().first() {
                let before = to_bits[op.cell()];
                to_bits[op.cell()] = op.operation().fault_free_result(before);
            }
            if let Some(value) = fault_value {
                to_bits[victim] = value;
            }
            let to = self.graph.state_of(&to_bits);
            let id = self.edges.len();
            self.edges.push(FaultyEdge {
                id,
                fault_index,
                is_linked,
                component,
                from,
                to,
                cell: afp.operations().first().map(|op| op.cell()),
                operation: afp.operations().first().map(|op| op.operation()),
                observe_cell: victim,
                observe_expected: afp.observe_expected(),
                partner,
            });
            ids.push(id);
        }
        ids
    }
}

fn canonical_simple_placement(primitive: &FaultPrimitive, cells: usize) -> Placement {
    if primitive.is_coupling() {
        Placement::coupling(0, cells - 1, cells).expect("canonical coupling placement is valid")
    } else {
        Placement::single_cell(cells - 1, cells).expect("canonical single placement is valid")
    }
}

fn canonical_linked_placements(fault: &LinkedFault, cells: usize) -> (Placement, Placement) {
    let victim = cells - 1;
    let single = Placement::single_cell(victim, cells).expect("canonical placement is valid");
    let coupling_first =
        Placement::coupling(0, victim, cells).expect("canonical placement is valid");
    match fault.topology() {
        LinkTopology::Lf1 => (single, single),
        LinkTopology::Lf2CouplingThenSingle => (coupling_first, single),
        LinkTopology::Lf2SingleThenCoupling => (single, coupling_first),
        LinkTopology::Lf2SharedAggressor => (coupling_first, coupling_first),
        LinkTopology::Lf3 => (
            coupling_first,
            Placement::coupling(1, victim, cells).expect("canonical placement is valid"),
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sram_fault_model::{FaultListBuilder, Ffm};

    fn cfds(notation: &str) -> FaultPrimitive {
        Ffm::DisturbCoupling
            .fault_primitives()
            .into_iter()
            .find(|fp| fp.notation() == notation)
            .unwrap()
    }

    #[test]
    fn empty_list_is_rejected() {
        let list = FaultList::new("empty");
        assert_eq!(
            PatternGraph::from_fault_list(&list).unwrap_err(),
            GenerationError::EmptyFaultList
        );
    }

    #[test]
    fn figure_4_pattern_graph() {
        // <0w1;0/1/-> → <1w0;1/0/-> on two cells (shared aggressor i, victim j).
        let lf = LinkedFault::link(
            cfds("<0w1;0/1/->"),
            cfds("<1w0;1/0/->"),
            LinkTopology::Lf2SharedAggressor,
        )
        .unwrap();
        let list = FaultListBuilder::new("PGcf").linked(lf).build().unwrap();
        let pg = PatternGraph::from_fault_list(&list).unwrap();

        assert_eq!(pg.vertex_count(), 4);
        assert_eq!(pg.faulty_edges().len(), 2);

        // FP1: from 00, w1 on the aggressor (cell 0) → faulty state 11.
        let first = &pg.faulty_edges()[0];
        assert_eq!(first.from, 0b00);
        assert_eq!(first.to, 0b11);
        assert_eq!(first.cell, Some(0));
        assert_eq!(first.operation, Some(Operation::W1));
        assert_eq!(first.observe_cell, 1);
        assert_eq!(first.observe_expected, Some(Bit::Zero));
        assert_eq!(first.partner, Some(1));

        // FP2: from 11, w0 on the aggressor → faulty state 00.
        let second = &pg.faulty_edges()[1];
        assert_eq!(second.from, 0b11);
        assert_eq!(second.to, 0b00);
        assert_eq!(second.operation, Some(Operation::W0));
        assert_eq!(second.partner, Some(0));
        assert!(second.is_linked);
    }

    #[test]
    fn dont_care_initial_states_expand() {
        // A single-cell transition fault in a 2-cell graph: the untouched cell is a
        // don't care, so the pattern expands into two faulty edges.
        let tf = Ffm::TransitionFault.fault_primitives()[0].clone();
        let list = FaultListBuilder::new("tf").simple(tf).build().unwrap();
        let pg = PatternGraph::from_fault_list(&list).unwrap();
        assert_eq!(pg.faulty_edges().len(), 2);
        assert!(pg.faulty_edges().iter().all(|edge| !edge.is_linked));
    }

    #[test]
    fn three_cell_lists_use_eight_vertices() {
        let list = FaultList::list_1();
        let pg = PatternGraph::from_fault_list(&list).unwrap();
        assert_eq!(pg.vertex_count(), 8);
        assert!(pg.faulty_edges().len() >= 2 * list.linked().len());
        // Every linked fault contributes edges for both of its components.
        assert!(pg.faulty_edges().iter().any(|edge| edge.component == 1));
    }

    #[test]
    fn edges_on_cell_filters_by_sensitizing_cell() {
        let list = FaultList::list_2();
        let pg = PatternGraph::from_fault_list(&list).unwrap();
        // Fault list #2 is single-cell; the canonical victim is the last cell.
        let victim = pg.graph().cells() - 1;
        assert!(!pg.edges_on_cell(victim).is_empty());
        assert!(pg.edges_on_cell(0).is_empty());
        for edge in pg.faulty_edges() {
            assert!(!edge.to_string().is_empty());
        }
    }
}
