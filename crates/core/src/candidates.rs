//! Candidate march elements considered by the greedy generator.
//!
//! The candidate pool plays the role of the *valid sequences of operations* of the
//! paper's Fig. 5: every candidate is a sequence of operations applied to a single
//! address (per visit), paired with an address order. The library contains the SO
//! shapes that the linked-fault literature shows to be useful (the element shapes of
//! March SS, March SL and the paper's own ABL/RABL tests, plus short
//! read/write ladders); the exhaustive generator enumerates every short sequence
//! and is used as a *repair* pool when the library stalls.

use march_test::{AddressOrder, MarchElement};
use sram_fault_model::{Bit, Operation};

/// The library of candidate march elements considered at every iteration of the
/// greedy generator.
///
/// Each shape is instantiated for both data polarities and both address orders, so
/// the pool is closed under the usual march-test symmetries.
///
/// # Examples
///
/// ```
/// use march_gen::library_candidates;
///
/// let pool = library_candidates();
/// assert!(pool.len() > 30);
/// // The pool contains the March SS element shape in ascending order…
/// assert!(pool.iter().any(|e| e.to_string() == "⇑(r0,r0,w0,r0,w1)"));
/// // …and the March SL element shape in descending order.
/// assert!(pool.iter().any(|e| e.to_string() == "⇓(r1,r1,w0,w0,r0,r0,w1,w1,r1,w0)"));
/// ```
#[must_use]
pub fn library_candidates() -> Vec<MarchElement> {
    let shapes: Vec<Vec<Operation>> = vec![
        // Short ladders.
        ops("r0,w1"),
        ops("r0,w1,r1"),
        ops("r0,w1,w1,r1"),
        ops("r0,w0,r0,w1"),
        ops("r0,r0,w1"),
        // March SS element.
        ops("r0,r0,w0,r0,w1"),
        // March LA element.
        ops("r0,w1,w0,w1,r1"),
        // March ABL element (Table 1 of the paper).
        ops("r0,r0,w0,r0,w1,w1,r1"),
        // March RABL long element.
        ops("r0,w1,r1,r1,w1,r1,w0,r0"),
        // March SL element.
        ops("r0,r0,w1,w1,r1,r1,w0,w0,r0,w1"),
        // Observation-only and initialisation elements.
        ops("r0"),
        ops("w0"),
        ops("w0,r0"),
        ops("r0,w0,r0"),
    ];

    let mut pool = Vec::new();
    for shape in shapes {
        for order in [AddressOrder::Ascending, AddressOrder::Descending] {
            let base =
                MarchElement::new(order, shape.clone()).expect("library shapes are non-empty");
            let complemented = base.complemented();
            pool.push(base);
            pool.push(complemented);
        }
    }
    dedup(pool)
}

/// Enumerates every march element whose operation sequence has length at most
/// `max_length`, drawn from `{w0, w1, r0, r1}`, contains at least one read, and is
/// paired with both address orders.
///
/// This pool is exponential in `max_length` (≈ `2 · Σ 4^k` elements) and is only
/// scored against the (small) set of still-uncovered targets when the main library
/// stalls, mirroring the "report that the fault cannot be covered" branch of the
/// paper's Fig. 5 — before giving up, the generator searches the full SO space of
/// bounded length.
///
/// # Examples
///
/// ```
/// use march_gen::exhaustive_candidates;
///
/// let short = exhaustive_candidates(2);
/// assert!(short.iter().any(|e| e.to_string() == "⇓(w1,r1)"));
/// assert!(short.iter().all(|e| e.len() <= 2));
/// ```
#[must_use]
pub fn exhaustive_candidates(max_length: usize) -> Vec<MarchElement> {
    let alphabet = [
        Operation::Write(Bit::Zero),
        Operation::Write(Bit::One),
        Operation::Read(Some(Bit::Zero)),
        Operation::Read(Some(Bit::One)),
    ];
    let mut sequences: Vec<Vec<Operation>> = vec![Vec::new()];
    let mut pool = Vec::new();
    for _ in 0..max_length {
        let mut next = Vec::with_capacity(sequences.len() * alphabet.len());
        for sequence in &sequences {
            for op in alphabet {
                let mut extended = sequence.clone();
                extended.push(op);
                next.push(extended);
            }
        }
        for sequence in &next {
            if sequence.iter().any(|op| op.is_read()) {
                for order in [AddressOrder::Ascending, AddressOrder::Descending] {
                    pool.push(
                        MarchElement::new(order, sequence.clone())
                            .expect("sequences are non-empty"),
                    );
                }
            }
        }
        sequences = next;
    }
    dedup(pool)
}

fn ops(text: &str) -> Vec<Operation> {
    text.split(',')
        .map(|token| {
            token
                .trim()
                .parse::<Operation>()
                .expect("library operation")
        })
        .collect()
}

fn dedup(pool: Vec<MarchElement>) -> Vec<MarchElement> {
    let mut seen = std::collections::HashSet::new();
    pool.into_iter()
        .filter(|element| seen.insert(element.to_string()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn library_is_symmetric_and_deduplicated() {
        let pool = library_candidates();
        assert!(pool.len() > 30);
        let texts: Vec<String> = pool.iter().map(MarchElement::to_string).collect();
        let mut unique = texts.clone();
        unique.sort();
        unique.dedup();
        assert_eq!(unique.len(), texts.len(), "duplicates in the library");
        // Closed under complement and order reversal.
        for element in &pool {
            assert!(texts.contains(&element.complemented().to_string()));
            assert!(texts.contains(&element.reversed().to_string()));
        }
    }

    #[test]
    fn library_contains_the_key_shapes() {
        let texts: Vec<String> = library_candidates()
            .iter()
            .map(MarchElement::to_string)
            .collect();
        for expected in [
            "⇑(r0,r0,w0,r0,w1)",
            "⇑(r1,r1,w1,r1,w0)",
            "⇑(r0,r0,w0,r0,w1,w1,r1)",
            "⇓(r1,r1,w1,r1,w0,w0,r0)",
            "⇑(r0,r0,w1,w1,r1,r1,w0,w0,r0,w1)",
            "⇑(r0,w1)",
            "⇓(r1,w0)",
        ] {
            assert!(texts.contains(&expected.to_string()), "missing {expected}");
        }
    }

    #[test]
    fn exhaustive_counts_and_contents() {
        // Length 1: 2 reads × 2 orders = 4 elements.
        assert_eq!(exhaustive_candidates(1).len(), 4);
        let pool = exhaustive_candidates(2);
        // Length ≤ 2 with ≥ 1 read: 4 + (16 - 4 write-only) × 2 orders = 28.
        assert_eq!(pool.len(), 28);
        assert!(pool.iter().all(|element| element.observes()));
        assert!(exhaustive_candidates(3).len() > pool.len());
    }
}
