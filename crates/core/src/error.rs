//! Error type of the generator crate.

use std::error::Error;
use std::fmt;

/// Errors produced while configuring or running march-test generation.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum GenerationError {
    /// The target fault list contains no fault at all.
    EmptyFaultList,
    /// The generator configuration is invalid (e.g. a memory too small to host the
    /// fault list's cell count).
    InvalidConfiguration(String),
    /// Some targets could not be covered within the configured element budget.
    IncompleteCoverage {
        /// Number of targets left uncovered.
        uncovered: usize,
    },
    /// The memory-graph machinery was asked for more cells than it supports.
    TooManyCells {
        /// The requested number of cells.
        requested: usize,
        /// The maximum supported number of cells.
        maximum: usize,
    },
}

impl fmt::Display for GenerationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GenerationError::EmptyFaultList => write!(f, "target fault list is empty"),
            GenerationError::InvalidConfiguration(reason) => {
                write!(f, "invalid generator configuration: {reason}")
            }
            GenerationError::IncompleteCoverage { uncovered } => {
                write!(f, "generation left {uncovered} targets uncovered")
            }
            GenerationError::TooManyCells { requested, maximum } => write!(
                f,
                "memory graph supports at most {maximum} cells, {requested} requested"
            ),
        }
    }
}

impl Error for GenerationError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages() {
        for err in [
            GenerationError::EmptyFaultList,
            GenerationError::InvalidConfiguration("memory too small".into()),
            GenerationError::IncompleteCoverage { uncovered: 3 },
            GenerationError::TooManyCells {
                requested: 20,
                maximum: 16,
            },
        ] {
            assert!(!err.to_string().is_empty());
        }
    }

    #[test]
    fn is_std_error() {
        fn assert_error<E: Error + Send + Sync + 'static>() {}
        assert_error::<GenerationError>();
    }
}
