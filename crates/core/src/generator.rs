//! The automatic march-test generator (Section 5 of the paper).

use std::fmt;
use std::sync::Arc;
use std::time::{Duration, Instant};

use march_test::{AddressOrder, MarchElement, MarchTest, MarchTestBuilder};
use sram_fault_model::{Bit, FaultList};
use sram_sim::{
    parallel_map, BackendKind, CandidateBatch, CoverageConfig, CoverageReport, ExecPolicy,
    InitialState, PlacementStrategy, Session, TargetBatch,
};

use crate::optimize::minimise_with;
use crate::{exhaustive_candidates, library_candidates, verify};

/// Configuration of the march-test generator.
///
/// The defaults reproduce the paper's setup: an 8-cell verification memory,
/// representative cell placements, detection required under both uniform data
/// backgrounds, the redundancy-removal pass enabled and the exhaustive repair pool
/// available as a fallback.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GeneratorConfig {
    /// Number of cells of the memory used to evaluate candidate elements (≥ 4).
    pub memory_cells: usize,
    /// How exhaustively cell placements are enumerated during generation.
    pub strategy: PlacementStrategy,
    /// Initial memory contents the generated test must detect each fault under.
    pub backgrounds: Vec<InitialState>,
    /// The data value written by the initialisation element `⇕(w·)`.
    pub initial_write: Bit,
    /// Whether to run the operation-level redundancy-removal pass after generation
    /// (this is the pass that turns an "ABL"-style result into the shorter
    /// "RABL"-style one of Table 1).
    pub redundancy_removal: bool,
    /// Whether to search the exhaustive short-sequence pool when the library of
    /// candidate elements stops making progress.
    pub repair: bool,
    /// Maximum length (in operations) of the sequences explored by the repair pool.
    pub repair_max_length: usize,
    /// Safety bound on the number of march elements of the generated test.
    pub max_elements: usize,
    /// The address orders the generated march elements may use (the paper's
    /// future-work constraint: tests restricted to a single address order can be
    /// implemented more efficiently in BIST hardware). The initialisation element
    /// `⇕(w·)` is always allowed.
    pub allowed_orders: Vec<AddressOrder>,
    /// The shared execution policy: backend, worker threads, candidate-batch
    /// width and the wave-vs-per-candidate cost-model factor. Generation and
    /// verification both derive from this single copy
    /// (see [`GeneratorConfig::verification_config`]), so the two can no
    /// longer drift apart. The generated test is identical for every policy.
    pub exec: ExecPolicy,
}

impl Default for GeneratorConfig {
    fn default() -> Self {
        GeneratorConfig {
            memory_cells: 8,
            strategy: PlacementStrategy::Representative,
            backgrounds: vec![InitialState::AllZero, InitialState::AllOne],
            initial_write: Bit::Zero,
            redundancy_removal: true,
            repair: true,
            repair_max_length: 4,
            max_elements: 24,
            allowed_orders: vec![
                AddressOrder::Ascending,
                AddressOrder::Descending,
                AddressOrder::Any,
            ],
            exec: ExecPolicy::default(),
        }
    }
}

impl GeneratorConfig {
    /// A faster configuration without the redundancy-removal pass — the analogue of
    /// the paper's "March ABL" row (the raw greedy output), as opposed to the
    /// reduced "March RABL" row produced by the default configuration.
    #[must_use]
    pub fn without_redundancy_removal() -> GeneratorConfig {
        GeneratorConfig {
            redundancy_removal: false,
            ..GeneratorConfig::default()
        }
    }

    /// A configuration restricted to a single address order (plus the
    /// order-agnostic `⇕` initialisation), implementing the address-order
    /// constraint the paper's conclusions list as future work: tests whose elements
    /// all march in the same direction map more efficiently onto BIST address
    /// generators.
    #[must_use]
    pub fn single_order(order: AddressOrder) -> GeneratorConfig {
        GeneratorConfig {
            allowed_orders: vec![order, AddressOrder::Any],
            ..GeneratorConfig::default()
        }
    }

    /// A configuration running the whole pipeline on the bit-parallel packed
    /// backend (now also the default) with automatic thread fan-out — the fast
    /// path for large fault lists. The generated test is identical to the
    /// scalar one.
    #[must_use]
    pub fn fast() -> GeneratorConfig {
        GeneratorConfig {
            exec: ExecPolicy::fast(),
            ..GeneratorConfig::default()
        }
    }

    /// Replaces the whole execution policy.
    #[must_use]
    pub fn with_exec(mut self, exec: ExecPolicy) -> GeneratorConfig {
        self.exec = exec;
        self
    }

    /// Replaces the simulation backend.
    ///
    /// Deprecated shim: prefer building an [`ExecPolicy`] once and passing it
    /// via [`GeneratorConfig::with_exec`] or a [`Session`].
    #[must_use]
    pub fn with_backend(mut self, backend: BackendKind) -> GeneratorConfig {
        self.exec.backend = backend;
        self
    }

    /// Replaces the worker-thread count (`0` = available parallelism).
    ///
    /// Deprecated shim: prefer building an [`ExecPolicy`] once and passing it
    /// via [`GeneratorConfig::with_exec`] or a [`Session`].
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> GeneratorConfig {
        self.exec.threads = threads;
        self
    }

    /// Replaces the candidate-batch size (`0` = full words of 64 candidates,
    /// `1` = per-candidate scoring).
    ///
    /// Deprecated shim: prefer building an [`ExecPolicy`] once and passing it
    /// via [`GeneratorConfig::with_exec`] or a [`Session`].
    #[must_use]
    pub fn with_batch(mut self, batch: usize) -> GeneratorConfig {
        self.exec.batch = batch;
        self
    }

    /// The coverage configuration used for the final verification of a generated
    /// test (thorough: both uniform backgrounds), derived from the **same**
    /// [`ExecPolicy`] that drives generation — the single source of the
    /// backend/threads knobs, so generation and verification cannot drift.
    #[must_use]
    pub fn verification_config(&self) -> CoverageConfig {
        CoverageConfig {
            memory_cells: self.memory_cells,
            strategy: self.strategy,
            backgrounds: vec![InitialState::AllZero, InitialState::AllOne],
            backend: self.exec.backend,
            threads: self.exec.threads,
            lane_width: self.exec.lane_width,
        }
    }

    /// The session equivalent of this configuration: the execution policy plus
    /// the generator's simulation scope.
    #[must_use]
    pub fn session(&self) -> Session {
        Session::new(self.exec)
            .with_memory_cells(self.memory_cells)
            .with_strategy(self.strategy)
            .with_backgrounds(self.backgrounds.clone())
    }
}

/// Statistics and diagnostics of one generation run.
#[derive(Debug, Clone)]
pub struct GenerationReport {
    elapsed: Duration,
    iterations: usize,
    initial_targets: usize,
    uncovered: Vec<String>,
    element_history: Vec<(String, usize)>,
    removed_operations: usize,
}

impl GenerationReport {
    /// Wall-clock time spent generating (and, when enabled, minimising) the test.
    #[must_use]
    pub fn elapsed(&self) -> Duration {
        self.elapsed
    }

    /// Number of greedy iterations (elements appended).
    #[must_use]
    pub fn iterations(&self) -> usize {
        self.iterations
    }

    /// Number of target instances the generator started from.
    #[must_use]
    pub fn initial_targets(&self) -> usize {
        self.initial_targets
    }

    /// Human-readable descriptions of the target instances that could not be
    /// covered (empty when generation succeeded).
    #[must_use]
    pub fn uncovered(&self) -> &[String] {
        &self.uncovered
    }

    /// Returns `true` if every target instance is covered by the generated test.
    #[must_use]
    pub fn is_complete(&self) -> bool {
        self.uncovered.is_empty()
    }

    /// The appended elements together with the number of target instances each one
    /// newly covered.
    #[must_use]
    pub fn element_history(&self) -> &[(String, usize)] {
        &self.element_history
    }

    /// Number of operations removed by the redundancy-removal pass.
    #[must_use]
    pub fn removed_operations(&self) -> usize {
        self.removed_operations
    }
}

impl fmt::Display for GenerationReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} targets, {} iterations, {} uncovered, {} ops removed, {:.3}s",
            self.initial_targets,
            self.iterations,
            self.uncovered.len(),
            self.removed_operations,
            self.elapsed.as_secs_f64()
        )
    }
}

/// The result of a generation run: the march test plus its generation report.
#[derive(Debug, Clone)]
pub struct GeneratedTest {
    test: MarchTest,
    report: GenerationReport,
}

impl GeneratedTest {
    /// The generated march test.
    #[must_use]
    pub fn test(&self) -> &MarchTest {
        &self.test
    }

    /// Generation statistics and diagnostics.
    #[must_use]
    pub fn report(&self) -> &GenerationReport {
        &self.report
    }

    /// Consumes the result and returns the march test.
    #[must_use]
    pub fn into_test(self) -> MarchTest {
        self.test
    }
}

impl fmt::Display for GeneratedTest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} [{}] ({})",
            self.test,
            self.test.complexity_label(),
            self.report
        )
    }
}

/// The automatic march-test generator.
///
/// The generator follows the structure of the paper's Fig. 5: it repeatedly selects
/// a valid sequence of operations (a candidate march element from
/// [`library_candidates`]), applies it to every memory cell, deletes the target
/// faults it covers and appends the corresponding march element, until the target
/// list is empty. Selection is greedy — the candidate covering the most still
/// uncovered `(fault, placement, background)` instances per operation wins — and
/// every decision is validated with the fault simulator of [`sram_sim`], exactly as
/// the paper validates its tests with its in-house simulator. When the library
/// stalls, an exhaustive pool of short sequences is searched
/// ([`exhaustive_candidates`]); when that stalls too, the remaining targets are
/// reported as uncoverable (the "cannot be covered" branch of Fig. 5).
///
/// # Examples
///
/// ```
/// use march_gen::{GeneratorConfig, MarchGenerator};
/// use sram_fault_model::FaultList;
///
/// let generated = MarchGenerator::new(FaultList::list_2()).generate();
/// assert!(generated.report().is_complete());
/// assert!(generated.test().complexity() <= 11);
/// # let _ = GeneratorConfig::default();
/// ```
#[derive(Debug, Clone)]
pub struct MarchGenerator {
    list: FaultList,
    config: GeneratorConfig,
    name: String,
}

impl MarchGenerator {
    /// Creates a generator targeting `list` with the default configuration.
    #[must_use]
    pub fn new(list: FaultList) -> MarchGenerator {
        MarchGenerator::with_config(list, GeneratorConfig::default())
    }

    /// Creates a generator targeting `list` with an explicit configuration.
    #[must_use]
    pub fn with_config(list: FaultList, config: GeneratorConfig) -> MarchGenerator {
        let name = format!("March GEN[{}]", list.name());
        MarchGenerator { list, config, name }
    }

    /// Overrides the name given to the generated march test.
    #[must_use]
    pub fn named(mut self, name: impl Into<String>) -> MarchGenerator {
        self.name = name.into();
        self
    }

    /// The target fault list.
    #[must_use]
    pub fn fault_list(&self) -> &FaultList {
        &self.list
    }

    /// The generator configuration.
    #[must_use]
    pub fn config(&self) -> &GeneratorConfig {
        &self.config
    }

    /// Runs the generation algorithm and returns the generated march test together
    /// with its report.
    ///
    /// Thin shim over [`MarchGenerator::generate_with`] constructing a
    /// throwaway [`Session`] from the configuration's [`ExecPolicy`]; callers
    /// holding a long-lived session should prefer
    /// [`SessionExt::generate`](crate::SessionExt::generate) or
    /// `generate_with` directly so the worker pool is re-used across runs.
    ///
    /// # Panics
    ///
    /// Panics if the configured memory has fewer than 4 cells (too small to host the
    /// placements of three-cell linked faults).
    #[must_use]
    pub fn generate(&self) -> GeneratedTest {
        self.generate_with(&self.config.session())
    }

    /// Runs the generation algorithm on an existing [`Session`]: **every**
    /// execution knob — backend, worker pool, candidate-batch width and the
    /// wave-vs-per-candidate cost-model factor — comes from the session's
    /// [`ExecPolicy`], never from `config.exec` (the configuration contributes
    /// the simulation scope and the generator-specific knobs only, so a
    /// session/config mismatch cannot silently mix policies). The generated
    /// test is byte-identical to [`MarchGenerator::generate`] for every
    /// policy.
    #[must_use]
    pub fn generate_with(&self, session: &Session) -> GeneratedTest {
        // lint: allow(timing) — generation CPU time is itself a reported
        // quantity (Table 1 of the paper); it never shapes the test.
        let start = Instant::now();
        let policy = session.policy();

        // One batch per fault target: every (placement, background) lane of the
        // target packed behind the session's simulation backend, carrying the
        // simulator state reached after the current march prefix so that
        // scoring a candidate only needs to simulate that element. The
        // enumeration comes from the session's artifact cache, so repeated
        // generate/minimise/verify queries against the same list skip it.
        let mut batches: Vec<TargetBatch> = session
            .target_lanes_scoped(
                &self.list,
                self.config.memory_cells,
                self.config.strategy,
                &self.config.backgrounds,
            )
            .expect("generator scope hosts the fault-list placements")
            .iter()
            .map(|(target, lanes)| {
                TargetBatch::new_with_width(
                    target.clone(),
                    lanes.clone(),
                    self.config.memory_cells,
                    policy.backend,
                    policy.lane_width,
                )
                .with_wave_cost_factor(policy.wave_cost_factor)
            })
            .collect();
        let initial_targets: usize = batches.iter().map(TargetBatch::pending).sum();

        // The march test always starts with the initialisation element ⇕(w·).
        let init = MarchElement::initialise(self.config.initial_write);
        let mut elements = vec![init.clone()];

        for batch in &mut batches {
            batch.advance(&init);
        }
        batches.retain(|batch| batch.pending() > 0);

        let library = self.filter_orders(library_candidates());
        let mut element_history = Vec::new();
        let mut iterations = 0usize;

        while !batches.is_empty() && elements.len() < self.config.max_elements {
            let choice = self
                .best_candidate(session, &library, &batches)
                .filter(|(_, covered)| *covered > 0)
                .or_else(|| {
                    if self.config.repair {
                        self.best_candidate(
                            session,
                            &self.filter_orders(exhaustive_candidates(
                                self.config.repair_max_length,
                            )),
                            &batches,
                        )
                        .filter(|(_, covered)| *covered > 0)
                    } else {
                        None
                    }
                });

            let Some((element, covered)) = choice else {
                break;
            };

            for batch in &mut batches {
                batch.advance(&element);
            }
            batches.retain(|batch| batch.pending() > 0);
            element_history.push((element.to_string(), covered));
            elements.push(element);
            iterations += 1;
        }

        let mut pending = Vec::new();
        let mut uncovered: Vec<String> = Vec::new();
        for batch in &batches {
            pending.clear();
            batch.pending_lanes_into(&mut pending);
            uncovered.extend(pending.iter().map(|lane| {
                format!(
                    "{} @ {} ({:?})",
                    batch.target(),
                    lane.cells,
                    lane.background
                )
            }));
        }

        let mut test = MarchTestBuilder::new(&self.name);
        for element in elements {
            test = test.push(element);
        }
        let mut test = test
            .build()
            .expect("the initialisation element is always present");

        let mut removed_operations = 0usize;
        if self.config.redundancy_removal && uncovered.is_empty() {
            let (minimised, removed) = minimise_with(session, &test, &self.list, &self.config);
            test = minimised.with_name(&self.name);
            removed_operations = removed;
        }

        GeneratedTest {
            test,
            report: GenerationReport {
                elapsed: start.elapsed(),
                iterations,
                initial_targets,
                uncovered,
                element_history,
                removed_operations,
            },
        }
    }

    /// Runs [`MarchGenerator::generate`] and then verifies the generated test with
    /// the fault simulator under the thorough verification configuration, returning
    /// both the generated test and the coverage report.
    #[must_use]
    pub fn generate_verified(&self) -> (GeneratedTest, CoverageReport) {
        let generated = self.generate();
        let report = verify(
            generated.test(),
            &self.list,
            &self.config.verification_config(),
        );
        (generated, report)
    }

    /// Restricts a candidate pool to the configured address orders.
    fn filter_orders(&self, pool: Vec<MarchElement>) -> Vec<MarchElement> {
        pool.into_iter()
            .filter(|element| self.config.allowed_orders.contains(&element.order()))
            .collect()
    }

    /// Scores every candidate against the pending target batches and returns the
    /// best `(element, newly covered lanes)` pair: most newly covered lanes
    /// first, fewest operations as the tie-breaker. Scoring is batched and
    /// fans out over the session's worker pool ([`score_candidates_with`]);
    /// the selection scan is sequential and in candidate order, so the result
    /// is independent of the thread count and batch size.
    fn best_candidate(
        &self,
        session: &Session,
        candidates: &[MarchElement],
        batches: &[TargetBatch],
    ) -> Option<(MarchElement, usize)> {
        let scores = score_candidates_with(session, candidates, batches);
        let mut best: Option<(MarchElement, usize)> = None;
        for (candidate, covered) in candidates.iter().zip(scores) {
            let better = match &best {
                None => true,
                Some((current, current_covered)) => {
                    covered > *current_covered
                        || (covered == *current_covered && candidate.len() < current.len())
                }
            };
            if better {
                best = Some((candidate.clone(), covered));
            }
        }
        best
    }
}

/// Scores a whole candidate pool against a set of pending target batches: the
/// number of still-undetected `(placement, background)` lanes each candidate
/// would newly detect, in candidate order.
///
/// This is the batched hot path of the greedy generator and its repair search.
/// The pool is packed into [`CandidateBatch`]es of at most `batch` elements
/// (`0` = full 64-candidate words, `1` = the per-candidate behaviour), after a
/// stable sort by operation count so words hold similar-length programs and
/// padding stays low, and the `(pool, target batch)` grid is sharded over
/// `threads` workers with [`parallel_map`] (`0` = available parallelism).
/// Scores are merged back in pool order — per-candidate `usize` additions —
/// so the result is byte-identical for every batch size and thread count.
///
/// # Examples
///
/// ```
/// use march_gen::{library_candidates, score_candidates};
/// use sram_fault_model::FaultList;
/// use sram_sim::{enumerate_targets, enumerate_lanes, BackendKind, InitialState,
///     PlacementStrategy, TargetBatch};
///
/// let list = FaultList::list_2();
/// let batches: Vec<TargetBatch> = enumerate_targets(&list)
///     .into_iter()
///     .map(|target| {
///         let lanes = enumerate_lanes(
///             &target, 8, PlacementStrategy::Representative, &[InitialState::AllOne])
///             .unwrap();
///         TargetBatch::new(target, lanes, 8, BackendKind::Packed)
///     })
///     .collect();
/// let pool = library_candidates();
/// let batched = score_candidates(&pool, &batches, 0, 1);
/// let sequential = score_candidates(&pool, &batches, 1, 1);
/// assert_eq!(batched, sequential);
/// ```
#[must_use]
pub fn score_candidates(
    candidates: &[MarchElement],
    batches: &[TargetBatch],
    batch: usize,
    threads: usize,
) -> Vec<usize> {
    if candidates.is_empty() || batches.is_empty() {
        return vec![0; candidates.len()];
    }
    let packed = pack_pools(candidates, batches.len(), batch);
    let results: Vec<Vec<usize>> = parallel_map(&packed.jobs, threads, |&(pool, batch)| {
        batches[batch].score_pool(&packed.pools[pool])
    });
    merge_scores(&packed, results, candidates.len())
}

/// The session form of [`score_candidates`]: the candidate-batch width comes
/// from the session's [`ExecPolicy`] and the `(pool × target batch)` grid is
/// sharded over the session's resident worker pool instead of per-call scoped
/// threads. Scores are byte-identical to the legacy path for every policy.
#[must_use]
pub fn score_candidates_with(
    session: &Session,
    candidates: &[MarchElement],
    batches: &[TargetBatch],
) -> Vec<usize> {
    if candidates.is_empty() || batches.is_empty() {
        return vec![0; candidates.len()];
    }
    let packed = pack_pools(candidates, batches.len(), session.policy().batch);
    let results: Vec<Vec<usize>> = if session.is_parallel() {
        // The pool requires `'static` jobs: pools and jobs are already
        // `Arc`'d by `pack_pools`, so only the target batches are snapshotted
        // (one clone per scoring call, amortised by the per-candidate
        // simulator clones scoring itself performs).
        let pools = Arc::clone(&packed.pools);
        let target_batches = Arc::new(batches.to_vec());
        session.execute(Arc::clone(&packed.jobs), move |&(pool, batch)| {
            target_batches[batch].score_pool(&pools[pool])
        })
    } else {
        packed
            .jobs
            .iter()
            .map(|&(pool, batch)| batches[batch].score_pool(&packed.pools[pool]))
            .collect()
    };
    merge_scores(&packed, results, candidates.len())
}

/// The packed scoring grid: candidate pools from length-sorted candidates plus
/// the `(pool, target batch)` job list. Pools and jobs are `Arc`'d so the
/// session path can ship them to the worker pool without copying.
struct PackedPools {
    /// `order[sorted position] = original candidate index`.
    order: Vec<usize>,
    pools: Arc<Vec<CandidateBatch>>,
    pool_offsets: Vec<usize>,
    jobs: Arc<Vec<(usize, usize)>>,
}

/// Packs words from length-sorted candidates (stable, so equal lengths keep
/// pool order) and shards the `(pool × target batch)` grid: coarse enough to
/// amortise the per-job packed setup, fine enough to keep every worker busy
/// even when the pool fits one word.
fn pack_pools(candidates: &[MarchElement], batches: usize, batch: usize) -> PackedPools {
    let mut order: Vec<usize> = (0..candidates.len()).collect();
    order.sort_by_key(|&index| candidates[index].len());
    let sorted: Vec<MarchElement> = order
        .iter()
        .map(|&index| candidates[index].clone())
        .collect();
    let pools = CandidateBatch::chunked(&sorted, batch);
    let jobs: Vec<(usize, usize)> = (0..pools.len())
        .flat_map(|pool| (0..batches).map(move |batch| (pool, batch)))
        .collect();
    let mut pool_offsets = Vec::with_capacity(pools.len());
    let mut offset = 0usize;
    for pool in &pools {
        pool_offsets.push(offset);
        offset += pool.len();
    }
    PackedPools {
        order,
        pools: Arc::new(pools),
        pool_offsets,
        jobs: Arc::new(jobs),
    }
}

/// Merges per-job pool scores back into candidate order — per-candidate
/// `usize` additions, so the result is byte-identical for every batch size
/// and thread count.
fn merge_scores(packed: &PackedPools, results: Vec<Vec<usize>>, candidates: usize) -> Vec<usize> {
    let mut scores = vec![0usize; candidates];
    for (&(pool, _), pool_scores) in packed.jobs.iter().zip(results) {
        for (index, score) in pool_scores.into_iter().enumerate() {
            scores[packed.order[packed.pool_offsets[pool] + index]] += score;
        }
    }
    scores
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_sensible() {
        let config = GeneratorConfig::default();
        assert_eq!(config.memory_cells, 8);
        assert!(config.redundancy_removal);
        assert!(config.repair);
        let fast = GeneratorConfig::without_redundancy_removal();
        assert!(!fast.redundancy_removal);
        let verification = config.verification_config();
        assert_eq!(verification.backgrounds.len(), 2);
    }

    #[test]
    fn generates_a_complete_test_for_fault_list_2() {
        let generator = MarchGenerator::new(FaultList::list_2()).named("March GEN-LF1");
        let generated = generator.generate();
        assert!(
            generated.report().is_complete(),
            "uncovered: {:?}",
            generated.report().uncovered()
        );
        assert!(generated.test().complexity() <= 11, "{}", generated.test());
        assert_eq!(generated.test().name(), "March GEN-LF1");
        assert!(generated.report().iterations() > 0);
        assert!(!generated.to_string().is_empty());
    }

    #[test]
    fn generated_test_for_list_2_verifies_under_the_thorough_config() {
        let (generated, coverage) = MarchGenerator::new(FaultList::list_2()).generate_verified();
        assert!(coverage.is_complete(), "escapes: {:?}", coverage.escapes());
        assert!(generated.report().is_complete());
    }

    #[test]
    fn redundancy_removal_never_increases_complexity() {
        let list = FaultList::list_2();
        let raw = MarchGenerator::with_config(
            list.clone(),
            GeneratorConfig::without_redundancy_removal(),
        )
        .generate();
        let reduced = MarchGenerator::new(list).generate();
        assert!(reduced.test().complexity() <= raw.test().complexity());
    }

    #[test]
    fn single_order_generation_covers_list_2() {
        // The address-order constraint of the paper's future work: restrict every
        // element to the ascending order and still cover the single-cell LFs.
        let config = GeneratorConfig::single_order(AddressOrder::Ascending);
        let generator = MarchGenerator::with_config(FaultList::list_2(), config);
        let generated = generator.generate();
        assert!(
            generated.report().is_complete(),
            "uncovered: {:?}",
            generated.report().uncovered()
        );
        assert!(generated
            .test()
            .elements()
            .iter()
            .all(|element| element.order() != AddressOrder::Descending));
    }

    #[test]
    fn packed_backend_generates_the_identical_test() {
        let scalar = MarchGenerator::with_config(
            FaultList::list_2(),
            GeneratorConfig::default().with_backend(BackendKind::Scalar),
        )
        .generate();
        let packed =
            MarchGenerator::with_config(FaultList::list_2(), GeneratorConfig::fast()).generate();
        assert_eq!(scalar.test().notation(), packed.test().notation());
        assert_eq!(
            scalar.report().iterations(),
            packed.report().iterations(),
            "greedy choices must not depend on the backend"
        );
        assert!(packed.report().is_complete());
    }

    #[test]
    fn batch_size_and_threads_do_not_change_the_generated_test() {
        let baseline = MarchGenerator::new(FaultList::list_2()).generate();
        for (batch, threads) in [(1, 1), (7, 2), (0, 0)] {
            let config = GeneratorConfig::default()
                .with_batch(batch)
                .with_threads(threads);
            let generated = MarchGenerator::with_config(FaultList::list_2(), config).generate();
            assert_eq!(
                baseline.test().notation(),
                generated.test().notation(),
                "batch {batch}, threads {threads}"
            );
        }
    }

    #[test]
    fn score_candidates_is_invariant_in_batch_and_threads() {
        let list = FaultList::list_2();
        let batches: Vec<TargetBatch> = crate::targets::enumerate_target_lanes(
            &list,
            8,
            PlacementStrategy::Representative,
            &[InitialState::AllZero, InitialState::AllOne],
        )
        .into_iter()
        .map(|(target, lanes)| TargetBatch::new(target, lanes, 8, BackendKind::Packed))
        .collect();
        let pool = crate::exhaustive_candidates(2);
        let baseline = score_candidates(&pool, &batches, 1, 1);
        for (batch, threads) in [(0, 1), (0, 4), (3, 2), (64, 0)] {
            assert_eq!(
                score_candidates(&pool, &batches, batch, threads),
                baseline,
                "batch {batch}, threads {threads}"
            );
        }
        assert!(score_candidates(&[], &batches, 0, 1).is_empty());
        assert_eq!(score_candidates(&pool, &[], 0, 1), vec![0; pool.len()]);
    }

    #[test]
    fn config_builders_set_the_knobs() {
        let config = GeneratorConfig::default()
            .with_backend(BackendKind::Packed)
            .with_threads(4)
            .with_batch(16);
        assert_eq!(config.exec.backend, BackendKind::Packed);
        assert_eq!(config.exec.threads, 4);
        assert_eq!(config.exec.batch, 16);
        assert_eq!(GeneratorConfig::default().exec, ExecPolicy::default());
        let fast = GeneratorConfig::fast();
        assert_eq!(fast.exec.backend, BackendKind::Packed);
        assert_eq!(fast.exec.threads, 0);
        assert_eq!(fast.verification_config().backend, BackendKind::Packed);
    }

    #[test]
    fn verification_config_derives_from_the_shared_policy() {
        // The dedup guarantee: mutating the policy is seen by both generation
        // and verification, so the two can no longer drift apart.
        let config = GeneratorConfig::default().with_exec(
            ExecPolicy::default()
                .with_backend(BackendKind::Scalar)
                .with_threads(3),
        );
        let verification = config.verification_config();
        assert_eq!(verification.backend, config.exec.backend);
        assert_eq!(verification.threads, config.exec.threads);
        let session = config.session();
        assert_eq!(session.policy(), config.exec);
        assert_eq!(session.memory_cells(), config.memory_cells);
    }

    #[test]
    fn report_accessors() {
        let generated = MarchGenerator::new(FaultList::list_2()).generate();
        let report = generated.report();
        assert!(report.initial_targets() >= 32);
        assert!(report.elapsed() > Duration::ZERO);
        assert_eq!(report.uncovered().len(), 0);
        assert!(!report.element_history().is_empty());
        assert!(!report.to_string().is_empty());
        let test = generated.clone().into_test();
        assert_eq!(test.name(), generated.test().name());
    }
}
