//! Target instances: every (fault, cell placement, background) combination a
//! generated march test must detect.

use std::fmt;

use march_test::MarchTest;
use sram_fault_model::FaultList;
use sram_sim::{
    enumerate_decoder_placements, enumerate_lanes, enumerate_placements, CoverageLane,
    DecoderFaultInstance, FaultSimulator, InitialState, InjectedFault, InstanceCells,
    LinkedFaultInstance, PlacementStrategy, TargetKind,
};

/// Enumerates every fault target of `list` together with its coverage lanes —
/// the unit of work handed to [`sram_sim::TargetBatch`] by the generator and
/// the redundancy-removal pass.
#[must_use]
pub(crate) fn enumerate_target_lanes(
    list: &FaultList,
    memory_cells: usize,
    strategy: PlacementStrategy,
    backgrounds: &[InitialState],
) -> Vec<(TargetKind, Vec<CoverageLane>)> {
    sram_sim::enumerate_targets(list)
        .into_iter()
        .map(|target| {
            let lanes = enumerate_lanes(&target, memory_cells, strategy, backgrounds)
                .expect("generator scope hosts the fault-list placements");
            (target, lanes)
        })
        .collect()
}

/// One concrete detection obligation of the generator: a fault of the target list,
/// instantiated on a specific cell assignment, simulated from a specific initial
/// memory content.
///
/// The generator works at this granularity because a march test may need different
/// elements (e.g. an ascending and a descending one) to cover the different
/// placements of the same fault.
#[derive(Debug, Clone)]
pub struct TargetInstance {
    target: TargetKind,
    cells: InstanceCells,
    background: InitialState,
    memory_cells: usize,
}

impl TargetInstance {
    /// Enumerates every target instance of a fault list.
    ///
    /// # Panics
    ///
    /// Panics if `memory_cells < 4` (the placement enumeration needs room for three
    /// distinct cells).
    #[must_use]
    pub fn enumerate(
        list: &FaultList,
        memory_cells: usize,
        strategy: PlacementStrategy,
        backgrounds: &[InitialState],
    ) -> Vec<TargetInstance> {
        let mut instances = Vec::new();
        for primitive in list.simple() {
            let topology = if primitive.is_coupling() {
                sram_fault_model::LinkTopology::Lf2CouplingThenSingle
            } else {
                sram_fault_model::LinkTopology::Lf1
            };
            let placements = enumerate_placements(topology, memory_cells, strategy)
                .expect("target instances use validated memory configurations");
            for cells in placements {
                for background in backgrounds {
                    instances.push(TargetInstance {
                        target: TargetKind::Simple(primitive.clone()),
                        cells,
                        background: background.clone(),
                        memory_cells,
                    });
                }
            }
        }
        for fault in list.linked() {
            let placements = enumerate_placements(fault.topology(), memory_cells, strategy)
                .expect("target instances use validated memory configurations");
            for cells in placements {
                for background in backgrounds {
                    instances.push(TargetInstance {
                        target: TargetKind::Linked(fault.clone()),
                        cells,
                        background: background.clone(),
                        memory_cells,
                    });
                }
            }
        }
        for fault in list.decoders() {
            let placements = enumerate_decoder_placements(*fault, memory_cells, strategy)
                .expect("target instances use validated memory configurations");
            for cells in placements {
                for background in backgrounds {
                    instances.push(TargetInstance {
                        target: TargetKind::Decoder(*fault),
                        cells,
                        background: background.clone(),
                        memory_cells,
                    });
                }
            }
        }
        instances
    }

    /// The fault being instantiated.
    #[must_use]
    pub fn target(&self) -> &TargetKind {
        &self.target
    }

    /// The cell assignment of the instance.
    #[must_use]
    pub fn cells(&self) -> InstanceCells {
        self.cells
    }

    /// The initial memory content of the instance.
    #[must_use]
    pub fn background(&self) -> &InitialState {
        &self.background
    }

    /// Builds a fault simulator with this instance injected and the configured
    /// background loaded.
    #[must_use]
    pub fn simulator(&self) -> FaultSimulator {
        let mut simulator = FaultSimulator::new(self.memory_cells, &self.background)
            .expect("target instances use validated memory configurations");
        match &self.target {
            TargetKind::Simple(primitive) => {
                let injected = if primitive.is_coupling() {
                    InjectedFault::coupling(
                        primitive.clone(),
                        self.cells.aggressor_first.expect("pair placement"),
                        self.cells.victim,
                        self.memory_cells,
                    )
                } else {
                    InjectedFault::single_cell(
                        primitive.clone(),
                        self.cells.victim,
                        self.memory_cells,
                    )
                }
                .expect("enumerated placements are valid");
                simulator.inject(injected);
            }
            TargetKind::Linked(fault) => {
                let instance =
                    LinkedFaultInstance::new(fault.clone(), self.cells, self.memory_cells)
                        .expect("enumerated placements are valid");
                simulator.inject_linked(&instance);
            }
            TargetKind::Decoder(fault) => {
                let instance = DecoderFaultInstance::new(*fault, self.cells, self.memory_cells)
                    .expect("enumerated placements are valid");
                simulator.inject_decoder(instance);
            }
        }
        simulator
    }

    /// Returns `true` if `test` detects this instance.
    #[must_use]
    pub fn is_detected_by(&self, test: &MarchTest) -> bool {
        let mut simulator = self.simulator();
        sram_sim::run_march(test, &mut simulator).detected()
    }
}

impl fmt::Display for TargetInstance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} @ {} ({:?})",
            self.target, self.cells, self.background
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use march_test::catalog;
    use sram_fault_model::LinkTopology;

    #[test]
    fn enumeration_counts() {
        let list = FaultList::list_2();
        let instances = TargetInstance::enumerate(
            &list,
            8,
            PlacementStrategy::Representative,
            &[InitialState::AllOne],
        );
        // LF1 faults have exactly one representative placement each.
        assert_eq!(instances.len(), list.linked().len());

        let both = TargetInstance::enumerate(
            &list,
            8,
            PlacementStrategy::Representative,
            &[InitialState::AllZero, InitialState::AllOne],
        );
        assert_eq!(both.len(), 2 * list.linked().len());
    }

    #[test]
    fn list_1_instances_cover_every_topology_placement() {
        let list = FaultList::list_1();
        let instances = TargetInstance::enumerate(
            &list,
            8,
            PlacementStrategy::Representative,
            &[InitialState::AllOne],
        );
        let lf3_count = list
            .linked()
            .iter()
            .filter(|lf| lf.topology() == LinkTopology::Lf3)
            .count();
        // LF3 gets 6 placements, LF2 gets 2, LF1 gets 1.
        assert!(instances.len() > list.linked().len() + 5 * lf3_count);
    }

    #[test]
    fn detection_matches_direct_simulation() {
        let list = FaultList::list_2();
        let instances = TargetInstance::enumerate(
            &list,
            8,
            PlacementStrategy::Representative,
            &[InitialState::AllOne],
        );
        let abl1 = catalog::march_abl1();
        assert!(instances
            .iter()
            .all(|instance| instance.is_detected_by(&abl1)));
        let mats = catalog::mats_plus();
        assert!(instances
            .iter()
            .any(|instance| !instance.is_detected_by(&mats)));
    }

    #[test]
    fn batch_incremental_execution_matches_full_runs() {
        let list = FaultList::list_2();
        let abl1 = catalog::march_abl1();
        for backend in [sram_sim::BackendKind::Scalar, sram_sim::BackendKind::Packed] {
            for (target, lanes) in enumerate_target_lanes(
                &list,
                8,
                PlacementStrategy::Representative,
                &[InitialState::AllOne],
            ) {
                let lane_count = lanes.len();
                let mut batch = sram_sim::TargetBatch::new(target, lanes, 8, backend);
                let mut newly = 0usize;
                for (_, element) in abl1.iter() {
                    newly += batch.advance(element);
                }
                assert_eq!(newly, lane_count, "ABL1 covers list #2 incrementally");
                assert_eq!(batch.pending(), 0);
            }
        }
    }

    #[test]
    fn display_mentions_the_cells() {
        let list = FaultList::list_2();
        let instances = TargetInstance::enumerate(
            &list,
            8,
            PlacementStrategy::Representative,
            &[InitialState::AllOne],
        );
        assert!(instances[0].to_string().contains("v="));
    }
}
