//! Session-based entry points of the generation pipeline: [`SessionExt`]
//! extends [`sram_sim::Session`] with `generate`, `minimise` and `verify`, so
//! the whole paper pipeline — fault list → coverage → greedy generation →
//! redundancy removal → diagnosis — runs through **one** engine handle and one
//! [`ExecPolicy`](sram_sim::ExecPolicy).

use std::fmt;

use march_test::MarchTest;
use sram_fault_model::FaultList;
use sram_sim::{CoverageReport, JsonObject, Report, Session};

use crate::optimize::minimise_with;
use crate::{GeneratedTest, GeneratorConfig, MarchGenerator};

/// The result of a session minimisation: the shortened march test plus the
/// number of operations removed, with the common [`Report`] surface.
#[derive(Debug, Clone)]
pub struct MinimisationReport {
    test: MarchTest,
    removed: usize,
}

impl MinimisationReport {
    /// The minimised march test.
    #[must_use]
    pub fn test(&self) -> &MarchTest {
        &self.test
    }

    /// Number of operations the removal pass deleted.
    #[must_use]
    pub fn removed_operations(&self) -> usize {
        self.removed
    }

    /// Consumes the report and returns the minimised test.
    #[must_use]
    pub fn into_test(self) -> MarchTest {
        self.test
    }
}

impl fmt::Display for MinimisationReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "removed {} operations -> {} [{}]",
            self.removed,
            self.test,
            self.test.complexity_label()
        )
    }
}

impl Report for MinimisationReport {
    fn kind(&self) -> &'static str {
        "minimisation"
    }

    fn summary(&self) -> String {
        self.to_string()
    }

    fn detail_lines(&self) -> Vec<String> {
        vec![self.test.notation()]
    }

    fn to_json(&self) -> String {
        JsonObject::new()
            .string("report", self.kind())
            .string("name", self.test.name())
            .string("notation", &self.test.notation())
            .number("complexity", self.test.complexity() as u64)
            .number("removed_operations", self.removed as u64)
            .build()
    }
}

impl Report for GeneratedTest {
    fn kind(&self) -> &'static str {
        "generation"
    }

    fn summary(&self) -> String {
        self.to_string()
    }

    fn detail_lines(&self) -> Vec<String> {
        self.report()
            .element_history()
            .iter()
            .map(|(element, covered)| format!("{element} -> {covered} newly covered"))
            .chain(
                self.report()
                    .uncovered()
                    .iter()
                    .map(|target| format!("uncovered: {target}")),
            )
            .collect()
    }

    fn to_json(&self) -> String {
        let history = self
            .report()
            .element_history()
            .iter()
            .map(|(element, covered)| {
                JsonObject::new()
                    .string("element", element)
                    .number("covered", *covered as u64)
                    .build()
            });
        JsonObject::new()
            .string("report", self.kind())
            .string("name", self.test().name())
            .string("notation", &self.test().notation())
            .number("complexity", self.test().complexity() as u64)
            .boolean("complete", self.report().is_complete())
            .number("initial_targets", self.report().initial_targets() as u64)
            .number("iterations", self.report().iterations() as u64)
            .number(
                "removed_operations",
                self.report().removed_operations() as u64,
            )
            .float("elapsed_s", self.report().elapsed().as_secs_f64())
            .strings("uncovered", self.report().uncovered().iter().cloned())
            .raw_array("element_history", history)
            .build()
    }
}

/// Pipeline entry points on [`Session`]: march-test generation, redundancy
/// removal and simulator-backed verification, all inheriting the session's
/// [`ExecPolicy`](sram_sim::ExecPolicy) and simulation scope.
pub trait SessionExt {
    /// Generates a march test for `list` with the paper's default generator
    /// setup, scoring candidates and re-verifying removals on this session's
    /// worker pool. Byte-identical to
    /// [`MarchGenerator::generate`] under the same policy.
    ///
    /// # Examples
    ///
    /// ```
    /// use march_gen::SessionExt;
    /// use sram_fault_model::FaultList;
    /// use sram_sim::{ExecPolicy, Session};
    ///
    /// let session = Session::new(ExecPolicy::fast());
    /// let generated = session.generate(&FaultList::list_2());
    /// assert!(generated.report().is_complete());
    /// ```
    fn generate(&self, list: &FaultList) -> GeneratedTest;

    /// Like [`SessionExt::generate`] with an explicit generator configuration
    /// (orders, repair pool, redundancy removal, …). The configuration's
    /// `exec` policy and scope are overridden by the session's.
    fn generate_with_config(&self, list: &FaultList, config: GeneratorConfig) -> GeneratedTest;

    /// Removes redundant operations from `test` while preserving complete
    /// coverage of `list` — the session form of
    /// [`minimise`](crate::minimise), returning a typed [`MinimisationReport`].
    ///
    /// # Examples
    ///
    /// ```
    /// use march_gen::SessionExt;
    /// use march_test::MarchTest;
    /// use sram_fault_model::FaultList;
    /// use sram_sim::Session;
    ///
    /// let session = Session::default();
    /// let padded = MarchTest::parse("padded", "⇕(w0); ⇕(w0,r0,r0,w1); ⇕(w1,r1,r1,w0); ⇕(r0,r0)")?;
    /// let report = session.minimise(&padded, &FaultList::list_2());
    /// assert!(report.removed_operations() >= 2);
    /// # Ok::<(), march_test::ParseMarchError>(())
    /// ```
    fn minimise(&self, test: &MarchTest, list: &FaultList) -> MinimisationReport;

    /// Verifies `test` against `list` by fault simulation under the session's
    /// scope — the session form of [`verify`](crate::verify), identical to
    /// [`Session::coverage`].
    ///
    /// # Examples
    ///
    /// ```
    /// use march_gen::SessionExt;
    /// use march_test::catalog;
    /// use sram_fault_model::FaultList;
    /// use sram_sim::Session;
    ///
    /// let session = Session::default();
    /// let report = session.verify(&catalog::march_sl(), &FaultList::list_2());
    /// assert!(report.is_complete());
    /// ```
    fn verify(&self, test: &MarchTest, list: &FaultList) -> CoverageReport;
}

/// The generator configuration equivalent to a session's policy and scope.
fn generator_config(session: &Session) -> GeneratorConfig {
    GeneratorConfig {
        memory_cells: session.memory_cells(),
        strategy: session.strategy(),
        backgrounds: session.backgrounds().to_vec(),
        exec: session.policy(),
        ..GeneratorConfig::default()
    }
}

impl SessionExt for Session {
    fn generate(&self, list: &FaultList) -> GeneratedTest {
        self.generate_with_config(list, GeneratorConfig::default())
    }

    fn generate_with_config(&self, list: &FaultList, config: GeneratorConfig) -> GeneratedTest {
        let config = GeneratorConfig {
            memory_cells: self.memory_cells(),
            strategy: self.strategy(),
            backgrounds: self.backgrounds().to_vec(),
            exec: self.policy(),
            ..config
        };
        MarchGenerator::with_config(list.clone(), config).generate_with(self)
    }

    fn minimise(&self, test: &MarchTest, list: &FaultList) -> MinimisationReport {
        let config = generator_config(self);
        let (test, removed) = minimise_with(self, test, list, &config);
        MinimisationReport { test, removed }
    }

    fn verify(&self, test: &MarchTest, list: &FaultList) -> CoverageReport {
        self.coverage(test, list)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use march_test::catalog;
    use sram_sim::{measure_coverage, BackendKind, ExecPolicy};

    #[test]
    fn session_generate_matches_the_legacy_generator() {
        let list = FaultList::list_2();
        let legacy = MarchGenerator::new(list.clone()).generate();
        for policy in [
            ExecPolicy::default(),
            ExecPolicy::default().with_threads(2).with_batch(7),
            ExecPolicy::default().with_backend(BackendKind::Scalar),
        ] {
            let session = Session::new(policy);
            let generated = session.generate(&list);
            assert_eq!(
                generated.test().notation(),
                legacy.test().notation(),
                "policy {policy:?}"
            );
            assert_eq!(
                generated.report().iterations(),
                legacy.report().iterations()
            );
        }
    }

    #[test]
    fn session_minimise_matches_the_legacy_pass() {
        let padded = MarchTest::parse(
            "padded ABL1",
            "⇕(w0); ⇕(w0,r0,r0,w1); ⇕(w1,r1,r1,w0); ⇕(r0,r0)",
        )
        .unwrap();
        let list = FaultList::list_2();
        let (legacy_test, legacy_removed) =
            crate::minimise(&padded, &list, &GeneratorConfig::default());
        let session = Session::default();
        let report = session.minimise(&padded, &list);
        assert_eq!(report.test().notation(), legacy_test.notation());
        assert_eq!(report.removed_operations(), legacy_removed);
        assert!(report.summary().contains("removed"));
        assert!(report
            .to_json()
            .starts_with("{\"report\": \"minimisation\""));
        assert_eq!(report.detail_lines(), vec![legacy_test.notation()]);
        assert_eq!(
            report.clone().into_test().notation(),
            legacy_test.notation()
        );
    }

    #[test]
    fn session_verify_matches_measure_coverage() {
        let session = Session::default();
        let list = FaultList::list_2();
        let report = session.verify(&catalog::march_sl(), &list);
        let legacy = measure_coverage(&catalog::march_sl(), &list, &session.coverage_config());
        assert_eq!(report, legacy);
    }

    #[test]
    fn engine_sessions_share_artifacts_across_generator_runs() {
        let engine = sram_sim::SharedEngine::new(ExecPolicy::default().with_threads(2));
        let list = FaultList::list_2();
        let baseline = Session::new(ExecPolicy::default()).generate(&list);

        let first = engine.session().generate(&list);
        let hits_after_first = engine.cache_hits();
        let second = engine.session().generate(&list);

        assert_eq!(first.test().notation(), baseline.test().notation());
        assert_eq!(second.test().notation(), baseline.test().notation());
        // The generator re-simulates candidate tests but enumerates the fault
        // lanes once per scope: the second run over a fresh handle must be all
        // hits on the shared store, with no new enumeration work.
        assert_eq!(engine.store().enumerations(), 1);
        assert!(engine.cache_hits() > hits_after_first);
        assert_eq!(engine.workers_spawned(), 1);
    }

    #[test]
    fn generated_test_report_serialises() {
        let generated = Session::default().generate(&FaultList::list_2());
        let json = generated.to_json();
        assert!(json.starts_with("{\"report\": \"generation\""));
        assert!(json.contains("\"complete\": true"));
        assert!(json.contains("\"element_history\": ["));
        assert!(!generated.detail_lines().is_empty());
        assert_eq!(generated.summary(), generated.to_string());
    }
}
