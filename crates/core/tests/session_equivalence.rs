//! Property-based equivalence of the session-based generation pipeline and
//! the legacy free functions: for random execution policies (backend × thread
//! count × batch width × wave-cost factor), `session.generate`,
//! `session.minimise` and `session.verify` must be byte-identical to the
//! legacy `MarchGenerator::generate` / `minimise` / `verify` paths.

use std::sync::OnceLock;

use march_gen::{minimise, GeneratorConfig, MarchGenerator, SessionExt};
use march_test::MarchTest;
use proptest::prelude::*;
use sram_fault_model::FaultList;
use sram_sim::{BackendKind, ExecPolicy, Session};

fn arbitrary_policy() -> impl Strategy<Value = ExecPolicy> {
    (
        prop_oneof![Just(BackendKind::Scalar), Just(BackendKind::Packed)],
        0usize..4,
        prop_oneof![Just(0usize), Just(1usize), Just(7usize), Just(64usize)],
        prop_oneof![Just(1usize), Just(3usize), Just(10usize)],
    )
        .prop_map(|(backend, threads, batch, factor)| {
            ExecPolicy::default()
                .with_backend(backend)
                .with_threads(threads)
                .with_batch(batch)
                .with_wave_cost_factor(factor)
        })
}

/// The serial-default legacy generation baseline, computed once.
fn legacy_generation() -> &'static (String, usize) {
    static BASELINE: OnceLock<(String, usize)> = OnceLock::new();
    BASELINE.get_or_init(|| {
        let generated = MarchGenerator::new(FaultList::list_2()).generate();
        (generated.test().notation(), generated.report().iterations())
    })
}

fn padded_test() -> MarchTest {
    MarchTest::parse(
        "padded ABL1",
        "⇕(w0); ⇕(w0,r0,r0,w1); ⇕(w1,r1,r1,w0); ⇕(r0,r0)",
    )
    .expect("valid notation")
}

/// The serial-default legacy minimisation baseline, computed once.
fn legacy_minimisation() -> &'static (String, usize) {
    static BASELINE: OnceLock<(String, usize)> = OnceLock::new();
    BASELINE.get_or_init(|| {
        let (test, removed) = minimise(
            &padded_test(),
            &FaultList::list_2(),
            &GeneratorConfig::default(),
        );
        (test.notation(), removed)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The generated test (notation *and* greedy iteration count) is invariant
    /// in the whole execution policy, through sessions and the legacy path.
    #[test]
    fn session_generation_is_policy_invariant(policy in arbitrary_policy()) {
        let list = FaultList::list_2();
        let (expected_notation, expected_iterations) = legacy_generation();

        let session = Session::new(policy);
        let generated = session.generate(&list);
        prop_assert_eq!(&generated.test().notation(), expected_notation, "policy {:?}", policy);
        prop_assert_eq!(generated.report().iterations(), *expected_iterations);

        // The legacy path with the same policy agrees too.
        let legacy = MarchGenerator::with_config(
            list,
            GeneratorConfig::default().with_exec(policy),
        )
        .generate();
        prop_assert_eq!(&legacy.test().notation(), expected_notation);
    }

    /// The minimised test and removal count are invariant in the policy.
    #[test]
    fn session_minimisation_is_policy_invariant(policy in arbitrary_policy()) {
        let list = FaultList::list_2();
        let (expected_notation, expected_removed) = legacy_minimisation();

        let session = Session::new(policy);
        let report = session.minimise(&padded_test(), &list);
        prop_assert_eq!(&report.test().notation(), expected_notation, "policy {:?}", policy);
        prop_assert_eq!(report.removed_operations(), *expected_removed);
    }

    /// `session.verify` equals the legacy `verify` free function under the
    /// configuration derived from the same policy.
    #[test]
    fn session_verification_is_policy_invariant(policy in arbitrary_policy()) {
        let list = FaultList::list_2();
        let test = march_test::catalog::march_sl();
        let session = Session::new(policy);
        let config = GeneratorConfig::default()
            .with_exec(policy)
            .verification_config();
        prop_assert_eq!(
            session.verify(&test, &list),
            march_gen::verify(&test, &list, &config)
        );
    }
}
