//! Property-based equivalence of the suffix-only redundancy-removal pass and
//! the legacy full re-simulation oracle: for random execution policies
//! (backend × thread count × batch width × wave-cost factor), random input
//! tests and random simulation scopes, `minimise_with` (per-element snapshot
//! checkpoints, suffix-only trials, move-to-front probe order) must be
//! byte-identical to `minimise_full_resim` (every trial re-verified from
//! scratch).

use march_gen::{minimise_full_resim, minimise_with, GeneratorConfig};
use march_test::{catalog, MarchTest};
use proptest::prelude::*;
use sram_fault_model::FaultList;
use sram_sim::{BackendKind, ExecPolicy, PlacementStrategy};

fn arbitrary_policy() -> impl Strategy<Value = ExecPolicy> {
    (
        prop_oneof![Just(BackendKind::Scalar), Just(BackendKind::Packed)],
        0usize..4,
        prop_oneof![Just(0usize), Just(1usize), Just(7usize)],
        prop_oneof![Just(1usize), Just(3usize)],
    )
        .prop_map(|(backend, threads, batch, factor)| {
            ExecPolicy::default()
                .with_backend(backend)
                .with_threads(threads)
                .with_batch(batch)
                .with_wave_cost_factor(factor)
        })
}

/// Input tests spanning the interesting shapes: a padded near-minimal test,
/// heavily redundant catalogue tests (many accepted removals), an
/// already-minimal test (all trials rejected) and an incomplete test (the
/// pass must bail out untouched).
fn arbitrary_test() -> impl Strategy<Value = MarchTest> {
    prop_oneof![
        Just(
            MarchTest::parse(
                "padded ABL1",
                "⇕(w0); ⇕(w0,r0,r0,w1); ⇕(w1,r1,r1,w0); ⇕(r0,r0)",
            )
            .expect("valid notation")
        ),
        Just(catalog::march_sl()),
        Just(catalog::march_ss()),
        Just(catalog::march_abl1()),
        Just(catalog::mats_plus()),
    ]
}

fn arbitrary_scope() -> impl Strategy<Value = (PlacementStrategy, usize)> {
    prop_oneof![
        Just((PlacementStrategy::Representative, 8usize)),
        Just((PlacementStrategy::Exhaustive, 6usize)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The snapshot-based pass and the full re-simulation oracle agree on the
    /// minimised notation and the removal count for every policy, input test
    /// and scope.
    #[test]
    fn suffix_minimisation_matches_full_resimulation(
        policy in arbitrary_policy(),
        test in arbitrary_test(),
        scope in arbitrary_scope(),
    ) {
        let (strategy, memory_cells) = scope;
        let list = FaultList::list_2();
        let config = GeneratorConfig {
            strategy,
            memory_cells,
            exec: policy,
            ..GeneratorConfig::default()
        };
        let session = config.session();
        let (fast_test, fast_removed) = minimise_with(&session, &test, &list, &config);
        let (full_test, full_removed) = minimise_full_resim(&session, &test, &list, &config);
        prop_assert_eq!(
            fast_test.notation(),
            full_test.notation(),
            "policy {:?}, test {}, strategy {:?}",
            policy,
            test.name(),
            strategy
        );
        prop_assert_eq!(fast_removed, full_removed);
    }

    /// Thread count and batch width never change the minimised test — the
    /// sharded `(target × suffix)` trials merge to the serial verdict.
    #[test]
    fn suffix_minimisation_is_policy_invariant(policy in arbitrary_policy()) {
        let list = FaultList::list_2();
        let test = catalog::march_sl();
        let config = GeneratorConfig {
            exec: policy,
            ..GeneratorConfig::default()
        };
        let baseline_config = GeneratorConfig::default();
        let baseline = minimise_with(
            &baseline_config.session(),
            &test,
            &list,
            &baseline_config,
        );
        let session = config.session();
        let (minimised, removed) = minimise_with(&session, &test, &list, &config);
        prop_assert_eq!(minimised.notation(), baseline.0.notation(), "policy {:?}", policy);
        prop_assert_eq!(removed, baseline.1);
    }
}
