//! `march-lint` self-tests: the known-bad fixtures under `tests/fixtures/`
//! must each produce exactly the expected findings, the known-good ones none,
//! and the workspace this crate ships in must scan clean.

use std::path::Path;

use march_lint::{check_crate_root, rules_for, run_at, scan_source, FileRules, Finding};

const ALL_RULES: FileRules = FileRules {
    unwrap: true,
    timing: true,
    json: true,
    snapshot_io: true,
};

fn scan(fixture: &str, source: &str) -> Vec<Finding> {
    scan_source(fixture, source, &ALL_RULES)
}

fn rules_of(findings: &[Finding]) -> Vec<&'static str> {
    findings.iter().map(|f| f.rule).collect()
}

#[test]
fn flags_bare_unwrap_and_expect() {
    let findings = scan("unwrap_bad.rs", include_str!("fixtures/unwrap_bad.rs"));
    assert_eq!(rules_of(&findings), ["unwrap", "unwrap"]);
    assert_eq!(findings.iter().map(|f| f.line).collect::<Vec<_>>(), [4, 5]);
}

#[test]
fn flags_ambient_clocks_and_spawns() {
    let findings = scan("timing_bad.rs", include_str!("fixtures/timing_bad.rs"));
    assert_eq!(rules_of(&findings), ["timing", "timing", "timing"]);
    assert_eq!(
        findings.iter().map(|f| f.line).collect::<Vec<_>>(),
        [4, 5, 6]
    );
}

#[test]
fn flags_hand_rolled_json_in_escaped_and_raw_strings() {
    let findings = scan("json_bad.rs", include_str!("fixtures/json_bad.rs"));
    assert_eq!(rules_of(&findings), ["json", "json"]);
    assert_eq!(findings.iter().map(|f| f.line).collect::<Vec<_>>(), [4, 5]);
}

#[test]
fn flags_direct_fs_access_on_the_snapshot_path() {
    let findings = scan(
        "snapshot_io_bad.rs",
        include_str!("fixtures/snapshot_io_bad.rs"),
    );
    assert_eq!(rules_of(&findings), ["snapshot-io", "snapshot-io"]);
    assert_eq!(findings.iter().map(|f| f.line).collect::<Vec<_>>(), [4, 5]);
}

#[test]
fn sanctioned_snapshot_io_impl_is_clean() {
    let findings = scan(
        "snapshot_io_ok.rs",
        include_str!("fixtures/snapshot_io_ok.rs"),
    );
    assert_eq!(
        findings,
        [],
        "trait-routed I/O and the marked SnapshotIo impl must pass"
    );
}

#[test]
fn flags_missing_forbid_unsafe() {
    let finding = check_crate_root(
        "missing_forbid.rs",
        include_str!("fixtures/missing_forbid.rs"),
    )
    .expect("fixture lacks the attribute");
    assert_eq!(finding.rule, "forbid-unsafe");

    // And the real attribute satisfies the check.
    assert!(check_crate_root("ok.rs", "#![forbid(unsafe_code)]\npub fn f() {}\n").is_none());
}

#[test]
fn justified_markers_suppress_findings() {
    let findings = scan("allow_ok.rs", include_str!("fixtures/allow_ok.rs"));
    assert_eq!(findings, [], "justified markers must silence every rule");
}

#[test]
fn marker_without_justification_is_flagged() {
    let findings = scan(
        "allow_missing_justification.rs",
        include_str!("fixtures/allow_missing_justification.rs"),
    );
    assert_eq!(rules_of(&findings), ["marker"]);
    assert_eq!(findings[0].line, 5);
}

#[test]
fn test_modules_are_exempt() {
    let findings = scan("test_mod_ok.rs", include_str!("fixtures/test_mod_ok.rs"));
    assert_eq!(findings, [], "cfg(test) bodies must be skipped");
}

#[test]
fn tokens_in_strings_and_comments_are_inert() {
    let findings = scan(
        "strings_comments_ok.rs",
        include_str!("fixtures/strings_comments_ok.rs"),
    );
    assert_eq!(findings, [], "the cleaner must strip comments and strings");
}

#[test]
fn classification_matches_the_config() {
    let serve = rules_for("crates/cli/src/serve.rs").expect("serve path is scanned");
    assert!(serve.unwrap && serve.timing && serve.json && !serve.snapshot_io);

    let snapshot = rules_for("crates/memsim/src/snapshot.rs").expect("snapshot path is scanned");
    assert!(
        snapshot.unwrap && snapshot.snapshot_io,
        "the snapshot layer sits on both the serve and persistence paths"
    );
    let session = rules_for("crates/memsim/src/session.rs").expect("session is scanned");
    assert!(session.snapshot_io);

    let core = rules_for("crates/core/src/generator.rs").expect("library code is scanned");
    assert!(!core.unwrap && core.timing && core.json && !core.snapshot_io);

    let bench = rules_for("crates/bench/src/bin/table1.rs").expect("bench code is scanned");
    assert!(!bench.unwrap && !bench.timing && !bench.json);

    let facade = rules_for("crates/memsim/src/sync.rs").expect("façade is scanned");
    assert!(!facade.timing, "the sync façade is the sanctioned doorway");

    assert_eq!(rules_for("crates/cli/tests/golden.rs"), None);
    assert_eq!(rules_for("crates/lint/tests/fixtures/unwrap_bad.rs"), None);
}

#[test]
fn the_workspace_scans_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("crates/lint sits two levels under the workspace root");
    let summary = run_at(root).expect("workspace scan succeeds");
    assert!(
        summary.findings.is_empty(),
        "march-lint findings in the workspace:\n{}",
        summary
            .findings
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
    assert!(summary.files > 50, "scan walked the whole workspace");
    assert!(summary.crates >= 8, "scan checked every crate root");
}
