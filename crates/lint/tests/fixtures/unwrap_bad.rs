// Known-bad fixture: bare unwrap/expect on a serve-path file.

pub fn fetch(values: &[u32]) -> u32 {
    let first = values.first().unwrap();
    let second = values.get(1).expect("second value");
    first + second
}
