//! Known-bad fixture: direct `std::fs` access on the snapshot path.

pub fn sneaky_persist(path: &str, bytes: &[u8]) -> std::io::Result<()> {
    std::fs::write(path, bytes)?;
    std::fs::rename(path, "final.snap")
}
