// Known-good fixture: every flagged construct carries a justified marker,
// including a preceding marker whose justification wraps onto a second
// comment line, a trailing same-line marker, and a whole-file marker.

// lint: allow-file(json) — this fixture emits no report bytes; the literal
// below exercises the whole-file marker path.

pub fn blessed(values: &[u32]) -> u32 {
    // lint: allow(unwrap) — the caller guarantees a non-empty slice and the
    // justification continues on a second comment line.
    let first = values.first().unwrap();
    let second = values.get(1).expect("second value"); // lint: allow(unwrap) — trailing marker form
    let _script = r#"{"op": "stats"}"#;
    first + second
}

pub fn blessed_timing() -> std::time::Instant {
    // lint: allow(timing) — fixture stands in for a sanctioned façade site.
    std::time::Instant::now()
}
