//! Known-good fixture: the sanctioned `SnapshotIo` impl blesses each
//! filesystem call with a justified marker, and trait-routed code never
//! touches `std::fs` at all.

pub fn persist_via_trait(io: &dyn crate::SnapshotIo, path: &str, bytes: &[u8]) {
    io.write_file(path, bytes);
}

pub fn sanctioned_impl(path: &str) -> std::io::Result<Vec<u8>> {
    // lint: allow(snapshot-io) — this *is* the sanctioned SnapshotIo impl.
    std::fs::read(path)
}
