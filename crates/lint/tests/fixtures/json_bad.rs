// Known-bad fixture: hand-rolled JSON object literals, escaped and raw.

pub fn payload(ok: bool) -> String {
    let head = "{\"seq\": 0, \"ok\": ".to_string();
    let tail = r#"{"kind": "timeout"}"#;
    format!("{head}{ok}, \"error\": {tail}}}")
}
