// Known-good fixture: rule tokens inside comments, doc comments, string
// literals, raw strings and char/lifetime syntax must never trigger.
//
// Instant::now( and thread::spawn( and .unwrap() in a comment are fine.

/// Docs may say `.expect(` or show `{"op": "stats"}` freely.
pub fn describe<'a>(label: &'a str) -> String {
    let advice = "never call .unwrap() or Instant::now( on the serve path";
    let brace = '{';
    let quote = '"';
    /* block comments too: SystemTime, thread::spawn(, .expect( — all inert,
    even /* nested */ ones */
    let raw = r##"tokens like .unwrap() or Instant::now( stay inert in raw strings"##;
    format!("{label}: {advice} {brace}{quote} {raw}")
}
