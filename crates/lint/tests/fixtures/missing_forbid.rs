//! Known-bad fixture: a crate root without `#![forbid(unsafe_code)]`.

#![warn(missing_docs)]

/// Does nothing.
pub fn noop() {}
