// Known-bad fixture: ambient clock reads and an ad-hoc thread spawn.

pub fn measure() -> std::time::Duration {
    let start = std::time::Instant::now();
    let _stamp = std::time::SystemTime::now();
    let worker = std::thread::spawn(|| 42);
    let _ = worker.join();
    start.elapsed()
}
