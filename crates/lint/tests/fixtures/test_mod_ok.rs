// Known-good fixture: unwraps, clocks and spawns inside `#[cfg(test)]` and
// `#[cfg(all(test, interleave))]` module bodies are exempt; the cfg'd `use`
// (no body) must not start a skip region.

#[cfg(test)]
use std::time::Duration;

pub fn add(a: u32, b: u32) -> u32 {
    a + b
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwraps_freely() {
        let start = std::time::Instant::now();
        let worker = std::thread::spawn(|| "{\"ok\": true}".to_string());
        let line = worker.join().unwrap();
        assert!(line.contains("ok"));
        let _ = start.elapsed();
    }
}

#[cfg(all(test, interleave))]
mod models {
    #[test]
    fn models_too() {
        std::thread::spawn(|| ()).join().unwrap();
    }
}
