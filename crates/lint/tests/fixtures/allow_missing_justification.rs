// Known-bad fixture: the marker suppresses the unwrap finding but is itself
// flagged because the justification is missing.

pub fn sloppy(values: &[u32]) -> u32 {
    // lint: allow(unwrap)
    *values.first().unwrap()
}
