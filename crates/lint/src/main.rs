fn main() {
    std::process::exit(march_lint::run());
}
