//! # `march-lint`
//!
//! Dependency-free invariant scanner for the march-codex workspace, in the
//! spirit of the repository's other single-purpose tools (`bench_diff`). It
//! enforces five repo-wide rules that `rustc`/`clippy` cannot express:
//!
//! * **`forbid-unsafe`** — every non-compat crate root carries
//!   `#![forbid(unsafe_code)]`.
//! * **`unwrap`** — no `.unwrap()` / `.expect(` in non-test code on the serve
//!   path (`cli/src/serve.rs`, `memsim/src/store.rs`, `memsim/src/parallel.rs`,
//!   `memsim/src/session.rs`): a panic there poisons locks shared by resident
//!   workers. Recover (`unwrap_or_else(PoisonError::into_inner)`), propagate,
//!   or justify the site with an allow marker.
//! * **`timing`** — no ambient clock reads or ad-hoc thread spawns
//!   (`Instant::now(`, `SystemTime`, `thread::spawn(`) outside the sanctioned
//!   sites (`memsim/src/parallel.rs`, the `sync` façades, `crates/bench`,
//!   `crates/interleave`, `crates/compat`): wall-clock values perturb report
//!   bytes and unmanaged threads escape the schedule explorer.
//! * **`json`** — no hand-rolled JSON object literals (a string literal
//!   containing `{"`) outside `memsim/src/report.rs`, `cli/src/json.rs` and
//!   the benchmarks: report bytes must flow through `JsonObject` so escaping
//!   and key order stay canonical.
//! * **`snapshot-io`** — no direct `std::fs` access (`std::fs`,
//!   `File::create(`, `File::open(`, `OpenOptions`, `fs::write(`,
//!   `fs::rename(`, `fs::remove_file(`) in snapshot-path code
//!   (`memsim/src/snapshot.rs`, `memsim/src/store.rs`,
//!   `memsim/src/session.rs`) outside the sanctioned `SnapshotIo` impl:
//!   every byte the snapshot layer persists must flow through the trait so
//!   the chaos suites can interpose fault injection, and so atomicity
//!   (temp + fsync + rename) cannot be bypassed by a stray write.
//!
//! ## Allow markers
//!
//! A finding can be blessed in place with a comment marker carrying a
//! **mandatory justification**:
//!
//! ```text
//! // lint: allow(unwrap) — OS-level spawn failure at pool construction is
//! // unrecoverable and happens before any request is in flight.
//! .expect("spawn simulation worker")
//! ```
//!
//! A marker on a comment-only line covers the next line that contains code
//! (intervening comment lines are skipped); a trailing marker covers its own
//! line. `// lint: allow-file(<rule>) — why` exempts the whole file from one
//! rule. A marker whose justification is missing is itself a finding.
//!
//! Test code is exempt everywhere: `#[cfg(test)]` / `#[cfg(all(test, …))]`
//! module bodies are skipped by brace tracking, and files under `tests/`,
//! `benches/`, `examples/` or `fixtures/` directories are not scanned.
//!
//! The scanner is a line/token pass over a comment/string-aware cleaner — it
//! never parses Rust — so tokens inside string literals, doc comments or
//! block comments never trigger findings.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// One rule violation at a source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Workspace-relative path, forward slashes.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Rule identifier: `forbid-unsafe`, `unwrap`, `timing`, `json`, `marker`.
    pub rule: &'static str,
    /// Human-readable explanation.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// Files on the serve path where the `unwrap` rule applies.
pub const SERVE_PATH_FILES: &[&str] = &[
    "crates/cli/src/serve.rs",
    "crates/memsim/src/store.rs",
    "crates/memsim/src/parallel.rs",
    "crates/memsim/src/session.rs",
    "crates/memsim/src/snapshot.rs",
];

/// Files on the snapshot persistence path where the `snapshot-io` rule
/// applies: everything that participates in loading or storing snapshot
/// artifacts. Only the sanctioned `SnapshotIo` impl (`FsIo`, which carries
/// per-line allow markers) may touch `std::fs` here.
pub const SNAPSHOT_PATH_FILES: &[&str] = &[
    "crates/memsim/src/snapshot.rs",
    "crates/memsim/src/store.rs",
    "crates/memsim/src/session.rs",
];

/// Path prefixes exempt from the `timing` rule: the worker-pool module that
/// owns thread lifecycles, the cfg-switched `sync` façades (the sanctioned
/// doorways to the real clock), the benchmarks (whose whole purpose is
/// timing), the instrumentation crate itself, and the compat shims.
const TIMING_EXEMPT: &[&str] = &[
    "crates/bench/",
    "crates/compat/",
    "crates/interleave/",
    "crates/memsim/src/parallel.rs",
    "crates/memsim/src/sync.rs",
    "crates/cli/src/sync.rs",
];

/// Path prefixes allowed to assemble JSON text by hand: the `JsonObject`
/// serialiser, the CLI's JSON reader, and the benchmarks (which script the
/// serve protocol with hand-written *request* lines — the rule guards report
/// emission, not test traffic).
const JSON_EXEMPT: &[&str] = &[
    "crates/memsim/src/report.rs",
    "crates/cli/src/json.rs",
    "crates/bench/",
    "crates/compat/",
];

/// Directory segments whose files are never scanned (test/bench/example
/// code, lint fixtures, build output).
const SKIP_SEGMENTS: &[&str] = &[
    "/tests/",
    "/benches/",
    "/examples/",
    "/fixtures/",
    "/target/",
];

/// Crates exempt from the `forbid-unsafe` crate-root check.
const UNSAFE_EXEMPT_CRATES: &[&str] = &["compat"];

/// Which token rules apply to one file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FileRules {
    /// Apply the serve-path `unwrap` rule.
    pub unwrap: bool,
    /// Apply the ambient-`timing` rule.
    pub timing: bool,
    /// Apply the hand-rolled-`json` rule.
    pub json: bool,
    /// Apply the snapshot-path `snapshot-io` rule.
    pub snapshot_io: bool,
}

/// Classifies a workspace-relative path. `None` means the file is not
/// scanned at all.
#[must_use]
pub fn rules_for(rel: &str) -> Option<FileRules> {
    let slashed = format!("/{rel}");
    if SKIP_SEGMENTS.iter().any(|seg| slashed.contains(seg)) {
        return None;
    }
    Some(FileRules {
        unwrap: SERVE_PATH_FILES.contains(&rel),
        timing: !TIMING_EXEMPT.iter().any(|prefix| rel.starts_with(prefix)),
        json: !JSON_EXEMPT.iter().any(|prefix| rel.starts_with(prefix)),
        snapshot_io: SNAPSHOT_PATH_FILES.contains(&rel),
    })
}

/// Checks a crate-root source file for `#![forbid(unsafe_code)]`.
#[must_use]
pub fn check_crate_root(rel: &str, source: &str) -> Option<Finding> {
    if source
        .lines()
        .any(|line| line.trim() == "#![forbid(unsafe_code)]")
    {
        None
    } else {
        Some(Finding {
            file: rel.to_owned(),
            line: 1,
            rule: "forbid-unsafe",
            message: "crate root is missing `#![forbid(unsafe_code)]`".to_owned(),
        })
    }
}

/// One source line after cleaning: executable code with comments removed and
/// string bodies blanked, plus the comment text and string-literal bodies
/// that started on the line.
#[derive(Debug, Default)]
struct LineInfo {
    code: String,
    strings: Vec<String>,
    comments: Vec<String>,
}

/// Comment/string-aware cleaner. Understands line comments (`//`, `///`,
/// `//!`), nested block comments, escaped strings, raw strings (any hash
/// count), byte strings, char literals and lifetimes.
fn clean(source: &str) -> Vec<LineInfo> {
    #[derive(Debug)]
    enum Mode {
        Code,
        LineComment,
        BlockComment(usize),
        Str,
        RawStr(usize),
    }

    let chars: Vec<char> = source.chars().collect();
    let mut lines: Vec<LineInfo> = vec![LineInfo::default()];
    let mut mode = Mode::Code;
    // (line, index) of the string literal currently being accumulated; a
    // multi-line literal keeps appending to the entry on its opening line.
    let mut open_string: Option<(usize, usize)> = None;
    let mut i = 0;

    while i < chars.len() {
        let ch = chars[i];
        let next = chars.get(i + 1).copied();
        if ch == '\n' {
            if matches!(mode, Mode::LineComment) {
                mode = Mode::Code;
            }
            if let Some((line, string)) = open_string {
                lines[line].strings[string].push('\n');
            }
            lines.push(LineInfo::default());
            i += 1;
            continue;
        }
        let line = lines.len() - 1;
        match mode {
            Mode::Code => {
                if ch == '/' && next == Some('/') {
                    mode = Mode::LineComment;
                    lines[line].comments.push(String::new());
                    i += 2;
                } else if ch == '/' && next == Some('*') {
                    mode = Mode::BlockComment(1);
                    lines[line].comments.push(String::new());
                    i += 2;
                } else if ch == '"' {
                    mode = Mode::Str;
                    lines[line].strings.push(String::new());
                    open_string = Some((line, lines[line].strings.len() - 1));
                    lines[line].code.push('"');
                    i += 1;
                } else if is_raw_string_start(&chars, i) {
                    let mut j = i + 1;
                    if chars[i] == 'b' {
                        j += 1;
                    }
                    let mut hashes = 0;
                    while chars.get(j) == Some(&'#') {
                        hashes += 1;
                        j += 1;
                    }
                    mode = Mode::RawStr(hashes);
                    lines[line].strings.push(String::new());
                    open_string = Some((line, lines[line].strings.len() - 1));
                    lines[line].code.push('"');
                    i = j + 1;
                } else if ch == '\'' {
                    // Char literal vs lifetime: a backslash or a closing
                    // quote two characters on means a char literal.
                    if next == Some('\\') {
                        let mut j = i + 2;
                        if j < chars.len() {
                            j += 1; // the escaped character itself
                        }
                        while j < chars.len() && chars[j] != '\'' {
                            j += 1; // \u{...} digits
                        }
                        i = j + 1;
                    } else if chars.get(i + 2) == Some(&'\'') && next != Some('\'') {
                        i += 3;
                    } else {
                        lines[line].code.push('\'');
                        i += 1;
                    }
                } else {
                    lines[line].code.push(ch);
                    i += 1;
                }
            }
            Mode::LineComment => {
                if let Some(comment) = lines[line].comments.last_mut() {
                    comment.push(ch);
                } else {
                    // First character of a comment continuing past a line
                    // break cannot happen for `//`, but stay total anyway.
                    lines[line].comments.push(ch.to_string());
                }
                i += 1;
            }
            Mode::BlockComment(depth) => {
                if lines[line].comments.is_empty() {
                    lines[line].comments.push(String::new());
                }
                if ch == '*' && next == Some('/') {
                    mode = if depth == 1 {
                        Mode::Code
                    } else {
                        Mode::BlockComment(depth - 1)
                    };
                    i += 2;
                } else if ch == '/' && next == Some('*') {
                    mode = Mode::BlockComment(depth + 1);
                    i += 2;
                } else {
                    if let Some(comment) = lines[line].comments.last_mut() {
                        comment.push(ch);
                    }
                    i += 1;
                }
            }
            Mode::Str => {
                let (string_line, string) = match open_string {
                    Some(pair) => pair,
                    None => (line, 0),
                };
                if ch == '\\' {
                    lines[string_line].strings[string].push(ch);
                    // A `\`-newline continuation: leave the newline for the
                    // top-of-loop handler so line numbering stays true.
                    if next == Some('\n') {
                        i += 1;
                    } else {
                        if let Some(escaped) = next {
                            lines[string_line].strings[string].push(escaped);
                        }
                        i += 2;
                    }
                } else if ch == '"' {
                    mode = Mode::Code;
                    open_string = None;
                    lines[line].code.push('"');
                    i += 1;
                } else {
                    lines[string_line].strings[string].push(ch);
                    i += 1;
                }
            }
            Mode::RawStr(hashes) => {
                let (string_line, string) = match open_string {
                    Some(pair) => pair,
                    None => (line, 0),
                };
                if ch == '"' && (0..hashes).all(|h| chars.get(i + 1 + h) == Some(&'#')) {
                    mode = Mode::Code;
                    open_string = None;
                    lines[line].code.push('"');
                    i += 1 + hashes;
                } else {
                    lines[string_line].strings[string].push(ch);
                    i += 1;
                }
            }
        }
    }
    lines
}

/// True when `chars[i]` starts a raw (or raw byte) string literal.
fn is_raw_string_start(chars: &[char], i: usize) -> bool {
    let prev_is_ident = i > 0 && (chars[i - 1].is_alphanumeric() || chars[i - 1] == '_');
    if prev_is_ident {
        return false;
    }
    let mut j = i;
    if chars[j] == 'b' {
        j += 1;
    }
    if chars.get(j) != Some(&'r') {
        return false;
    }
    j += 1;
    while chars.get(j) == Some(&'#') {
        j += 1;
    }
    chars.get(j) == Some(&'"')
}

/// A parsed `lint: allow(...)` / `lint: allow-file(...)` marker.
#[derive(Debug)]
struct Marker {
    line: usize,
    rule: String,
    whole_file: bool,
    justified: bool,
}

fn parse_markers(lines: &[LineInfo]) -> Vec<Marker> {
    let mut markers = Vec::new();
    for (index, info) in lines.iter().enumerate() {
        for comment in &info.comments {
            let Some(at) = comment.find("lint: allow") else {
                continue;
            };
            let rest = &comment[at + "lint: allow".len()..];
            let (whole_file, rest) = match rest.strip_prefix("-file") {
                Some(stripped) => (true, stripped),
                None => (false, rest),
            };
            let Some(rest) = rest.strip_prefix('(') else {
                continue;
            };
            let Some(close) = rest.find(')') else {
                continue;
            };
            let rule = rest[..close].trim().to_owned();
            let justification = &rest[close + 1..];
            let justified = justification
                .chars()
                .filter(|c| c.is_alphanumeric())
                .count()
                >= 3;
            markers.push(Marker {
                line: index,
                rule,
                whole_file,
                justified,
            });
        }
    }
    markers
}

/// Scans one file's source against the given rules. `rel` is only used to
/// label findings.
#[must_use]
pub fn scan_source(rel: &str, source: &str, rules: &FileRules) -> Vec<Finding> {
    let lines = clean(source);
    let markers = parse_markers(&lines);
    let mut findings = Vec::new();

    let mut file_allows: Vec<&str> = Vec::new();
    // (0-based line, rule) pairs blessed by a marker.
    let mut line_allows: Vec<(usize, &str)> = Vec::new();
    for marker in &markers {
        if !marker.justified {
            findings.push(Finding {
                file: rel.to_owned(),
                line: marker.line + 1,
                rule: "marker",
                message: format!(
                    "`lint: allow({})` marker is missing its justification",
                    marker.rule
                ),
            });
        }
        if marker.whole_file {
            file_allows.push(&marker.rule);
            continue;
        }
        line_allows.push((marker.line, &marker.rule));
        // A marker on a comment-only line covers the next line holding code.
        if lines[marker.line].code.trim().is_empty() {
            if let Some((covered, _)) = lines
                .iter()
                .enumerate()
                .skip(marker.line + 1)
                .find(|(_, info)| !info.code.trim().is_empty())
            {
                line_allows.push((covered, &marker.rule));
            }
        }
    }
    let allowed = |line: usize, rule: &str| {
        file_allows.contains(&rule) || line_allows.iter().any(|&(l, r)| l == line && r == rule)
    };

    // Brace-tracked `#[cfg(test)]` region skipping.
    let mut depth = 0usize;
    let mut armed = false; // test-cfg attribute seen, body brace pending
    let mut skip_floor: Option<usize> = None;

    for (index, info) in lines.iter().enumerate() {
        let code = info.code.as_str();
        if code.contains("#[cfg(test)]") || code.contains("#[cfg(all(test") {
            armed = true;
        }
        let in_skip_before = skip_floor.is_some();
        for ch in code.chars() {
            match ch {
                '{' => {
                    if armed && skip_floor.is_none() {
                        skip_floor = Some(depth);
                        armed = false;
                    }
                    depth += 1;
                }
                '}' => {
                    depth = depth.saturating_sub(1);
                    if skip_floor == Some(depth) {
                        skip_floor = None;
                    }
                }
                // `#[cfg(test)] mod tests;` or a cfg'd `use`: no body here.
                ';' if armed && skip_floor.is_none() => {
                    armed = false;
                }
                _ => {}
            }
        }
        if in_skip_before || skip_floor.is_some() {
            continue;
        }

        if rules.unwrap
            && (code.contains(".unwrap()") || code.contains(".expect("))
            && !allowed(index, "unwrap")
        {
            findings.push(Finding {
                file: rel.to_owned(),
                line: index + 1,
                rule: "unwrap",
                message: "`.unwrap()`/`.expect()` on the serve path: recover \
                          (`unwrap_or_else(PoisonError::into_inner)`), propagate, or \
                          justify with `// lint: allow(unwrap) — why`"
                    .to_owned(),
            });
        }
        if rules.timing
            && ["Instant::now(", "SystemTime", "thread::spawn("]
                .iter()
                .any(|token| code.contains(token))
            && !allowed(index, "timing")
        {
            findings.push(Finding {
                file: rel.to_owned(),
                line: index + 1,
                rule: "timing",
                message: "ambient clock read or ad-hoc thread spawn outside the \
                          sanctioned sites: route it through the `sync` façade or \
                          justify with `// lint: allow(timing) — why`"
                    .to_owned(),
            });
        }
        if rules.snapshot_io
            && [
                "std::fs",
                "File::create(",
                "File::open(",
                "OpenOptions",
                "fs::write(",
                "fs::rename(",
                "fs::remove_file(",
            ]
            .iter()
            .any(|token| code.contains(token))
            && !allowed(index, "snapshot-io")
        {
            findings.push(Finding {
                file: rel.to_owned(),
                line: index + 1,
                rule: "snapshot-io",
                message: "direct filesystem access on the snapshot path: route the \
                          bytes through the `SnapshotIo` trait, or justify with \
                          `// lint: allow(snapshot-io) — why`"
                    .to_owned(),
            });
        }
        // Escape sequences are kept verbatim by the cleaner, so an escaped
        // literal spells the opening brace-quote with a backslash between.
        // The needles are assembled from chars so they cannot flag the
        // scanner's own source.
        let brace_quote: String = ['{', '"'].iter().collect();
        let brace_escaped_quote: String = ['{', '\\', '"'].iter().collect();
        if rules.json
            && info
                .strings
                .iter()
                .any(|s| s.contains(&brace_quote) || s.contains(&brace_escaped_quote))
            && !allowed(index, "json")
        {
            findings.push(Finding {
                file: rel.to_owned(),
                line: index + 1,
                rule: "json",
                message: "hand-rolled JSON object literal: route report bytes through \
                          `JsonObject`, or justify with `// lint: allow(json) — why`"
                    .to_owned(),
            });
        }
    }
    findings
}

/// A completed workspace scan.
#[derive(Debug)]
pub struct Summary {
    /// Number of `.rs` files token-scanned (crate-root checks not counted).
    pub files: usize,
    /// Number of crate roots checked for `#![forbid(unsafe_code)]`.
    pub crates: usize,
    /// Every finding, in path/line order.
    pub findings: Vec<Finding>,
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy().into_owned();
        if path.is_dir() {
            if name == "target" || name == ".git" {
                continue;
            }
            collect_rs(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Scans the workspace rooted at `root` (the directory holding `crates/`).
///
/// # Errors
///
/// Propagates I/O errors from walking the tree or reading sources.
pub fn run_at(root: &Path) -> io::Result<Summary> {
    let mut findings = Vec::new();
    let mut crates = 0;

    let crates_dir = root.join("crates");
    let mut crate_dirs: Vec<PathBuf> = fs::read_dir(&crates_dir)?
        .filter_map(Result::ok)
        .map(|entry| entry.path())
        .filter(|path| path.is_dir())
        .collect();
    crate_dirs.sort();
    for dir in &crate_dirs {
        let name = dir
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        if UNSAFE_EXEMPT_CRATES.contains(&name.as_str()) {
            continue;
        }
        let lib = dir.join("src/lib.rs");
        let main = dir.join("src/main.rs");
        let root_file = if lib.exists() {
            lib
        } else if main.exists() {
            main
        } else {
            continue;
        };
        let source = fs::read_to_string(&root_file)?;
        crates += 1;
        if let Some(finding) = check_crate_root(&relative(root, &root_file), &source) {
            findings.push(finding);
        }
    }

    let mut paths = Vec::new();
    collect_rs(&crates_dir, &mut paths)?;
    let src_dir = root.join("src");
    if src_dir.is_dir() {
        collect_rs(&src_dir, &mut paths)?;
    }
    paths.sort();
    let mut files = 0;
    for path in &paths {
        let rel = relative(root, path);
        let Some(rules) = rules_for(&rel) else {
            continue;
        };
        files += 1;
        let source = fs::read_to_string(path)?;
        findings.extend(scan_source(&rel, &source, &rules));
    }

    findings.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    Ok(Summary {
        files,
        crates,
        findings,
    })
}

fn relative(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .to_string_lossy()
        .replace('\\', "/")
}

/// Entry point for the `march-lint` binary: scans the workspace at the
/// first argument (default `.`), prints findings, and returns the process
/// exit code (0 clean, 1 findings, 2 I/O error).
#[must_use]
pub fn run() -> i32 {
    let root = std::env::args().nth(1).unwrap_or_else(|| String::from("."));
    match run_at(Path::new(&root)) {
        Ok(summary) => {
            for finding in &summary.findings {
                println!("{finding}");
            }
            if summary.findings.is_empty() {
                println!(
                    "march-lint: OK ({} files scanned, {} crate roots checked)",
                    summary.files, summary.crates
                );
                0
            } else {
                println!("march-lint: {} finding(s)", summary.findings.len());
                1
            }
        }
        Err(error) => {
            eprintln!("march-lint: error: {error}");
            2
        }
    }
}
