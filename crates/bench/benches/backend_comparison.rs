//! Criterion benchmark: head-to-head comparison of the scalar and packed
//! simulation backends on the coverage-matrix workload — the inner loop of both
//! the generator's greedy search and the §6 validation step.
//!
//! The packed backend evaluates up to 64 `(placement, background)` lanes per
//! `u64` word, so its advantage grows with the placement enumeration: the
//! exhaustive configuration is its best case, the representative one its worst.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use march_test::catalog;
use sram_fault_model::FaultList;
use sram_sim::{measure_coverage, BackendKind, CoverageConfig};

fn backend_benchmarks(c: &mut Criterion) {
    let list2 = FaultList::list_2();
    let march_sl = catalog::march_sl();

    // Exhaustive placements on an 8-cell memory: 16 lanes per LF1 target.
    let mut exhaustive = c.benchmark_group("coverage_exhaustive_march_sl_vs_list_2");
    exhaustive.sample_size(10);
    for backend in [BackendKind::Scalar, BackendKind::Packed] {
        let config = CoverageConfig {
            memory_cells: 8,
            strategy: sram_sim::PlacementStrategy::Exhaustive,
            ..CoverageConfig::thorough()
        }
        .with_backend(backend);
        exhaustive.bench_with_input(
            BenchmarkId::new("backend", backend),
            &config,
            |b, config| {
                b.iter(|| {
                    let report = measure_coverage(&march_sl, &list2, config);
                    assert!(report.is_complete());
                    report.covered()
                })
            },
        );
    }
    exhaustive.finish();

    // The thorough (representative) configuration used inside generation loops.
    let mut thorough = c.benchmark_group("coverage_thorough_march_sl_vs_list_1");
    thorough.sample_size(10);
    let list1 = FaultList::list_1();
    for backend in [BackendKind::Scalar, BackendKind::Packed] {
        let config = CoverageConfig::thorough().with_backend(backend);
        thorough.bench_with_input(
            BenchmarkId::new("backend", backend),
            &config,
            |b, config| b.iter(|| measure_coverage(&march_sl, &list1, config).covered()),
        );
    }
    thorough.finish();

    // Generation end-to-end on both backends.
    let mut generation = c.benchmark_group("generation_list_2");
    generation.sample_size(10);
    for backend in [BackendKind::Scalar, BackendKind::Packed] {
        let config = march_gen::GeneratorConfig::default().with_backend(backend);
        generation.bench_with_input(
            BenchmarkId::new("backend", backend),
            &config,
            |b, config| {
                b.iter(|| {
                    march_gen::MarchGenerator::with_config(FaultList::list_2(), config.clone())
                        .generate()
                        .test()
                        .complexity()
                })
            },
        );
    }
    generation.finish();
}

criterion_group!(benches, backend_benchmarks);
criterion_main!(benches);
