//! Criterion benchmark: march-test generation time for the paper's two fault lists
//! (the "CPU Time (s)" column of Table 1).

use criterion::{criterion_group, criterion_main, Criterion};
use march_gen::{GeneratorConfig, MarchGenerator};
use sram_fault_model::FaultList;

fn generation_benchmarks(c: &mut Criterion) {
    let mut group = c.benchmark_group("generation");
    group.sample_size(10);

    let list2 = FaultList::list_2();
    group.bench_function("fault_list_2_default", |b| {
        b.iter(|| {
            let generated = MarchGenerator::new(list2.clone()).generate();
            assert!(generated.report().is_complete());
            generated.test().complexity()
        })
    });

    let list1 = FaultList::list_1();
    group.bench_function("fault_list_1_no_removal", |b| {
        b.iter(|| {
            let generated = MarchGenerator::with_config(
                list1.clone(),
                GeneratorConfig::without_redundancy_removal(),
            )
            .generate();
            assert!(generated.report().is_complete());
            generated.test().complexity()
        })
    });

    group.bench_function("fault_list_1_with_removal", |b| {
        b.iter(|| {
            let generated = MarchGenerator::new(list1.clone()).generate();
            assert!(generated.report().is_complete());
            generated.test().complexity()
        })
    });

    group.finish();

    let mut setup = c.benchmark_group("fault_list_construction");
    setup.bench_function("enumerate_fault_list_1", |b| {
        b.iter(|| FaultList::list_1().linked().len())
    });
    setup.bench_function("enumerate_fault_list_2", |b| {
        b.iter(|| FaultList::list_2().linked().len())
    });
    setup.finish();
}

criterion_group!(benches, generation_benchmarks);
criterion_main!(benches);
