//! Criterion benchmark: ablation of the generator's design knobs on Fault List #2
//! (fast enough to benchmark tightly) — complements the `ablation_report` binary
//! which covers Fault List #1.

use criterion::{criterion_group, criterion_main, Criterion};
use march_gen::{library_candidates, minimise, GeneratorConfig, MarchGenerator};
use march_test::catalog;
use sram_fault_model::FaultList;

fn ablation_benchmarks(c: &mut Criterion) {
    let list2 = FaultList::list_2();

    let mut group = c.benchmark_group("generator_knobs_list_2");
    group.sample_size(10);
    group.bench_function("with_redundancy_removal", |b| {
        b.iter(|| {
            MarchGenerator::new(list2.clone())
                .generate()
                .test()
                .complexity()
        })
    });
    group.bench_function("without_redundancy_removal", |b| {
        b.iter(|| {
            MarchGenerator::with_config(
                list2.clone(),
                GeneratorConfig::without_redundancy_removal(),
            )
            .generate()
            .test()
            .complexity()
        })
    });
    group.bench_function("without_repair_pool", |b| {
        b.iter(|| {
            MarchGenerator::with_config(
                list2.clone(),
                GeneratorConfig {
                    repair: false,
                    ..GeneratorConfig::default()
                },
            )
            .generate()
            .test()
            .complexity()
        })
    });
    group.finish();

    let mut pieces = c.benchmark_group("generator_pieces");
    pieces.bench_function("library_candidates", |b| {
        b.iter(|| library_candidates().len())
    });
    pieces.sample_size(10);
    pieces.bench_function("minimise_march_sl_against_list_2", |b| {
        let config = GeneratorConfig::default();
        b.iter(|| {
            minimise(&catalog::march_sl(), &list2, &config)
                .0
                .complexity()
        })
    });
    pieces.finish();
}

criterion_group!(benches, ablation_benchmarks);
criterion_main!(benches);
