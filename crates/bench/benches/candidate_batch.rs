//! Criterion benchmark: batched candidate-pool scoring vs the per-candidate
//! path — the inner loop of the generator's greedy selection and of its
//! exhaustive 4^k repair search.
//!
//! Batched scoring packs up to 64 candidate march elements one per bit-lane
//! and evaluates them against each pending coverage lane in a single
//! bit-parallel pass; per-candidate scoring (batch size 1) is the PR-1
//! behaviour it replaces. The verdicts are byte-identical; only the wall
//! clock differs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use march_gen::{exhaustive_candidates, library_candidates, score_candidates};
use march_test::{catalog, MarchElement};
use sram_fault_model::FaultList;
use sram_sim::{
    enumerate_lanes, enumerate_targets, BackendKind, InitialState, PlacementStrategy, TargetBatch,
};

fn advanced_batches(list: &FaultList, prefix: &[MarchElement]) -> Vec<TargetBatch> {
    let backgrounds = [InitialState::AllZero, InitialState::AllOne];
    let mut batches: Vec<TargetBatch> = enumerate_targets(list)
        .into_iter()
        .map(|target| {
            let lanes =
                enumerate_lanes(&target, 8, PlacementStrategy::Representative, &backgrounds)
                    .expect("benchmark scope hosts the placements");
            TargetBatch::new(target, lanes, 8, BackendKind::Packed)
        })
        .collect();
    for element in prefix {
        for batch in &mut batches {
            batch.advance(element);
        }
    }
    batches.retain(|batch| batch.pending() > 0);
    batches
}

fn candidate_batch_benchmarks(c: &mut Criterion) {
    // The repair regime: most lanes already covered, a big exhaustive pool.
    let abl1 = catalog::march_abl1();
    let repair_batches = advanced_batches(&FaultList::list_2(), &abl1.elements()[..2]);
    let repair_pool = exhaustive_candidates(4);
    let mut repair = c.benchmark_group("score_repair_pool4_vs_list_2_tail");
    repair.sample_size(10);
    for (label, batch) in [("per-candidate", 1usize), ("batched", 0usize)] {
        repair.bench_with_input(BenchmarkId::new("batch", label), &batch, |b, &batch| {
            b.iter(|| {
                score_candidates(&repair_pool, &repair_batches, batch, 1)
                    .into_iter()
                    .sum::<usize>()
            })
        });
    }
    repair.finish();

    // The greedy regime: fresh batches, the (small) candidate library.
    let library_batches = advanced_batches(&FaultList::list_2(), &abl1.elements()[..1]);
    let library_pool = library_candidates();
    let mut library = c.benchmark_group("score_library_vs_list_2_fresh");
    library.sample_size(10);
    for (label, batch) in [("per-candidate", 1usize), ("batched", 0usize)] {
        library.bench_with_input(BenchmarkId::new("batch", label), &batch, |b, &batch| {
            b.iter(|| {
                score_candidates(&library_pool, &library_batches, batch, 1)
                    .into_iter()
                    .sum::<usize>()
            })
        });
    }
    library.finish();
}

criterion_group!(benches, candidate_batch_benchmarks);
criterion_main!(benches);
