//! Criterion benchmark: fault-simulation throughput — the substrate behind both the
//! generator's inner loop and the §6 validation step.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use march_test::catalog;
use sram_fault_model::FaultList;
use sram_sim::{
    measure_coverage, run_march, CoverageConfig, FaultSimulator, InitialState, InstanceCells,
    LinkedFaultInstance,
};

fn simulation_benchmarks(c: &mut Criterion) {
    // March execution on a fault-free memory, across memory sizes.
    let mut group = c.benchmark_group("march_execution_fault_free");
    for cells in [8usize, 64, 256, 1024] {
        group.bench_with_input(BenchmarkId::new("march_ss", cells), &cells, |b, &cells| {
            let test = catalog::march_ss();
            b.iter(|| {
                let mut simulator = FaultSimulator::new(cells, &InitialState::AllOne).unwrap();
                run_march(&test, &mut simulator).operations()
            })
        });
    }
    group.finish();

    // March execution with an injected three-cell linked fault.
    let mut injected = c.benchmark_group("march_execution_linked_fault");
    let list1 = FaultList::list_1();
    let lf3 = list1
        .linked()
        .iter()
        .find(|fault| fault.cell_count() == 3)
        .expect("list #1 contains three-cell linked faults")
        .clone();
    for test in [
        catalog::march_sl(),
        catalog::march_abl(),
        catalog::march_rabl(),
    ] {
        injected.bench_function(test.name().to_string(), |b| {
            b.iter(|| {
                let mut simulator = FaultSimulator::new(16, &InitialState::AllOne).unwrap();
                let instance =
                    LinkedFaultInstance::new(lf3.clone(), InstanceCells::triple(1, 7, 12), 16)
                        .unwrap();
                simulator.inject_linked(&instance);
                run_march(&test, &mut simulator).detected()
            })
        });
    }
    injected.finish();

    // Full coverage measurement of the paper's 9n test over Fault List #2.
    let mut coverage = c.benchmark_group("coverage_measurement");
    coverage.sample_size(20);
    let list2 = FaultList::list_2();
    coverage.bench_function("march_abl1_vs_list_2", |b| {
        b.iter(|| {
            let report =
                measure_coverage(&catalog::march_abl1(), &list2, &CoverageConfig::thorough());
            assert!(report.is_complete());
            report.covered()
        })
    });
    coverage.finish();
}

criterion_group!(benches, simulation_benchmarks);
criterion_main!(benches);
