//! The perf-trajectory file format and its CI differ.
//!
//! `backend_bench` writes `BENCH_simulation.json` (schema below); the
//! `bench_diff` binary re-reads the committed baseline and a freshly measured
//! file and fails when the geometric-mean speedup regresses by more than a
//! threshold. Comparisons are made on *speedup ratios* (contender vs baseline
//! timings of the same run), which are stable across machines, rather than on
//! absolute nanoseconds, which are not.
//!
//! Schema (version 2):
//!
//! ```json
//! {
//!   "benchmark": "simulation_backends",
//!   "version": 2,
//!   "threads": 1,
//!   "geomean_speedup": 12.3,
//!   "workloads": [
//!     {"name": "...", "kind": "coverage", "baseline": "scalar",
//!      "contender": "packed", "baseline_ns": 10, "contender_ns": 1,
//!      "speedup": 10.0}
//!   ]
//! }
//! ```
//!
//! Everything here is dependency-free: the parser below covers exactly the
//! JSON subset the schema uses (objects, arrays, strings, numbers).

use std::fmt;

use crate::json_escape;

/// The schema version this crate reads and writes.
pub const SCHEMA_VERSION: u64 = 2;

/// One timed workload of the trajectory file: a named baseline-vs-contender
/// pair (scalar vs packed backends, or per-candidate vs batched scoring).
#[derive(Debug, Clone, PartialEq)]
pub struct BenchRecord {
    /// Workload name (test × list × configuration); the differ matches
    /// baseline and current files by this key.
    pub name: String,
    /// Workload family: `"coverage"`, `"generation"`, `"minimise"`,
    /// `"session"`, `"af_coverage"` (the large-memory address-decoder
    /// workloads) or `"lane_width"` (wide packed words vs 64-lane words).
    pub kind: String,
    /// What the slow side is (`"scalar"`, `"per-candidate"`, …).
    pub baseline: String,
    /// What the fast side is (`"packed"`, `"batched"`, …).
    pub contender: String,
    /// Mean baseline wall time, nanoseconds.
    pub baseline_ns: u64,
    /// Mean contender wall time, nanoseconds.
    pub contender_ns: u64,
    /// `baseline_ns / contender_ns`.
    pub speedup: f64,
    /// The contender's packed lane width (`"64"`, `"128"`, `"256"`), present
    /// only on `"lane_width"`-kind workloads. Optional in the JSON: records
    /// written before the wide-word engine simply omit it.
    pub lane_width: Option<String>,
}

/// A parsed (or to-be-written) `BENCH_simulation.json`.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchFile {
    /// Schema version (always [`SCHEMA_VERSION`] for files this crate writes).
    pub version: u64,
    /// The worker-thread count the run actually used (the resolved value, not
    /// the requested `--threads` flag: `0` is resolved to the available
    /// parallelism before it gets here).
    pub threads: usize,
    /// Geometric mean of the per-workload speedups.
    pub geomean_speedup: f64,
    /// The timed workloads.
    pub workloads: Vec<BenchRecord>,
}

impl BenchFile {
    /// Assembles a file from measured records, computing the geomean.
    #[must_use]
    pub fn new(threads: usize, workloads: Vec<BenchRecord>) -> BenchFile {
        let geomean_speedup = geomean(workloads.iter().map(|record| record.speedup));
        BenchFile {
            version: SCHEMA_VERSION,
            threads,
            geomean_speedup,
            workloads,
        }
    }

    /// Serialises the file in the version-2 schema.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut json = String::from("{\n  \"benchmark\": \"simulation_backends\",\n");
        json.push_str(&format!("  \"version\": {},\n", self.version));
        json.push_str(&format!("  \"threads\": {},\n", self.threads));
        json.push_str(&format!(
            "  \"geomean_speedup\": {:.3},\n",
            self.geomean_speedup
        ));
        json.push_str("  \"workloads\": [\n");
        for (index, record) in self.workloads.iter().enumerate() {
            let lane_width = record
                .lane_width
                .as_ref()
                .map_or_else(String::new, |width| {
                    format!(", \"lane_width\": \"{}\"", json_escape(width))
                });
            json.push_str(&format!(
                "    {{\"name\": \"{}\", \"kind\": \"{}\", \"baseline\": \"{}\", \
                 \"contender\": \"{}\", \"baseline_ns\": {}, \"contender_ns\": {}, \
                 \"speedup\": {:.3}{}}}{}\n",
                json_escape(&record.name),
                json_escape(&record.kind),
                json_escape(&record.baseline),
                json_escape(&record.contender),
                record.baseline_ns,
                record.contender_ns,
                record.speedup,
                lane_width,
                if index + 1 == self.workloads.len() {
                    ""
                } else {
                    ","
                }
            ));
        }
        json.push_str("  ]\n}\n");
        json
    }

    /// Parses and validates a trajectory file.
    ///
    /// # Errors
    ///
    /// Returns a description of the first schema violation: malformed JSON, a
    /// missing or mistyped field, or a version other than [`SCHEMA_VERSION`].
    pub fn parse(text: &str) -> Result<BenchFile, String> {
        let value = parse_json(text)?;
        let top = value.as_object("top level")?;
        let version = get(top, "version")?.as_u64("version")?;
        if version != SCHEMA_VERSION {
            return Err(format!(
                "unsupported trajectory schema version {version} (expected {SCHEMA_VERSION}); \
                 regenerate the file with backend_bench"
            ));
        }
        #[allow(clippy::cast_possible_truncation)]
        let threads = get(top, "threads")?.as_u64("threads")? as usize;
        let geomean_speedup = get(top, "geomean_speedup")?.as_f64("geomean_speedup")?;
        let mut workloads = Vec::new();
        for (index, entry) in get(top, "workloads")?
            .as_array("workloads")?
            .iter()
            .enumerate()
        {
            let record = entry.as_object(&format!("workloads[{index}]"))?;
            let speedup = get(record, "speedup")?.as_f64("speedup")?;
            if !(speedup.is_finite() && speedup > 0.0) {
                return Err(format!("workloads[{index}]: speedup must be positive"));
            }
            let lane_width = match get(record, "lane_width") {
                Ok(value) => Some(value.as_string("lane_width")?),
                Err(_) => None,
            };
            workloads.push(BenchRecord {
                name: get(record, "name")?.as_string("name")?,
                kind: get(record, "kind")?.as_string("kind")?,
                baseline: get(record, "baseline")?.as_string("baseline")?,
                contender: get(record, "contender")?.as_string("contender")?,
                baseline_ns: get(record, "baseline_ns")?.as_u64("baseline_ns")?,
                contender_ns: get(record, "contender_ns")?.as_u64("contender_ns")?,
                speedup,
                lane_width,
            });
        }
        if workloads.is_empty() {
            return Err("trajectory file holds no workloads".to_string());
        }
        Ok(BenchFile {
            version,
            threads,
            geomean_speedup,
            workloads,
        })
    }
}

/// The result of diffing a current trajectory against the committed baseline.
#[derive(Debug, Clone)]
pub struct TrajectoryDiff {
    /// Workload names present in both files, with `(baseline, current)`
    /// speedups.
    pub compared: Vec<(String, f64, f64)>,
    /// Per-kind `(kind, baseline geomean, current geomean)` over the compared
    /// workloads, in first-seen order — so a regression confined to one
    /// workload family (e.g. the `af_coverage` large-memory runs) is visible
    /// even when the overall geomean stays inside the gate.
    pub per_kind: Vec<(String, f64, f64)>,
    /// Baseline workloads missing from the current run.
    pub missing: Vec<String>,
    /// Current workloads the baseline does not know yet.
    pub added: Vec<String>,
    /// Geomean speedup of the baseline file over the compared workloads.
    pub baseline_geomean: f64,
    /// Geomean speedup of the current file over the compared workloads.
    pub current_geomean: f64,
}

impl TrajectoryDiff {
    /// The relative geomean regression: `0.30` means the current run's
    /// geomean speedup is 30% below the baseline's; negative values are
    /// improvements.
    #[must_use]
    pub fn regression(&self) -> f64 {
        1.0 - self.current_geomean / self.baseline_geomean
    }

    /// Returns `true` when the regression exceeds `threshold` (e.g. `0.25`
    /// for the CI gate's 25%).
    #[must_use]
    pub fn regressed(&self, threshold: f64) -> bool {
        self.regression() > threshold
    }
}

impl fmt::Display for TrajectoryDiff {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{:<42} {:>10} {:>10} {:>8}",
            "workload", "baseline", "current", "ratio"
        )?;
        for (name, baseline, current) in &self.compared {
            writeln!(
                f,
                "{name:<42} {baseline:>9.2}x {current:>9.2}x {:>7.2}",
                current / baseline
            )?;
        }
        for (kind, baseline, current) in &self.per_kind {
            writeln!(
                f,
                "{:<42} {baseline:>9.2}x {current:>9.2}x {:>7.2}",
                format!("[geomean: {kind}]"),
                current / baseline
            )?;
        }
        for name in &self.missing {
            writeln!(f, "{name:<42} {:>10} {:>10}", "(baseline)", "missing")?;
        }
        for name in &self.added {
            writeln!(f, "{name:<42} {:>10} {:>10}", "-", "new")?;
        }
        write!(
            f,
            "geomean speedup: baseline {:.2}x, current {:.2}x ({:+.1}%)",
            self.baseline_geomean,
            self.current_geomean,
            -100.0 * self.regression()
        )
    }
}

/// Diffs two trajectory files on the workloads they share.
///
/// # Errors
///
/// Returns an error when the files share no workload — a renamed-everything
/// current file must not silently pass the gate.
pub fn diff_trajectories(
    baseline: &BenchFile,
    current: &BenchFile,
) -> Result<TrajectoryDiff, String> {
    let mut compared = Vec::new();
    let mut missing = Vec::new();
    let mut kinds: Vec<(String, Vec<(f64, f64)>)> = Vec::new();
    for record in &baseline.workloads {
        match current
            .workloads
            .iter()
            .find(|candidate| candidate.name == record.name)
        {
            Some(matching) => {
                compared.push((record.name.clone(), record.speedup, matching.speedup));
                match kinds.iter_mut().find(|(kind, _)| *kind == record.kind) {
                    Some((_, pairs)) => pairs.push((record.speedup, matching.speedup)),
                    None => kinds.push((
                        record.kind.clone(),
                        vec![(record.speedup, matching.speedup)],
                    )),
                }
            }
            None => missing.push(record.name.clone()),
        }
    }
    let added = current
        .workloads
        .iter()
        .filter(|record| {
            baseline
                .workloads
                .iter()
                .all(|known| known.name != record.name)
        })
        .map(|record| record.name.clone())
        .collect();
    if compared.is_empty() {
        return Err(
            "baseline and current trajectories share no workload; refusing to compare".to_string(),
        );
    }
    let baseline_geomean = geomean(compared.iter().map(|(_, baseline, _)| *baseline));
    let current_geomean = geomean(compared.iter().map(|(_, _, current)| *current));
    let per_kind = kinds
        .into_iter()
        .map(|(kind, pairs)| {
            let baseline = geomean(pairs.iter().map(|(baseline, _)| *baseline));
            let current = geomean(pairs.iter().map(|(_, current)| *current));
            (kind, baseline, current)
        })
        .collect();
    Ok(TrajectoryDiff {
        compared,
        per_kind,
        missing,
        added,
        baseline_geomean,
        current_geomean,
    })
}

/// Geometric mean of strictly positive values (`0.0` for an empty iterator).
#[must_use]
pub fn geomean(values: impl Iterator<Item = f64>) -> f64 {
    let mut sum = 0.0f64;
    let mut count = 0usize;
    for value in values {
        sum += value.ln();
        count += 1;
    }
    if count == 0 {
        0.0
    } else {
        (sum / count as f64).exp()
    }
}

// ---------------------------------------------------------------------------
// A minimal JSON reader for the schema above.
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum Json {
    Object(Vec<(String, Json)>),
    Array(Vec<Json>),
    String(String),
    Number(f64),
    Bool(bool),
    Null,
}

impl Json {
    fn as_object(&self, context: &str) -> Result<&[(String, Json)], String> {
        match self {
            Json::Object(entries) => Ok(entries),
            other => Err(format!("{context}: expected an object, found {other:?}")),
        }
    }

    fn as_array(&self, context: &str) -> Result<&[Json], String> {
        match self {
            Json::Array(items) => Ok(items),
            other => Err(format!("{context}: expected an array, found {other:?}")),
        }
    }

    fn as_string(&self, context: &str) -> Result<String, String> {
        match self {
            Json::String(text) => Ok(text.clone()),
            other => Err(format!("{context}: expected a string, found {other:?}")),
        }
    }

    fn as_f64(&self, context: &str) -> Result<f64, String> {
        match self {
            Json::Number(value) => Ok(*value),
            other => Err(format!("{context}: expected a number, found {other:?}")),
        }
    }

    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
    fn as_u64(&self, context: &str) -> Result<u64, String> {
        let value = self.as_f64(context)?;
        if value < 0.0 || value.fract() != 0.0 {
            return Err(format!(
                "{context}: expected a non-negative integer, found {value}"
            ));
        }
        Ok(value as u64)
    }
}

fn get<'a>(entries: &'a [(String, Json)], key: &str) -> Result<&'a Json, String> {
    entries
        .iter()
        .find(|(name, _)| name == key)
        .map(|(_, value)| value)
        .ok_or_else(|| format!("missing field `{key}`"))
}

fn parse_json(text: &str) -> Result<Json, String> {
    let mut parser = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    let value = parser.value()?;
    parser.skip_whitespace();
    if parser.pos != parser.bytes.len() {
        return Err(format!("trailing content at byte {}", parser.pos));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_whitespace(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|byte| byte.is_ascii_whitespace())
        {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Result<u8, String> {
        self.skip_whitespace();
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| "unexpected end of input".to_string())
    }

    fn expect(&mut self, byte: u8) -> Result<(), String> {
        if self.peek()? == byte {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected `{}` at byte {}",
                char::from(byte),
                self.pos
            ))
        }
    }

    fn literal(&mut self, text: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek()? {
            b'{' => self.object(),
            b'[' => self.array(),
            b'"' => Ok(Json::String(self.string()?)),
            b't' => self.literal("true", Json::Bool(true)),
            b'f' => self.literal("false", Json::Bool(false)),
            b'n' => self.literal("null", Json::Null),
            _ => self.number(),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(Json::Object(entries));
        }
        loop {
            let key = self.string()?;
            self.expect(b':')?;
            entries.push((key, self.value()?));
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(Json::Object(entries));
                }
                other => {
                    return Err(format!(
                        "expected `,` or `}}` at byte {}, found `{}`",
                        self.pos,
                        char::from(other)
                    ))
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                other => {
                    return Err(format!(
                        "expected `,` or `]` at byte {}, found `{}`",
                        self.pos,
                        char::from(other)
                    ))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut text = String::new();
        loop {
            let byte = *self
                .bytes
                .get(self.pos)
                .ok_or("unterminated string literal")?;
            self.pos += 1;
            match byte {
                b'"' => return Ok(text),
                b'\\' => {
                    let escape = *self.bytes.get(self.pos).ok_or("unterminated escape")?;
                    self.pos += 1;
                    match escape {
                        b'"' => text.push('"'),
                        b'\\' => text.push('\\'),
                        b'/' => text.push('/'),
                        b'n' => text.push('\n'),
                        b't' => text.push('\t'),
                        b'r' => text.push('\r'),
                        b'u' => {
                            let digits = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(digits).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|_| "bad \\u escape")?;
                            self.pos += 4;
                            text.push(char::from_u32(code).ok_or("bad \\u code point")?);
                        }
                        other => {
                            return Err(format!("unsupported escape `\\{}`", char::from(other)))
                        }
                    }
                }
                other => {
                    // Re-assemble multi-byte UTF-8 sequences.
                    if other.is_ascii() {
                        text.push(char::from(other));
                    } else {
                        let start = self.pos - 1;
                        let len = match other {
                            0xC0..=0xDF => 2,
                            0xE0..=0xEF => 3,
                            _ => 4,
                        };
                        let slice = self
                            .bytes
                            .get(start..start + len)
                            .ok_or("truncated UTF-8 sequence")?;
                        let chunk =
                            std::str::from_utf8(slice).map_err(|_| "invalid UTF-8 in string")?;
                        text.push_str(chunk);
                        self.pos = start + len;
                    }
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        self.skip_whitespace();
        let start = self.pos;
        while self.bytes.get(self.pos).is_some_and(|byte| {
            byte.is_ascii_digit() || matches!(byte, b'-' | b'+' | b'.' | b'e' | b'E')
        }) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| "invalid number".to_string())?;
        text.parse::<f64>()
            .map(Json::Number)
            .map_err(|_| format!("invalid number `{text}` at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(name: &str, speedup: f64) -> BenchRecord {
        BenchRecord {
            name: name.to_string(),
            kind: "coverage".to_string(),
            baseline: "scalar".to_string(),
            contender: "packed".to_string(),
            baseline_ns: (speedup * 1000.0) as u64,
            contender_ns: 1000,
            speedup,
            lane_width: None,
        }
    }

    #[test]
    fn json_round_trips_through_the_parser() {
        let file = BenchFile::new(
            4,
            vec![record("a \"quoted\" × name", 8.0), record("b", 2.0)],
        );
        let parsed = BenchFile::parse(&file.to_json()).unwrap();
        assert_eq!(parsed, file);
        assert!((parsed.geomean_speedup - 4.0).abs() < 1e-9);
        assert_eq!(parsed.threads, 4);
        assert_eq!(parsed.version, SCHEMA_VERSION);
    }

    #[test]
    fn lane_width_is_optional_and_round_trips() {
        // A wide-word record carries the width; plain records omit the field
        // entirely (old baselines must keep parsing).
        let wide = BenchRecord {
            kind: "lane_width".to_string(),
            baseline: "packed-w64".to_string(),
            contender: "packed-w256".to_string(),
            lane_width: Some("256".to_string()),
            ..record("af-xh-1024c-w256", 3.5)
        };
        let file = BenchFile::new(1, vec![wide, record("plain", 2.0)]);
        let json = file.to_json();
        assert!(json.contains("\"lane_width\": \"256\""));
        assert_eq!(json.matches("\"lane_width\":").count(), 1);
        let parsed = BenchFile::parse(&json).unwrap();
        assert_eq!(parsed.workloads, file.workloads);
        assert_eq!(parsed.workloads[0].lane_width.as_deref(), Some("256"));
        assert_eq!(parsed.workloads[1].lane_width, None);
    }

    #[test]
    fn schema_violations_are_rejected() {
        assert!(BenchFile::parse("not json").is_err());
        assert!(BenchFile::parse("{}").is_err());
        let wrong_version = BenchFile {
            version: 1,
            ..BenchFile::new(1, vec![record("a", 2.0)])
        };
        let message = BenchFile::parse(&wrong_version.to_json()).unwrap_err();
        assert!(message.contains("version 1"), "{message}");
        // The PR-1 era schema (no version, no kind/baseline fields) is refused.
        let legacy = r#"{"benchmark": "simulation_backends", "threads": 1,
            "geomean_speedup": 2.0,
            "workloads": [{"name": "x", "scalar_ns": 2, "packed_ns": 1, "speedup": 2.0}]}"#;
        assert!(BenchFile::parse(legacy).is_err());
        let no_workloads = r#"{"version": 2, "threads": 1, "geomean_speedup": 1.0,
            "workloads": []}"#;
        assert!(BenchFile::parse(no_workloads)
            .unwrap_err()
            .contains("no workloads"));
        let negative = r#"{"version": 2, "threads": 1, "geomean_speedup": 1.0,
            "workloads": [{"name": "x", "kind": "coverage", "baseline": "scalar",
            "contender": "packed", "baseline_ns": 1, "contender_ns": 1, "speedup": -1.0}]}"#;
        assert!(BenchFile::parse(negative).unwrap_err().contains("positive"));
    }

    #[test]
    fn diff_passes_within_threshold_and_fails_beyond_it() {
        let baseline = BenchFile::new(1, vec![record("a", 10.0), record("b", 20.0)]);
        // 20% slower geomean: inside the 25% gate.
        let current = BenchFile::new(1, vec![record("a", 8.0), record("b", 16.0)]);
        let diff = diff_trajectories(&baseline, &current).unwrap();
        assert!((diff.regression() - 0.2).abs() < 1e-9);
        assert!(!diff.regressed(0.25));
        assert!(diff.regressed(0.1));
        assert!(diff.to_string().contains("geomean"));

        // A synthetic >25% regression trips the gate.
        let regressed = BenchFile::new(1, vec![record("a", 5.0), record("b", 10.0)]);
        let diff = diff_trajectories(&baseline, &regressed).unwrap();
        assert!(diff.regressed(0.25));
        assert!((diff.regression() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn diff_tracks_workload_set_changes() {
        let baseline = BenchFile::new(1, vec![record("kept", 4.0), record("gone", 4.0)]);
        let current = BenchFile::new(1, vec![record("kept", 4.0), record("new", 4.0)]);
        let diff = diff_trajectories(&baseline, &current).unwrap();
        assert_eq!(diff.compared.len(), 1);
        assert_eq!(diff.missing, vec!["gone".to_string()]);
        assert_eq!(diff.added, vec!["new".to_string()]);
        assert!(!diff.regressed(0.25));

        let disjoint = BenchFile::new(1, vec![record("other", 4.0)]);
        assert!(diff_trajectories(&baseline, &disjoint).is_err());
    }

    #[test]
    fn geomean_edge_cases() {
        assert_eq!(geomean(std::iter::empty()), 0.0);
        assert!((geomean([4.0, 16.0].into_iter()) - 8.0).abs() < 1e-9);
    }
}
