//! # `march-bench`
//!
//! Shared helpers for the benchmark harness that reproduces the evaluation of the
//! DATE 2006 paper (Table 1) and the additional coverage/ablation studies of this
//! workspace. The runnable artefacts are:
//!
//! * `cargo run --release -p march-bench --bin table1` — regenerates Table 1:
//!   generated tests for Fault Lists #1 and #2, their complexity, generation CPU
//!   time and the improvement over the published baselines;
//! * `cargo run --release -p march-bench --bin coverage_matrix` — the §6 validation
//!   claim: simulated coverage of every catalogue and generated test against every
//!   fault list;
//! * `cargo run --release -p march-bench --bin ablation_report` — the effect of the
//!   generator's design knobs (redundancy removal, repair pool, backgrounds);
//! * `cargo bench -p march-bench` — criterion micro-benchmarks of generation and
//!   simulation throughput.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::Duration;

use march_test::MarchTest;

mod trajectory;

pub use trajectory::{
    diff_trajectories, geomean, BenchFile, BenchRecord, TrajectoryDiff, SCHEMA_VERSION,
};

/// One row of the reproduced Table 1.
#[derive(Debug, Clone)]
pub struct TableRow {
    /// Name of the (generated) march test.
    pub name: String,
    /// The notation of the test.
    pub notation: String,
    /// Which fault list the row targets (1 or 2).
    pub fault_list: usize,
    /// Generation CPU time.
    pub cpu_time: Duration,
    /// Complexity coefficient (the `k` of `k·n`).
    pub complexity: usize,
    /// Simulated coverage of the target list, in percent.
    pub coverage_percent: f64,
    /// Improvement in test length over the published baselines, keyed by baseline
    /// name (positive = shorter than the baseline).
    pub improvements: Vec<(String, f64)>,
}

impl TableRow {
    /// Formats the row in a compact, column-aligned form.
    #[must_use]
    pub fn formatted(&self) -> String {
        let improvements = self
            .improvements
            .iter()
            .map(|(name, percent)| format!("{name}: {percent:+.1}%"))
            .collect::<Vec<_>>()
            .join(", ");
        format!(
            "{:<14} | list #{} | {:>6.2}s | {:>4}n | {:>6.1}% | {}",
            self.name,
            self.fault_list,
            self.cpu_time.as_secs_f64(),
            self.complexity,
            self.coverage_percent,
            improvements
        )
    }
}

/// Test-length improvement of `ours` over `baseline`, as a percentage of the
/// baseline complexity (positive = ours is shorter, matching the convention of the
/// paper's "Improve (%)" columns).
#[must_use]
pub fn improvement_percent(ours: &MarchTest, baseline: &MarchTest) -> f64 {
    improvement_from_complexities(ours.complexity(), baseline.complexity())
}

/// Same as [`improvement_percent`], from raw complexities.
#[must_use]
pub fn improvement_from_complexities(ours: usize, baseline: usize) -> f64 {
    if baseline == 0 {
        0.0
    } else {
        100.0 * (baseline as f64 - ours as f64) / baseline as f64
    }
}

/// Parses the `--threads N` flag from the process arguments, as used by the
/// benchmark binaries: returns `1` when the flag is absent; `0` means "use the
/// available parallelism".
///
/// # Panics
///
/// Panics with a clear message when the flag is present without a value or
/// with a non-numeric one — benchmark runs must never silently fall back to a
/// different thread count than the one requested.
#[must_use]
pub fn threads_from_args() -> usize {
    let mut args = std::env::args();
    while let Some(arg) = args.next() {
        if arg == "--threads" {
            return args
                .next()
                .expect("--threads requires a value")
                .parse()
                .expect("--threads requires a number (0 = auto)");
        }
    }
    1
}

/// Escapes a string for embedding in a JSON string literal.
///
/// Re-exported from [`sram_sim::json_escape`] — the single escaping
/// implementation shared by the session [`Report`](sram_sim::Report) writers
/// and the trajectory file.
#[must_use]
pub fn json_escape(text: &str) -> String {
    sram_sim::json_escape(text)
}

/// Renders a header matching [`TableRow::formatted`].
#[must_use]
pub fn table_header() -> String {
    format!(
        "{:<14} | {:<7} | {:>7} | {:>5} | {:>7} | improvement vs baselines",
        "march test", "target", "CPU", "O(n)", "coverage"
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use march_test::catalog;

    #[test]
    fn improvement_matches_table_1() {
        // ABL (37n) improves 13.9% over the 43n test and 9.7% over March SL (41n).
        let abl = catalog::march_abl();
        assert!((improvement_percent(&abl, &catalog::test_43n()) - 13.9).abs() < 0.1);
        assert!((improvement_percent(&abl, &catalog::march_sl()) - 9.7).abs() < 0.1);
        assert!((improvement_from_complexities(9, 11) - 18.1).abs() < 0.2);
        assert_eq!(improvement_from_complexities(10, 0), 0.0);
    }

    #[test]
    fn row_formatting_is_stable() {
        let row = TableRow {
            name: "March X".to_string(),
            notation: "⇕(w0)".to_string(),
            fault_list: 1,
            cpu_time: Duration::from_millis(1500),
            complexity: 35,
            coverage_percent: 100.0,
            improvements: vec![("March SL".to_string(), 14.6)],
        };
        let text = row.formatted();
        assert!(text.contains("35n"));
        assert!(text.contains("March SL: +14.6%"));
        assert!(!table_header().is_empty());
    }
}
