//! Ablation study of the generator's design knobs (an extension of the paper's
//! evaluation): redundancy removal, the exhaustive repair pool and the set of data
//! backgrounds used during generation.
//!
//! Run with `cargo run --release -p march-bench --bin ablation_report`.

use std::time::Instant;

use march_gen::{GeneratorConfig, MarchGenerator};
use march_test::AddressOrder;
use sram_fault_model::FaultList;
use sram_sim::{measure_coverage, CoverageConfig, InitialState};

struct Variant {
    name: &'static str,
    config: GeneratorConfig,
}

fn main() {
    let variants = vec![
        Variant {
            name: "default (removal + repair)",
            config: GeneratorConfig::default(),
        },
        Variant {
            name: "no redundancy removal",
            config: GeneratorConfig::without_redundancy_removal(),
        },
        Variant {
            name: "no repair pool",
            config: GeneratorConfig {
                repair: false,
                ..GeneratorConfig::default()
            },
        },
        Variant {
            name: "single background (all-1)",
            config: GeneratorConfig {
                backgrounds: vec![InitialState::AllOne],
                ..GeneratorConfig::default()
            },
        },
        Variant {
            name: "small memory (6 cells)",
            config: GeneratorConfig {
                memory_cells: 6,
                ..GeneratorConfig::default()
            },
        },
        Variant {
            name: "ascending-only elements",
            config: GeneratorConfig::single_order(AddressOrder::Ascending),
        },
    ];

    for (label, list) in [
        ("Fault List #2", FaultList::list_2()),
        ("Fault List #1", FaultList::list_1()),
    ] {
        println!("=== {label} ({} linked faults) ===", list.linked().len());
        println!(
            "{:<28} {:>8} {:>7} {:>10} {:>10}",
            "variant", "O(n)", "CPU", "complete", "verified"
        );
        for variant in &variants {
            let generator =
                MarchGenerator::with_config(list.clone(), variant.config.clone()).named("ablation");
            let start = Instant::now();
            let generated = generator.generate();
            let elapsed = start.elapsed();
            let verification =
                measure_coverage(generated.test(), &list, &CoverageConfig::thorough());
            println!(
                "{:<28} {:>7}n {:>6.2}s {:>10} {:>9.1}%",
                variant.name,
                generated.test().complexity(),
                elapsed.as_secs_f64(),
                generated.report().is_complete(),
                verification.percent()
            );
        }
        println!();
    }
}
