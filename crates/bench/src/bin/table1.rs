//! Reproduction of **Table 1** of the paper: automatically generated march tests
//! for the two target fault lists, with generation CPU time, complexity and the
//! improvement in test length over the published baselines.
//!
//! Run with `cargo run --release -p march-bench --bin table1`.
//! Pass `--exhaustive` to re-verify every generated test under exhaustive cell
//! placements (slower).

use std::env;
use std::time::Instant;

use march_bench::{improvement_percent, table_header, TableRow};
use march_gen::{GeneratedTest, GeneratorConfig, MarchGenerator};
use march_test::{catalog, MarchTest};
use sram_fault_model::FaultList;
use sram_sim::{measure_coverage, CoverageConfig};

fn main() {
    let exhaustive = env::args().any(|arg| arg == "--exhaustive");

    let list1 = FaultList::list_1();
    let list2 = FaultList::list_2();
    println!("{list1}");
    println!("{list2}");
    println!();

    // The three rows of Table 1:
    //   ABL   — Fault List #1, raw greedy output (no redundancy removal);
    //   RABL  — Fault List #1, with the redundancy-removal pass;
    //   ABL1  — Fault List #2, default configuration.
    let rows = vec![
        generate_row(
            "March GABL",
            &list1,
            1,
            GeneratorConfig::without_redundancy_removal(),
            &[catalog::test_43n(), catalog::march_sl()],
            exhaustive,
        ),
        generate_row(
            "March GRABL",
            &list1,
            1,
            GeneratorConfig::default(),
            &[catalog::test_43n(), catalog::march_sl()],
            exhaustive,
        ),
        generate_row(
            "March GABL1",
            &list2,
            2,
            GeneratorConfig::default(),
            &[catalog::march_lf1()],
            exhaustive,
        ),
    ];

    println!("{}", table_header());
    println!("{}", "-".repeat(110));
    for row in &rows {
        println!("{}", row.formatted());
    }
    println!();
    println!("generated march tests:");
    for row in &rows {
        println!("  {:<14} {}", row.name, row.notation);
    }
    println!();

    println!("published Table 1 reference points:");
    for (test, list_label) in [
        (catalog::march_abl(), "#1"),
        (catalog::march_rabl(), "#1"),
        (catalog::march_abl1(), "#2"),
        (catalog::test_43n(), "#1 (subset)"),
        (catalog::march_sl(), "#1"),
        (catalog::march_lf1(), "#2"),
    ] {
        println!(
            "  {:<16} {:>4} targeting fault list {}",
            test.name(),
            test.complexity_label(),
            list_label
        );
    }
}

fn generate_row(
    name: &str,
    list: &FaultList,
    fault_list: usize,
    config: GeneratorConfig,
    baselines: &[MarchTest],
    exhaustive: bool,
) -> TableRow {
    let generator = MarchGenerator::with_config(list.clone(), config).named(name);
    let start = Instant::now();
    let generated: GeneratedTest = generator.generate();
    let cpu_time = start.elapsed();

    let coverage_config = if exhaustive {
        CoverageConfig::exhaustive()
    } else {
        CoverageConfig::thorough()
    };
    let coverage = measure_coverage(generated.test(), list, &coverage_config);

    let improvements = baselines
        .iter()
        .map(|baseline| {
            (
                baseline.name().to_string(),
                improvement_percent(generated.test(), baseline),
            )
        })
        .collect();

    TableRow {
        name: name.to_string(),
        notation: generated.test().notation(),
        fault_list,
        cpu_time,
        complexity: generated.test().complexity(),
        coverage_percent: coverage.percent(),
        improvements,
    }
}
