//! CI gate for the perf trajectory: diffs a freshly measured
//! `BENCH_simulation.json` against the committed baseline and exits non-zero
//! when the geometric-mean speedup regresses by more than the threshold
//! (default 25%), or when either file violates the trajectory schema.
//!
//! ```text
//! cargo run --release -p march-bench --bin bench_diff -- \
//!     --baseline BENCH_simulation.json --current /tmp/BENCH_current.json \
//!     [--threshold 0.25]
//! ```
//!
//! Speedup *ratios* are compared (they are intra-run and therefore survive a
//! change of machine); absolute nanoseconds are reported but never gated on.

use std::process::ExitCode;

use march_bench::{diff_trajectories, BenchFile};

struct Options {
    baseline: String,
    current: String,
    threshold: f64,
}

fn parse_options() -> Result<Options, String> {
    let mut baseline = None;
    let mut current = None;
    let mut threshold = 0.25f64;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| {
            args.next()
                .ok_or_else(|| format!("{flag} requires a value"))
        };
        match arg.as_str() {
            "--baseline" => baseline = Some(value("--baseline")?),
            "--current" => current = Some(value("--current")?),
            "--threshold" => {
                let text = value("--threshold")?;
                threshold = text
                    .parse::<f64>()
                    .map_err(|_| format!("`{text}` is not a valid threshold"))?;
                if !(0.0..1.0).contains(&threshold) {
                    return Err(format!(
                        "threshold must be a fraction in [0, 1), got {threshold}"
                    ));
                }
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    Ok(Options {
        baseline: baseline.ok_or("bench_diff requires --baseline")?,
        current: current.ok_or("bench_diff requires --current")?,
        threshold,
    })
}

fn load(label: &str, path: &str) -> Result<BenchFile, String> {
    let text =
        std::fs::read_to_string(path).map_err(|error| format!("{label} `{path}`: {error}"))?;
    BenchFile::parse(&text).map_err(|error| format!("{label} `{path}`: {error}"))
}

fn run() -> Result<(), String> {
    let options = parse_options()?;
    let baseline = load("baseline", &options.baseline)?;
    let current = load("current", &options.current)?;
    let diff = diff_trajectories(&baseline, &current)?;
    println!("{diff}");
    // Every baseline workload must still be measured: a silently dropped
    // workload (say, the af_coverage large-memory family) would otherwise
    // leave the gate without anyone deciding that.
    if !diff.missing.is_empty() {
        return Err(format!(
            "baseline workloads missing from the current run: {} — regenerate the \
             committed baseline if this removal is intentional",
            diff.missing.join(", ")
        ));
    }
    if diff.regressed(options.threshold) {
        return Err(format!(
            "geomean speedup regressed {:.1}% (gate: {:.0}%): {:.2}x -> {:.2}x",
            100.0 * diff.regression(),
            100.0 * options.threshold,
            diff.baseline_geomean,
            diff.current_geomean,
        ));
    }
    println!(
        "within the {:.0}% regression gate",
        100.0 * options.threshold
    );
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("bench_diff: {message}");
            ExitCode::FAILURE
        }
    }
}
