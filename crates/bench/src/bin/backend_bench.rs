//! Scalar vs packed backend benchmark with a machine-readable trail: runs the
//! coverage-matrix workload on both simulation backends and writes the timings
//! to `BENCH_simulation.json`, so the perf trajectory of the simulation stack
//! is tracked across PRs.
//!
//! Run with `cargo run --release -p march-bench --bin backend_bench`.
//! Pass `--out PATH` to change the JSON location and `--threads N` for the
//! thread fan-out (0 = auto).

use std::env;
use std::time::{Duration, Instant};

use march_bench::{json_escape, BenchRecord};
use march_test::catalog;
use sram_fault_model::FaultList;
use sram_sim::{measure_coverage, BackendKind, CoverageConfig, PlacementStrategy};

/// One benchmark workload: a named test × list × configuration.
struct Workload {
    name: &'static str,
    test: march_test::MarchTest,
    list: FaultList,
    config: CoverageConfig,
}

fn workloads() -> Vec<Workload> {
    let exhaustive8 = CoverageConfig {
        memory_cells: 8,
        strategy: PlacementStrategy::Exhaustive,
        ..CoverageConfig::thorough()
    };
    vec![
        Workload {
            name: "march_sl_vs_list_2_exhaustive",
            test: catalog::march_sl(),
            list: FaultList::list_2(),
            config: exhaustive8.clone(),
        },
        Workload {
            name: "march_ss_vs_unlinked_exhaustive",
            test: catalog::march_ss(),
            list: FaultList::unlinked_static(),
            config: exhaustive8,
        },
        Workload {
            name: "march_sl_vs_list_1_thorough",
            test: catalog::march_sl(),
            list: FaultList::list_1(),
            config: CoverageConfig::thorough(),
        },
        Workload {
            name: "march_c_minus_vs_list_1_exhaustive6",
            test: catalog::march_c_minus(),
            list: FaultList::list_1(),
            config: CoverageConfig::exhaustive(),
        },
    ]
}

fn time_coverage(workload: &Workload, backend: BackendKind, threads: usize, reps: u32) -> Duration {
    let config = workload
        .config
        .clone()
        .with_backend(backend)
        .with_threads(threads);
    // Warm-up (also validates the run).
    let baseline = measure_coverage(&workload.test, &workload.list, &config);
    let start = Instant::now();
    for _ in 0..reps {
        let report = measure_coverage(&workload.test, &workload.list, &config);
        assert_eq!(report.covered(), baseline.covered());
    }
    start.elapsed() / reps
}

fn main() {
    let mut out_path = "BENCH_simulation.json".to_string();
    let threads = march_bench::threads_from_args();
    let mut args = env::args();
    while let Some(arg) = args.next() {
        if arg == "--out" {
            out_path = args.next().expect("--out requires a path");
        }
    }

    let mut records: Vec<BenchRecord> = Vec::new();
    println!(
        "{:<38} {:>12} {:>12} {:>9}",
        "workload", "scalar", "packed", "speedup"
    );
    println!("{}", "-".repeat(76));
    for workload in workloads() {
        let scalar = time_coverage(&workload, BackendKind::Scalar, threads, 3);
        let packed = time_coverage(&workload, BackendKind::Packed, threads, 3);
        let speedup = scalar.as_secs_f64() / packed.as_secs_f64().max(1e-9);
        println!(
            "{:<38} {:>10.2}ms {:>10.2}ms {:>8.2}x",
            workload.name,
            scalar.as_secs_f64() * 1e3,
            packed.as_secs_f64() * 1e3,
            speedup
        );
        records.push(BenchRecord {
            name: workload.name.to_string(),
            scalar_ns: scalar.as_nanos() as u64,
            packed_ns: packed.as_nanos() as u64,
            speedup,
            threads,
        });
    }

    let geomean = (records
        .iter()
        .map(|record| record.speedup.ln())
        .sum::<f64>()
        / records.len() as f64)
        .exp();
    println!("{}", "-".repeat(76));
    println!("geometric-mean speedup: {geomean:.2}x (threads: {threads})");

    let json = render_json(&records, geomean, threads);
    std::fs::write(&out_path, json).expect("write benchmark JSON");
    println!("wrote {out_path}");
}

fn render_json(records: &[BenchRecord], geomean: f64, threads: usize) -> String {
    let mut json = String::from("{\n  \"benchmark\": \"simulation_backends\",\n");
    json.push_str(&format!("  \"threads\": {threads},\n"));
    json.push_str(&format!("  \"geomean_speedup\": {geomean:.3},\n"));
    json.push_str("  \"workloads\": [\n");
    for (index, record) in records.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"scalar_ns\": {}, \"packed_ns\": {}, \"speedup\": {:.3}}}{}\n",
            json_escape(&record.name),
            record.scalar_ns,
            record.packed_ns,
            record.speedup,
            if index + 1 == records.len() { "" } else { "," }
        ));
    }
    json.push_str("  ]\n}\n");
    json
}
