//! The perf-trajectory benchmark with a machine-readable trail: times the
//! coverage-matrix workloads on both simulation backends, the generator's
//! candidate-scoring hot path with batched vs per-candidate pools, the
//! redundancy-removal pass with suffix-only snapshots vs full re-simulation,
//! repeated coverage through one resident [`Session`] vs the
//! spawn-per-call legacy path, the wide-word packed engine (128/256
//! lanes per word vs 64) on exhaustive address-decoder sweeps, **and** the
//! `march-codex serve` loop replaying a fixed NDJSON script against a cold
//! engine per replay vs one resident engine with a warm artifact store, then
//! writes the speedups to
//! `BENCH_simulation.json` (schema version 2, see [`march_bench::BenchFile`])
//! so the simulation stack's perf trajectory is tracked — and diffed by CI
//! via `bench_diff` — across PRs.
//!
//! Run with `cargo run --release -p march-bench --bin backend_bench`.
//! Pass `--out PATH` to change the JSON location and `--threads N` for the
//! thread fan-out (0 = auto; the resolved count is what lands in the JSON).

use std::env;
use std::sync::Arc;
use std::time::{Duration, Instant};

use march_bench::{BenchFile, BenchRecord};
use march_codex_cli::{serve_lines, ServeMetrics, ServeOptions};
use march_gen::{
    exhaustive_candidates, minimise_full_resim, minimise_with, score_candidates, GeneratorConfig,
};
use march_test::{catalog, MarchElement, MarchTest};
use sram_fault_model::{FaultList, FaultListBuilder};
use sram_sim::{
    effective_threads, enumerate_lanes, enumerate_targets, measure_coverage, ArtifactStore,
    BackendKind, CampaignConfig, CoverageConfig, ExecPolicy, InitialState, LaneWidth, MemIo,
    PlacementStrategy, Report, Session, SharedEngine, SnapshotStore, TargetBatch,
};

/// One coverage workload: a named test × list × configuration timed on the
/// scalar and the packed backend.
struct CoverageWorkload {
    name: &'static str,
    test: MarchTest,
    list: FaultList,
    config: CoverageConfig,
}

fn coverage_workloads() -> Vec<CoverageWorkload> {
    let exhaustive8 = CoverageConfig {
        memory_cells: 8,
        strategy: PlacementStrategy::Exhaustive,
        ..CoverageConfig::thorough()
    };
    vec![
        CoverageWorkload {
            name: "march_sl_vs_list_2_exhaustive",
            test: catalog::march_sl(),
            list: FaultList::list_2(),
            config: exhaustive8.clone(),
        },
        CoverageWorkload {
            name: "march_ss_vs_unlinked_exhaustive",
            test: catalog::march_ss(),
            list: FaultList::unlinked_static(),
            config: exhaustive8,
        },
        CoverageWorkload {
            name: "march_sl_vs_list_1_thorough",
            test: catalog::march_sl(),
            list: FaultList::list_1(),
            config: CoverageConfig::thorough(),
        },
        CoverageWorkload {
            name: "march_c_minus_vs_list_1_exhaustive6",
            test: catalog::march_c_minus(),
            list: FaultList::list_1(),
            config: CoverageConfig::exhaustive(),
        },
    ]
}

/// One generation workload: target batches advanced past a march prefix (the
/// generator's mid-run state), scored against a candidate pool — batched
/// full-word pools vs the per-candidate path of PR 1.
struct ScoringWorkload {
    name: &'static str,
    batches: Vec<TargetBatch>,
    pool: Vec<MarchElement>,
}

/// Builds the packed target batches of `list`, advanced by `prefix` so only
/// the hard-to-cover lanes are still pending — the regime in which the
/// generator leans on the exhaustive 4^k repair pool.
fn advanced_batches(list: &FaultList, prefix: &[MarchElement]) -> Vec<TargetBatch> {
    let backgrounds = [InitialState::AllZero, InitialState::AllOne];
    let mut batches: Vec<TargetBatch> = enumerate_targets(list)
        .into_iter()
        .map(|target| {
            let lanes =
                enumerate_lanes(&target, 8, PlacementStrategy::Representative, &backgrounds)
                    .expect("benchmark scope hosts the placements");
            TargetBatch::new(target, lanes, 8, BackendKind::Packed)
        })
        .collect();
    for element in prefix {
        for batch in &mut batches {
            batch.advance(element);
        }
    }
    batches.retain(|batch| batch.pending() > 0);
    batches
}

fn scoring_workloads() -> Vec<ScoringWorkload> {
    // March ABL1's first two elements cover the easy lanes of list #2; the
    // repair pool of length ≤ 4 then hunts the rest.
    let abl1 = catalog::march_abl1();
    let list2_prefix: Vec<MarchElement> = abl1.elements()[..2].to_vec();
    // March SL's first four elements play the same role for list #1: what is
    // left pending is the hard tail the repair search actually sees.
    let sl = catalog::march_sl();
    let list1_prefix: Vec<MarchElement> = sl.elements()[..4].to_vec();
    vec![
        ScoringWorkload {
            name: "repair_pool4_vs_list_2_tail",
            batches: advanced_batches(&FaultList::list_2(), &list2_prefix),
            pool: exhaustive_candidates(4),
        },
        ScoringWorkload {
            name: "repair_pool4_vs_list_1_tail",
            batches: advanced_batches(&FaultList::list_1(), &list1_prefix),
            pool: exhaustive_candidates(4),
        },
    ]
}

/// One pool-reuse workload: the same coverage query repeated through one
/// resident [`Session`] (contender) versus the legacy free-function path that
/// stands a fresh worker pool up per call (baseline). Runs at a fixed thread
/// count so the record is comparable across `--threads` flags; the two sides
/// produce byte-identical reports.
struct SessionWorkload {
    name: &'static str,
    test: MarchTest,
    list: FaultList,
    config: CoverageConfig,
    threads: usize,
}

fn session_workloads() -> Vec<SessionWorkload> {
    let exhaustive8 = CoverageConfig {
        memory_cells: 8,
        strategy: PlacementStrategy::Exhaustive,
        ..CoverageConfig::thorough()
    };
    vec![
        // Small per-call work: the per-call thread spawn is the dominant cost
        // the session pool removes.
        SessionWorkload {
            name: "repeated_coverage_session_list2_t4",
            test: catalog::march_sl(),
            list: FaultList::list_2(),
            config: exhaustive8,
            threads: 4,
        },
        // Larger per-call work: the pool win shrinks but must not vanish.
        SessionWorkload {
            name: "repeated_coverage_session_list1_t4",
            test: catalog::march_sl(),
            list: FaultList::list_1(),
            config: CoverageConfig::thorough(),
            threads: 4,
        },
    ]
}

/// One large-memory address-decoder workload: coverage of the canonical AF
/// list at 64 / 256 / 1024 cells — serial scalar simulation (baseline) vs the
/// packed + threaded session path (contender). At 1024 cells the scalar side
/// replays the whole march test per lane with per-operation dispatch
/// overhead, while the packed side streams each target's lanes through one
/// bit-plane word and fans targets out over the pool: this is the first
/// workload family where the packed + threaded path is the only viable one.
struct AfWorkload {
    name: &'static str,
    cells: usize,
    reps: u32,
}

fn af_workloads() -> Vec<AfWorkload> {
    vec![
        AfWorkload {
            name: "af_coverage_march_ss_64",
            cells: 64,
            reps: 10,
        },
        AfWorkload {
            name: "af_coverage_march_ss_256",
            cells: 256,
            reps: 5,
        },
        AfWorkload {
            name: "af_coverage_march_ss_1024",
            cells: 1024,
            reps: 3,
        },
    ]
}

/// One lane-width workload: exhaustive address-decoder coverage (the regime
/// where every target carries thousands of lanes — `cells` placements per
/// decoder class × 2 backgrounds × up to 10 sensitizing pairs) timed with
/// 64-lane packed words (baseline) against one wide `[u64; N]` width
/// (contender). Same backend, same thread count, same plan: the only
/// difference is how many coverage lanes one sensitization pass carries.
struct LaneWidthWorkload {
    name: &'static str,
    cells: usize,
    width: LaneWidth,
    reps: u32,
}

fn lane_width_workloads() -> Vec<LaneWidthWorkload> {
    vec![
        LaneWidthWorkload {
            name: "af-sl-xh-256c-w128",
            cells: 256,
            width: LaneWidth::W128,
            reps: 5,
        },
        LaneWidthWorkload {
            name: "af-sl-xh-256c-w256",
            cells: 256,
            width: LaneWidth::W256,
            reps: 5,
        },
        LaneWidthWorkload {
            name: "af-sl-xh-1024c-w128",
            cells: 1024,
            width: LaneWidth::W128,
            reps: 7,
        },
        LaneWidthWorkload {
            name: "af-sl-xh-1024c-w256",
            cells: 1024,
            width: LaneWidth::W256,
            reps: 7,
        },
    ]
}

/// One service workload: a fixed NDJSON request script replayed through the
/// `march-codex serve` loop — a cold [`SharedEngine`] stood up per replay
/// (baseline) versus one resident engine whose artifact store and fault
/// dictionaries stay warm across replays (contender). This is the regime the
/// `serve` subcommand exists for: many clients, one process, every repeated
/// (test, list, scope) key answered from the shared store.
struct ServiceWorkload {
    name: &'static str,
    script: &'static str,
    reps: u32,
}

fn service_workloads() -> Vec<ServiceWorkload> {
    // Mixed coverage + diagnosis traffic over two fault lists. The diagnosis
    // pair shares one dictionary key (same test × list × scope), so a cold
    // replay pays one dictionary build and the warm engine answers both from
    // the index; the coverage lines keep re-simulating but reuse the
    // enumerated target lanes.
    const MIXED: &str = concat!(
        r#"{"op": "coverage", "test": "March SL", "list": "2"}"#,
        "\n",
        r#"{"op": "diagnose", "test": "March SS", "fault": "<0w1;0/1/->", "victim": 4, "aggressor": 1, "cells": 6, "list": "unlinked"}"#,
        "\n",
        r#"{"op": "coverage", "test": "March SS", "list": "unlinked"}"#,
        "\n",
        r#"{"op": "diagnose", "test": "March SS", "fault": "<0w1;0/1/->", "victim": 2, "aggressor": 5, "cells": 6, "list": "unlinked"}"#,
        "\n",
    );
    vec![ServiceWorkload {
        name: "serve_mixed_script_cold_vs_resident",
        script: MIXED,
        reps: 5,
    }]
}

/// One snapshot workload: a simulated process restart answering the same
/// lane-enumeration + fault-dictionary build — a cold start rebuilding both
/// artifacts in memory (baseline) versus a start replaying crash-safe
/// snapshots from a pre-warmed device into an empty artifact store
/// (contender). This is the regime `serve --snapshot-dir` exists for: a
/// restarted service re-answering its steady-state keys from disk instead of
/// re-simulating them.
struct SnapshotWorkload {
    name: &'static str,
    test: MarchTest,
    list: FaultList,
    cells: usize,
    reps: u32,
}

fn snapshot_workloads() -> Vec<SnapshotWorkload> {
    vec![
        // The serve steady state: FFM dictionary + lanes over the paper's
        // three-cell list.
        SnapshotWorkload {
            name: "restart_march_ss_list2_snapshot",
            test: catalog::march_ss(),
            list: FaultList::list_2(),
            cells: 8,
            reps: 5,
        },
        // The decoder domain, where lane enumeration is placement-heavy and
        // the snapshot replay skips the most rebuild work.
        SnapshotWorkload {
            name: "restart_march_ss_af64_snapshot",
            test: catalog::march_ss(),
            list: FaultList::address_decoder(),
            cells: 64,
            reps: 5,
        },
    ]
}

/// One Monte-Carlo campaign workload: address-decoder coverage over the
/// exhaustive placement space — full enumeration of every lane (baseline)
/// versus a seeded campaign drawing a fixed sample through the same packed
/// engine (contender). This is the regime `coverage --sample` exists for:
/// spaces whose lane count grows with the cell count squared, where a
/// bounded draw budget with a Wilson confidence interval replaces an
/// enumeration that no longer fits the time budget.
struct CampaignWorkload {
    name: &'static str,
    cells: usize,
    draws: u64,
    seed: u64,
    reps: u32,
}

fn campaign_workloads() -> Vec<CampaignWorkload> {
    vec![
        CampaignWorkload {
            name: "campaign_af_256c_1024_draws",
            cells: 256,
            draws: 1024,
            seed: 7,
            reps: 5,
        },
        CampaignWorkload {
            name: "campaign_af_1024c_8192_draws",
            cells: 1024,
            draws: 8192,
            seed: 7,
            reps: 3,
        },
    ]
}

/// Times one campaign workload. The campaign report is pinned byte-identical
/// (same seed, same JSON) every repetition, so a sampler or merge bug cannot
/// masquerade as a speedup; the exhaustive side pins its verdict the same
/// way. Both sides run the packed engine at 4 threads — the only variable is
/// enumerate-everything vs draw-a-sample.
fn time_campaign(workload: &CampaignWorkload) -> (Duration, Duration) {
    let test = catalog::march_ss();
    let list = FaultList::address_decoder();
    let session = Session::new(ExecPolicy::default().with_threads(4))
        .with_memory_cells(workload.cells)
        .with_strategy(PlacementStrategy::Exhaustive)
        .with_backgrounds(vec![InitialState::AllZero, InitialState::AllOne]);
    let config = CampaignConfig::default()
        .with_draws(workload.draws)
        .with_seed(workload.seed);

    let exhaustive_reference = session.coverage(&test, &list);
    let campaign_reference = session.campaign(&test, &list, &config).to_json();

    let mut exhaustive_time = Duration::ZERO;
    for _ in 0..workload.reps {
        let start = Instant::now();
        assert_eq!(session.coverage(&test, &list), exhaustive_reference);
        exhaustive_time += start.elapsed();
    }
    let exhaustive = exhaustive_time / workload.reps;

    let mut campaign_time = Duration::ZERO;
    for _ in 0..workload.reps {
        let start = Instant::now();
        assert_eq!(
            session.campaign(&test, &list, &config).to_json(),
            campaign_reference
        );
        campaign_time += start.elapsed();
    }
    let campaign = campaign_time / workload.reps;
    (exhaustive, campaign)
}

/// Times one snapshot workload. Every restart — cold or snapshot-warmed — is
/// pinned byte-identical to a reference dictionary JSON, so a stale or torn
/// snapshot cannot masquerade as a speedup. The device is in-memory
/// ([`MemIo`]), so the measured delta is decode-vs-rebuild, not disk speed.
fn time_snapshot(workload: &SnapshotWorkload) -> (Duration, Duration) {
    let policy = || ExecPolicy::default().with_threads(2);
    let primitive = sram_fault_model::Ffm::all_fault_primitives()
        .into_iter()
        .find(|fp| !fp.is_coupling())
        .expect("the FFM space has single-cell primitives");
    let injected =
        sram_sim::InjectedFault::single_cell(primitive, workload.cells - 1, workload.cells)
            .expect("the victim address is in scope");
    let restart = |store: Arc<ArtifactStore>| -> String {
        let engine = SharedEngine::with_store(policy(), store);
        let session = engine.session().with_memory_cells(workload.cells);
        session
            .target_lanes(&workload.list)
            .expect("benchmark scope hosts the placements");
        let syndrome = session
            .observe(&workload.test, &injected)
            .expect("the injected fault is in scope");
        let dictionary = session.dictionary(&workload.test, &workload.list);
        session.diagnose(&syndrome, &dictionary).to_json()
    };
    let snapshot_store = |device: &Arc<MemIo>| -> Arc<ArtifactStore> {
        let store = Arc::new(ArtifactStore::new());
        store.attach_snapshots(SnapshotStore::with_io(device.clone(), "snaps"));
        store
    };
    // The warm-up restart populates the device; it is also the reference.
    let device: Arc<MemIo> = Arc::new(MemIo::new());
    let reference = restart(snapshot_store(&device));

    let mut cold_time = Duration::ZERO;
    for _ in 0..workload.reps {
        let store = Arc::new(ArtifactStore::new());
        let start = Instant::now();
        assert_eq!(restart(store), reference);
        cold_time += start.elapsed();
    }
    let cold = cold_time / workload.reps;

    let mut warm_time = Duration::ZERO;
    for _ in 0..workload.reps {
        let store = snapshot_store(&device);
        let start = Instant::now();
        assert_eq!(restart(store), reference);
        warm_time += start.elapsed();
    }
    let warm = warm_time / workload.reps;
    (cold, warm)
}

/// Times one service workload. Every replay — cold or warm — is pinned
/// byte-identical to a reference transcript from a fresh engine, so a stale
/// cache entry cannot masquerade as a speedup.
fn time_service(workload: &ServiceWorkload) -> (Duration, Duration) {
    let options = ServeOptions::default();
    let policy = || ExecPolicy::default().with_threads(2);
    let run = |engine: &Arc<SharedEngine>| -> Vec<u8> {
        let metrics = Arc::new(ServeMetrics::default());
        let mut output = Vec::new();
        serve_lines(
            workload.script.as_bytes(),
            &mut output,
            engine,
            &metrics,
            &options,
        )
        .expect("benchmark script is well-formed");
        output
    };
    let reference = run(&SharedEngine::new(policy()));

    let mut cold_time = Duration::ZERO;
    for _ in 0..workload.reps {
        let engine = SharedEngine::new(policy());
        let start = Instant::now();
        assert_eq!(run(&engine), reference);
        cold_time += start.elapsed();
    }
    let cold = cold_time / workload.reps;

    let resident = SharedEngine::new(policy());
    // Warm-up replay populates the resident store; the timed replays are the
    // steady state a long-lived `serve` process answers from.
    assert_eq!(run(&resident), reference);
    let start = Instant::now();
    for _ in 0..workload.reps {
        assert_eq!(run(&resident), reference);
    }
    let warm = start.elapsed() / workload.reps;
    (cold, warm)
}

/// Times one lane-width workload; the narrow and wide reports are pinned
/// byte-identical every repetition, so a wide-word carry bug cannot
/// masquerade as a speedup. Both sides run packed single-worker — the AF
/// decoder space splits into only five targets, so at 4 threads the wall
/// time measures pool scheduling over lumpy work items, not the per-pass
/// width effect under test — and the sweep is timed one decoder class at a
/// time, each side keeping its best repetition per class and summing the
/// minima. Short per-class samples are far less likely to absorb a
/// scheduler interference spike than a whole five-class sweep, and the
/// damping is symmetric across both sides. The width is the only variable.
fn time_lane_width(workload: &LaneWidthWorkload) -> (Duration, Duration) {
    // March SL: the heaviest complete test in the catalog (most operations
    // per cell), so the workload is dominated by sensitization passes — the
    // work the lane width multiplies — rather than per-chunk setup.
    let test = catalog::march_sl();
    let session = |width: LaneWidth| {
        Session::new(ExecPolicy::default().with_threads(1).with_lane_width(width))
            .with_memory_cells(workload.cells)
            .with_strategy(PlacementStrategy::Exhaustive)
    };
    let narrow = session(LaneWidth::W64);
    let wide = session(workload.width);

    let mut narrow_time = Duration::ZERO;
    let mut wide_time = Duration::ZERO;
    for decoder in FaultList::address_decoder().decoders() {
        let list = FaultListBuilder::new(format!("AF class {decoder}"))
            .decoder(*decoder)
            .build()
            .expect("single-decoder list is well-formed");
        let reference = narrow.coverage(&test, &list);
        assert_eq!(wide.coverage(&test, &list), reference);

        let mut narrow_best = Duration::MAX;
        for _ in 0..workload.reps {
            let start = Instant::now();
            assert_eq!(narrow.coverage(&test, &list), reference);
            narrow_best = narrow_best.min(start.elapsed());
        }
        narrow_time += narrow_best;

        let mut wide_best = Duration::MAX;
        for _ in 0..workload.reps {
            let start = Instant::now();
            assert_eq!(wide.coverage(&test, &list), reference);
            wide_best = wide_best.min(start.elapsed());
        }
        wide_time += wide_best;
    }
    (narrow_time, wide_time)
}

/// Times one AF workload; the two sides' reports are pinned byte-identical
/// every repetition, so a decode-semantics bug cannot masquerade as a
/// speedup. The contender runs at 4 threads like the session workloads, so
/// records stay comparable across `--threads` flags.
fn time_af(workload: &AfWorkload) -> (Duration, Duration) {
    let reps = workload.reps;
    let list = FaultList::address_decoder();
    let test = catalog::march_ss();
    let scalar = Session::new(
        ExecPolicy::default()
            .with_backend(BackendKind::Scalar)
            .with_threads(1),
    )
    .with_memory_cells(workload.cells);
    let packed =
        Session::new(ExecPolicy::default().with_threads(4)).with_memory_cells(workload.cells);

    let reference = scalar.coverage(&test, &list);
    assert_eq!(packed.coverage(&test, &list), reference);

    let start = Instant::now();
    for _ in 0..reps {
        assert_eq!(scalar.coverage(&test, &list), reference);
    }
    let scalar_time = start.elapsed() / reps;

    let start = Instant::now();
    for _ in 0..reps {
        assert_eq!(packed.coverage(&test, &list), reference);
    }
    let packed_time = start.elapsed() / reps;
    (scalar_time, packed_time)
}

/// One redundancy-removal workload: a catalogue test minimised against a
/// fault list — the suffix-only snapshot pass (contender) vs the legacy
/// full re-simulation of every trial (baseline). The two produce
/// byte-identical minimised tests, asserted every repetition.
struct MinimiseWorkload {
    name: &'static str,
    test: MarchTest,
    list: FaultList,
    config: GeneratorConfig,
}

fn minimise_workloads(threads: usize) -> Vec<MinimiseWorkload> {
    vec![
        // The generation pipeline's own regime: a long catalogue test with
        // plenty of redundancy against the three-cell list under the paper's
        // thorough scope.
        MinimiseWorkload {
            name: "minimise_march_sl_vs_list_1_thorough",
            test: catalog::march_sl(),
            list: FaultList::list_1(),
            config: GeneratorConfig::default().with_threads(threads),
        },
        // Exhaustive placements: more lanes per target, so each legacy trial
        // re-simulates far more state than the suffix needs.
        MinimiseWorkload {
            name: "minimise_march_sl_vs_list_2_exhaustive",
            test: catalog::march_sl(),
            list: FaultList::list_2(),
            config: GeneratorConfig {
                strategy: PlacementStrategy::Exhaustive,
                ..GeneratorConfig::default()
            }
            .with_threads(threads),
        },
    ]
}

fn time_minimise(workload: &MinimiseWorkload, reps: u32) -> (Duration, Duration) {
    let session = workload.config.session();
    // Warm-up both paths and pin the minimised tests against each other: a
    // checkpointing bug cannot masquerade as a speedup.
    let reference = minimise_full_resim(&session, &workload.test, &workload.list, &workload.config);
    let snapshot = minimise_with(&session, &workload.test, &workload.list, &workload.config);
    assert_eq!(reference.0.notation(), snapshot.0.notation());
    assert_eq!(reference.1, snapshot.1);

    let start = Instant::now();
    for _ in 0..reps {
        let (test, removed) =
            minimise_full_resim(&session, &workload.test, &workload.list, &workload.config);
        assert_eq!(
            (test.notation(), removed),
            (reference.0.notation(), reference.1)
        );
    }
    let full = start.elapsed() / reps;

    let start = Instant::now();
    for _ in 0..reps {
        let (test, removed) =
            minimise_with(&session, &workload.test, &workload.list, &workload.config);
        assert_eq!(
            (test.notation(), removed),
            (reference.0.notation(), reference.1)
        );
    }
    let suffix = start.elapsed() / reps;
    (full, suffix)
}

fn time_session(workload: &SessionWorkload, reps: u32) -> (Duration, Duration) {
    let config = workload.config.clone().with_threads(workload.threads);
    let session = Session::from_coverage_config(&config);
    // Warm-up both paths and pin the verdicts against each other.
    let reference = session.coverage(&workload.test, &workload.list);
    assert_eq!(
        measure_coverage(&workload.test, &workload.list, &config),
        reference
    );

    let start = Instant::now();
    for _ in 0..reps {
        // The legacy path stands a fresh pool up inside every call.
        let report = measure_coverage(&workload.test, &workload.list, &config);
        assert_eq!(report.covered(), reference.covered());
    }
    let per_call = start.elapsed() / reps;

    let start = Instant::now();
    for _ in 0..reps {
        let report = session.coverage(&workload.test, &workload.list);
        assert_eq!(report.covered(), reference.covered());
    }
    let pooled = start.elapsed() / reps;
    (per_call, pooled)
}

fn time_coverage(
    workload: &CoverageWorkload,
    backend: BackendKind,
    threads: usize,
    reps: u32,
) -> Duration {
    let config = workload
        .config
        .clone()
        .with_backend(backend)
        .with_threads(threads);
    // Warm-up (also validates the run).
    let baseline = measure_coverage(&workload.test, &workload.list, &config);
    let start = Instant::now();
    for _ in 0..reps {
        let report = measure_coverage(&workload.test, &workload.list, &config);
        assert_eq!(report.covered(), baseline.covered());
    }
    start.elapsed() / reps
}

fn time_scoring(workload: &ScoringWorkload, batch: usize, threads: usize, reps: u32) -> Duration {
    // Warm-up; also pins the verdicts so a scoring bug cannot masquerade as a
    // speedup.
    let baseline = score_candidates(&workload.pool, &workload.batches, 1, threads);
    let start = Instant::now();
    for _ in 0..reps {
        let scores = score_candidates(&workload.pool, &workload.batches, batch, threads);
        assert_eq!(scores, baseline);
    }
    start.elapsed() / reps
}

#[allow(clippy::cast_possible_truncation)]
fn main() {
    let mut out_path = "BENCH_simulation.json".to_string();
    let threads = march_bench::threads_from_args();
    let mut args = env::args();
    while let Some(arg) = args.next() {
        if arg == "--out" {
            out_path = args.next().expect("--out requires a path");
        }
    }
    // What lands in the JSON is the thread count the run actually used, not
    // the flag: `--threads 0` resolves to the available parallelism here.
    let threads_used = effective_threads(threads, usize::MAX);

    let mut records: Vec<BenchRecord> = Vec::new();
    println!(
        "{:<38} {:>12} {:>12} {:>9}",
        "workload", "baseline", "contender", "speedup"
    );
    println!("{}", "-".repeat(76));
    for workload in coverage_workloads() {
        let scalar = time_coverage(&workload, BackendKind::Scalar, threads, 10);
        let packed = time_coverage(&workload, BackendKind::Packed, threads, 10);
        let speedup = scalar.as_secs_f64() / packed.as_secs_f64().max(1e-9);
        println!(
            "{:<38} {:>10.2}ms {:>10.2}ms {:>8.2}x",
            workload.name,
            scalar.as_secs_f64() * 1e3,
            packed.as_secs_f64() * 1e3,
            speedup
        );
        records.push(BenchRecord {
            name: workload.name.to_string(),
            kind: "coverage".to_string(),
            baseline: "scalar".to_string(),
            contender: "packed".to_string(),
            baseline_ns: scalar.as_nanos() as u64,
            contender_ns: packed.as_nanos() as u64,
            speedup,
            lane_width: None,
        });
    }
    for workload in scoring_workloads() {
        let sequential = time_scoring(&workload, 1, threads, 10);
        let batched = time_scoring(&workload, 0, threads, 10);
        let speedup = sequential.as_secs_f64() / batched.as_secs_f64().max(1e-9);
        println!(
            "{:<38} {:>10.2}ms {:>10.2}ms {:>8.2}x",
            workload.name,
            sequential.as_secs_f64() * 1e3,
            batched.as_secs_f64() * 1e3,
            speedup
        );
        records.push(BenchRecord {
            name: workload.name.to_string(),
            kind: "generation".to_string(),
            baseline: "per-candidate".to_string(),
            contender: "batched".to_string(),
            baseline_ns: sequential.as_nanos() as u64,
            contender_ns: batched.as_nanos() as u64,
            speedup,
            lane_width: None,
        });
    }
    for workload in minimise_workloads(threads) {
        let (full, suffix) = time_minimise(&workload, 5);
        let speedup = full.as_secs_f64() / suffix.as_secs_f64().max(1e-9);
        println!(
            "{:<38} {:>10.2}ms {:>10.2}ms {:>8.2}x",
            workload.name,
            full.as_secs_f64() * 1e3,
            suffix.as_secs_f64() * 1e3,
            speedup
        );
        records.push(BenchRecord {
            name: workload.name.to_string(),
            kind: "minimise".to_string(),
            baseline: "full-resim".to_string(),
            contender: "snapshot".to_string(),
            baseline_ns: full.as_nanos() as u64,
            contender_ns: suffix.as_nanos() as u64,
            speedup,
            lane_width: None,
        });
    }
    for workload in af_workloads() {
        let (scalar, packed) = time_af(&workload);
        let speedup = scalar.as_secs_f64() / packed.as_secs_f64().max(1e-9);
        println!(
            "{:<38} {:>10.2}ms {:>10.2}ms {:>8.2}x",
            workload.name,
            scalar.as_secs_f64() * 1e3,
            packed.as_secs_f64() * 1e3,
            speedup
        );
        records.push(BenchRecord {
            name: workload.name.to_string(),
            kind: "af_coverage".to_string(),
            baseline: "scalar".to_string(),
            contender: "packed+threaded".to_string(),
            baseline_ns: scalar.as_nanos() as u64,
            contender_ns: packed.as_nanos() as u64,
            speedup,
            lane_width: None,
        });
    }
    for workload in lane_width_workloads() {
        let (narrow, wide) = time_lane_width(&workload);
        let speedup = narrow.as_secs_f64() / wide.as_secs_f64().max(1e-9);
        println!(
            "{:<38} {:>10.2}ms {:>10.2}ms {:>8.2}x",
            workload.name,
            narrow.as_secs_f64() * 1e3,
            wide.as_secs_f64() * 1e3,
            speedup
        );
        records.push(BenchRecord {
            name: workload.name.to_string(),
            kind: "lane_width".to_string(),
            baseline: "packed-w64".to_string(),
            contender: format!("packed-w{}", workload.width.name()),
            baseline_ns: narrow.as_nanos() as u64,
            contender_ns: wide.as_nanos() as u64,
            speedup,
            lane_width: Some(workload.width.name().to_string()),
        });
    }
    for workload in service_workloads() {
        let (cold, warm) = time_service(&workload);
        let speedup = cold.as_secs_f64() / warm.as_secs_f64().max(1e-9);
        println!(
            "{:<38} {:>10.2}ms {:>10.2}ms {:>8.2}x",
            workload.name,
            cold.as_secs_f64() * 1e3,
            warm.as_secs_f64() * 1e3,
            speedup
        );
        records.push(BenchRecord {
            name: workload.name.to_string(),
            kind: "service".to_string(),
            baseline: "cold-engine".to_string(),
            contender: "resident-engine".to_string(),
            baseline_ns: cold.as_nanos() as u64,
            contender_ns: warm.as_nanos() as u64,
            speedup,
            lane_width: None,
        });
    }
    for workload in snapshot_workloads() {
        let (cold, warm) = time_snapshot(&workload);
        let speedup = cold.as_secs_f64() / warm.as_secs_f64().max(1e-9);
        println!(
            "{:<38} {:>10.2}ms {:>10.2}ms {:>8.2}x",
            workload.name,
            cold.as_secs_f64() * 1e3,
            warm.as_secs_f64() * 1e3,
            speedup
        );
        records.push(BenchRecord {
            name: workload.name.to_string(),
            kind: "snapshot".to_string(),
            baseline: "cold-start".to_string(),
            contender: "snapshot-warmed".to_string(),
            baseline_ns: cold.as_nanos() as u64,
            contender_ns: warm.as_nanos() as u64,
            speedup,
            lane_width: None,
        });
    }
    for workload in campaign_workloads() {
        let (exhaustive, campaign) = time_campaign(&workload);
        let speedup = exhaustive.as_secs_f64() / campaign.as_secs_f64().max(1e-9);
        println!(
            "{:<38} {:>10.2}ms {:>10.2}ms {:>8.2}x",
            workload.name,
            exhaustive.as_secs_f64() * 1e3,
            campaign.as_secs_f64() * 1e3,
            speedup
        );
        records.push(BenchRecord {
            name: workload.name.to_string(),
            kind: "campaign".to_string(),
            baseline: "exhaustive-enumeration".to_string(),
            contender: "sampled-campaign".to_string(),
            baseline_ns: exhaustive.as_nanos() as u64,
            contender_ns: campaign.as_nanos() as u64,
            speedup,
            lane_width: None,
        });
    }
    for workload in session_workloads() {
        let (per_call, pooled) = time_session(&workload, 20);
        let speedup = per_call.as_secs_f64() / pooled.as_secs_f64().max(1e-9);
        println!(
            "{:<38} {:>10.2}ms {:>10.2}ms {:>8.2}x",
            workload.name,
            per_call.as_secs_f64() * 1e3,
            pooled.as_secs_f64() * 1e3,
            speedup
        );
        records.push(BenchRecord {
            name: workload.name.to_string(),
            kind: "session".to_string(),
            baseline: "spawn-per-call".to_string(),
            contender: "session-pool".to_string(),
            baseline_ns: per_call.as_nanos() as u64,
            contender_ns: pooled.as_nanos() as u64,
            speedup,
            lane_width: None,
        });
    }

    let file = BenchFile::new(threads_used, records);
    println!("{}", "-".repeat(76));
    println!(
        "geometric-mean speedup: {:.2}x (threads: {threads_used})",
        file.geomean_speedup
    );

    std::fs::write(&out_path, file.to_json()).expect("write benchmark JSON");
    println!("wrote {out_path}");
}
