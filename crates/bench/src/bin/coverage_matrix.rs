//! The §6 validation claim, extended: fault-simulate every catalogue march test
//! *and* the freshly generated tests against the unlinked static faults and the two
//! linked fault lists, printing a coverage matrix.
//!
//! Run with `cargo run --release -p march-bench --bin coverage_matrix`.
//! Pass `--exhaustive` for exhaustive cell placements (slower).

use std::env;

use march_gen::MarchGenerator;
use march_test::{catalog, MarchTest};
use sram_fault_model::FaultList;
use sram_sim::{measure_coverage, CoverageConfig};

fn main() {
    let exhaustive = env::args().any(|arg| arg == "--exhaustive");
    let config = if exhaustive {
        CoverageConfig::exhaustive()
    } else {
        CoverageConfig::thorough()
    };

    let lists = [
        ("unlinked", FaultList::unlinked_static()),
        ("list #2", FaultList::list_2()),
        ("list #1", FaultList::list_1()),
    ];

    // The catalogue plus the two generated tests.
    let mut tests: Vec<MarchTest> = catalog::all();
    let generated_l2 = MarchGenerator::new(FaultList::list_2())
        .named("March GABL1")
        .generate()
        .into_test();
    let generated_l1 = MarchGenerator::new(FaultList::list_1())
        .named("March GRABL")
        .generate()
        .into_test();
    tests.push(generated_l2);
    tests.push(generated_l1);

    println!(
        "{:<16} {:>6} | {:>10} {:>10} {:>10}",
        "march test", "length", lists[0].0, lists[1].0, lists[2].0
    );
    println!("{}", "-".repeat(62));
    for test in &tests {
        let mut cells = Vec::new();
        for (_, list) in &lists {
            let report = measure_coverage(test, list, &config);
            cells.push(format!("{:>9.1}%", report.percent()));
        }
        println!(
            "{:<16} {:>6} | {} {} {}",
            test.name(),
            test.complexity_label(),
            cells[0],
            cells[1],
            cells[2]
        );
    }
    println!();
    println!(
        "placements: {}, backgrounds: all-zero and all-one, memory: {} cells",
        if exhaustive { "exhaustive" } else { "representative" },
        config.memory_cells
    );
}
