//! The §6 validation claim, extended: fault-simulate every catalogue march test
//! *and* the freshly generated tests against the unlinked static faults and the two
//! linked fault lists, printing a coverage matrix — measured on **both**
//! simulation backends, with per-backend wall-clock columns so the scalar vs
//! packed trajectory is visible run over run.
//!
//! The whole matrix runs through two long-lived [`Session`]s (one per
//! backend), so with `--threads > 1` every cell re-uses the same resident
//! worker pool instead of spawning threads per query.
//!
//! Run with `cargo run --release -p march-bench --bin coverage_matrix`.
//! Pass `--exhaustive` for exhaustive cell placements (slower, more lanes per
//! `u64` word — the packed backend's best case).
//! Pass `--threads N` to fan the fault targets out over N workers (0 = auto).

use std::env;
use std::time::{Duration, Instant};

use march_gen::SessionExt;
use march_test::{catalog, MarchTest};
use sram_fault_model::FaultList;
use sram_sim::{BackendKind, CoverageConfig, ExecPolicy, Session};

fn main() {
    let exhaustive = env::args().any(|arg| arg == "--exhaustive");
    let threads = march_bench::threads_from_args();
    let base = if exhaustive {
        CoverageConfig::exhaustive()
    } else {
        CoverageConfig::thorough()
    };

    // One session per backend serves every cell of the matrix (and the
    // generation of the two fresh tests below).
    let scalar_session = Session::from_coverage_config(
        &base
            .clone()
            .with_backend(BackendKind::Scalar)
            .with_threads(threads),
    );
    let packed_session = Session::from_coverage_config(
        &base
            .clone()
            .with_backend(BackendKind::Packed)
            .with_threads(threads),
    );

    let lists = [
        ("unlinked", FaultList::unlinked_static()),
        ("list #2", FaultList::list_2()),
        ("list #1", FaultList::list_1()),
    ];

    // The catalogue plus the two generated tests. Generation needs the
    // generator's default scope (which may differ from the matrix scope under
    // --exhaustive), so it gets its own session — the third and last pool of
    // the run, shared by both generations.
    let generation_session = Session::new(ExecPolicy::default().with_threads(threads));
    let mut tests: Vec<MarchTest> = catalog::all();
    let generated_l2 = generation_session
        .generate(&FaultList::list_2())
        .into_test()
        .with_name("March GABL1");
    let generated_l1 = generation_session
        .generate(&FaultList::list_1())
        .into_test()
        .with_name("March GRABL");
    tests.push(generated_l2);
    tests.push(generated_l1);

    println!(
        "{:<16} {:>6} | {:>10} {:>10} {:>10} | {:>9} {:>9} {:>8}",
        "march test", "length", lists[0].0, lists[1].0, lists[2].0, "scalar", "packed", "speedup"
    );
    println!("{}", "-".repeat(92));

    let mut total_scalar = Duration::ZERO;
    let mut total_packed = Duration::ZERO;
    for test in &tests {
        let mut cells = Vec::new();
        let mut scalar_time = Duration::ZERO;
        let mut packed_time = Duration::ZERO;
        for (_, list) in &lists {
            let start = Instant::now();
            let scalar_report = scalar_session.coverage(test, list);
            scalar_time += start.elapsed();

            let start = Instant::now();
            let packed_report = packed_session.coverage(test, list);
            packed_time += start.elapsed();

            assert_eq!(
                scalar_report,
                packed_report,
                "backend divergence on {} vs {}",
                test.name(),
                list.name()
            );
            cells.push(format!("{:>9.1}%", scalar_report.percent()));
        }
        total_scalar += scalar_time;
        total_packed += packed_time;
        println!(
            "{:<16} {:>6} | {} {} {} | {:>8.2}ms {:>8.2}ms {:>7.2}x",
            test.name(),
            test.complexity_label(),
            cells[0],
            cells[1],
            cells[2],
            scalar_time.as_secs_f64() * 1e3,
            packed_time.as_secs_f64() * 1e3,
            scalar_time.as_secs_f64() / packed_time.as_secs_f64().max(1e-9),
        );
    }
    println!();
    println!(
        "placements: {}, backgrounds: all-zero and all-one, memory: {} cells, threads: {}",
        if exhaustive {
            "exhaustive"
        } else {
            "representative"
        },
        base.memory_cells,
        if threads == 0 {
            "auto".to_string()
        } else {
            threads.to_string()
        },
    );
    println!(
        "matrix totals: scalar {:.2}ms, packed {:.2}ms, speedup {:.2}x",
        total_scalar.as_secs_f64() * 1e3,
        total_packed.as_secs_f64() * 1e3,
        total_scalar.as_secs_f64() / total_packed.as_secs_f64().max(1e-9),
    );
}
