//! Property-based tests of the fault-model crate: invariants of the fault-primitive
//! taxonomy, AFP instantiation and linked-fault construction.

use proptest::prelude::*;
use sram_fault_model::{
    AddressedFaultPrimitive, Bit, CellValue, FaultList, Ffm, LinkTopology, LinkedAfp, LinkedFault,
    MemoryState, Placement, TestPattern,
};

fn arbitrary_ffm() -> impl Strategy<Value = Ffm> {
    prop::sample::select(Ffm::all().to_vec())
}

fn arbitrary_bits(len: usize) -> impl Strategy<Value = Vec<Bit>> {
    prop::collection::vec(any::<bool>().prop_map(Bit::from), len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Every realistic fault primitive is static, involves 1 or 2 cells and prints a
    /// well-formed `<S/F/R>` notation.
    #[test]
    fn realistic_primitives_are_well_formed(ffm in arbitrary_ffm()) {
        for fp in ffm.fault_primitives() {
            prop_assert!(fp.is_static());
            prop_assert!(fp.cell_count() == 1 || fp.cell_count() == 2);
            prop_assert_eq!(fp.cell_count() == 2, fp.is_coupling());
            prop_assert_eq!(fp.ffm(), ffm);
            let notation = fp.notation();
            prop_assert!(notation.starts_with('<') && notation.ends_with('>'));
            // The effect is observable: either the cell is corrupted or the read
            // output is wrong.
            prop_assert!(fp.corrupts_victim() || fp.is_detected_by_sensitization());
        }
    }

    /// AFP instantiation respects the paper's (I, Es, Fv, Gv) semantics: Gv follows
    /// the fault-free operation, Fv differs from Gv exactly on the victim cell
    /// (when the primitive corrupts it), and uninvolved cells stay unconstrained.
    #[test]
    fn afp_instantiation_invariants(
        ffm in arbitrary_ffm(),
        index in 0usize..12,
        cells in 2usize..5,
        victim in 0usize..4,
        aggressor in 0usize..4,
    ) {
        let primitives = ffm.fault_primitives();
        let fp = &primitives[index % primitives.len()];
        let victim = victim % cells;
        let aggressor = aggressor % cells;
        let placement = if fp.is_coupling() {
            if aggressor == victim {
                return Ok(());
            }
            Placement::coupling(aggressor, victim, cells).expect("valid placement")
        } else {
            Placement::single_cell(victim, cells).expect("valid placement")
        };

        let afp = AddressedFaultPrimitive::instantiate(fp, placement).expect("instantiation");
        prop_assert_eq!(afp.initial().len(), cells);
        prop_assert_eq!(afp.faulty().len(), cells);
        prop_assert_eq!(afp.expected().len(), cells);

        for cell in 0..cells {
            let involved = cell == victim || Some(cell) == placement.aggressor();
            if !involved {
                prop_assert_eq!(afp.initial()[cell], CellValue::DontCare);
                prop_assert_eq!(afp.faulty()[cell], CellValue::DontCare);
                prop_assert_eq!(afp.expected()[cell], CellValue::DontCare);
            }
            if cell != victim {
                // Only the victim may differ between the faulty and fault-free state.
                prop_assert_eq!(afp.faulty()[cell], afp.expected()[cell]);
            }
        }
        if fp.corrupts_victim() {
            prop_assert_ne!(afp.victim_faulty_value(), afp.victim_expected_value());
        }

        // The derived test pattern observes the victim.
        let tp = TestPattern::new(afp);
        prop_assert_eq!(tp.observe().cell(), victim);
    }

    /// Linked faults accepted by the constructor always satisfy Definition 6: the
    /// second primitive's fault value is the complement of the first's, and the
    /// second can be sensitized in the state the first leaves behind.
    #[test]
    fn linked_faults_satisfy_definition_6(index in 0usize..2048) {
        let list = FaultList::list_1();
        let fault = &list.linked()[index % list.linked().len()];
        let f1 = fault.first().fault_value().to_bit().expect("concrete F1");
        let f2 = fault.second().fault_value().to_bit().expect("concrete F2");
        prop_assert_eq!(f2, f1.flipped());
        prop_assert!(fault
            .second()
            .victim()
            .initial()
            .compatible(fault.first().fault_value()));
        prop_assert_eq!(fault.cell_count(), fault.topology().cell_count());
    }

    /// Linking AFPs (Definition 7) accepts exactly the pairs that share a victim and
    /// whose states chain: a canonical LF3 instantiation always links.
    #[test]
    fn lf3_instantiations_link_as_afps(index in 0usize..1024) {
        let list = FaultList::list_1();
        let lf3: Vec<&LinkedFault> = list
            .linked()
            .iter()
            .filter(|lf| lf.topology() == LinkTopology::Lf3)
            .collect();
        let fault = lf3[index % lf3.len()];
        let first = AddressedFaultPrimitive::instantiate(
            fault.first(),
            Placement::coupling(0, 2, 3).expect("valid"),
        )
        .expect("instantiation");
        let second = AddressedFaultPrimitive::instantiate(
            fault.second(),
            Placement::coupling(1, 2, 3).expect("valid"),
        )
        .expect("instantiation");
        let linked = LinkedAfp::try_link(first, second);
        prop_assert!(linked.is_ok(), "{:?}", linked.err());
    }

    /// Memory-state matching is consistent with expansion.
    #[test]
    fn memory_state_matching(bits in arbitrary_bits(5)) {
        let state = MemoryState::from_bits(&bits);
        prop_assert!(state.matches_bits(&bits));
        prop_assert!(state.is_fully_known());
        prop_assert_eq!(state.expand(), vec![bits.clone()]);
        let relaxed = state.with(2, CellValue::DontCare);
        prop_assert!(relaxed.matches_bits(&bits));
        prop_assert_eq!(relaxed.expand().len(), 2);
    }

    /// The two target fault lists are stable under re-enumeration (deterministic
    /// construction) and list #2 is always a subset of list #1.
    #[test]
    fn fault_lists_are_deterministic(_dummy in 0usize..4) {
        let a = FaultList::list_2();
        let b = FaultList::list_2();
        prop_assert_eq!(a.linked(), b.linked());
        let list1 = FaultList::list_1();
        for fault in a.linked() {
            prop_assert!(list1.linked().contains(fault));
        }
    }
}
