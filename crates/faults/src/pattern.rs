//! Test patterns (Definition 5 of the paper).

use std::fmt;

use crate::{AddressedFaultPrimitive, AddressedOperation, Operation};

/// A test pattern `TP = (I, E, O)` for an addressed fault primitive.
///
/// `I` and `E` are inherited from the [`AddressedFaultPrimitive`]; `O` is the read
/// operation needed to observe the fault effect: a read of the victim cell expecting
/// the value the *fault-free* memory would hold after `E`.
///
/// # Examples
///
/// Continuing the paper's running example, `AFP1 = (00, w1[0], 11, 10)` yields
/// `TP1 = (00, w1[0], r0[1])`:
///
/// ```
/// use sram_fault_model::{AddressedFaultPrimitive, Ffm, Placement, TestPattern};
///
/// let cfds = Ffm::DisturbCoupling
///     .fault_primitives()
///     .into_iter()
///     .find(|fp| fp.notation() == "<0w1;0/1/->")
///     .expect("present in the realistic list");
/// let afp = AddressedFaultPrimitive::instantiate(&cfds, Placement::coupling(0, 1, 2)?)?;
/// let tp = TestPattern::new(afp);
/// assert_eq!(tp.to_string(), "(00, w1[0], r0[1])");
/// # Ok::<(), sram_fault_model::FaultModelError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TestPattern {
    afp: AddressedFaultPrimitive,
    observe: AddressedOperation,
}

impl TestPattern {
    /// Derives the test pattern of an addressed fault primitive.
    ///
    /// The observing operation reads the victim cell and expects the fault-free
    /// value; when the fault-free value cannot be determined (unconstrained victim)
    /// the read carries no expectation and detection must rely on a reference
    /// simulation.
    #[must_use]
    pub fn new(afp: AddressedFaultPrimitive) -> TestPattern {
        let observe =
            AddressedOperation::new(afp.victim(), Operation::Read(afp.observe_expected()));
        TestPattern { afp, observe }
    }

    /// The addressed fault primitive this pattern covers.
    #[must_use]
    pub fn afp(&self) -> &AddressedFaultPrimitive {
        &self.afp
    }

    /// The initial memory state `I`.
    #[must_use]
    pub fn initial(&self) -> &crate::MemoryState {
        self.afp.initial()
    }

    /// The sensitizing operations `E`.
    #[must_use]
    pub fn sensitizing(&self) -> &[AddressedOperation] {
        self.afp.operations()
    }

    /// The observing read `O`.
    #[must_use]
    pub fn observe(&self) -> AddressedOperation {
        self.observe
    }

    /// All operations of the pattern: sensitizing operations followed by the
    /// observing read.
    #[must_use]
    pub fn all_operations(&self) -> Vec<AddressedOperation> {
        let mut ops = self.afp.operations().to_vec();
        ops.push(self.observe);
        ops
    }

    /// The cell addresses touched by the pattern (sensitizing and observing).
    #[must_use]
    pub fn touched_cells(&self) -> Vec<usize> {
        let mut cells: Vec<usize> = self.all_operations().iter().map(|op| op.cell()).collect();
        cells.sort_unstable();
        cells.dedup();
        cells
    }
}

impl From<AddressedFaultPrimitive> for TestPattern {
    fn from(afp: AddressedFaultPrimitive) -> Self {
        TestPattern::new(afp)
    }
}

impl fmt::Display for TestPattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, ", self.afp.initial())?;
        if self.sensitizing().is_empty() {
            write!(f, "-")?;
        } else {
            for (index, op) in self.sensitizing().iter().enumerate() {
                if index > 0 {
                    write!(f, " ")?;
                }
                write!(f, "{op}")?;
            }
        }
        write!(f, ", {})", self.observe)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Bit, Ffm, Placement};

    fn afp(ffm: Ffm, notation: &str, placement: Placement) -> AddressedFaultPrimitive {
        let fp = ffm
            .fault_primitives()
            .into_iter()
            .find(|fp| fp.notation() == notation)
            .unwrap_or_else(|| panic!("primitive {notation} not found"));
        AddressedFaultPrimitive::instantiate(&fp, placement).unwrap()
    }

    #[test]
    fn paper_test_patterns() {
        // TP1 = (00, w1[0], r0[1]) and TP2 = (00, w1[1], r0[0]).
        let tp1 = TestPattern::new(afp(
            Ffm::DisturbCoupling,
            "<0w1;0/1/->",
            Placement::coupling(0, 1, 2).unwrap(),
        ));
        assert_eq!(tp1.to_string(), "(00, w1[0], r0[1])");
        assert_eq!(tp1.observe().operation().expected_value(), Some(Bit::Zero));

        let tp2 = TestPattern::new(afp(
            Ffm::DisturbCoupling,
            "<0w1;0/1/->",
            Placement::coupling(1, 0, 2).unwrap(),
        ));
        assert_eq!(tp2.to_string(), "(00, w1[1], r0[0])");
    }

    #[test]
    fn observe_targets_victim() {
        let tp = TestPattern::new(afp(
            Ffm::TransitionFault,
            "<1w0/1/->",
            Placement::single_cell(2, 3).unwrap(),
        ));
        assert_eq!(tp.observe().cell(), 2);
        assert_eq!(tp.observe().operation().expected_value(), Some(Bit::Zero));
        assert_eq!(tp.all_operations().len(), 2);
        assert_eq!(tp.touched_cells(), vec![2]);
    }

    #[test]
    fn state_fault_pattern_is_observe_only() {
        let tp = TestPattern::new(afp(
            Ffm::StateFault,
            "<1/0/->",
            Placement::single_cell(0, 2).unwrap(),
        ));
        assert!(tp.sensitizing().is_empty());
        assert_eq!(tp.all_operations().len(), 1);
        assert_eq!(tp.observe().operation().expected_value(), Some(Bit::One));
        assert_eq!(tp.to_string(), "(1-, -, r1[0])");
    }

    #[test]
    fn conversion_from_afp() {
        let afp = afp(
            Ffm::WriteDestructiveFault,
            "<0w0/1/->",
            Placement::single_cell(1, 2).unwrap(),
        );
        let tp: TestPattern = afp.clone().into();
        assert_eq!(tp.afp(), &afp);
    }
}
