//! The faulty behaviour part (`F / R`) of a fault primitive.

use std::fmt;

use crate::{Bit, CellValue};

/// The observable effect of a sensitized fault primitive.
///
/// In the `<S / F / R>` notation:
///
/// * `F` is the value stored in the **victim** cell after sensitization
///   ([`victim_value`](FaultEffect::victim_value); [`CellValue::DontCare`] means the
///   stored value is not affected);
/// * `R` is the value returned by the sensitizing **read** operation, if any
///   ([`read_output`](FaultEffect::read_output)); `None` corresponds to `-` (the
///   sensitizing operation is not a read, or the read returns the stored value).
///
/// # Examples
///
/// ```
/// use sram_fault_model::{Bit, CellValue, FaultEffect};
///
/// // A read-destructive fault: the cell flips to 1 and the read returns 1.
/// let rdf = FaultEffect::with_read(CellValue::One, Bit::One);
/// assert_eq!(rdf.to_string(), "1/1");
///
/// // A transition fault: the cell stays at 0, nothing is read.
/// let tf = FaultEffect::store(CellValue::Zero);
/// assert_eq!(tf.to_string(), "0/-");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FaultEffect {
    victim_value: CellValue,
    read_output: Option<Bit>,
}

impl FaultEffect {
    /// An effect that forces the victim cell to `victim_value` and has no read output.
    #[must_use]
    pub const fn store(victim_value: CellValue) -> FaultEffect {
        FaultEffect {
            victim_value,
            read_output: None,
        }
    }

    /// An effect that forces the victim cell to `victim_value` and makes the
    /// sensitizing read return `read_output`.
    #[must_use]
    pub const fn with_read(victim_value: CellValue, read_output: Bit) -> FaultEffect {
        FaultEffect {
            victim_value,
            read_output: Some(read_output),
        }
    }

    /// The value forced into the victim cell (`F`).
    #[must_use]
    pub const fn victim_value(&self) -> CellValue {
        self.victim_value
    }

    /// The value returned by the sensitizing read (`R`), if the fault corrupts it.
    #[must_use]
    pub const fn read_output(&self) -> Option<Bit> {
        self.read_output
    }

    /// Returns `true` if the effect changes the stored value of a victim currently
    /// holding `before`.
    #[must_use]
    pub fn changes_victim(&self, before: Bit) -> bool {
        match self.victim_value.to_bit() {
            Some(forced) => forced != before,
            None => false,
        }
    }
}

impl fmt::Display for FaultEffect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/", self.victim_value)?;
        match self.read_output {
            Some(bit) => write!(f, "{bit}"),
            None => write!(f, "-"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        let e = FaultEffect::with_read(CellValue::Zero, Bit::One);
        assert_eq!(e.victim_value(), CellValue::Zero);
        assert_eq!(e.read_output(), Some(Bit::One));
        let s = FaultEffect::store(CellValue::One);
        assert_eq!(s.read_output(), None);
    }

    #[test]
    fn changes_victim() {
        let flip_to_one = FaultEffect::store(CellValue::One);
        assert!(flip_to_one.changes_victim(Bit::Zero));
        assert!(!flip_to_one.changes_victim(Bit::One));
        let unchanged = FaultEffect::store(CellValue::DontCare);
        assert!(!unchanged.changes_victim(Bit::Zero));
        assert!(!unchanged.changes_victim(Bit::One));
    }

    #[test]
    fn display() {
        assert_eq!(FaultEffect::store(CellValue::One).to_string(), "1/-");
        assert_eq!(
            FaultEffect::with_read(CellValue::Zero, Bit::Zero).to_string(),
            "0/0"
        );
        assert_eq!(FaultEffect::store(CellValue::DontCare).to_string(), "-/-");
    }
}
