//! Target fault lists, including the two lists evaluated by the paper.

use std::collections::BTreeMap;
use std::fmt;

use crate::{DecoderFault, FaultModelError, FaultPrimitive, Ffm, LinkTopology, LinkedFault};

/// A named collection of simple fault primitives and linked faults used as the
/// target of march-test generation or fault simulation.
///
/// The two lists evaluated in the paper's Table 1 are available as
/// [`FaultList::list_1`] (single-, two- and three-cell static linked faults) and
/// [`FaultList::list_2`] (single-cell static linked faults). The complete unlinked
/// realistic static fault space is available as [`FaultList::unlinked_static`].
///
/// # Examples
///
/// ```
/// use sram_fault_model::{FaultList, LinkTopology};
///
/// let list1 = FaultList::list_1();
/// let list2 = FaultList::list_2();
/// assert!(list1.linked().len() > list2.linked().len());
/// assert!(list2
///     .linked()
///     .iter()
///     .all(|lf| lf.topology() == LinkTopology::Lf1));
/// println!("{list1}");
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultList {
    name: String,
    simple: Vec<FaultPrimitive>,
    linked: Vec<LinkedFault>,
    decoders: Vec<DecoderFault>,
}

impl FaultList {
    /// Creates an empty fault list with the given name.
    #[must_use]
    pub fn new(name: impl Into<String>) -> FaultList {
        FaultList {
            name: name.into(),
            simple: Vec::new(),
            linked: Vec::new(),
            decoders: Vec::new(),
        }
    }

    /// **Fault List #1** of the paper: the realistic single-cell, two-cell and
    /// three-cell static linked faults (LF1 ∪ LF2 ∪ LF3).
    #[must_use]
    pub fn list_1() -> FaultList {
        let mut linked = enumerate_lf1();
        linked.extend(enumerate_lf2());
        linked.extend(enumerate_lf3());
        FaultList {
            name: "Fault List #1 (static LF1+LF2+LF3)".to_string(),
            simple: Vec::new(),
            linked,
            decoders: Vec::new(),
        }
    }

    /// **Fault List #2** of the paper: the realistic single-cell static linked
    /// faults (LF1 only).
    #[must_use]
    pub fn list_2() -> FaultList {
        FaultList {
            name: "Fault List #2 (static LF1)".to_string(),
            simple: Vec::new(),
            linked: enumerate_lf1(),
            decoders: Vec::new(),
        }
    }

    /// The complete realistic *unlinked* static fault space: the 48 simple fault
    /// primitives of the 13 FFM families.
    #[must_use]
    pub fn unlinked_static() -> FaultList {
        FaultList {
            name: "Unlinked realistic static faults".to_string(),
            simple: Ffm::all_fault_primitives(),
            linked: Vec::new(),
            decoders: Vec::new(),
        }
    }

    /// The canonical **address-decoder fault** list: every classical AF class
    /// of [`DecoderFault::all`] (with both open-read polarities of the
    /// *no-cell-accessed* class), and no cell-array fault.
    #[must_use]
    pub fn address_decoder() -> FaultList {
        FaultList {
            name: "Address-decoder faults (AF)".to_string(),
            simple: Vec::new(),
            linked: Vec::new(),
            decoders: DecoderFault::all(),
        }
    }

    /// Extends the list with the canonical address-decoder fault classes —
    /// the `--faults all` surface: one list carrying both the cell-array
    /// targets and the decoder targets.
    #[must_use]
    pub fn with_address_decoder_faults(mut self) -> FaultList {
        self.name.push_str(" + AF");
        self.decoders.extend(DecoderFault::all());
        self
    }

    /// The list's name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The simple (unlinked) fault primitives of the list.
    #[must_use]
    pub fn simple(&self) -> &[FaultPrimitive] {
        &self.simple
    }

    /// The linked faults of the list.
    #[must_use]
    pub fn linked(&self) -> &[LinkedFault] {
        &self.linked
    }

    /// The address-decoder faults of the list.
    #[must_use]
    pub fn decoders(&self) -> &[DecoderFault] {
        &self.decoders
    }

    /// Total number of targets (simple primitives, linked faults and
    /// address-decoder faults).
    #[must_use]
    pub fn len(&self) -> usize {
        self.simple.len() + self.linked.len() + self.decoders.len()
    }

    /// Returns `true` if the list contains no target at all.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.simple.is_empty() && self.linked.is_empty() && self.decoders.is_empty()
    }

    /// The maximum number of distinct cells involved by any target of the list
    /// (1, 2 or 3); this fixes the size of the pattern graph used by the generator.
    /// Decoder faults count the distinct *addresses* their instances bind.
    #[must_use]
    pub fn max_cells(&self) -> usize {
        let simple_max = self.simple.iter().map(FaultPrimitive::cell_count).max();
        let linked_max = self.linked.iter().map(LinkedFault::cell_count).max();
        let decoder_max = self.decoders.iter().map(|af| af.address_count()).max();
        simple_max
            .into_iter()
            .chain(linked_max)
            .chain(decoder_max)
            .max()
            .unwrap_or(1)
    }

    /// Number of linked faults per topology class.
    #[must_use]
    pub fn topology_histogram(&self) -> BTreeMap<LinkTopology, usize> {
        let mut histogram = BTreeMap::new();
        for fault in &self.linked {
            *histogram.entry(fault.topology()).or_insert(0) += 1;
        }
        histogram
    }

    /// Returns a new list restricted to linked faults of the given topology.
    #[must_use]
    pub fn filter_topology(&self, topology: LinkTopology) -> FaultList {
        FaultList {
            name: format!("{} [{topology}]", self.name),
            simple: Vec::new(),
            linked: self
                .linked
                .iter()
                .filter(|lf| lf.topology() == topology)
                .cloned()
                .collect(),
            decoders: Vec::new(),
        }
    }
}

impl fmt::Display for FaultList {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} simple primitives, {} linked faults",
            self.name,
            self.simple.len(),
            self.linked.len()
        )?;
        if !self.decoders.is_empty() {
            write!(f, ", {} decoder faults", self.decoders.len())?;
        }
        if !self.linked.is_empty() {
            write!(f, " (")?;
            let histogram = self.topology_histogram();
            for (index, (topology, count)) in histogram.iter().enumerate() {
                if index > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{topology}: {count}")?;
            }
            write!(f, ")")?;
        }
        Ok(())
    }
}

/// Incremental builder for custom fault lists.
///
/// # Examples
///
/// ```
/// use sram_fault_model::{FaultListBuilder, Ffm, LinkTopology, LinkedFault};
///
/// let tf = Ffm::TransitionFault.fault_primitives();
/// let wdf = Ffm::WriteDestructiveFault.fault_primitives();
/// let list = FaultListBuilder::new("custom")
///     .simple(tf[0].clone())
///     .linked(LinkedFault::link(tf[0].clone(), wdf[0].clone(), LinkTopology::Lf1)?)
///     .build()?;
/// assert_eq!(list.len(), 2);
/// # Ok::<(), sram_fault_model::FaultModelError>(())
/// ```
#[derive(Debug, Clone)]
pub struct FaultListBuilder {
    list: FaultList,
}

impl FaultListBuilder {
    /// Starts a new builder for a list with the given name.
    #[must_use]
    pub fn new(name: impl Into<String>) -> FaultListBuilder {
        FaultListBuilder {
            list: FaultList::new(name),
        }
    }

    /// Adds a simple (unlinked) fault primitive.
    #[must_use]
    pub fn simple(mut self, primitive: FaultPrimitive) -> FaultListBuilder {
        self.list.simple.push(primitive);
        self
    }

    /// Adds every primitive of a functional fault model family.
    #[must_use]
    pub fn family(mut self, ffm: Ffm) -> FaultListBuilder {
        self.list.simple.extend(ffm.fault_primitives());
        self
    }

    /// Adds a linked fault.
    #[must_use]
    pub fn linked(mut self, fault: LinkedFault) -> FaultListBuilder {
        self.list.linked.push(fault);
        self
    }

    /// Adds several linked faults.
    #[must_use]
    pub fn linked_all(mut self, faults: impl IntoIterator<Item = LinkedFault>) -> FaultListBuilder {
        self.list.linked.extend(faults);
        self
    }

    /// Adds an address-decoder fault class.
    #[must_use]
    pub fn decoder(mut self, fault: DecoderFault) -> FaultListBuilder {
        self.list.decoders.push(fault);
        self
    }

    /// Adds several address-decoder fault classes.
    #[must_use]
    pub fn decoder_all(
        mut self,
        faults: impl IntoIterator<Item = DecoderFault>,
    ) -> FaultListBuilder {
        self.list.decoders.extend(faults);
        self
    }

    /// Finalizes the list.
    ///
    /// # Errors
    ///
    /// Returns [`FaultModelError::EmptyFaultList`] if nothing was added.
    pub fn build(self) -> Result<FaultList, FaultModelError> {
        if self.list.is_empty() {
            return Err(FaultModelError::EmptyFaultList);
        }
        Ok(self.list)
    }
}

/// Single-cell fault primitives that can appear as the *masked* (first) component of
/// a realistic linked fault: they corrupt the victim cell and are not already
/// detected by their own sensitizing operation.
fn single_cell_maskable() -> Vec<FaultPrimitive> {
    Ffm::single_cell()
        .iter()
        .flat_map(|ffm| ffm.fault_primitives())
        .filter(|fp| fp.corrupts_victim() && !fp.is_detected_by_sensitization())
        .collect()
}

/// Coupling fault primitives that can appear as the *masked* (first) component.
fn coupling_maskable() -> Vec<FaultPrimitive> {
    Ffm::coupling()
        .iter()
        .flat_map(|ffm| ffm.fault_primitives())
        .filter(|fp| fp.corrupts_victim() && !fp.is_detected_by_sensitization())
        .collect()
}

/// Single-cell fault primitives that can appear as the *masking* (second) component.
fn single_cell_maskers() -> Vec<FaultPrimitive> {
    Ffm::single_cell()
        .iter()
        .flat_map(|ffm| ffm.fault_primitives())
        .collect()
}

/// Coupling fault primitives that can appear as the *masking* (second) component.
fn coupling_maskers() -> Vec<FaultPrimitive> {
    Ffm::coupling()
        .iter()
        .flat_map(|ffm| ffm.fault_primitives())
        .collect()
}

fn link_all(
    firsts: &[FaultPrimitive],
    seconds: &[FaultPrimitive],
    topology: LinkTopology,
) -> Vec<LinkedFault> {
    let mut linked = Vec::new();
    for first in firsts {
        for second in seconds {
            if let Ok(fault) = LinkedFault::link(first.clone(), second.clone(), topology) {
                linked.push(fault);
            }
        }
    }
    linked
}

/// Enumerates the realistic single-cell static linked faults (LF1).
fn enumerate_lf1() -> Vec<LinkedFault> {
    link_all(
        &single_cell_maskable(),
        &single_cell_maskers(),
        LinkTopology::Lf1,
    )
}

/// Enumerates the realistic two-cell static linked faults (LF2: aggressor–victim,
/// victim–aggressor and shared-aggressor combinations).
fn enumerate_lf2() -> Vec<LinkedFault> {
    let mut linked = link_all(
        &coupling_maskable(),
        &single_cell_maskers(),
        LinkTopology::Lf2CouplingThenSingle,
    );
    linked.extend(link_all(
        &single_cell_maskable(),
        &coupling_maskers(),
        LinkTopology::Lf2SingleThenCoupling,
    ));
    linked.extend(link_all(
        &coupling_maskable(),
        &coupling_maskers(),
        LinkTopology::Lf2SharedAggressor,
    ));
    linked
}

/// Enumerates the realistic three-cell static linked faults (LF3).
fn enumerate_lf3() -> Vec<LinkedFault> {
    link_all(&coupling_maskable(), &coupling_maskers(), LinkTopology::Lf3)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn list_2_is_single_cell_only() {
        let list = FaultList::list_2();
        assert!(!list.is_empty());
        assert!(list
            .linked()
            .iter()
            .all(|lf| lf.topology() == LinkTopology::Lf1));
        assert_eq!(list.max_cells(), 1);
        // 4 maskable primitives per polarity × 4 maskers per polarity × 2 polarities.
        assert_eq!(list.linked().len(), 32);
    }

    #[test]
    fn list_1_contains_all_topologies() {
        let list = FaultList::list_1();
        let histogram = list.topology_histogram();
        for topology in LinkTopology::ALL {
            assert!(
                histogram.get(&topology).copied().unwrap_or(0) > 0,
                "missing topology {topology}"
            );
        }
        assert_eq!(list.max_cells(), 3);
        assert!(list.linked().len() > 500, "got {}", list.linked().len());
    }

    #[test]
    fn every_linked_fault_masks() {
        for fault in FaultList::list_1().linked() {
            let f1 = fault.first().fault_value().to_bit().unwrap();
            let f2 = fault.second().fault_value().to_bit().unwrap();
            assert_eq!(f2, f1.flipped(), "{fault}");
            assert!(fault.first().corrupts_victim(), "{fault}");
            assert!(!fault.first().is_detected_by_sensitization(), "{fault}");
        }
    }

    #[test]
    fn list_1_is_a_superset_of_list_2() {
        let list1 = FaultList::list_1();
        let list2 = FaultList::list_2();
        for fault in list2.linked() {
            assert!(list1.linked().contains(fault));
        }
    }

    #[test]
    fn unlinked_list_contains_the_48_primitives() {
        let list = FaultList::unlinked_static();
        assert_eq!(list.simple().len(), 48);
        assert!(list.linked().is_empty());
        assert_eq!(list.max_cells(), 2);
        assert_eq!(list.len(), 48);
    }

    #[test]
    fn builder_round_trip() {
        let tf = Ffm::TransitionFault.fault_primitives();
        let list = FaultListBuilder::new("custom")
            .family(Ffm::StateFault)
            .simple(tf[0].clone())
            .build()
            .unwrap();
        assert_eq!(list.len(), 3);
        assert_eq!(list.name(), "custom");
        assert!(FaultListBuilder::new("empty").build().is_err());
    }

    #[test]
    fn filter_topology_restricts_the_list() {
        let list = FaultList::list_1();
        let lf3 = list.filter_topology(LinkTopology::Lf3);
        assert!(!lf3.is_empty());
        assert!(lf3
            .linked()
            .iter()
            .all(|lf| lf.topology() == LinkTopology::Lf3));
        assert!(lf3.linked().len() < list.linked().len());
    }

    #[test]
    fn address_decoder_lists() {
        let af = FaultList::address_decoder();
        assert_eq!(af.len(), 5);
        assert!(af.simple().is_empty() && af.linked().is_empty());
        assert_eq!(af.decoders().len(), 5);
        assert_eq!(af.max_cells(), 2);
        assert!(af.to_string().contains("5 decoder faults"));

        let mixed = FaultList::list_2().with_address_decoder_faults();
        assert_eq!(mixed.len(), 37);
        assert_eq!(mixed.decoders().len(), 5);
        assert!(mixed.name().ends_with("+ AF"));
        // Topology filtering drops the decoder targets.
        assert!(mixed
            .filter_topology(LinkTopology::Lf1)
            .decoders()
            .is_empty());

        let built = FaultListBuilder::new("one af")
            .decoder(DecoderFault::NoAddressMaps)
            .decoder_all([DecoderFault::MultipleCellsAccessed])
            .build()
            .unwrap();
        assert_eq!(built.len(), 2);
        assert!(!built.is_empty());
    }

    #[test]
    fn display_mentions_counts() {
        let text = FaultList::list_2().to_string();
        assert!(text.contains("32 linked faults"));
        assert!(text.contains("LF1"));
    }
}
