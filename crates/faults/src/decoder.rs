//! Address-decoder faults (AFs): the four classical functional fault classes
//! of the memory address decoder.
//!
//! Where the fault primitives of [`Ffm`](crate::Ffm) perturb the *cell array*,
//! an address-decoder fault perturbs the mapping from addresses to cells. The
//! classical taxonomy (van de Goor) distinguishes four classes, modelled here
//! as deterministic decode perturbations so they can be fault-simulated
//! exactly like cell-array faults:
//!
//! | class | view | modelled behaviour |
//! |-------|------|--------------------|
//! | [`DecoderFault::NoCellAccessed`] | address side | the faulty address selects no cell: writes are lost, reads return the floating-bitline value |
//! | [`DecoderFault::NoAddressMaps`] | cell side | the faulty address is redirected to a partner cell; its own cell is never accessed |
//! | [`DecoderFault::MultipleCellsAccessed`] | address side | the faulty address selects its own cell *and* a partner cell; reads see the wired-AND of both |
//! | [`DecoderFault::MultipleAddressesMap`] | cell side | a partner (alias) address is redirected onto the primary cell, which is therefore reachable through two addresses |
//!
//! `NoAddressMaps` and `MultipleAddressesMap` describe the same physical
//! defect graph (one address redirected onto another address's cell) seen
//! from the orphaned-cell and the doubly-mapped-cell side respectively; they
//! are kept as distinct classes, as in the classical presentation, because
//! their placement enumerations anchor different roles of the pair and a
//! march test meets them in different address orders.
//!
//! Reads that momentarily select two cells are resolved as a **wired-AND**
//! (bitlines are precharged high; either stored `0` pulls the shared bitline
//! down), the conventional deterministic resolution for simultaneous selects.

use std::fmt;

use crate::Bit;

/// One of the four classical address-decoder fault classes, carrying the
/// class-level parameters of its deterministic behavioural model.
///
/// A `DecoderFault` is a fault *class*: binding it to concrete addresses (the
/// faulty address and, for the pair classes, its partner) is the simulator's
/// job, mirroring how [`FaultPrimitive`](crate::FaultPrimitive)s are bound to
/// victim/aggressor cells.
///
/// # Examples
///
/// ```
/// use sram_fault_model::{Bit, DecoderFault};
///
/// let classes = DecoderFault::all();
/// assert_eq!(classes.len(), 5); // NCA carries both open-read polarities.
/// assert!(!DecoderFault::NoCellAccessed { open_read: Bit::One }.involves_partner());
/// assert!(DecoderFault::NoAddressMaps.involves_partner());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DecoderFault {
    /// AF class A — *no cell accessed*: operations on the faulty address
    /// select no cell. Writes are lost; reads return `open_read`, the value
    /// the sense amplifier resolves from the untouched (precharged) bitlines.
    NoCellAccessed {
        /// The value a read of the faulty address returns.
        open_read: Bit,
    },
    /// AF class B — *cell never accessed*: the faulty address is redirected
    /// onto a partner cell, so its own cell is unreachable.
    NoAddressMaps,
    /// AF class C — *multiple cells accessed*: the faulty address selects its
    /// own cell and a partner cell simultaneously. Writes store into both;
    /// reads return the wired-AND of both.
    MultipleCellsAccessed,
    /// AF class D — *cell accessed by multiple addresses*: a partner (alias)
    /// address is redirected onto the primary cell, which is therefore
    /// selected by its own address *and* the alias.
    MultipleAddressesMap,
}

impl DecoderFault {
    /// The canonical address-decoder fault list: every class, with both
    /// open-read polarities of the *no-cell-accessed* class (their detection
    /// conditions differ — one needs a read expecting `0`, the other a read
    /// expecting `1`).
    #[must_use]
    pub fn all() -> Vec<DecoderFault> {
        vec![
            DecoderFault::NoCellAccessed {
                open_read: Bit::Zero,
            },
            DecoderFault::NoCellAccessed {
                open_read: Bit::One,
            },
            DecoderFault::NoAddressMaps,
            DecoderFault::MultipleCellsAccessed,
            DecoderFault::MultipleAddressesMap,
        ]
    }

    /// Returns `true` when instances of this class bind a partner address in
    /// addition to the primary one (every class except *no cell accessed*).
    #[must_use]
    pub fn involves_partner(self) -> bool {
        !matches!(self, DecoderFault::NoCellAccessed { .. })
    }

    /// Number of distinct addresses an instance of this class involves (1 or 2).
    #[must_use]
    pub fn address_count(self) -> usize {
        if self.involves_partner() {
            2
        } else {
            1
        }
    }

    /// The class's short name, following the classical A–D taxonomy.
    #[must_use]
    pub fn class_name(self) -> &'static str {
        match self {
            DecoderFault::NoCellAccessed { .. } => "no cell accessed",
            DecoderFault::NoAddressMaps => "no address maps",
            DecoderFault::MultipleCellsAccessed => "multiple cells accessed",
            DecoderFault::MultipleAddressesMap => "multiple addresses map",
        }
    }

    /// Renders the class in a compact, stable notation (used as the cache and
    /// report fingerprint, like [`FaultPrimitive::notation`](crate::FaultPrimitive::notation)).
    #[must_use]
    pub fn notation(self) -> String {
        match self {
            DecoderFault::NoCellAccessed { open_read } => format!("AF-nca(open={open_read})"),
            DecoderFault::NoAddressMaps => "AF-nam".to_string(),
            DecoderFault::MultipleCellsAccessed => "AF-mca".to_string(),
            DecoderFault::MultipleAddressesMap => "AF-mam".to_string(),
        }
    }
}

impl fmt::Display for DecoderFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.notation())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_list_covers_every_class() {
        let all = DecoderFault::all();
        assert_eq!(all.len(), 5);
        assert!(all.iter().any(|fault| matches!(
            fault,
            DecoderFault::NoCellAccessed {
                open_read: Bit::Zero
            }
        )));
        assert!(all.iter().any(|fault| matches!(
            fault,
            DecoderFault::NoCellAccessed {
                open_read: Bit::One
            }
        )));
        assert!(all.contains(&DecoderFault::NoAddressMaps));
        assert!(all.contains(&DecoderFault::MultipleCellsAccessed));
        assert!(all.contains(&DecoderFault::MultipleAddressesMap));
    }

    #[test]
    fn partner_arity_matches_the_class() {
        for fault in DecoderFault::all() {
            match fault {
                DecoderFault::NoCellAccessed { .. } => {
                    assert!(!fault.involves_partner());
                    assert_eq!(fault.address_count(), 1);
                }
                _ => {
                    assert!(fault.involves_partner());
                    assert_eq!(fault.address_count(), 2);
                }
            }
        }
    }

    #[test]
    fn notations_are_distinct_and_stable() {
        let notations: Vec<String> = DecoderFault::all()
            .into_iter()
            .map(DecoderFault::notation)
            .collect();
        let mut deduped = notations.clone();
        deduped.sort();
        deduped.dedup();
        assert_eq!(deduped.len(), notations.len());
        assert_eq!(DecoderFault::NoAddressMaps.to_string(), "AF-nam");
        assert!(DecoderFault::all()[1].to_string().contains("open=1"));
        assert!(!DecoderFault::NoAddressMaps.class_name().is_empty());
    }
}
