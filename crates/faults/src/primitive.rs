//! Fault primitives `<S / F / R>`.

use std::fmt;

use crate::{CellValue, Condition, FaultEffect, FaultModelError, Ffm, Operation};

/// The cell on which the sensitizing operation of a fault primitive is performed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SensitizingSite {
    /// The primitive is sensitized purely by a state condition (no operation).
    None,
    /// The sensitizing operation is applied to the aggressor cell.
    Aggressor,
    /// The sensitizing operation is applied to the victim cell.
    Victim,
}

/// A *static* fault primitive `<S / F / R>` (Definition 3 of the paper).
///
/// `S` is split into the condition applied to the aggressor cell (absent for
/// single-cell primitives) and the condition applied to the victim cell; `F` and `R`
/// are captured by a [`FaultEffect`].
///
/// Construction is checked: the primitive must be static (at most one sensitizing
/// operation in total), the fault value `F` must be concrete, and a read output `R`
/// is only allowed when the sensitizing operation is a read.
///
/// # Examples
///
/// ```
/// use sram_fault_model::{Bit, CellValue, Condition, FaultEffect, FaultPrimitive, Ffm, Operation};
///
/// // <0w1; 0 / 1 / -> : a disturb coupling fault.
/// let fp = FaultPrimitive::coupling(
///     Ffm::DisturbCoupling,
///     Condition::with_operation(CellValue::Zero, Operation::W1),
///     Condition::state(CellValue::Zero),
///     FaultEffect::store(CellValue::One),
/// )?;
/// assert_eq!(fp.to_string(), "<0w1;0/1/->");
/// assert_eq!(fp.cell_count(), 2);
/// assert!(fp.is_static());
/// # Ok::<(), sram_fault_model::FaultModelError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct FaultPrimitive {
    ffm: Ffm,
    aggressor: Option<Condition>,
    victim: Condition,
    effect: FaultEffect,
}

impl FaultPrimitive {
    /// Builds a single-cell fault primitive `<S / F / R>`.
    ///
    /// # Errors
    ///
    /// * [`FaultModelError::NotStatic`] if the victim condition carries more than one
    ///   operation (impossible with [`Condition`], kept for future dynamic support);
    /// * [`FaultModelError::UnknownFaultValue`] if `F` is unconstrained while no read
    ///   output is given (the primitive would have no observable effect);
    /// * [`FaultModelError::ReadOutputWithoutRead`] if `R` is given but the
    ///   sensitizing operation is not a read on the victim.
    pub fn single_cell(
        ffm: Ffm,
        victim: Condition,
        effect: FaultEffect,
    ) -> Result<FaultPrimitive, FaultModelError> {
        let fp = FaultPrimitive {
            ffm,
            aggressor: None,
            victim,
            effect,
        };
        fp.validate()?;
        Ok(fp)
    }

    /// Builds a two-cell (coupling) fault primitive `<Sa ; Sv / F / R>`.
    ///
    /// # Errors
    ///
    /// Same as [`FaultPrimitive::single_cell`], plus
    /// [`FaultModelError::NotStatic`] if both the aggressor and the victim condition
    /// carry an operation.
    pub fn coupling(
        ffm: Ffm,
        aggressor: Condition,
        victim: Condition,
        effect: FaultEffect,
    ) -> Result<FaultPrimitive, FaultModelError> {
        let fp = FaultPrimitive {
            ffm,
            aggressor: Some(aggressor),
            victim,
            effect,
        };
        fp.validate()?;
        Ok(fp)
    }

    fn validate(&self) -> Result<(), FaultModelError> {
        let operations = self.victim.operation_count()
            + self
                .aggressor
                .map_or(0, |aggressor| aggressor.operation_count());
        if operations > 1 {
            return Err(FaultModelError::NotStatic { operations });
        }
        if !self.effect.victim_value().is_known() && self.effect.read_output().is_none() {
            return Err(FaultModelError::UnknownFaultValue);
        }
        if self.effect.read_output().is_some() {
            let victim_reads = matches!(self.victim.operation(), Some(Operation::Read(_)));
            if !victim_reads {
                return Err(FaultModelError::ReadOutputWithoutRead);
            }
        }
        Ok(())
    }

    /// The functional fault model family this primitive belongs to.
    #[must_use]
    pub fn ffm(&self) -> Ffm {
        self.ffm
    }

    /// The aggressor condition, present only for coupling primitives.
    #[must_use]
    pub fn aggressor(&self) -> Option<&Condition> {
        self.aggressor.as_ref()
    }

    /// The victim condition.
    #[must_use]
    pub fn victim(&self) -> &Condition {
        &self.victim
    }

    /// The faulty behaviour (`F / R`).
    #[must_use]
    pub fn effect(&self) -> &FaultEffect {
        &self.effect
    }

    /// The number of distinct cells involved: 1 for single-cell, 2 for coupling
    /// primitives.
    #[must_use]
    pub fn cell_count(&self) -> usize {
        if self.aggressor.is_some() {
            2
        } else {
            1
        }
    }

    /// Returns `true` for coupling (two-cell) primitives.
    #[must_use]
    pub fn is_coupling(&self) -> bool {
        self.aggressor.is_some()
    }

    /// Total number of sensitizing operations; a primitive is *static* when this is
    /// at most 1 (always true for values of this type).
    #[must_use]
    pub fn operation_count(&self) -> usize {
        self.victim.operation_count()
            + self
                .aggressor
                .map_or(0, |aggressor| aggressor.operation_count())
    }

    /// Returns `true` for static fault primitives (at most one sensitizing
    /// operation).
    #[must_use]
    pub fn is_static(&self) -> bool {
        self.operation_count() <= 1
    }

    /// Which cell the sensitizing operation is applied to.
    #[must_use]
    pub fn sensitizing_site(&self) -> SensitizingSite {
        if self.victim.operation().is_some() {
            SensitizingSite::Victim
        } else if self
            .aggressor
            .is_some_and(|aggressor| aggressor.operation().is_some())
        {
            SensitizingSite::Aggressor
        } else {
            SensitizingSite::None
        }
    }

    /// The sensitizing operation, if the primitive has one.
    #[must_use]
    pub fn sensitizing_operation(&self) -> Option<Operation> {
        match self.sensitizing_site() {
            SensitizingSite::Victim => self.victim.operation(),
            SensitizingSite::Aggressor => {
                self.aggressor.and_then(|aggressor| aggressor.operation())
            }
            SensitizingSite::None => None,
        }
    }

    /// The fault value `F` forced into the victim cell.
    #[must_use]
    pub fn fault_value(&self) -> CellValue {
        self.effect.victim_value()
    }

    /// The initial value required of the victim cell.
    #[must_use]
    pub fn victim_initial(&self) -> CellValue {
        self.victim.initial()
    }

    /// The value held by the victim cell after sensitization.
    ///
    /// For most primitives this equals `F`; if `F` is unconstrained the victim keeps
    /// its fault-free value.
    #[must_use]
    pub fn victim_after(&self) -> CellValue {
        if self.effect.victim_value().is_known() {
            self.effect.victim_value()
        } else {
            self.victim.fault_free_final()
        }
    }

    /// The value the victim cell would hold after the sensitizing condition on a
    /// *fault-free* memory.
    #[must_use]
    pub fn victim_fault_free_after(&self) -> CellValue {
        self.victim.fault_free_final()
    }

    /// Returns `true` if the primitive is already detected by its own sensitizing
    /// operation, i.e. the sensitizing read returns a value different from the
    /// fault-free one (RDF, IRF, CFrd, CFir).
    ///
    /// Such primitives cannot be masked when they appear as the first component of a
    /// linked fault, because the error is observed before any masking operation can
    /// take place.
    #[must_use]
    pub fn is_detected_by_sensitization(&self) -> bool {
        match (self.effect.read_output(), self.victim.initial().to_bit()) {
            (Some(read), Some(fault_free)) => read != fault_free,
            _ => false,
        }
    }

    /// Returns `true` if sensitizing the primitive changes the stored value of the
    /// victim cell with respect to the fault-free behaviour.
    #[must_use]
    pub fn corrupts_victim(&self) -> bool {
        match (
            self.effect.victim_value().to_bit(),
            self.victim.fault_free_final().to_bit(),
        ) {
            (Some(faulty), Some(fault_free)) => faulty != fault_free,
            (Some(_), None) => true,
            (None, _) => false,
        }
    }

    /// Renders the primitive in the compact `<S/F/R>` notation, e.g. `<0w1;0/1/->`.
    #[must_use]
    pub fn notation(&self) -> String {
        self.to_string()
    }
}

impl fmt::Display for FaultPrimitive {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "<")?;
        if let Some(aggressor) = &self.aggressor {
            write!(f, "{aggressor};")?;
        }
        write!(f, "{}/{}>", self.victim, self.effect)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Bit;

    fn transition_fault_up() -> FaultPrimitive {
        // <0w1 / 0 / -> : up-transition fault.
        FaultPrimitive::single_cell(
            Ffm::TransitionFault,
            Condition::with_operation(CellValue::Zero, Operation::W1),
            FaultEffect::store(CellValue::Zero),
        )
        .unwrap()
    }

    fn disturb_coupling() -> FaultPrimitive {
        // <0w1; 0 / 1 / ->
        FaultPrimitive::coupling(
            Ffm::DisturbCoupling,
            Condition::with_operation(CellValue::Zero, Operation::W1),
            Condition::state(CellValue::Zero),
            FaultEffect::store(CellValue::One),
        )
        .unwrap()
    }

    #[test]
    fn classification() {
        let tf = transition_fault_up();
        assert_eq!(tf.cell_count(), 1);
        assert!(!tf.is_coupling());
        assert!(tf.is_static());
        assert_eq!(tf.sensitizing_site(), SensitizingSite::Victim);
        assert_eq!(tf.sensitizing_operation(), Some(Operation::W1));
        assert!(tf.corrupts_victim());
        assert!(!tf.is_detected_by_sensitization());

        let cfds = disturb_coupling();
        assert_eq!(cfds.cell_count(), 2);
        assert!(cfds.is_coupling());
        assert_eq!(cfds.sensitizing_site(), SensitizingSite::Aggressor);
        assert!(cfds.corrupts_victim());
    }

    #[test]
    fn state_fault_has_no_operation() {
        let sf = FaultPrimitive::single_cell(
            Ffm::StateFault,
            Condition::state(CellValue::Zero),
            FaultEffect::store(CellValue::One),
        )
        .unwrap();
        assert_eq!(sf.sensitizing_site(), SensitizingSite::None);
        assert_eq!(sf.sensitizing_operation(), None);
        assert_eq!(sf.victim_after(), CellValue::One);
        assert!(sf.corrupts_victim());
    }

    #[test]
    fn read_fault_detection() {
        // RDF <0r0 / 1 / 1> is detected by its own read.
        let rdf = FaultPrimitive::single_cell(
            Ffm::ReadDestructiveFault,
            Condition::with_operation(CellValue::Zero, Operation::R0),
            FaultEffect::with_read(CellValue::One, Bit::One),
        )
        .unwrap();
        assert!(rdf.is_detected_by_sensitization());

        // DRDF <0r0 / 1 / 0> returns the correct value, so it is not.
        let drdf = FaultPrimitive::single_cell(
            Ffm::DeceptiveReadDestructiveFault,
            Condition::with_operation(CellValue::Zero, Operation::R0),
            FaultEffect::with_read(CellValue::One, Bit::Zero),
        )
        .unwrap();
        assert!(!drdf.is_detected_by_sensitization());
        assert!(drdf.corrupts_victim());

        // IRF <0r0 / 0 / 1> is detected but does not corrupt the cell.
        let irf = FaultPrimitive::single_cell(
            Ffm::IncorrectReadFault,
            Condition::with_operation(CellValue::Zero, Operation::R0),
            FaultEffect::with_read(CellValue::Zero, Bit::One),
        )
        .unwrap();
        assert!(irf.is_detected_by_sensitization());
        assert!(!irf.corrupts_victim());
    }

    #[test]
    fn construction_is_validated() {
        // R given but sensitizing operation is a write.
        let bad_read = FaultPrimitive::single_cell(
            Ffm::TransitionFault,
            Condition::with_operation(CellValue::Zero, Operation::W1),
            FaultEffect::with_read(CellValue::Zero, Bit::Zero),
        );
        assert_eq!(
            bad_read.unwrap_err(),
            FaultModelError::ReadOutputWithoutRead
        );

        // Completely unconstrained effect.
        let no_effect = FaultPrimitive::single_cell(
            Ffm::StateFault,
            Condition::state(CellValue::Zero),
            FaultEffect::store(CellValue::DontCare),
        );
        assert_eq!(no_effect.unwrap_err(), FaultModelError::UnknownFaultValue);

        // Two sensitizing operations would make the primitive dynamic.
        let dynamic = FaultPrimitive::coupling(
            Ffm::DisturbCoupling,
            Condition::with_operation(CellValue::Zero, Operation::W1),
            Condition::with_operation(CellValue::Zero, Operation::R0),
            FaultEffect::store(CellValue::One),
        );
        assert_eq!(
            dynamic.unwrap_err(),
            FaultModelError::NotStatic { operations: 2 }
        );
    }

    #[test]
    fn display_notation() {
        assert_eq!(transition_fault_up().to_string(), "<0w1/0/->");
        assert_eq!(disturb_coupling().to_string(), "<0w1;0/1/->");
        let rdf = FaultPrimitive::single_cell(
            Ffm::ReadDestructiveFault,
            Condition::with_operation(CellValue::One, Operation::R1),
            FaultEffect::with_read(CellValue::Zero, Bit::Zero),
        )
        .unwrap();
        assert_eq!(rdf.notation(), "<1r1/0/0>");
    }

    #[test]
    fn victim_after_tracks_fault_value() {
        let cfds = disturb_coupling();
        assert_eq!(cfds.victim_after(), CellValue::One);
        assert_eq!(cfds.victim_fault_free_after(), CellValue::Zero);
        let irf = FaultPrimitive::single_cell(
            Ffm::IncorrectReadFault,
            Condition::with_operation(CellValue::Zero, Operation::R0),
            FaultEffect::with_read(CellValue::Zero, Bit::One),
        )
        .unwrap();
        assert_eq!(irf.victim_after(), CellValue::Zero);
    }
}
