//! Cell states including the "don't care" condition of the fault-primitive notation.

use std::fmt;
use std::str::FromStr;

use crate::{Bit, FaultModelError};

/// The state of a memory cell as used in fault-primitive conditions.
///
/// This is the set `C` of Definition 1 of the paper: a cell is either in a known
/// state (`0` or `1`) or the condition does not constrain it (`-`, *don't care*).
///
/// # Examples
///
/// ```
/// use sram_fault_model::{Bit, CellValue};
///
/// assert!(CellValue::DontCare.matches(Bit::One));
/// assert!(CellValue::Zero.matches(Bit::Zero));
/// assert!(!CellValue::Zero.matches(Bit::One));
/// assert_eq!(CellValue::from(Bit::One).to_bit(), Some(Bit::One));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum CellValue {
    /// The cell holds logic `0`.
    Zero,
    /// The cell holds logic `1`.
    One,
    /// The cell state is unconstrained (`-` in the fault-primitive notation).
    #[default]
    DontCare,
}

impl CellValue {
    /// All three cell values.
    pub const ALL: [CellValue; 3] = [CellValue::Zero, CellValue::One, CellValue::DontCare];

    /// The two constrained values, `0` and `1`.
    pub const KNOWN: [CellValue; 2] = [CellValue::Zero, CellValue::One];

    /// Returns `true` if a cell holding `bit` satisfies this condition.
    #[must_use]
    pub const fn matches(self, bit: Bit) -> bool {
        match self {
            CellValue::Zero => matches!(bit, Bit::Zero),
            CellValue::One => matches!(bit, Bit::One),
            CellValue::DontCare => true,
        }
    }

    /// Returns the concrete bit, or `None` for [`CellValue::DontCare`].
    #[must_use]
    pub const fn to_bit(self) -> Option<Bit> {
        match self {
            CellValue::Zero => Some(Bit::Zero),
            CellValue::One => Some(Bit::One),
            CellValue::DontCare => None,
        }
    }

    /// Returns the concrete bit, substituting `default` for [`CellValue::DontCare`].
    #[must_use]
    pub const fn to_bit_or(self, default: Bit) -> Bit {
        match self.to_bit() {
            Some(bit) => bit,
            None => default,
        }
    }

    /// Returns `true` if the value is constrained (not [`CellValue::DontCare`]).
    #[must_use]
    pub const fn is_known(self) -> bool {
        !matches!(self, CellValue::DontCare)
    }

    /// Complements a known value; [`CellValue::DontCare`] stays unconstrained.
    #[must_use]
    pub const fn flipped(self) -> CellValue {
        match self {
            CellValue::Zero => CellValue::One,
            CellValue::One => CellValue::Zero,
            CellValue::DontCare => CellValue::DontCare,
        }
    }

    /// Returns `true` if the two conditions can be satisfied by the same bit.
    ///
    /// `DontCare` is compatible with everything; known values are compatible only
    /// with themselves.
    #[must_use]
    pub const fn compatible(self, other: CellValue) -> bool {
        matches!(
            (self, other),
            (CellValue::DontCare, _)
                | (_, CellValue::DontCare)
                | (CellValue::Zero, CellValue::Zero)
                | (CellValue::One, CellValue::One)
        )
    }

    /// Character representation: `'0'`, `'1'` or `'-'`.
    #[must_use]
    pub const fn to_char(self) -> char {
        match self {
            CellValue::Zero => '0',
            CellValue::One => '1',
            CellValue::DontCare => '-',
        }
    }

    /// Parses a single character (`'0'`, `'1'`, `'-'` or `'x'`/`'X'`).
    ///
    /// # Errors
    ///
    /// Returns [`FaultModelError::ParseCellValue`] for any other character.
    pub fn from_char(c: char) -> Result<CellValue, FaultModelError> {
        match c {
            '0' => Ok(CellValue::Zero),
            '1' => Ok(CellValue::One),
            '-' | 'x' | 'X' => Ok(CellValue::DontCare),
            other => Err(FaultModelError::ParseCellValue(other.to_string())),
        }
    }
}

impl From<Bit> for CellValue {
    fn from(bit: Bit) -> Self {
        match bit {
            Bit::Zero => CellValue::Zero,
            Bit::One => CellValue::One,
        }
    }
}

impl fmt::Display for CellValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_char())
    }
}

impl FromStr for CellValue {
    type Err = FaultModelError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let trimmed = s.trim();
        let mut chars = trimmed.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => CellValue::from_char(c),
            _ => Err(FaultModelError::ParseCellValue(trimmed.to_string())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matching_semantics() {
        assert!(CellValue::Zero.matches(Bit::Zero));
        assert!(!CellValue::Zero.matches(Bit::One));
        assert!(CellValue::One.matches(Bit::One));
        assert!(!CellValue::One.matches(Bit::Zero));
        assert!(CellValue::DontCare.matches(Bit::Zero));
        assert!(CellValue::DontCare.matches(Bit::One));
    }

    #[test]
    fn bit_conversion() {
        assert_eq!(CellValue::Zero.to_bit(), Some(Bit::Zero));
        assert_eq!(CellValue::One.to_bit(), Some(Bit::One));
        assert_eq!(CellValue::DontCare.to_bit(), None);
        assert_eq!(CellValue::DontCare.to_bit_or(Bit::One), Bit::One);
        assert_eq!(CellValue::Zero.to_bit_or(Bit::One), Bit::Zero);
        assert_eq!(CellValue::from(Bit::One), CellValue::One);
    }

    #[test]
    fn flipping() {
        assert_eq!(CellValue::Zero.flipped(), CellValue::One);
        assert_eq!(CellValue::One.flipped(), CellValue::Zero);
        assert_eq!(CellValue::DontCare.flipped(), CellValue::DontCare);
    }

    #[test]
    fn compatibility_is_symmetric() {
        for a in CellValue::ALL {
            for b in CellValue::ALL {
                assert_eq!(a.compatible(b), b.compatible(a));
            }
        }
        assert!(CellValue::Zero.compatible(CellValue::DontCare));
        assert!(!CellValue::Zero.compatible(CellValue::One));
    }

    #[test]
    fn display_and_parse() {
        assert_eq!(CellValue::DontCare.to_string(), "-");
        assert_eq!("-".parse::<CellValue>().unwrap(), CellValue::DontCare);
        assert_eq!("x".parse::<CellValue>().unwrap(), CellValue::DontCare);
        assert_eq!("0".parse::<CellValue>().unwrap(), CellValue::Zero);
        assert!("01".parse::<CellValue>().is_err());
        assert!("q".parse::<CellValue>().is_err());
    }
}
