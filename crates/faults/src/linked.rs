//! Linked faults (Definitions 6 and 7 of the paper) and their topology taxonomy.

use std::fmt;

use crate::{AddressedFaultPrimitive, CellValue, FaultModelError, FaultPrimitive, SensitizingSite};

/// The structural class of a linked fault, following the taxonomy of Hamdioui et al.
/// ("Linked Faults in Random Access Memories", TCAD 2004) used by the paper's two
/// target fault lists.
///
/// The class determines how many distinct cells the fault involves and therefore how
/// the fault must be instantiated on a concrete memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum LinkTopology {
    /// Single-cell linked fault: both fault primitives involve only the victim cell.
    Lf1,
    /// Two-cell linked fault in which the first primitive is a coupling fault
    /// (aggressor → victim) and the second is a single-cell fault on the victim.
    Lf2CouplingThenSingle,
    /// Two-cell linked fault in which the first primitive is a single-cell fault on
    /// the victim and the second is a coupling fault (aggressor → victim).
    Lf2SingleThenCoupling,
    /// Two-cell linked fault in which both primitives are coupling faults sharing
    /// the same aggressor cell.
    Lf2SharedAggressor,
    /// Three-cell linked fault: both primitives are coupling faults with *different*
    /// aggressor cells and a common victim.
    Lf3,
}

impl LinkTopology {
    /// Every topology class, in increasing number of involved cells.
    pub const ALL: [LinkTopology; 5] = [
        LinkTopology::Lf1,
        LinkTopology::Lf2CouplingThenSingle,
        LinkTopology::Lf2SingleThenCoupling,
        LinkTopology::Lf2SharedAggressor,
        LinkTopology::Lf3,
    ];

    /// The number of distinct memory cells involved by a linked fault of this class.
    #[must_use]
    pub const fn cell_count(self) -> usize {
        match self {
            LinkTopology::Lf1 => 1,
            LinkTopology::Lf2CouplingThenSingle
            | LinkTopology::Lf2SingleThenCoupling
            | LinkTopology::Lf2SharedAggressor => 2,
            LinkTopology::Lf3 => 3,
        }
    }

    /// Returns `true` for the two-cell classes.
    #[must_use]
    pub const fn is_two_cell(self) -> bool {
        self.cell_count() == 2
    }

    /// Short label used in reports (`LF1`, `LF2av`, `LF2va`, `LF2aa`, `LF3`).
    #[must_use]
    pub const fn label(self) -> &'static str {
        match self {
            LinkTopology::Lf1 => "LF1",
            LinkTopology::Lf2CouplingThenSingle => "LF2av",
            LinkTopology::Lf2SingleThenCoupling => "LF2va",
            LinkTopology::Lf2SharedAggressor => "LF2aa",
            LinkTopology::Lf3 => "LF3",
        }
    }
}

impl fmt::Display for LinkTopology {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.label())
    }
}

/// A static linked fault `FP1 → FP2` (Definition 6 of the paper).
///
/// The second fault primitive *masks* the first one: its fault value is the
/// complement of the first's (`F2 = ¬F1`) and its sensitization can occur after the
/// first's, on the shared victim cell. Construction is checked; see
/// [`LinkedFault::link`].
///
/// # Examples
///
/// The paper's example (12): a disturb coupling fault linked to a disturb coupling
/// fault, `<0w1; 0/1/-> → <1w0; 1/0/->`:
///
/// ```
/// use sram_fault_model::{Ffm, LinkTopology, LinkedFault};
///
/// let find = |notation: &str| {
///     Ffm::DisturbCoupling
///         .fault_primitives()
///         .into_iter()
///         .find(|fp| fp.notation() == notation)
///         .expect("realistic CFds primitive")
/// };
/// let lf = LinkedFault::link(find("<0w1;0/1/->"), find("<1w0;1/0/->"), LinkTopology::Lf3)?;
/// assert_eq!(lf.to_string(), "<0w1;0/1/-> -> <1w0;1/0/-> [LF3]");
/// # Ok::<(), sram_fault_model::FaultModelError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LinkedFault {
    first: FaultPrimitive,
    second: FaultPrimitive,
    topology: LinkTopology,
}

impl LinkedFault {
    /// Links two fault primitives into a linked fault of the given topology.
    ///
    /// # Errors
    ///
    /// * [`FaultModelError::InvalidTopology`] if the cell counts of the primitives do
    ///   not match the topology (e.g. an `Lf1` built from a coupling primitive);
    /// * [`FaultModelError::MaskMismatch`] if `F2 ≠ ¬F1` (Definition 6 requires the
    ///   second primitive to mask the first);
    /// * [`FaultModelError::StateIncompatible`] if the second primitive cannot be
    ///   sensitized in the state left behind by the first (its victim initial state
    ///   conflicts with `F1`, or — for a shared aggressor — its aggressor initial
    ///   state conflicts with the aggressor state left by the first primitive).
    pub fn link(
        first: FaultPrimitive,
        second: FaultPrimitive,
        topology: LinkTopology,
    ) -> Result<LinkedFault, FaultModelError> {
        Self::check_topology(&first, &second, topology)?;
        Self::check_masking(&first, &second)?;
        Self::check_state_compatibility(&first, &second, topology)?;
        Ok(LinkedFault {
            first,
            second,
            topology,
        })
    }

    fn check_topology(
        first: &FaultPrimitive,
        second: &FaultPrimitive,
        topology: LinkTopology,
    ) -> Result<(), FaultModelError> {
        let shape = (first.cell_count(), second.cell_count());
        let valid = match topology {
            LinkTopology::Lf1 => shape == (1, 1),
            LinkTopology::Lf2CouplingThenSingle => shape == (2, 1),
            LinkTopology::Lf2SingleThenCoupling => shape == (1, 2),
            LinkTopology::Lf2SharedAggressor | LinkTopology::Lf3 => shape == (2, 2),
        };
        if valid {
            Ok(())
        } else {
            Err(FaultModelError::InvalidTopology(format!(
                "topology {topology} is incompatible with cell counts {shape:?}"
            )))
        }
    }

    fn check_masking(
        first: &FaultPrimitive,
        second: &FaultPrimitive,
    ) -> Result<(), FaultModelError> {
        match (first.fault_value().to_bit(), second.fault_value().to_bit()) {
            (Some(f1), Some(f2)) if f2 == f1.flipped() => Ok(()),
            _ => Err(FaultModelError::MaskMismatch),
        }
    }

    fn check_state_compatibility(
        first: &FaultPrimitive,
        second: &FaultPrimitive,
        topology: LinkTopology,
    ) -> Result<(), FaultModelError> {
        // After FP1 the victim holds F1; FP2 must accept that state on its victim.
        let victim_after_first = first.fault_value();
        if !second.victim().initial().compatible(victim_after_first) {
            return Err(FaultModelError::StateIncompatible);
        }
        // For a shared aggressor the aggressor state left by FP1 must satisfy FP2.
        if topology == LinkTopology::Lf2SharedAggressor {
            let aggressor_after_first = first
                .aggressor()
                .map(|condition| condition.fault_free_final())
                .unwrap_or(CellValue::DontCare);
            let required = second
                .aggressor()
                .map(|condition| condition.initial())
                .unwrap_or(CellValue::DontCare);
            if !required.compatible(aggressor_after_first) {
                return Err(FaultModelError::StateIncompatible);
            }
        }
        Ok(())
    }

    /// The first (masked) fault primitive.
    #[must_use]
    pub fn first(&self) -> &FaultPrimitive {
        &self.first
    }

    /// The second (masking) fault primitive.
    #[must_use]
    pub fn second(&self) -> &FaultPrimitive {
        &self.second
    }

    /// The structural class of the linked fault.
    #[must_use]
    pub fn topology(&self) -> LinkTopology {
        self.topology
    }

    /// The number of distinct memory cells involved.
    #[must_use]
    pub fn cell_count(&self) -> usize {
        self.topology.cell_count()
    }

    /// Returns `true` if at least one component is sensitized by an operation on an
    /// aggressor cell (relevant when choosing march address orders).
    #[must_use]
    pub fn has_aggressor_operation(&self) -> bool {
        [&self.first, &self.second]
            .into_iter()
            .any(|fp| fp.sensitizing_site() == SensitizingSite::Aggressor)
    }
}

impl fmt::Display for LinkedFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} -> {} [{}]", self.first, self.second, self.topology)
    }
}

/// A pair of addressed fault primitives forming a linked fault (Definition 7).
///
/// `AFP1 → AFP2` requires the two AFPs to share the victim address, the state
/// reached by the first to be an admissible initial state for the second
/// (`I2` compatible with `Fv1`) and the second to mask the first
/// (`V(Fv2) = ¬V(Fv1)`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LinkedAfp {
    first: AddressedFaultPrimitive,
    second: AddressedFaultPrimitive,
}

impl LinkedAfp {
    /// Links two addressed fault primitives, validating Definition 7.
    ///
    /// # Errors
    ///
    /// Returns [`FaultModelError::AfpLinkViolation`] describing which condition
    /// failed (different memory sizes, different victims, incompatible states or a
    /// violated masking condition).
    pub fn try_link(
        first: AddressedFaultPrimitive,
        second: AddressedFaultPrimitive,
    ) -> Result<LinkedAfp, FaultModelError> {
        if first.initial().len() != second.initial().len() {
            return Err(FaultModelError::AfpLinkViolation(
                "the two AFPs refer to memories of different sizes".to_string(),
            ));
        }
        if first.victim() != second.victim() {
            return Err(FaultModelError::AfpLinkViolation(
                "the two AFPs do not share the victim cell".to_string(),
            ));
        }
        if !second.initial().compatible(first.faulty()) {
            return Err(FaultModelError::AfpLinkViolation(
                "I2 is not compatible with Fv1".to_string(),
            ));
        }
        let masked = match (
            first.victim_faulty_value().to_bit(),
            second.victim_faulty_value().to_bit(),
        ) {
            (Some(v1), Some(v2)) => v2 == v1.flipped(),
            _ => false,
        };
        if !masked {
            return Err(FaultModelError::AfpLinkViolation(
                "V(Fv2) is not the complement of V(Fv1)".to_string(),
            ));
        }
        Ok(LinkedAfp { first, second })
    }

    /// The first (masked) addressed fault primitive.
    #[must_use]
    pub fn first(&self) -> &AddressedFaultPrimitive {
        &self.first
    }

    /// The second (masking) addressed fault primitive.
    #[must_use]
    pub fn second(&self) -> &AddressedFaultPrimitive {
        &self.second
    }

    /// The shared victim cell address.
    #[must_use]
    pub fn victim(&self) -> usize {
        self.first.victim()
    }
}

impl fmt::Display for LinkedAfp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} -> {}", self.first, self.second)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Ffm, Placement};

    fn find(ffm: Ffm, notation: &str) -> FaultPrimitive {
        ffm.fault_primitives()
            .into_iter()
            .find(|fp| fp.notation() == notation)
            .unwrap_or_else(|| panic!("primitive {notation} not found"))
    }

    #[test]
    fn topology_cell_counts() {
        assert_eq!(LinkTopology::Lf1.cell_count(), 1);
        assert_eq!(LinkTopology::Lf2SharedAggressor.cell_count(), 2);
        assert_eq!(LinkTopology::Lf3.cell_count(), 3);
        assert!(LinkTopology::Lf2CouplingThenSingle.is_two_cell());
        assert!(!LinkTopology::Lf3.is_two_cell());
        assert_eq!(LinkTopology::Lf2SingleThenCoupling.to_string(), "LF2va");
    }

    #[test]
    fn paper_example_links() {
        // <0w1;0/1/-> → <1w0;1/0/-> as a three-cell linked fault (different aggressors).
        let lf = LinkedFault::link(
            find(Ffm::DisturbCoupling, "<0w1;0/1/->"),
            find(Ffm::DisturbCoupling, "<1w0;1/0/->"),
            LinkTopology::Lf3,
        )
        .unwrap();
        assert_eq!(lf.cell_count(), 3);
        assert!(lf.has_aggressor_operation());

        // The same pair with a shared aggressor: after FP1 the aggressor holds 1 and
        // FP2 requires it at 1, so the link is accepted as LF2aa as well.
        let lf2 = LinkedFault::link(
            find(Ffm::DisturbCoupling, "<0w1;0/1/->"),
            find(Ffm::DisturbCoupling, "<1w0;1/0/->"),
            LinkTopology::Lf2SharedAggressor,
        );
        assert!(lf2.is_ok());
    }

    #[test]
    fn masking_is_enforced() {
        // F2 = F1 = 1: not a masking pair.
        let err = LinkedFault::link(
            find(Ffm::DisturbCoupling, "<0w1;0/1/->"),
            find(Ffm::DisturbCoupling, "<1w0;0/1/->"),
            LinkTopology::Lf3,
        )
        .unwrap_err();
        assert_eq!(err, FaultModelError::MaskMismatch);
    }

    #[test]
    fn state_compatibility_is_enforced() {
        // FP1 leaves the victim at 1; FP2 requires the victim at 0 before a w0 on it.
        let first = find(Ffm::DisturbCoupling, "<0w1;0/1/->");
        let incompatible_second = find(Ffm::TransitionCoupling, "<0;0w1/0/->");
        let err = LinkedFault::link(first, incompatible_second, LinkTopology::Lf3).unwrap_err();
        assert_eq!(err, FaultModelError::StateIncompatible);
    }

    #[test]
    fn topology_mismatch_is_rejected() {
        let err = LinkedFault::link(
            find(Ffm::TransitionFault, "<0w1/0/->"),
            find(Ffm::WriteDestructiveFault, "<0w0/1/->"),
            LinkTopology::Lf3,
        )
        .unwrap_err();
        assert!(matches!(err, FaultModelError::InvalidTopology(_)));
    }

    #[test]
    fn single_cell_link() {
        // TF↑ <0w1/0/-> masked by WDF <0w0/1/->.
        let lf = LinkedFault::link(
            find(Ffm::TransitionFault, "<0w1/0/->"),
            find(Ffm::WriteDestructiveFault, "<0w0/1/->"),
            LinkTopology::Lf1,
        )
        .unwrap();
        assert_eq!(lf.topology(), LinkTopology::Lf1);
        assert!(!lf.has_aggressor_operation());
    }

    #[test]
    fn afp_link_paper_example() {
        // (000, w1[0], 101, 100) → (101, w1[1], 110, 111) from equation (7).
        let fp1 = find(Ffm::DisturbCoupling, "<0w1;0/1/->");
        let fp2 = find(Ffm::DisturbCoupling, "<0w1;1/0/->");
        let afp1 =
            AddressedFaultPrimitive::instantiate(&fp1, Placement::coupling(0, 2, 3).unwrap())
                .unwrap();
        let afp2 =
            AddressedFaultPrimitive::instantiate(&fp2, Placement::coupling(1, 2, 3).unwrap())
                .unwrap();
        let linked = LinkedAfp::try_link(afp1, afp2).unwrap();
        assert_eq!(linked.victim(), 2);
        assert_eq!(linked.first().faulty().to_string(), "1-1");
        assert_eq!(linked.second().faulty().to_string(), "-10");
    }

    #[test]
    fn afp_link_rejects_different_victims() {
        let fp1 = find(Ffm::DisturbCoupling, "<0w1;0/1/->");
        let fp2 = find(Ffm::DisturbCoupling, "<0w1;1/0/->");
        let afp1 =
            AddressedFaultPrimitive::instantiate(&fp1, Placement::coupling(0, 2, 3).unwrap())
                .unwrap();
        let afp2 =
            AddressedFaultPrimitive::instantiate(&fp2, Placement::coupling(0, 1, 3).unwrap())
                .unwrap();
        assert!(LinkedAfp::try_link(afp1, afp2).is_err());
    }
}
