//! The binary value stored in a memory cell.

use std::fmt;
use std::ops::Not;
use std::str::FromStr;

use crate::FaultModelError;

/// A concrete binary value stored in (or written to / read from) an SRAM cell.
///
/// `Bit` is the "data" half of the alphabet of Definition 2 of the paper: write
/// operations carry a `Bit`, reads optionally carry the `Bit` they are expected to
/// return on a fault-free memory.
///
/// # Examples
///
/// ```
/// use sram_fault_model::Bit;
///
/// assert_eq!(!Bit::Zero, Bit::One);
/// assert_eq!(Bit::from(true), Bit::One);
/// assert_eq!(Bit::One.to_char(), '1');
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum Bit {
    /// Logic `0`.
    #[default]
    Zero,
    /// Logic `1`.
    One,
}

impl Bit {
    /// Both bit values, in ascending order.
    pub const ALL: [Bit; 2] = [Bit::Zero, Bit::One];

    /// Returns the complemented value.
    ///
    /// ```
    /// use sram_fault_model::Bit;
    /// assert_eq!(Bit::Zero.flipped(), Bit::One);
    /// ```
    #[must_use]
    pub const fn flipped(self) -> Bit {
        match self {
            Bit::Zero => Bit::One,
            Bit::One => Bit::Zero,
        }
    }

    /// Returns the value as `0` or `1`.
    #[must_use]
    pub const fn as_u8(self) -> u8 {
        match self {
            Bit::Zero => 0,
            Bit::One => 1,
        }
    }

    /// Returns `true` for [`Bit::One`].
    #[must_use]
    pub const fn is_one(self) -> bool {
        matches!(self, Bit::One)
    }

    /// Returns `true` for [`Bit::Zero`].
    #[must_use]
    pub const fn is_zero(self) -> bool {
        matches!(self, Bit::Zero)
    }

    /// Returns the character representation, `'0'` or `'1'`.
    #[must_use]
    pub const fn to_char(self) -> char {
        match self {
            Bit::Zero => '0',
            Bit::One => '1',
        }
    }

    /// Parses a single character into a bit.
    ///
    /// # Errors
    ///
    /// Returns [`FaultModelError::ParseBit`] if the character is not `'0'` or `'1'`.
    pub fn from_char(c: char) -> Result<Bit, FaultModelError> {
        match c {
            '0' => Ok(Bit::Zero),
            '1' => Ok(Bit::One),
            other => Err(FaultModelError::ParseBit(other.to_string())),
        }
    }
}

impl Not for Bit {
    type Output = Bit;

    fn not(self) -> Bit {
        self.flipped()
    }
}

impl From<bool> for Bit {
    fn from(value: bool) -> Self {
        if value {
            Bit::One
        } else {
            Bit::Zero
        }
    }
}

impl From<Bit> for bool {
    fn from(value: Bit) -> Self {
        value.is_one()
    }
}

impl From<Bit> for u8 {
    fn from(value: Bit) -> Self {
        value.as_u8()
    }
}

impl fmt::Display for Bit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_char())
    }
}

impl FromStr for Bit {
    type Err = FaultModelError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.trim() {
            "0" => Ok(Bit::Zero),
            "1" => Ok(Bit::One),
            other => Err(FaultModelError::ParseBit(other.to_string())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flipping_is_involutive() {
        for bit in Bit::ALL {
            assert_eq!(bit.flipped().flipped(), bit);
            assert_eq!(!!bit, bit);
        }
    }

    #[test]
    fn conversions_round_trip() {
        assert_eq!(Bit::from(true), Bit::One);
        assert_eq!(Bit::from(false), Bit::Zero);
        assert!(bool::from(Bit::One));
        assert!(!bool::from(Bit::Zero));
        assert_eq!(u8::from(Bit::One), 1);
        assert_eq!(u8::from(Bit::Zero), 0);
    }

    #[test]
    fn display_and_parse() {
        assert_eq!(Bit::Zero.to_string(), "0");
        assert_eq!(Bit::One.to_string(), "1");
        assert_eq!("0".parse::<Bit>().unwrap(), Bit::Zero);
        assert_eq!(" 1 ".parse::<Bit>().unwrap(), Bit::One);
        assert!("x".parse::<Bit>().is_err());
        assert_eq!(Bit::from_char('1').unwrap(), Bit::One);
        assert!(Bit::from_char('-').is_err());
    }

    #[test]
    fn default_is_zero() {
        assert_eq!(Bit::default(), Bit::Zero);
    }

    #[test]
    fn ordering_places_zero_first() {
        assert!(Bit::Zero < Bit::One);
    }
}
