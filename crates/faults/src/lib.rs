//! # `sram-fault-model`
//!
//! Functional fault models for SRAM testing: fault primitives, addressed fault
//! primitives, test patterns and *static linked faults*, following the notation of
//! van de Goor / Al-Ars ("Functional Memory Faults: A Formal Notation and a
//! Taxonomy", VTS 2000) as extended by Benso, Bosio, Di Carlo, Di Natale and
//! Prinetto in *"Automatic March Tests Generations for Static Linked Faults in
//! SRAMs"* (DATE 2006).
//!
//! The crate provides:
//!
//! * the basic alphabet of memory testing — [`Bit`], [`CellValue`], [`Operation`];
//! * [`FaultPrimitive`]s `<S / F / R>` and the realistic static functional fault
//!   model taxonomy ([`Ffm`]): SF, TF, WDF, RDF, DRDF, IRF and the seven coupling
//!   families CFst, CFds, CFtr, CFwd, CFrd, CFdr, CFir;
//! * [`AddressedFaultPrimitive`]s (Definition 4 of the paper) and
//!   [`TestPattern`]s (Definition 5);
//! * [`LinkedFault`]s `FP1 → FP2` (Definitions 6–7) with the LF1/LF2/LF3 topology
//!   taxonomy of Hamdioui et al. (TCAD 2004);
//! * [`DecoderFault`]s — the four classical address-decoder fault classes
//!   (no cell accessed, no address maps, multiple cells accessed, multiple
//!   addresses map), modelled as deterministic decode perturbations;
//! * ready-made [`FaultList`]s reproducing the two target lists of the paper's
//!   evaluation: [`FaultList::list_1`] (single-, two- and three-cell static LFs)
//!   and [`FaultList::list_2`] (single-cell static LFs).
//!
//! # Quick example
//!
//! ```
//! use sram_fault_model::{Bit, FaultList, Ffm, LinkTopology};
//!
//! // The realistic single-cell linked faults targeted by March LF1 / March ABL1.
//! let list = FaultList::list_2();
//! assert!(list.linked().len() > 0);
//! assert!(list.linked().iter().all(|lf| lf.topology() == LinkTopology::Lf1));
//!
//! // Every disturb-coupling fault primitive flips the victim cell.
//! for fp in Ffm::DisturbCoupling.fault_primitives() {
//!     assert!(fp.effect().victim_value().to_bit().is_some());
//! }
//! # let _ = Bit::Zero;
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod afp;
mod bit;
mod cell_value;
mod condition;
mod decoder;
mod effect;
mod error;
mod fault_list;
mod ffm;
mod linked;
mod memory_state;
mod operation;
mod pattern;
mod primitive;

pub use afp::{AddressedFaultPrimitive, AddressedOperation, Placement};
pub use bit::Bit;
pub use cell_value::CellValue;
pub use condition::Condition;
pub use decoder::DecoderFault;
pub use effect::FaultEffect;
pub use error::FaultModelError;
pub use fault_list::{FaultList, FaultListBuilder};
pub use ffm::Ffm;
pub use linked::{LinkTopology, LinkedAfp, LinkedFault};
pub use memory_state::MemoryState;
pub use operation::Operation;
pub use pattern::TestPattern;
pub use primitive::{FaultPrimitive, SensitizingSite};

/// Convenience result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, FaultModelError>;
