//! Addressed Fault Primitives (Definition 4 of the paper).

use std::fmt;

use crate::{
    Bit, CellValue, FaultModelError, FaultPrimitive, MemoryState, Operation, SensitizingSite,
};

/// A memory operation bound to a concrete cell address.
///
/// # Examples
///
/// ```
/// use sram_fault_model::{AddressedOperation, Operation};
///
/// let op = AddressedOperation::new(2, Operation::W1);
/// assert_eq!(op.to_string(), "w1[2]");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AddressedOperation {
    cell: usize,
    operation: Operation,
}

impl AddressedOperation {
    /// Binds `operation` to the cell at address `cell`.
    #[must_use]
    pub const fn new(cell: usize, operation: Operation) -> AddressedOperation {
        AddressedOperation { cell, operation }
    }

    /// The target cell address.
    #[must_use]
    pub const fn cell(&self) -> usize {
        self.cell
    }

    /// The operation applied to the cell.
    #[must_use]
    pub const fn operation(&self) -> Operation {
        self.operation
    }
}

impl fmt::Display for AddressedOperation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}]", self.operation, self.cell)
    }
}

/// The assignment of a fault primitive's cells to concrete addresses of an
/// `n`-cell memory.
///
/// # Examples
///
/// ```
/// use sram_fault_model::Placement;
///
/// let single = Placement::single_cell(1, 4)?;
/// assert_eq!(single.victim(), 1);
/// assert_eq!(single.aggressor(), None);
///
/// let pair = Placement::coupling(0, 3, 4)?;
/// assert_eq!(pair.aggressor(), Some(0));
/// # Ok::<(), sram_fault_model::FaultModelError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Placement {
    cells: usize,
    aggressor: Option<usize>,
    victim: usize,
}

impl Placement {
    /// A placement for a single-cell fault primitive on the cell `victim` of a
    /// memory with `cells` cells.
    ///
    /// # Errors
    ///
    /// Returns [`FaultModelError::AddressOutOfRange`] if `victim >= cells`.
    pub fn single_cell(victim: usize, cells: usize) -> Result<Placement, FaultModelError> {
        if victim >= cells {
            return Err(FaultModelError::AddressOutOfRange {
                address: victim,
                cells,
            });
        }
        Ok(Placement {
            cells,
            aggressor: None,
            victim,
        })
    }

    /// A placement for a coupling fault primitive with the given `aggressor` and
    /// `victim` addresses on a memory with `cells` cells.
    ///
    /// # Errors
    ///
    /// * [`FaultModelError::AddressOutOfRange`] if either address is out of range;
    /// * [`FaultModelError::AggressorEqualsVictim`] if the two addresses coincide.
    pub fn coupling(
        aggressor: usize,
        victim: usize,
        cells: usize,
    ) -> Result<Placement, FaultModelError> {
        for address in [aggressor, victim] {
            if address >= cells {
                return Err(FaultModelError::AddressOutOfRange { address, cells });
            }
        }
        if aggressor == victim {
            return Err(FaultModelError::AggressorEqualsVictim { address: victim });
        }
        Ok(Placement {
            cells,
            aggressor: Some(aggressor),
            victim,
        })
    }

    /// The number of cells of the memory the placement refers to.
    #[must_use]
    pub const fn cells(&self) -> usize {
        self.cells
    }

    /// The aggressor address, if the placement is for a coupling primitive.
    #[must_use]
    pub const fn aggressor(&self) -> Option<usize> {
        self.aggressor
    }

    /// The victim address.
    #[must_use]
    pub const fn victim(&self) -> usize {
        self.victim
    }

    /// Returns `true` if the aggressor sits at a lower address than the victim
    /// (`a < v`); `false` for `a > v`; `None` for single-cell placements.
    #[must_use]
    pub fn aggressor_below_victim(&self) -> Option<bool> {
        self.aggressor.map(|aggressor| aggressor < self.victim)
    }
}

/// An Addressed Fault Primitive `AFP = (I, Es, Fv, Gv)` (Definition 4).
///
/// An AFP is a [`FaultPrimitive`] instantiated on concrete cell addresses of an
/// `n`-cell memory: `I` is the initial memory state, `Es` the sensitizing
/// operations (with their addresses), `Fv` the state reached by the *faulty*
/// memory and `Gv` the state reached by the *fault-free* memory.
///
/// # Examples
///
/// The paper's running example: `<0w1; 0 / 1 / ->` instantiated on a 2-cell memory
/// with aggressor 0 and victim 1 yields `AFP = (00, w1[0], 11, 10)`
/// (cell 0 listed first):
///
/// ```
/// use sram_fault_model::{AddressedFaultPrimitive, Ffm, Placement};
///
/// let cfds = Ffm::DisturbCoupling
///     .fault_primitives()
///     .into_iter()
///     .find(|fp| fp.notation() == "<0w1;0/1/->")
///     .expect("present in the realistic list");
/// let afp = AddressedFaultPrimitive::instantiate(&cfds, Placement::coupling(0, 1, 2)?)?;
/// assert_eq!(afp.initial().to_string(), "00");
/// assert_eq!(afp.faulty().to_string(), "11");
/// assert_eq!(afp.expected().to_string(), "10");
/// # Ok::<(), sram_fault_model::FaultModelError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AddressedFaultPrimitive {
    primitive: FaultPrimitive,
    placement: Placement,
    initial: MemoryState,
    operations: Vec<AddressedOperation>,
    faulty: MemoryState,
    expected: MemoryState,
}

impl AddressedFaultPrimitive {
    /// Instantiates `primitive` on the addresses given by `placement`.
    ///
    /// Cells not involved in the primitive are left unconstrained (`-`) in `I`,
    /// `Fv` and `Gv`.
    ///
    /// # Errors
    ///
    /// * [`FaultModelError::MissingAggressor`] if a coupling primitive is
    ///   instantiated with a single-cell placement;
    /// * [`FaultModelError::UnexpectedAggressor`] if a single-cell primitive is
    ///   instantiated with a coupling placement.
    pub fn instantiate(
        primitive: &FaultPrimitive,
        placement: Placement,
    ) -> Result<AddressedFaultPrimitive, FaultModelError> {
        match (primitive.is_coupling(), placement.aggressor()) {
            (true, None) => return Err(FaultModelError::MissingAggressor),
            (false, Some(_)) => return Err(FaultModelError::UnexpectedAggressor),
            _ => {}
        }

        let cells = placement.cells();
        let mut initial = MemoryState::unconstrained(cells);
        initial.set(placement.victim(), primitive.victim().initial());
        if let (Some(aggressor_address), Some(aggressor)) =
            (placement.aggressor(), primitive.aggressor())
        {
            initial.set(aggressor_address, aggressor.initial());
        }

        let operations = match primitive.sensitizing_site() {
            SensitizingSite::Victim => vec![AddressedOperation::new(
                placement.victim(),
                primitive
                    .sensitizing_operation()
                    .expect("victim site implies an operation"),
            )],
            SensitizingSite::Aggressor => vec![AddressedOperation::new(
                placement
                    .aggressor()
                    .expect("aggressor site implies a coupling placement"),
                primitive
                    .sensitizing_operation()
                    .expect("aggressor site implies an operation"),
            )],
            SensitizingSite::None => Vec::new(),
        };

        // Gv: the state reached by a fault-free memory.
        let mut expected = initial.clone();
        for op in &operations {
            let before = expected
                .get(op.cell())
                .expect("operation addresses are in range");
            let after = match op.operation() {
                Operation::Write(bit) => CellValue::from(bit),
                Operation::Read(_) | Operation::Wait => before,
            };
            expected.set(op.cell(), after);
        }

        // Fv: like Gv, but the victim cell holds the fault value F (when concrete).
        let mut faulty = expected.clone();
        if let Some(fault_value) = primitive.fault_value().to_bit() {
            faulty.set(placement.victim(), CellValue::from(fault_value));
        }

        Ok(AddressedFaultPrimitive {
            primitive: primitive.clone(),
            placement,
            initial,
            operations,
            faulty,
            expected,
        })
    }

    /// The fault primitive this AFP instantiates.
    #[must_use]
    pub fn primitive(&self) -> &FaultPrimitive {
        &self.primitive
    }

    /// The address assignment.
    #[must_use]
    pub fn placement(&self) -> Placement {
        self.placement
    }

    /// The initial memory state `I`.
    #[must_use]
    pub fn initial(&self) -> &MemoryState {
        &self.initial
    }

    /// The sensitizing operations `Es` with their addresses.
    #[must_use]
    pub fn operations(&self) -> &[AddressedOperation] {
        &self.operations
    }

    /// The state reached by the faulty memory, `Fv`.
    #[must_use]
    pub fn faulty(&self) -> &MemoryState {
        &self.faulty
    }

    /// The state reached by the fault-free memory, `Gv`.
    #[must_use]
    pub fn expected(&self) -> &MemoryState {
        &self.expected
    }

    /// The victim cell address.
    #[must_use]
    pub fn victim(&self) -> usize {
        self.placement.victim()
    }

    /// The aggressor cell address, if any.
    #[must_use]
    pub fn aggressor(&self) -> Option<usize> {
        self.placement.aggressor()
    }

    /// The value held by the victim cell in the faulty state `Fv`
    /// (the `V(Fv)` function of Definition 7).
    #[must_use]
    pub fn victim_faulty_value(&self) -> CellValue {
        self.faulty[self.victim()]
    }

    /// The value held by the victim cell in the fault-free state `Gv`.
    #[must_use]
    pub fn victim_expected_value(&self) -> CellValue {
        self.expected[self.victim()]
    }

    /// The value the observing read of the derived test pattern expects, i.e. the
    /// fault-free victim value after sensitization, if known.
    #[must_use]
    pub fn observe_expected(&self) -> Option<Bit> {
        self.victim_expected_value().to_bit()
    }
}

impl fmt::Display for AddressedFaultPrimitive {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, ", self.initial)?;
        if self.operations.is_empty() {
            write!(f, "-")?;
        } else {
            for (index, op) in self.operations.iter().enumerate() {
                if index > 0 {
                    write!(f, " ")?;
                }
                write!(f, "{op}")?;
            }
        }
        write!(f, ", {}, {})", self.faulty, self.expected)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Ffm;

    fn find_primitive(ffm: Ffm, notation: &str) -> FaultPrimitive {
        ffm.fault_primitives()
            .into_iter()
            .find(|fp| fp.notation() == notation)
            .unwrap_or_else(|| panic!("primitive {notation} not found in {ffm}"))
    }

    #[test]
    fn placement_validation() {
        assert!(Placement::single_cell(3, 4).is_ok());
        assert!(matches!(
            Placement::single_cell(4, 4),
            Err(FaultModelError::AddressOutOfRange { .. })
        ));
        assert!(Placement::coupling(0, 3, 4).is_ok());
        assert!(matches!(
            Placement::coupling(2, 2, 4),
            Err(FaultModelError::AggressorEqualsVictim { .. })
        ));
        assert!(matches!(
            Placement::coupling(5, 1, 4),
            Err(FaultModelError::AddressOutOfRange { .. })
        ));
        assert_eq!(
            Placement::coupling(0, 3, 4)
                .unwrap()
                .aggressor_below_victim(),
            Some(true)
        );
        assert_eq!(
            Placement::coupling(3, 0, 4)
                .unwrap()
                .aggressor_below_victim(),
            Some(false)
        );
        assert_eq!(
            Placement::single_cell(0, 4)
                .unwrap()
                .aggressor_below_victim(),
            None
        );
    }

    #[test]
    fn paper_running_example() {
        // <0w1; 0/1/-> on 2 cells, aggressor 0 → AFP1 = (00, w1[0], 11, 10).
        let cfds = find_primitive(Ffm::DisturbCoupling, "<0w1;0/1/->");
        let afp1 =
            AddressedFaultPrimitive::instantiate(&cfds, Placement::coupling(0, 1, 2).unwrap())
                .unwrap();
        assert_eq!(afp1.initial().to_string(), "00");
        assert_eq!(afp1.faulty().to_string(), "11");
        assert_eq!(afp1.expected().to_string(), "10");
        assert_eq!(afp1.operations().len(), 1);
        assert_eq!(afp1.operations()[0].cell(), 0);

        // Aggressor 1 instead → AFP2 = (00, w1[1], 11, 01).
        let afp2 =
            AddressedFaultPrimitive::instantiate(&cfds, Placement::coupling(1, 0, 2).unwrap())
                .unwrap();
        assert_eq!(afp2.initial().to_string(), "00");
        assert_eq!(afp2.faulty().to_string(), "11");
        assert_eq!(
            afp2.expected().to_string(),
            "10".chars().rev().collect::<String>()
        );
    }

    #[test]
    fn single_cell_instantiation() {
        // TF <0w1/0/-> on cell 2 of a 3-cell memory.
        let tf = find_primitive(Ffm::TransitionFault, "<0w1/0/->");
        let afp = AddressedFaultPrimitive::instantiate(&tf, Placement::single_cell(2, 3).unwrap())
            .unwrap();
        assert_eq!(afp.initial().to_string(), "--0");
        assert_eq!(afp.expected().to_string(), "--1");
        assert_eq!(afp.faulty().to_string(), "--0");
        assert_eq!(afp.victim_faulty_value(), CellValue::Zero);
        assert_eq!(afp.victim_expected_value(), CellValue::One);
        assert_eq!(afp.observe_expected(), Some(Bit::One));
    }

    #[test]
    fn state_fault_has_no_operations() {
        let sf = find_primitive(Ffm::StateFault, "<0/1/->");
        let afp = AddressedFaultPrimitive::instantiate(&sf, Placement::single_cell(0, 2).unwrap())
            .unwrap();
        assert!(afp.operations().is_empty());
        assert_eq!(afp.initial().to_string(), "0-");
        assert_eq!(afp.faulty().to_string(), "1-");
        assert_eq!(afp.expected().to_string(), "0-");
    }

    #[test]
    fn mismatched_placements_are_rejected() {
        let tf = find_primitive(Ffm::TransitionFault, "<0w1/0/->");
        let cfds = find_primitive(Ffm::DisturbCoupling, "<0w1;0/1/->");
        assert_eq!(
            AddressedFaultPrimitive::instantiate(&tf, Placement::coupling(0, 1, 2).unwrap())
                .unwrap_err(),
            FaultModelError::UnexpectedAggressor
        );
        assert_eq!(
            AddressedFaultPrimitive::instantiate(&cfds, Placement::single_cell(0, 2).unwrap())
                .unwrap_err(),
            FaultModelError::MissingAggressor
        );
    }

    #[test]
    fn display_matches_paper_tuple_shape() {
        let cfds = find_primitive(Ffm::DisturbCoupling, "<0w1;0/1/->");
        let afp =
            AddressedFaultPrimitive::instantiate(&cfds, Placement::coupling(0, 1, 2).unwrap())
                .unwrap();
        assert_eq!(afp.to_string(), "(00, w1[0], 11, 10)");
    }
}
