//! Vectors of cell values describing the state of a (small) memory.

use std::fmt;
use std::ops::Index;
use std::str::FromStr;

use crate::{Bit, CellValue, FaultModelError};

/// The (possibly partially constrained) state of an `n`-cell memory.
///
/// Cell `0` is the cell with the lowest address ("less significant bit" in the
/// paper's convention); the textual representation lists cells from address `0`
/// upwards, e.g. `"101"` means cell 0 = 1, cell 1 = 0, cell 2 = 1.
///
/// # Examples
///
/// ```
/// use sram_fault_model::{Bit, CellValue, MemoryState};
///
/// let state: MemoryState = "10-".parse()?;
/// assert_eq!(state.len(), 3);
/// assert_eq!(state[0], CellValue::One);
/// assert_eq!(state[2], CellValue::DontCare);
/// assert!(state.matches_bits(&[Bit::One, Bit::Zero, Bit::One]));
/// # Ok::<(), sram_fault_model::FaultModelError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct MemoryState {
    cells: Vec<CellValue>,
}

impl MemoryState {
    /// Creates a state with all `cells` unconstrained.
    #[must_use]
    pub fn unconstrained(cells: usize) -> MemoryState {
        MemoryState {
            cells: vec![CellValue::DontCare; cells],
        }
    }

    /// Creates a state with all `cells` holding the same concrete `value`.
    #[must_use]
    pub fn filled(cells: usize, value: Bit) -> MemoryState {
        MemoryState {
            cells: vec![CellValue::from(value); cells],
        }
    }

    /// Creates a state from explicit cell values.
    #[must_use]
    pub fn new(cells: Vec<CellValue>) -> MemoryState {
        MemoryState { cells }
    }

    /// Creates a fully constrained state from concrete bits.
    #[must_use]
    pub fn from_bits(bits: &[Bit]) -> MemoryState {
        MemoryState {
            cells: bits.iter().copied().map(CellValue::from).collect(),
        }
    }

    /// The number of cells.
    #[must_use]
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Returns `true` for a zero-cell state.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// The value of cell `address`, or `None` if out of range.
    #[must_use]
    pub fn get(&self, address: usize) -> Option<CellValue> {
        self.cells.get(address).copied()
    }

    /// Sets the value of cell `address`.
    ///
    /// # Panics
    ///
    /// Panics if `address` is out of range.
    pub fn set(&mut self, address: usize, value: CellValue) {
        self.cells[address] = value;
    }

    /// Returns a copy of the state with cell `address` set to `value`.
    ///
    /// # Panics
    ///
    /// Panics if `address` is out of range.
    #[must_use]
    pub fn with(&self, address: usize, value: CellValue) -> MemoryState {
        let mut next = self.clone();
        next.set(address, value);
        next
    }

    /// Iterates over the cell values from address `0` upwards.
    pub fn iter(&self) -> impl Iterator<Item = CellValue> + '_ {
        self.cells.iter().copied()
    }

    /// The underlying cell values.
    #[must_use]
    pub fn as_slice(&self) -> &[CellValue] {
        &self.cells
    }

    /// Returns the concrete bits if every cell is constrained.
    #[must_use]
    pub fn to_bits(&self) -> Option<Vec<Bit>> {
        self.cells.iter().map(|value| value.to_bit()).collect()
    }

    /// Returns the concrete bits, substituting `default` for unconstrained cells.
    #[must_use]
    pub fn to_bits_or(&self, default: Bit) -> Vec<Bit> {
        self.cells
            .iter()
            .map(|value| value.to_bit_or(default))
            .collect()
    }

    /// Returns `true` if every cell is constrained to a concrete bit.
    #[must_use]
    pub fn is_fully_known(&self) -> bool {
        self.cells.iter().all(|value| value.is_known())
    }

    /// Returns `true` if a memory holding `bits` satisfies every constrained cell.
    ///
    /// The slice must have the same length as the state.
    #[must_use]
    pub fn matches_bits(&self, bits: &[Bit]) -> bool {
        self.cells.len() == bits.len()
            && self
                .cells
                .iter()
                .zip(bits.iter())
                .all(|(value, bit)| value.matches(*bit))
    }

    /// Returns `true` if the two states can be satisfied by the same concrete memory
    /// content (cell-wise [`CellValue::compatible`]).
    #[must_use]
    pub fn compatible(&self, other: &MemoryState) -> bool {
        self.cells.len() == other.cells.len()
            && self
                .cells
                .iter()
                .zip(other.cells.iter())
                .all(|(a, b)| a.compatible(*b))
    }

    /// Enumerates every fully constrained state that satisfies this one, in
    /// lexicographic order (cell 0 is the least-significant position).
    ///
    /// A state with `k` unconstrained cells expands into `2^k` concrete states.
    #[must_use]
    pub fn expand(&self) -> Vec<Vec<Bit>> {
        let mut result = vec![Vec::with_capacity(self.cells.len())];
        for value in &self.cells {
            match value.to_bit() {
                Some(bit) => {
                    for bits in &mut result {
                        bits.push(bit);
                    }
                }
                None => {
                    let mut doubled = Vec::with_capacity(result.len() * 2);
                    for bits in result {
                        let mut with_zero = bits.clone();
                        with_zero.push(Bit::Zero);
                        let mut with_one = bits;
                        with_one.push(Bit::One);
                        doubled.push(with_zero);
                        doubled.push(with_one);
                    }
                    result = doubled;
                }
            }
        }
        result
    }
}

impl Index<usize> for MemoryState {
    type Output = CellValue;

    fn index(&self, index: usize) -> &CellValue {
        &self.cells[index]
    }
}

impl FromIterator<CellValue> for MemoryState {
    fn from_iter<T: IntoIterator<Item = CellValue>>(iter: T) -> Self {
        MemoryState {
            cells: iter.into_iter().collect(),
        }
    }
}

impl fmt::Display for MemoryState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for value in &self.cells {
            write!(f, "{value}")?;
        }
        Ok(())
    }
}

impl FromStr for MemoryState {
    type Err = FaultModelError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let trimmed = s.trim();
        if trimmed.is_empty() {
            return Err(FaultModelError::ParseMemoryState(s.to_string()));
        }
        trimmed
            .chars()
            .map(|c| {
                CellValue::from_char(c)
                    .map_err(|_| FaultModelError::ParseMemoryState(s.to_string()))
            })
            .collect::<Result<Vec<_>, _>>()
            .map(MemoryState::new)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let state = MemoryState::filled(3, Bit::Zero);
        assert_eq!(state.len(), 3);
        assert!(!state.is_empty());
        assert_eq!(state.get(0), Some(CellValue::Zero));
        assert_eq!(state.get(3), None);
        assert!(state.is_fully_known());

        let unconstrained = MemoryState::unconstrained(2);
        assert!(!unconstrained.is_fully_known());
        assert_eq!(unconstrained.to_bits(), None);
        assert_eq!(unconstrained.to_bits_or(Bit::One), vec![Bit::One, Bit::One]);
    }

    #[test]
    fn with_and_set() {
        let state = MemoryState::filled(2, Bit::Zero).with(1, CellValue::One);
        assert_eq!(state.to_string(), "01");
        let mut mutated = state.clone();
        mutated.set(0, CellValue::DontCare);
        assert_eq!(mutated.to_string(), "-1");
    }

    #[test]
    fn matching_and_compatibility() {
        let state: MemoryState = "1-0".parse().unwrap();
        assert!(state.matches_bits(&[Bit::One, Bit::Zero, Bit::Zero]));
        assert!(state.matches_bits(&[Bit::One, Bit::One, Bit::Zero]));
        assert!(!state.matches_bits(&[Bit::Zero, Bit::One, Bit::Zero]));
        assert!(!state.matches_bits(&[Bit::One, Bit::Zero]));

        let other: MemoryState = "110".parse().unwrap();
        assert!(state.compatible(&other));
        let conflict: MemoryState = "0-0".parse().unwrap();
        assert!(!state.compatible(&conflict));
        let short: MemoryState = "10".parse().unwrap();
        assert!(!state.compatible(&short));
    }

    #[test]
    fn expansion_counts() {
        let state: MemoryState = "1-".parse().unwrap();
        let expanded = state.expand();
        assert_eq!(expanded.len(), 2);
        assert!(expanded.contains(&vec![Bit::One, Bit::Zero]));
        assert!(expanded.contains(&vec![Bit::One, Bit::One]));

        let all_dc = MemoryState::unconstrained(3);
        assert_eq!(all_dc.expand().len(), 8);

        let fixed = MemoryState::from_bits(&[Bit::Zero, Bit::One]);
        assert_eq!(fixed.expand(), vec![vec![Bit::Zero, Bit::One]]);
    }

    #[test]
    fn display_and_parse_round_trip() {
        for text in ["0", "1", "-", "01-", "1111", "0-0-"] {
            let state: MemoryState = text.parse().unwrap();
            assert_eq!(state.to_string(), text);
        }
        assert!("".parse::<MemoryState>().is_err());
        assert!("012".parse::<MemoryState>().is_err());
    }

    #[test]
    fn collect_from_iterator() {
        let state: MemoryState = [CellValue::One, CellValue::DontCare].into_iter().collect();
        assert_eq!(state.to_string(), "1-");
    }
}
