//! The realistic static functional fault model (FFM) taxonomy.

use std::fmt;
use std::str::FromStr;

use crate::{Bit, CellValue, Condition, FaultEffect, FaultModelError, FaultPrimitive, Operation};

/// The realistic *static* functional fault models of the SRAM testing literature
/// (van de Goor / Al-Ars taxonomy, as used by Hamdioui et al. and by the DATE 2006
/// paper this crate reproduces).
///
/// Single-cell families: [`StateFault`](Ffm::StateFault) (SF),
/// [`TransitionFault`](Ffm::TransitionFault) (TF),
/// [`WriteDestructiveFault`](Ffm::WriteDestructiveFault) (WDF),
/// [`ReadDestructiveFault`](Ffm::ReadDestructiveFault) (RDF),
/// [`DeceptiveReadDestructiveFault`](Ffm::DeceptiveReadDestructiveFault) (DRDF),
/// [`IncorrectReadFault`](Ffm::IncorrectReadFault) (IRF).
///
/// Two-cell (coupling) families: CFst, CFds, CFtr, CFwd, CFrd, CFdr, CFir.
///
/// [`Ffm::fault_primitives`] enumerates every fault primitive of a family, so the
/// complete realistic static fault space is `Ffm::all().flat_map(|ffm|
/// ffm.fault_primitives())`.
///
/// # Examples
///
/// ```
/// use sram_fault_model::Ffm;
///
/// assert_eq!(Ffm::StateFault.abbreviation(), "SF");
/// assert_eq!(Ffm::StateFault.fault_primitives().len(), 2);
/// assert_eq!(Ffm::DisturbCoupling.fault_primitives().len(), 12);
/// assert!(Ffm::DisturbCoupling.is_coupling());
/// let total: usize = Ffm::all().iter().map(|f| f.fault_primitives().len()).sum();
/// assert_eq!(total, 48);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Ffm {
    /// SF — the cell flips without any operation being applied.
    StateFault,
    /// TF — a transition write (`0w1` / `1w0`) fails to change the cell.
    TransitionFault,
    /// WDF — a non-transition write (`0w0` / `1w1`) flips the cell.
    WriteDestructiveFault,
    /// RDF — a read flips the cell and returns the flipped (wrong) value.
    ReadDestructiveFault,
    /// DRDF — a read flips the cell but returns the correct value.
    DeceptiveReadDestructiveFault,
    /// IRF — a read returns the wrong value but leaves the cell unchanged.
    IncorrectReadFault,
    /// CFst — the victim flips because the aggressor sits in a given state.
    StateCoupling,
    /// CFds — an operation on the aggressor flips the victim.
    DisturbCoupling,
    /// CFtr — a transition write on the victim fails because of the aggressor state.
    TransitionCoupling,
    /// CFwd — a non-transition write on the victim flips it because of the aggressor
    /// state.
    WriteDestructiveCoupling,
    /// CFrd — a read of the victim flips it and returns the wrong value because of
    /// the aggressor state.
    ReadDestructiveCoupling,
    /// CFdr — a read of the victim flips it but returns the correct value because of
    /// the aggressor state.
    DeceptiveReadDestructiveCoupling,
    /// CFir — a read of the victim returns the wrong value (cell unchanged) because
    /// of the aggressor state.
    IncorrectReadCoupling,
}

impl Ffm {
    /// Every family of the realistic static taxonomy, single-cell families first.
    #[must_use]
    pub const fn all() -> &'static [Ffm] {
        &[
            Ffm::StateFault,
            Ffm::TransitionFault,
            Ffm::WriteDestructiveFault,
            Ffm::ReadDestructiveFault,
            Ffm::DeceptiveReadDestructiveFault,
            Ffm::IncorrectReadFault,
            Ffm::StateCoupling,
            Ffm::DisturbCoupling,
            Ffm::TransitionCoupling,
            Ffm::WriteDestructiveCoupling,
            Ffm::ReadDestructiveCoupling,
            Ffm::DeceptiveReadDestructiveCoupling,
            Ffm::IncorrectReadCoupling,
        ]
    }

    /// The single-cell families.
    #[must_use]
    pub const fn single_cell() -> &'static [Ffm] {
        &[
            Ffm::StateFault,
            Ffm::TransitionFault,
            Ffm::WriteDestructiveFault,
            Ffm::ReadDestructiveFault,
            Ffm::DeceptiveReadDestructiveFault,
            Ffm::IncorrectReadFault,
        ]
    }

    /// The two-cell (coupling) families.
    #[must_use]
    pub const fn coupling() -> &'static [Ffm] {
        &[
            Ffm::StateCoupling,
            Ffm::DisturbCoupling,
            Ffm::TransitionCoupling,
            Ffm::WriteDestructiveCoupling,
            Ffm::ReadDestructiveCoupling,
            Ffm::DeceptiveReadDestructiveCoupling,
            Ffm::IncorrectReadCoupling,
        ]
    }

    /// The conventional abbreviation used in the literature (SF, TF, …, CFir).
    #[must_use]
    pub const fn abbreviation(self) -> &'static str {
        match self {
            Ffm::StateFault => "SF",
            Ffm::TransitionFault => "TF",
            Ffm::WriteDestructiveFault => "WDF",
            Ffm::ReadDestructiveFault => "RDF",
            Ffm::DeceptiveReadDestructiveFault => "DRDF",
            Ffm::IncorrectReadFault => "IRF",
            Ffm::StateCoupling => "CFst",
            Ffm::DisturbCoupling => "CFds",
            Ffm::TransitionCoupling => "CFtr",
            Ffm::WriteDestructiveCoupling => "CFwd",
            Ffm::ReadDestructiveCoupling => "CFrd",
            Ffm::DeceptiveReadDestructiveCoupling => "CFdr",
            Ffm::IncorrectReadCoupling => "CFir",
        }
    }

    /// A human-readable name of the family.
    #[must_use]
    pub const fn name(self) -> &'static str {
        match self {
            Ffm::StateFault => "state fault",
            Ffm::TransitionFault => "transition fault",
            Ffm::WriteDestructiveFault => "write destructive fault",
            Ffm::ReadDestructiveFault => "read destructive fault",
            Ffm::DeceptiveReadDestructiveFault => "deceptive read destructive fault",
            Ffm::IncorrectReadFault => "incorrect read fault",
            Ffm::StateCoupling => "state coupling fault",
            Ffm::DisturbCoupling => "disturb coupling fault",
            Ffm::TransitionCoupling => "transition coupling fault",
            Ffm::WriteDestructiveCoupling => "write destructive coupling fault",
            Ffm::ReadDestructiveCoupling => "read destructive coupling fault",
            Ffm::DeceptiveReadDestructiveCoupling => "deceptive read destructive coupling fault",
            Ffm::IncorrectReadCoupling => "incorrect read coupling fault",
        }
    }

    /// Returns `true` for the two-cell (coupling) families.
    #[must_use]
    pub const fn is_coupling(self) -> bool {
        matches!(
            self,
            Ffm::StateCoupling
                | Ffm::DisturbCoupling
                | Ffm::TransitionCoupling
                | Ffm::WriteDestructiveCoupling
                | Ffm::ReadDestructiveCoupling
                | Ffm::DeceptiveReadDestructiveCoupling
                | Ffm::IncorrectReadCoupling
        )
    }

    /// Enumerates every fault primitive of the family.
    ///
    /// The enumeration follows the realistic static fault space used in the linked
    /// fault literature: 12 single-cell primitives and 36 coupling primitives in
    /// total (2 × SF, 2 × TF, 2 × WDF, 2 × RDF, 2 × DRDF, 2 × IRF, 4 × CFst,
    /// 12 × CFds, 4 × CFtr, 4 × CFwd, 4 × CFrd, 4 × CFdr, 4 × CFir).
    #[must_use]
    pub fn fault_primitives(self) -> Vec<FaultPrimitive> {
        match self {
            Ffm::StateFault => Bit::ALL
                .into_iter()
                .map(|value| {
                    single(
                        self,
                        Condition::state(value.into()),
                        FaultEffect::store(CellValue::from(value.flipped())),
                    )
                })
                .collect(),
            Ffm::TransitionFault => Bit::ALL
                .into_iter()
                .map(|from| {
                    // <from w !from / from / -> : the transition write fails.
                    single(
                        self,
                        Condition::with_operation(from.into(), Operation::Write(from.flipped())),
                        FaultEffect::store(CellValue::from(from)),
                    )
                })
                .collect(),
            Ffm::WriteDestructiveFault => Bit::ALL
                .into_iter()
                .map(|value| {
                    // <v w v / !v / -> : the non-transition write flips the cell.
                    single(
                        self,
                        Condition::with_operation(value.into(), Operation::Write(value)),
                        FaultEffect::store(CellValue::from(value.flipped())),
                    )
                })
                .collect(),
            Ffm::ReadDestructiveFault => Bit::ALL
                .into_iter()
                .map(|value| {
                    // <v r v / !v / !v>
                    single(
                        self,
                        Condition::with_operation(value.into(), Operation::Read(Some(value))),
                        FaultEffect::with_read(CellValue::from(value.flipped()), value.flipped()),
                    )
                })
                .collect(),
            Ffm::DeceptiveReadDestructiveFault => Bit::ALL
                .into_iter()
                .map(|value| {
                    // <v r v / !v / v>
                    single(
                        self,
                        Condition::with_operation(value.into(), Operation::Read(Some(value))),
                        FaultEffect::with_read(CellValue::from(value.flipped()), value),
                    )
                })
                .collect(),
            Ffm::IncorrectReadFault => Bit::ALL
                .into_iter()
                .map(|value| {
                    // <v r v / v / !v>
                    single(
                        self,
                        Condition::with_operation(value.into(), Operation::Read(Some(value))),
                        FaultEffect::with_read(CellValue::from(value), value.flipped()),
                    )
                })
                .collect(),
            Ffm::StateCoupling => two_by_two(|aggressor, victim| {
                // <a ; v / !v / ->
                coupling(
                    self,
                    Condition::state(aggressor.into()),
                    Condition::state(victim.into()),
                    FaultEffect::store(CellValue::from(victim.flipped())),
                )
            }),
            Ffm::DisturbCoupling => {
                // Aggressor operations: 0w0, 0w1, 1w0, 1w1, 0r0, 1r1.
                let aggressor_conditions = [
                    Condition::with_operation(CellValue::Zero, Operation::W0),
                    Condition::with_operation(CellValue::Zero, Operation::W1),
                    Condition::with_operation(CellValue::One, Operation::W0),
                    Condition::with_operation(CellValue::One, Operation::W1),
                    Condition::with_operation(CellValue::Zero, Operation::R0),
                    Condition::with_operation(CellValue::One, Operation::R1),
                ];
                let mut primitives = Vec::with_capacity(aggressor_conditions.len() * 2);
                for aggressor in aggressor_conditions {
                    for victim in Bit::ALL {
                        primitives.push(coupling(
                            self,
                            aggressor,
                            Condition::state(victim.into()),
                            FaultEffect::store(CellValue::from(victim.flipped())),
                        ));
                    }
                }
                primitives
            }
            Ffm::TransitionCoupling => two_by_two(|aggressor, from| {
                // <a ; from w !from / from / ->
                coupling(
                    self,
                    Condition::state(aggressor.into()),
                    Condition::with_operation(from.into(), Operation::Write(from.flipped())),
                    FaultEffect::store(CellValue::from(from)),
                )
            }),
            Ffm::WriteDestructiveCoupling => two_by_two(|aggressor, value| {
                // <a ; v w v / !v / ->
                coupling(
                    self,
                    Condition::state(aggressor.into()),
                    Condition::with_operation(value.into(), Operation::Write(value)),
                    FaultEffect::store(CellValue::from(value.flipped())),
                )
            }),
            Ffm::ReadDestructiveCoupling => two_by_two(|aggressor, value| {
                // <a ; v r v / !v / !v>
                coupling(
                    self,
                    Condition::state(aggressor.into()),
                    Condition::with_operation(value.into(), Operation::Read(Some(value))),
                    FaultEffect::with_read(CellValue::from(value.flipped()), value.flipped()),
                )
            }),
            Ffm::DeceptiveReadDestructiveCoupling => two_by_two(|aggressor, value| {
                // <a ; v r v / !v / v>
                coupling(
                    self,
                    Condition::state(aggressor.into()),
                    Condition::with_operation(value.into(), Operation::Read(Some(value))),
                    FaultEffect::with_read(CellValue::from(value.flipped()), value),
                )
            }),
            Ffm::IncorrectReadCoupling => two_by_two(|aggressor, value| {
                // <a ; v r v / v / !v>
                coupling(
                    self,
                    Condition::state(aggressor.into()),
                    Condition::with_operation(value.into(), Operation::Read(Some(value))),
                    FaultEffect::with_read(CellValue::from(value), value.flipped()),
                )
            }),
        }
    }

    /// Enumerates every fault primitive of every family of the realistic static
    /// taxonomy (48 primitives).
    #[must_use]
    pub fn all_fault_primitives() -> Vec<FaultPrimitive> {
        Ffm::all()
            .iter()
            .flat_map(|ffm| ffm.fault_primitives())
            .collect()
    }
}

fn single(ffm: Ffm, victim: Condition, effect: FaultEffect) -> FaultPrimitive {
    FaultPrimitive::single_cell(ffm, victim, effect)
        .expect("built-in single-cell fault primitive is valid")
}

fn coupling(
    ffm: Ffm,
    aggressor: Condition,
    victim: Condition,
    effect: FaultEffect,
) -> FaultPrimitive {
    FaultPrimitive::coupling(ffm, aggressor, victim, effect)
        .expect("built-in coupling fault primitive is valid")
}

fn two_by_two(build: impl Fn(Bit, Bit) -> FaultPrimitive) -> Vec<FaultPrimitive> {
    let mut primitives = Vec::with_capacity(4);
    for aggressor in Bit::ALL {
        for victim in Bit::ALL {
            primitives.push(build(aggressor, victim));
        }
    }
    primitives
}

impl fmt::Display for Ffm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.abbreviation())
    }
}

impl FromStr for Ffm {
    type Err = FaultModelError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let needle = s.trim();
        Ffm::all()
            .iter()
            .copied()
            .find(|ffm| ffm.abbreviation().eq_ignore_ascii_case(needle))
            .ok_or_else(|| FaultModelError::ParseCondition(needle.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SensitizingSite;

    #[test]
    fn family_sizes() {
        assert_eq!(Ffm::StateFault.fault_primitives().len(), 2);
        assert_eq!(Ffm::TransitionFault.fault_primitives().len(), 2);
        assert_eq!(Ffm::WriteDestructiveFault.fault_primitives().len(), 2);
        assert_eq!(Ffm::ReadDestructiveFault.fault_primitives().len(), 2);
        assert_eq!(
            Ffm::DeceptiveReadDestructiveFault.fault_primitives().len(),
            2
        );
        assert_eq!(Ffm::IncorrectReadFault.fault_primitives().len(), 2);
        assert_eq!(Ffm::StateCoupling.fault_primitives().len(), 4);
        assert_eq!(Ffm::DisturbCoupling.fault_primitives().len(), 12);
        assert_eq!(Ffm::TransitionCoupling.fault_primitives().len(), 4);
        assert_eq!(Ffm::WriteDestructiveCoupling.fault_primitives().len(), 4);
        assert_eq!(Ffm::ReadDestructiveCoupling.fault_primitives().len(), 4);
        assert_eq!(
            Ffm::DeceptiveReadDestructiveCoupling
                .fault_primitives()
                .len(),
            4
        );
        assert_eq!(Ffm::IncorrectReadCoupling.fault_primitives().len(), 4);
        assert_eq!(Ffm::all_fault_primitives().len(), 48);
    }

    #[test]
    fn single_cell_and_coupling_partition() {
        for ffm in Ffm::single_cell() {
            assert!(!ffm.is_coupling());
            for fp in ffm.fault_primitives() {
                assert_eq!(fp.cell_count(), 1);
                assert_eq!(fp.ffm(), *ffm);
            }
        }
        for ffm in Ffm::coupling() {
            assert!(ffm.is_coupling());
            for fp in ffm.fault_primitives() {
                assert_eq!(fp.cell_count(), 2);
            }
        }
        assert_eq!(
            Ffm::single_cell().len() + Ffm::coupling().len(),
            Ffm::all().len()
        );
    }

    #[test]
    fn every_primitive_is_static() {
        for fp in Ffm::all_fault_primitives() {
            assert!(fp.is_static(), "{fp} must be static");
            assert!(fp.operation_count() <= 1);
        }
    }

    #[test]
    fn read_families_are_detected_by_sensitization() {
        for ffm in [Ffm::ReadDestructiveFault, Ffm::IncorrectReadFault] {
            for fp in ffm.fault_primitives() {
                assert!(fp.is_detected_by_sensitization(), "{fp}");
            }
        }
        for ffm in [Ffm::DeceptiveReadDestructiveFault, Ffm::TransitionFault] {
            for fp in ffm.fault_primitives() {
                assert!(!fp.is_detected_by_sensitization(), "{fp}");
            }
        }
    }

    #[test]
    fn disturb_coupling_sensitized_on_aggressor() {
        for fp in Ffm::DisturbCoupling.fault_primitives() {
            assert_eq!(fp.sensitizing_site(), SensitizingSite::Aggressor);
            assert!(fp.corrupts_victim());
        }
        for fp in Ffm::TransitionCoupling.fault_primitives() {
            assert_eq!(fp.sensitizing_site(), SensitizingSite::Victim);
        }
        for fp in Ffm::StateCoupling.fault_primitives() {
            assert_eq!(fp.sensitizing_site(), SensitizingSite::None);
        }
    }

    #[test]
    fn notation_examples_from_the_paper() {
        // FP1 of the paper's running example: <0w1; 0 / 1 / ->.
        let cfds = Ffm::DisturbCoupling.fault_primitives();
        assert!(cfds.iter().any(|fp| fp.notation() == "<0w1;0/1/->"));
        // The transition fault pair.
        let tf = Ffm::TransitionFault.fault_primitives();
        assert!(tf.iter().any(|fp| fp.notation() == "<0w1/0/->"));
        assert!(tf.iter().any(|fp| fp.notation() == "<1w0/1/->"));
    }

    #[test]
    fn display_and_parse() {
        for ffm in Ffm::all() {
            let text = ffm.to_string();
            assert_eq!(text.parse::<Ffm>().unwrap(), *ffm);
        }
        assert!("XYZ".parse::<Ffm>().is_err());
        assert_eq!("cfds".parse::<Ffm>().unwrap(), Ffm::DisturbCoupling);
    }

    #[test]
    fn all_primitives_are_distinct() {
        let all = Ffm::all_fault_primitives();
        for (i, a) in all.iter().enumerate() {
            for b in all.iter().skip(i + 1) {
                assert_ne!(a, b, "duplicate primitive {a}");
            }
        }
    }
}
