//! Memory operations: the input alphabet of the memory model.

use std::fmt;
use std::str::FromStr;

use crate::{Bit, FaultModelError};

/// A single memory operation applied to one cell.
///
/// This is the set `X` of Definition 2 of the paper:
///
/// * `w0` / `w1` — write the given value;
/// * `r`, `r0`, `r1` — read the cell, optionally annotated with the value expected
///   on a fault-free memory;
/// * `t` — wait for a defined period of time (used for data-retention faults).
///
/// # Examples
///
/// ```
/// use sram_fault_model::{Bit, Operation};
///
/// let w1: Operation = "w1".parse()?;
/// assert_eq!(w1, Operation::Write(Bit::One));
/// assert_eq!(Operation::Read(Some(Bit::Zero)).to_string(), "r0");
/// assert!(Operation::Wait.is_wait());
/// # Ok::<(), sram_fault_model::FaultModelError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Operation {
    /// Write the carried value into the cell.
    Write(Bit),
    /// Read the cell; `Some(bit)` records the value expected on a fault-free memory.
    Read(Option<Bit>),
    /// Wait for a defined period of time (`t` in the paper's notation).
    Wait,
}

impl Operation {
    /// Shorthand for `Operation::Write(Bit::Zero)`.
    pub const W0: Operation = Operation::Write(Bit::Zero);
    /// Shorthand for `Operation::Write(Bit::One)`.
    pub const W1: Operation = Operation::Write(Bit::One);
    /// Shorthand for `Operation::Read(Some(Bit::Zero))`.
    pub const R0: Operation = Operation::Read(Some(Bit::Zero));
    /// Shorthand for `Operation::Read(Some(Bit::One))`.
    pub const R1: Operation = Operation::Read(Some(Bit::One));

    /// Returns `true` for read operations.
    #[must_use]
    pub const fn is_read(self) -> bool {
        matches!(self, Operation::Read(_))
    }

    /// Returns `true` for write operations.
    #[must_use]
    pub const fn is_write(self) -> bool {
        matches!(self, Operation::Write(_))
    }

    /// Returns `true` for the wait operation.
    #[must_use]
    pub const fn is_wait(self) -> bool {
        matches!(self, Operation::Wait)
    }

    /// The value written by a write operation, if any.
    #[must_use]
    pub const fn written_value(self) -> Option<Bit> {
        match self {
            Operation::Write(bit) => Some(bit),
            _ => None,
        }
    }

    /// The value a read operation expects on a fault-free memory, if annotated.
    #[must_use]
    pub const fn expected_value(self) -> Option<Bit> {
        match self {
            Operation::Read(expected) => expected,
            _ => None,
        }
    }

    /// The value stored in the cell *after* the operation, given the value `before`.
    ///
    /// Writes store their payload, reads and waits leave the cell unchanged.
    #[must_use]
    pub const fn fault_free_result(self, before: Bit) -> Bit {
        match self {
            Operation::Write(bit) => bit,
            Operation::Read(_) | Operation::Wait => before,
        }
    }

    /// Returns `true` if `self` (an operation required by a fault-primitive
    /// condition) is matched by an `applied` operation.
    ///
    /// A required read matches any applied read regardless of the expectation
    /// annotation; writes must carry the same value; waits match waits.
    #[must_use]
    pub const fn matches(self, applied: Operation) -> bool {
        match (self, applied) {
            (Operation::Write(a), Operation::Write(b)) => a.as_u8() == b.as_u8(),
            (Operation::Read(_), Operation::Read(_)) => true,
            (Operation::Wait, Operation::Wait) => true,
            _ => false,
        }
    }
}

impl fmt::Display for Operation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operation::Write(bit) => write!(f, "w{bit}"),
            Operation::Read(Some(bit)) => write!(f, "r{bit}"),
            Operation::Read(None) => write!(f, "r"),
            Operation::Wait => write!(f, "t"),
        }
    }
}

impl FromStr for Operation {
    type Err = FaultModelError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let trimmed = s.trim();
        match trimmed {
            "w0" | "W0" => Ok(Operation::W0),
            "w1" | "W1" => Ok(Operation::W1),
            "r0" | "R0" => Ok(Operation::R0),
            "r1" | "R1" => Ok(Operation::R1),
            "r" | "R" => Ok(Operation::Read(None)),
            "t" | "T" | "del" | "Del" => Ok(Operation::Wait),
            other => Err(FaultModelError::ParseOperation(other.to_string())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification() {
        assert!(Operation::R0.is_read());
        assert!(!Operation::R0.is_write());
        assert!(Operation::W1.is_write());
        assert!(Operation::Wait.is_wait());
        assert_eq!(Operation::W1.written_value(), Some(Bit::One));
        assert_eq!(Operation::R1.expected_value(), Some(Bit::One));
        assert_eq!(Operation::Read(None).expected_value(), None);
        assert_eq!(Operation::W0.expected_value(), None);
    }

    #[test]
    fn fault_free_semantics() {
        assert_eq!(Operation::W1.fault_free_result(Bit::Zero), Bit::One);
        assert_eq!(Operation::W0.fault_free_result(Bit::One), Bit::Zero);
        assert_eq!(Operation::R0.fault_free_result(Bit::One), Bit::One);
        assert_eq!(Operation::Wait.fault_free_result(Bit::Zero), Bit::Zero);
    }

    #[test]
    fn condition_matching() {
        assert!(Operation::Read(None).matches(Operation::R0));
        assert!(Operation::R0.matches(Operation::Read(None)));
        assert!(Operation::R0.matches(Operation::R1));
        assert!(Operation::W0.matches(Operation::W0));
        assert!(!Operation::W0.matches(Operation::W1));
        assert!(!Operation::W0.matches(Operation::R0));
        assert!(Operation::Wait.matches(Operation::Wait));
        assert!(!Operation::Wait.matches(Operation::R0));
    }

    #[test]
    fn display_round_trip() {
        for op in [
            Operation::W0,
            Operation::W1,
            Operation::R0,
            Operation::R1,
            Operation::Read(None),
            Operation::Wait,
        ] {
            let text = op.to_string();
            assert_eq!(
                text.parse::<Operation>().unwrap(),
                op,
                "round trip of {text}"
            );
        }
        assert!("w2".parse::<Operation>().is_err());
        assert!("".parse::<Operation>().is_err());
    }
}
