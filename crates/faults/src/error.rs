//! Error type shared by the fault-model crate.

use std::error::Error;
use std::fmt;

/// Errors produced while constructing or parsing fault-model entities.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum FaultModelError {
    /// A string could not be parsed as a [`crate::Bit`].
    ParseBit(String),
    /// A string could not be parsed as a [`crate::CellValue`].
    ParseCellValue(String),
    /// A string could not be parsed as a [`crate::Operation`].
    ParseOperation(String),
    /// A string could not be parsed as a [`crate::Condition`].
    ParseCondition(String),
    /// A string could not be parsed as a [`crate::MemoryState`].
    ParseMemoryState(String),
    /// A fault primitive was declared static but carries more than one operation.
    NotStatic {
        /// Total number of sensitizing operations found.
        operations: usize,
    },
    /// A coupling fault primitive is missing its aggressor condition.
    MissingAggressor,
    /// A single-cell fault primitive unexpectedly carries an aggressor condition.
    UnexpectedAggressor,
    /// The fault value `F` of a primitive is unconstrained where a concrete value is
    /// required.
    UnknownFaultValue,
    /// A fault primitive declares a read output (`R`) but its sensitizing operation
    /// is not a read.
    ReadOutputWithoutRead,
    /// Two fault primitives do not satisfy the linked-fault masking condition
    /// `F2 = not(F1)`.
    MaskMismatch,
    /// The second fault primitive of a linked fault cannot be sensitized in the state
    /// left behind by the first one.
    StateIncompatible,
    /// The topology requested for a linked fault does not match the cell counts of
    /// its component fault primitives.
    InvalidTopology(String),
    /// A cell address is outside the memory used to instantiate an addressed fault
    /// primitive.
    AddressOutOfRange {
        /// The offending address.
        address: usize,
        /// The number of cells of the memory.
        cells: usize,
    },
    /// The aggressor and victim addresses of a coupling fault coincide.
    AggressorEqualsVictim {
        /// The shared address.
        address: usize,
    },
    /// Two addressed fault primitives cannot be linked (Definition 7 violated).
    AfpLinkViolation(String),
    /// A fault list builder was asked for an empty list.
    EmptyFaultList,
}

impl fmt::Display for FaultModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultModelError::ParseBit(text) => write!(f, "invalid bit value `{text}`"),
            FaultModelError::ParseCellValue(text) => {
                write!(f, "invalid cell value `{text}`")
            }
            FaultModelError::ParseOperation(text) => {
                write!(f, "invalid memory operation `{text}`")
            }
            FaultModelError::ParseCondition(text) => {
                write!(f, "invalid sensitizing condition `{text}`")
            }
            FaultModelError::ParseMemoryState(text) => {
                write!(f, "invalid memory state `{text}`")
            }
            FaultModelError::NotStatic { operations } => write!(
                f,
                "static fault primitives allow at most one sensitizing operation, found {operations}"
            ),
            FaultModelError::MissingAggressor => {
                write!(f, "coupling fault primitive requires an aggressor condition")
            }
            FaultModelError::UnexpectedAggressor => {
                write!(f, "single-cell fault primitive cannot carry an aggressor condition")
            }
            FaultModelError::UnknownFaultValue => {
                write!(f, "fault value F must be a concrete bit")
            }
            FaultModelError::ReadOutputWithoutRead => {
                write!(f, "read output R requires a sensitizing read operation")
            }
            FaultModelError::MaskMismatch => {
                write!(f, "linked fault requires F2 = not(F1)")
            }
            FaultModelError::StateIncompatible => write!(
                f,
                "second fault primitive cannot be sensitized in the state left by the first"
            ),
            FaultModelError::InvalidTopology(reason) => {
                write!(f, "invalid linked-fault topology: {reason}")
            }
            FaultModelError::AddressOutOfRange { address, cells } => {
                write!(f, "cell address {address} out of range for a {cells}-cell memory")
            }
            FaultModelError::AggressorEqualsVictim { address } => {
                write!(f, "aggressor and victim share the same address {address}")
            }
            FaultModelError::AfpLinkViolation(reason) => {
                write!(f, "addressed fault primitives cannot be linked: {reason}")
            }
            FaultModelError::EmptyFaultList => write!(f, "fault list is empty"),
        }
    }
}

impl Error for FaultModelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_non_empty() {
        let samples = [
            FaultModelError::ParseBit("x".into()),
            FaultModelError::NotStatic { operations: 3 },
            FaultModelError::MaskMismatch,
            FaultModelError::AddressOutOfRange {
                address: 9,
                cells: 4,
            },
        ];
        for err in samples {
            let text = err.to_string();
            assert!(!text.is_empty());
            assert!(text.chars().next().unwrap().is_lowercase());
        }
    }

    #[test]
    fn implements_std_error() {
        fn assert_error<E: Error + Send + Sync + 'static>() {}
        assert_error::<FaultModelError>();
    }
}
