//! Sensitizing conditions applied to a single cell.

use std::fmt;

use crate::{Bit, CellValue, FaultModelError, Operation};

/// The sensitizing condition a fault primitive places on one of its cells.
///
/// In the `<S / F / R>` notation a condition is an initial state optionally followed
/// by (for *static* faults, at most) one operation: `0`, `1`, `-`, `0w1`, `1r1`, …
/// This type captures exactly that: an [`initial`](Condition::initial) cell value and
/// an optional [`operation`](Condition::operation) applied to the same cell.
///
/// # Examples
///
/// ```
/// use sram_fault_model::{Bit, CellValue, Condition, Operation};
///
/// // "0w1": the cell holds 0 and a w1 is applied to it.
/// let c = Condition::with_operation(CellValue::Zero, Operation::W1);
/// assert_eq!(c.to_string(), "0w1");
/// assert!(c.operation().is_some());
///
/// // "1": the cell merely holds 1 (a pure state condition).
/// let s = Condition::state(CellValue::One);
/// assert!(s.operation().is_none());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Condition {
    initial: CellValue,
    operation: Option<Operation>,
}

impl Condition {
    /// A pure state condition: the cell holds `initial`, no operation is applied.
    #[must_use]
    pub const fn state(initial: CellValue) -> Condition {
        Condition {
            initial,
            operation: None,
        }
    }

    /// A condition consisting of an initial state and one operation on the cell.
    #[must_use]
    pub const fn with_operation(initial: CellValue, operation: Operation) -> Condition {
        Condition {
            initial,
            operation: Some(operation),
        }
    }

    /// An unconstrained condition (`-`, no operation).
    #[must_use]
    pub const fn dont_care() -> Condition {
        Condition::state(CellValue::DontCare)
    }

    /// The required initial value of the cell.
    #[must_use]
    pub const fn initial(&self) -> CellValue {
        self.initial
    }

    /// The operation applied to the cell, if the condition contains one.
    #[must_use]
    pub const fn operation(&self) -> Option<Operation> {
        self.operation
    }

    /// Number of operations in the condition (`0` or `1` for static faults).
    #[must_use]
    pub const fn operation_count(&self) -> usize {
        if self.operation.is_some() {
            1
        } else {
            0
        }
    }

    /// The value stored in the cell after the condition has been applied on a
    /// fault-free memory, if it can be determined.
    ///
    /// For a pure state condition this is the initial value itself; for a condition
    /// with a write it is the written value; for a read or wait it is the initial
    /// value.
    #[must_use]
    pub fn fault_free_final(&self) -> CellValue {
        match self.operation {
            Some(Operation::Write(bit)) => CellValue::from(bit),
            Some(Operation::Read(_)) | Some(Operation::Wait) | None => self.initial,
        }
    }

    /// Returns `true` if a cell currently holding `bit` satisfies the initial-state
    /// part of the condition.
    #[must_use]
    pub fn accepts_state(&self, bit: Bit) -> bool {
        self.initial.matches(bit)
    }

    /// Returns `true` if `applied` (an operation performed on this cell) matches the
    /// operation required by the condition. Pure state conditions match no operation.
    #[must_use]
    pub fn accepts_operation(&self, applied: Operation) -> bool {
        self.operation
            .is_some_and(|required| required.matches(applied))
    }

    /// Parses the textual `<S>` form: `-`, `0`, `1`, `0w1`, `1r1`, `0r0`, `1t`…
    ///
    /// # Errors
    ///
    /// Returns [`FaultModelError::ParseCondition`] when the string is not a valid
    /// single-cell static condition.
    pub fn parse(text: &str) -> Result<Condition, FaultModelError> {
        let trimmed = text.trim();
        if trimmed.is_empty() {
            return Err(FaultModelError::ParseCondition(text.to_string()));
        }
        let mut chars = trimmed.chars();
        let first = chars.next().expect("non-empty after trim");
        let initial = CellValue::from_char(first)
            .map_err(|_| FaultModelError::ParseCondition(text.to_string()))?;
        let rest: String = chars.collect();
        if rest.is_empty() {
            return Ok(Condition::state(initial));
        }
        let operation = rest
            .parse::<Operation>()
            .map_err(|_| FaultModelError::ParseCondition(text.to_string()))?;
        Ok(Condition::with_operation(initial, operation))
    }
}

impl Default for Condition {
    fn default() -> Self {
        Condition::dont_care()
    }
}

impl fmt::Display for Condition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.initial)?;
        if let Some(op) = self.operation {
            write!(f, "{op}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_free_final_state() {
        let write = Condition::with_operation(CellValue::Zero, Operation::W1);
        assert_eq!(write.fault_free_final(), CellValue::One);
        let read = Condition::with_operation(CellValue::One, Operation::R1);
        assert_eq!(read.fault_free_final(), CellValue::One);
        let state = Condition::state(CellValue::Zero);
        assert_eq!(state.fault_free_final(), CellValue::Zero);
        let wait = Condition::with_operation(CellValue::One, Operation::Wait);
        assert_eq!(wait.fault_free_final(), CellValue::One);
    }

    #[test]
    fn acceptance() {
        let c = Condition::with_operation(CellValue::Zero, Operation::W1);
        assert!(c.accepts_state(Bit::Zero));
        assert!(!c.accepts_state(Bit::One));
        assert!(c.accepts_operation(Operation::W1));
        assert!(!c.accepts_operation(Operation::W0));
        let s = Condition::state(CellValue::One);
        assert!(!s.accepts_operation(Operation::R1));
        assert_eq!(s.operation_count(), 0);
        assert_eq!(c.operation_count(), 1);
    }

    #[test]
    fn parse_and_display_round_trip() {
        for text in ["0w1", "1w0", "0r0", "1r1", "0", "1", "-", "1t", "0r"] {
            let parsed = Condition::parse(text).unwrap();
            assert_eq!(parsed.to_string(), text, "round trip of {text}");
        }
        assert!(Condition::parse("").is_err());
        assert!(Condition::parse("w1").is_err());
        assert!(Condition::parse("0w2").is_err());
    }

    #[test]
    fn default_is_dont_care() {
        assert_eq!(Condition::default(), Condition::dont_care());
        assert_eq!(Condition::default().to_string(), "-");
    }
}
