//! Workspace-internal stand-in for the [`criterion`](https://docs.rs/criterion)
//! benchmark harness, implementing the subset of its API this workspace's
//! benches use with **zero external dependencies** so `cargo bench` works in
//! fully offline environments.
//!
//! Each benchmark is timed with a calibrated wall-clock loop: a warm-up pass
//! estimates the per-iteration cost, then the measurement pass runs enough
//! iterations to fill a short window (bounded by the group's `sample_size`).
//! Results are printed in a `group/benchmark  time: [..]` format loosely
//! matching criterion's, and — when the `CRITERION_JSON` environment variable
//! names a file — also appended to that file as JSON lines, which is how the
//! workspace tracks its performance trajectory across PRs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Target wall-clock time spent measuring one benchmark.
const MEASUREMENT_WINDOW: Duration = Duration::from_millis(200);

/// One recorded benchmark measurement.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// `group/benchmark` identifier.
    pub id: String,
    /// Mean wall-clock nanoseconds per iteration.
    pub mean_ns: f64,
    /// Number of measured iterations.
    pub iterations: u64,
}

/// The top-level benchmark driver handed to `criterion_group!` functions.
#[derive(Debug, Default)]
pub struct Criterion {
    measurements: Vec<Measurement>,
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 100,
            measurement_time: MEASUREMENT_WINDOW,
        }
    }

    /// All measurements recorded so far.
    #[must_use]
    pub fn measurements(&self) -> &[Measurement] {
        &self.measurements
    }

    /// Prints the summary line and, when `CRITERION_JSON` is set, appends the
    /// measurements to that file as JSON lines.
    pub fn final_summary(&self) {
        if let Ok(path) = std::env::var("CRITERION_JSON") {
            let mut lines = String::new();
            for m in &self.measurements {
                lines.push_str(&format!(
                    "{{\"id\":\"{}\",\"mean_ns\":{:.1},\"iterations\":{}}}\n",
                    m.id, m.mean_ns, m.iterations
                ));
            }
            if let Err(error) = std::fs::write(&path, lines) {
                eprintln!("criterion shim: could not write {path}: {error}");
            }
        }
        println!("\n{} benchmarks measured", self.measurements.len());
    }
}

/// A named benchmark group created by [`Criterion::benchmark_group`].
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    measurement_time: Duration,
}

impl BenchmarkGroup<'_> {
    /// Caps the number of measured iterations (compatibility knob; the shim
    /// uses it as an upper bound on the measurement loop).
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.sample_size = samples.max(1);
        self
    }

    /// Sets the measurement window for each benchmark of the group.
    pub fn measurement_time(&mut self, window: Duration) -> &mut Self {
        self.measurement_time = window;
        self
    }

    /// Runs one benchmark closure.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run(&id.to_string(), |bencher| routine(bencher));
        self
    }

    /// Runs one benchmark closure parameterised by `input`.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut routine: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run(&id.to_string(), |bencher| routine(bencher, input));
        self
    }

    fn run(&mut self, id: &str, mut routine: impl FnMut(&mut Bencher)) {
        let mut bencher = Bencher {
            measurement_time: self.measurement_time,
            max_batches: self.sample_size,
            total: Duration::ZERO,
            iterations: 0,
        };
        routine(&mut bencher);
        let mean_ns = if bencher.iterations == 0 {
            0.0
        } else {
            bencher.total.as_nanos() as f64 / bencher.iterations as f64
        };
        let full_id = format!("{}/{id}", self.name);
        println!(
            "{full_id:<56} time: [{:>12} /iter] ({} iterations)",
            format_ns(mean_ns),
            bencher.iterations
        );
        self.criterion.measurements.push(Measurement {
            id: full_id,
            mean_ns,
            iterations: bencher.iterations,
        });
    }

    /// Ends the group (kept for API compatibility).
    pub fn finish(self) {}
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// The per-benchmark timing handle passed to benchmark closures.
#[derive(Debug)]
pub struct Bencher {
    measurement_time: Duration,
    max_batches: usize,
    total: Duration,
    iterations: u64,
}

impl Bencher {
    /// Times `routine`, running it repeatedly until the measurement window (or
    /// the batch cap) is exhausted.
    pub fn iter<O, F>(&mut self, mut routine: F)
    where
        F: FnMut() -> O,
    {
        // Warm-up and calibration: run once to estimate the iteration cost.
        let start = Instant::now();
        black_box(routine());
        let first = start.elapsed().max(Duration::from_nanos(50));

        let budget = self.measurement_time;
        let batches = self.max_batches as u64;
        let per_batch = (budget.as_nanos() / (first.as_nanos().max(1) * u128::from(batches)))
            .clamp(1, 1_000_000) as u64;

        let mut total = Duration::ZERO;
        let mut iterations = 0u64;
        for _ in 0..batches {
            let start = Instant::now();
            for _ in 0..per_batch {
                black_box(routine());
            }
            total += start.elapsed();
            iterations += per_batch;
            if total >= budget {
                break;
            }
        }
        self.total = total;
        self.iterations = iterations;
    }
}

/// Identifier for a parameterised benchmark, e.g. `name/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
    parameter: String,
}

impl BenchmarkId {
    /// Builds `name/parameter`.
    #[must_use]
    pub fn new(name: impl Into<String>, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            name: name.into(),
            parameter: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.name, self.parameter)
    }
}

/// Bundles benchmark functions into a single runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($function:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($function(&mut criterion);)+
            criterion.final_summary();
        }
    };
}

/// Generates the `main` function running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(criterion: &mut Criterion) {
        let mut group = criterion.benchmark_group("shim");
        group.sample_size(3);
        group.measurement_time(Duration::from_millis(5));
        group.bench_function("sum", |bencher| bencher.iter(|| (0..100u64).sum::<u64>()));
        group.bench_with_input(BenchmarkId::new("sum_to", 50u64), &50u64, |bencher, &n| {
            bencher.iter(|| (0..n).sum::<u64>())
        });
        group.finish();
    }

    #[test]
    fn measurements_are_recorded() {
        let mut criterion = Criterion::default();
        sample_bench(&mut criterion);
        assert_eq!(criterion.measurements().len(), 2);
        assert_eq!(criterion.measurements()[0].id, "shim/sum");
        assert_eq!(criterion.measurements()[1].id, "shim/sum_to/50");
        assert!(criterion.measurements().iter().all(|m| m.iterations > 0));
        assert!(criterion.measurements().iter().all(|m| m.mean_ns > 0.0));
    }

    #[test]
    fn benchmark_id_formats_like_criterion() {
        assert_eq!(BenchmarkId::new("march_ss", 64).to_string(), "march_ss/64");
        assert!(!format_ns(1.5e9).is_empty());
        assert!(format_ns(2.0e6).contains("ms"));
        assert!(format_ns(3.0e3).contains("µs"));
        assert!(format_ns(10.0).contains("ns"));
    }
}
