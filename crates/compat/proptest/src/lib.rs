//! Workspace-internal stand-in for the [`proptest`](https://docs.rs/proptest)
//! crate, implementing the (small) subset of its API this workspace's
//! property-based tests use — with **zero external dependencies**, so the
//! workspace builds in fully offline environments.
//!
//! Supported surface:
//!
//! * the [`proptest!`] macro with an optional `#![proptest_config(..)]` header;
//! * [`prop_assert!`], [`prop_assert_eq!`], [`prop_assert_ne!`], [`prop_assume!`];
//! * [`prop_oneof!`], [`strategy::Just`], [`arbitrary::any`], integer-range
//!   strategies, tuple strategies, [`collection::vec`] and [`sample::select`];
//! * [`strategy::Strategy::prop_map`] and [`strategy::Strategy::boxed`].
//!
//! Unlike real proptest there is **no shrinking**: a failing case panics with
//! the case index and the failure message. Generation is deterministic — the
//! RNG is seeded from the test name — so failures are reproducible across runs.

#![forbid(unsafe_code)]

/// Deterministic pseudo-random number generation (splitmix64).
pub mod rng {
    /// A small deterministic RNG handed to strategies.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Creates an RNG from a 64-bit seed.
        #[must_use]
        pub fn new(seed: u64) -> TestRng {
            TestRng {
                state: seed ^ 0x9E37_79B9_7F4A_7C15,
            }
        }

        /// Next raw 64-bit value (splitmix64).
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform value in `0..bound` (`0` when `bound == 0`).
        pub fn below(&mut self, bound: u64) -> u64 {
            if bound == 0 {
                0
            } else {
                self.next_u64() % bound
            }
        }

        /// Uniform boolean.
        pub fn bool(&mut self) -> bool {
            self.next_u64() & 1 == 1
        }
    }
}

/// The [`Strategy`](strategy::Strategy) trait and combinators.
pub mod strategy {
    use std::ops::Range;
    use std::rc::Rc;

    use crate::rng::TestRng;

    /// A generator of values of type [`Strategy::Value`].
    pub trait Strategy {
        /// The type of values produced.
        type Value;

        /// Generates one value.
        fn new_value(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `map`.
        fn prop_map<O, F>(self, map: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, map }
        }

        /// Erases the concrete strategy type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Rc::new(move |rng: &mut TestRng| self.new_value(rng)))
        }
    }

    /// A type-erased, clonable strategy.
    #[derive(Clone)]
    pub struct BoxedStrategy<T>(Rc<dyn Fn(&mut TestRng) -> T>);

    impl<T> std::fmt::Debug for BoxedStrategy<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("BoxedStrategy")
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;

        fn new_value(&self, rng: &mut TestRng) -> T {
            (self.0)(rng)
        }
    }

    /// The result of [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        map: F,
    }

    impl<S, F, O> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn new_value(&self, rng: &mut TestRng) -> O {
            (self.map)(self.inner.new_value(rng))
        }
    }

    /// A strategy that always yields a clone of the same value.
    #[derive(Debug, Clone)]
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn new_value(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// A uniform choice between boxed strategies — the engine behind
    /// [`prop_oneof!`](crate::prop_oneof).
    #[derive(Debug, Clone)]
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Builds a union over `options` (must be non-empty).
        #[must_use]
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Union<T> {
            assert!(!options.is_empty(), "prop_oneof! needs at least one option");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn new_value(&self, rng: &mut TestRng) -> T {
            let index = rng.below(self.options.len() as u64) as usize;
            self.options[index].new_value(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($ty:ty),*) => {$(
            impl Strategy for Range<$ty> {
                type Value = $ty;

                fn new_value(&self, rng: &mut TestRng) -> $ty {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end - self.start) as u64;
                    self.start + rng.below(span) as $ty
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize);

    macro_rules! signed_range_strategy {
        ($($ty:ty),*) => {$(
            impl Strategy for Range<$ty> {
                type Value = $ty;

                fn new_value(&self, rng: &mut TestRng) -> $ty {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = self.end.wrapping_sub(self.start) as u64;
                    self.start.wrapping_add(rng.below(span) as $ty)
                }
            }
        )*};
    }

    signed_range_strategy!(i8, i16, i32, i64, isize);

    /// String-pattern strategies: a `&str` is interpreted as a (tiny) regex
    /// subset — sequences of literal characters and character classes `[...]`,
    /// each optionally followed by a `{m}` or `{m,n}` repetition — mirroring
    /// proptest's regex string strategies for the patterns used in this
    /// workspace.
    impl Strategy for &str {
        type Value = String;

        fn new_value(&self, rng: &mut TestRng) -> String {
            let mut output = String::new();
            let mut chars = self.chars().peekable();
            while let Some(c) = chars.next() {
                let class: Vec<char> = if c == '[' {
                    let mut class = Vec::new();
                    for inner in chars.by_ref() {
                        if inner == ']' {
                            break;
                        }
                        class.push(inner);
                    }
                    assert!(!class.is_empty(), "empty character class in pattern {self}");
                    class
                } else {
                    vec![c]
                };
                let (min, max) = if chars.peek() == Some(&'{') {
                    chars.next();
                    let mut spec = String::new();
                    for inner in chars.by_ref() {
                        if inner == '}' {
                            break;
                        }
                        spec.push(inner);
                    }
                    match spec.split_once(',') {
                        Some((low, high)) => (
                            low.parse::<usize>().expect("numeric repetition bound"),
                            high.parse::<usize>().expect("numeric repetition bound"),
                        ),
                        None => {
                            let exact = spec.parse::<usize>().expect("numeric repetition");
                            (exact, exact)
                        }
                    }
                } else {
                    (1, 1)
                };
                let count = min + rng.below((max - min + 1) as u64) as usize;
                for _ in 0..count {
                    let index = rng.below(class.len() as u64) as usize;
                    output.push(class[index]);
                }
            }
            output
        }
    }

    macro_rules! tuple_strategy {
        ($(($($name:ident),+))*) => {$(
            #[allow(non_snake_case)]
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.new_value(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
        (A, B, C, D, E, F)
    }
}

/// `any::<T>()` support for primitive types.
pub mod arbitrary {
    use crate::rng::TestRng;
    use crate::strategy::Strategy;

    /// Types with a canonical "generate anything" strategy.
    pub trait Arbitrary: Sized {
        /// Generates an arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.bool()
        }
    }

    macro_rules! int_arbitrary {
        ($($ty:ty),*) => {$(
            impl Arbitrary for $ty {
                #[allow(clippy::cast_possible_truncation)]
                fn arbitrary(rng: &mut TestRng) -> $ty {
                    rng.next_u64() as $ty
                }
            }
        )*};
    }

    int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// The strategy returned by [`any`].
    #[derive(Debug, Clone)]
    pub struct Any<T> {
        marker: std::marker::PhantomData<T>,
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn new_value(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// A strategy producing arbitrary values of `T`.
    #[must_use]
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any {
            marker: std::marker::PhantomData,
        }
    }
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use std::ops::Range;

    use crate::rng::TestRng;
    use crate::strategy::Strategy;

    /// A size specification for generated collections: an exact length or a
    /// half-open range of lengths.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(exact: usize) -> SizeRange {
            SizeRange {
                min: exact,
                max_exclusive: exact + 1,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(range: Range<usize>) -> SizeRange {
            assert!(range.start < range.end, "empty collection size range");
            SizeRange {
                min: range.start,
                max_exclusive: range.end,
            }
        }
    }

    /// The strategy returned by [`vec()`](fn@vec).
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max_exclusive - self.size.min) as u64;
            let len = self.size.min + rng.below(span) as usize;
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }

    /// A strategy for vectors whose elements come from `element` and whose
    /// length is drawn from `size`.
    #[must_use]
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// Sampling strategies (`prop::sample::select`).
pub mod sample {
    use crate::rng::TestRng;
    use crate::strategy::Strategy;

    /// The strategy returned by [`select`].
    #[derive(Debug, Clone)]
    pub struct Select<T> {
        options: Vec<T>,
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;

        fn new_value(&self, rng: &mut TestRng) -> T {
            let index = rng.below(self.options.len() as u64) as usize;
            self.options[index].clone()
        }
    }

    /// A strategy choosing uniformly among `options` (must be non-empty).
    #[must_use]
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select needs at least one option");
        Select { options }
    }
}

/// Configuration and the case-execution loop.
pub mod test_runner {
    use crate::rng::TestRng;

    /// Run-time configuration of a `proptest!` block.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of successful cases required per test.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    impl ProptestConfig {
        /// A configuration running `cases` cases.
        #[must_use]
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    /// Why a single test case did not succeed.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// The case's assumptions were not met; it is skipped, not failed.
        Reject,
        /// The case failed with the given message.
        Fail(String),
    }

    /// Outcome of one generated test case.
    pub type TestCaseResult = Result<(), TestCaseError>;

    fn seed_from_name(name: &str) -> u64 {
        // FNV-1a, good enough to decorrelate per-test streams.
        let mut hash = 0xCBF2_9CE4_8422_2325u64;
        for byte in name.bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        hash
    }

    /// Drives one `proptest!`-generated test: runs cases until `config.cases`
    /// of them succeed, panicking on the first failure.
    pub fn run_proptest<F>(config: &ProptestConfig, name: &str, mut case: F)
    where
        F: FnMut(&mut TestRng) -> TestCaseResult,
    {
        let mut rng = TestRng::new(seed_from_name(name));
        let mut passed = 0u32;
        let mut rejected = 0u32;
        let reject_limit = config.cases.saturating_mul(16).saturating_add(1024);
        while passed < config.cases {
            match case(&mut rng) {
                Ok(()) => passed += 1,
                Err(TestCaseError::Reject) => {
                    rejected += 1;
                    assert!(
                        rejected <= reject_limit,
                        "proptest `{name}`: too many rejected cases ({rejected}) — \
                         assumptions are unsatisfiable"
                    );
                }
                Err(TestCaseError::Fail(message)) => {
                    panic!("proptest `{name}` failed after {passed} passing cases: {message}")
                }
            }
        }
    }
}

/// The customary glob import, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };

    /// Mirrors the `prop` module alias of the real prelude.
    pub mod prop {
        pub use crate::collection;
        pub use crate::sample;
    }
}

/// Defines property-based tests: each `fn name(pattern in strategy, ..) { body }`
/// becomes a `#[test]` running `body` over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($config) $($rest)*);
    };
    (@impl ($config:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),* $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config = $config;
            $crate::test_runner::run_proptest(&config, stringify!($name), |rng| {
                $(let $arg = $crate::strategy::Strategy::new_value(&($strategy), rng);)*
                (move || -> $crate::test_runner::TestCaseResult {
                    $body
                    Ok(())
                })()
            });
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@impl ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

/// Fails the current test case unless `condition` holds.
#[macro_export]
macro_rules! prop_assert {
    ($condition:expr) => {
        $crate::prop_assert!($condition, "assertion failed: {}", stringify!($condition))
    };
    ($condition:expr, $($format:tt)*) => {
        if !$condition {
            return Err($crate::test_runner::TestCaseError::Fail(format!($($format)*)));
        }
    };
}

/// Fails the current test case unless the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($format:tt)+) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{} == {}`: {}\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            format!($($format)+),
            left,
            right
        );
    }};
}

/// Fails the current test case if the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left != right,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            left
        );
    }};
}

/// Skips the current test case (without failing) unless `condition` holds.
#[macro_export]
macro_rules! prop_assume {
    ($condition:expr) => {
        if !$condition {
            return Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

/// A uniform choice among several strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(value in 3usize..17) {
            prop_assert!((3..17).contains(&value));
        }

        #[test]
        fn vec_lengths_respect_the_size_range(
            values in prop::collection::vec(0u8..10, 2..6),
        ) {
            prop_assert!(values.len() >= 2 && values.len() < 6);
            prop_assert!(values.iter().all(|v| *v < 10));
        }

        #[test]
        fn oneof_select_map_and_assume(
            choice in prop_oneof![Just(1usize), Just(2usize)],
            picked in prop::sample::select(vec!["a", "b", "c"]),
            doubled in (0usize..8).prop_map(|v| v * 2),
            flag in any::<bool>(),
        ) {
            prop_assume!(choice != 0);
            prop_assert!(choice == 1 || choice == 2);
            prop_assert!(["a", "b", "c"].contains(&picked));
            prop_assert_eq!(doubled % 2, 0);
            prop_assert_ne!(u8::from(flag), 2);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        use crate::rng::TestRng;
        use crate::strategy::Strategy;
        let strategy = (0usize..100, 0usize..100);
        let mut a = TestRng::new(42);
        let mut b = TestRng::new(42);
        for _ in 0..32 {
            assert_eq!(strategy.new_value(&mut a), strategy.new_value(&mut b));
        }
    }
}
