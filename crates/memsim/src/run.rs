//! March-test execution against a fault simulator.

use std::fmt;

use march_test::MarchTest;
use sram_fault_model::Bit;

use crate::FaultSimulator;

/// The location and values of the first detecting read of a march run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Failure {
    /// Index of the march element in which the mismatch occurred.
    pub element: usize,
    /// The cell address being read.
    pub cell: usize,
    /// Index of the operation within the element.
    pub operation: usize,
    /// The value returned by the faulty memory.
    pub observed: Bit,
    /// The value returned by the fault-free reference.
    pub expected: Bit,
}

impl fmt::Display for Failure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "element {} op {} on cell {}: read {} expected {}",
            self.element, self.operation, self.cell, self.observed, self.expected
        )
    }
}

/// The result of executing one march test against a configured fault simulator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MarchRun {
    detected: bool,
    failures: Vec<Failure>,
    operations: usize,
}

impl MarchRun {
    /// Returns `true` if at least one read detected a mismatch.
    #[must_use]
    pub fn detected(&self) -> bool {
        self.detected
    }

    /// The first detecting read, if any.
    #[must_use]
    pub fn first_failure(&self) -> Option<Failure> {
        self.failures.first().copied()
    }

    /// Every detecting read, in execution order — the *syndrome* of the run, used
    /// for fault diagnosis.
    #[must_use]
    pub fn failures(&self) -> &[Failure] {
        &self.failures
    }

    /// Total number of memory operations executed.
    #[must_use]
    pub fn operations(&self) -> usize {
        self.operations
    }

    /// Total number of mismatching reads.
    #[must_use]
    pub fn mismatches(&self) -> usize {
        self.failures.len()
    }
}

impl fmt::Display for MarchRun {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.detected {
            write!(
                f,
                "detected ({} mismatching reads over {} operations)",
                self.failures.len(),
                self.operations
            )
        } else {
            write!(f, "not detected ({} operations)", self.operations)
        }
    }
}

/// Executes `test` on the given simulator (which should already contain the
/// injected faults and the desired initial memory content) and reports whether the
/// faults were detected.
///
/// Elements with [`march_test::AddressOrder::Any`] are executed in ascending
/// order, matching the usual implementation convention.
///
/// The simulator is left in its post-run state; callers that want to reuse it must
/// call [`FaultSimulator::reset`].
#[must_use]
pub fn run_march(test: &MarchTest, simulator: &mut FaultSimulator) -> MarchRun {
    let cells = simulator.cells();
    let mut operations = 0usize;
    let mut failures = Vec::new();

    for (element_index, element) in test.iter() {
        for cell in element.order().addresses(cells) {
            for (operation_index, operation) in element.operations().iter().enumerate() {
                let outcome = simulator.apply(cell, *operation);
                operations += 1;
                if outcome.mismatch() {
                    failures.push(Failure {
                        element: element_index,
                        cell,
                        operation: operation_index,
                        observed: outcome.observed.expect("mismatch implies a read"),
                        expected: outcome.expected.expect("mismatch implies a read"),
                    });
                }
            }
        }
    }

    MarchRun {
        detected: !failures.is_empty(),
        failures,
        operations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{InitialState, InjectedFault};
    use march_test::catalog;
    use sram_fault_model::Ffm;

    #[test]
    fn fault_free_run_detects_nothing() {
        let mut sim = FaultSimulator::new(8, &InitialState::AllOne).unwrap();
        let run = run_march(&catalog::march_ss(), &mut sim);
        assert!(!run.detected());
        assert_eq!(run.mismatches(), 0);
        assert_eq!(run.operations(), 22 * 8);
        assert!(run.first_failure().is_none());
        assert_eq!(run.to_string(), "not detected (176 operations)");
    }

    #[test]
    fn march_ss_detects_every_unlinked_transition_fault() {
        for fp in Ffm::TransitionFault.fault_primitives() {
            let mut sim = FaultSimulator::new(8, &InitialState::AllOne).unwrap();
            sim.inject(InjectedFault::single_cell(fp.clone(), 3, 8).unwrap());
            let run = run_march(&catalog::march_ss(), &mut sim);
            assert!(run.detected(), "March SS must detect {fp}");
            assert!(run.first_failure().is_some());
        }
    }

    #[test]
    fn mats_plus_misses_write_destructive_faults() {
        // MATS+ has no non-transition write, so WDF escapes it; March SS catches it.
        let wdf = Ffm::WriteDestructiveFault.fault_primitives()[0].clone();
        let mut sim = FaultSimulator::new(8, &InitialState::AllOne).unwrap();
        sim.inject(InjectedFault::single_cell(wdf.clone(), 2, 8).unwrap());
        assert!(!run_march(&catalog::mats_plus(), &mut sim).detected());

        let mut sim = FaultSimulator::new(8, &InitialState::AllOne).unwrap();
        sim.inject(InjectedFault::single_cell(wdf, 2, 8).unwrap());
        assert!(run_march(&catalog::march_ss(), &mut sim).detected());
    }

    #[test]
    fn failure_reports_the_detecting_read() {
        let tf = Ffm::TransitionFault.fault_primitives()[0].clone();
        let mut sim = FaultSimulator::new(4, &InitialState::AllZero).unwrap();
        sim.inject(InjectedFault::single_cell(tf, 1, 4).unwrap());
        let run = run_march(&catalog::march_c_minus(), &mut sim);
        assert!(run.detected());
        let failure = run.first_failure().unwrap();
        assert_eq!(failure.cell, 1);
        assert!(!failure.to_string().is_empty());
    }
}
