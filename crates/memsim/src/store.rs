//! The process-wide concurrent artifact store and the resident shared engine.
//!
//! PR 4 gave each [`Session`] a private artifact cache; this module promotes
//! that cache to a **shareable concurrent store** so many sessions — and, via
//! the CLI's `serve` front end, many concurrent clients — amortise one warm
//! cache. Keys are content fingerprints (fault-list contents × simulation
//! scope), so entries are immutable and never invalidated: the store only ever
//! grows, and a cached entry can be handed out as a shared [`Arc`] forever.
//!
//! Concurrency model:
//!
//! * the key → entry maps are **sharded** ([`STORE_SHARDS`] shards selected by
//!   key hash), so concurrent lookups on different keys contend only on a
//!   per-shard mutex held for a `HashMap` probe;
//! * each entry is a per-key slot built **exactly once**: the first requester
//!   of a key builds while holding only that key's slot lock, concurrent
//!   requesters of the *same* key block on the slot and then score a cache
//!   hit, and requesters of other keys proceed undisturbed. A failed build
//!   (for example [`MemoryTooSmall`](crate::SimulationError::MemoryTooSmall))
//!   leaves the slot empty so the typed error is re-surfaced per query
//!   instead of being cached.
//!
//! [`SharedEngine`] bundles the store with one resident [`WorkerPool`] and an
//! [`ExecPolicy`]; [`SharedEngine::session`] then stamps out cheap [`Session`]
//! handles (a handful of `Arc` bumps) that all read and populate the same
//! store and multiplex over the same pool. [`SharedEngine::global`] is the
//! process-wide instance behind `march-codex serve`.

use crate::sync::atomic::{AtomicUsize, Ordering};
use crate::sync::{Arc, Mutex, OnceLock, PoisonError};
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};

use march_test::MarchTest;
use sram_fault_model::{FaultList, FaultPrimitive};

use crate::parallel::WorkerPool;
use crate::session::{Session, TargetLanes};
use crate::snapshot::{SnapshotStats, SnapshotStore};
use crate::{ExecPolicy, FaultDictionary, InitialState, PlacementStrategy, Result};

/// How many shards the store's key → entry maps split into. Shards are
/// selected by key hash; 16 is plenty for the handful of cores one process
/// serves while keeping the empty-store footprint trivial.
const STORE_SHARDS: usize = 16;

/// The content fingerprint of a fault list: its name plus one notation string
/// per fault, kept as separate fields (not joined into one string) so a
/// crafted list name can never collide with another list's name + contents.
/// This is the shared key *prefix* of both cache families.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub(crate) struct ListFingerprint {
    pub(crate) list_name: String,
    pub(crate) list_contents: Vec<String>,
}

impl ListFingerprint {
    pub(crate) fn new(list: &FaultList) -> ListFingerprint {
        // The fingerprint covers the list *contents*, not just its name: two
        // lists that happen to share a name but differ in a primitive key
        // different cache entries.
        let list_contents = list
            .simple()
            .iter()
            .map(FaultPrimitive::notation)
            .chain(list.linked().iter().map(|fault| fault.to_string()))
            .chain(list.decoders().iter().map(|fault| fault.notation()))
            .collect();
        ListFingerprint {
            list_name: list.name().to_string(),
            list_contents,
        }
    }
}

/// The immutable key of one cached target-lane enumeration: the list
/// fingerprint crossed with the full simulation scope it was enumerated under
/// (memory size, placement strategy and every data background, all of which
/// change the enumerated lanes). Entries are never invalidated — a different
/// list or scope simply keys a different entry.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub(crate) struct ArtifactKey {
    pub(crate) fingerprint: ListFingerprint,
    pub(crate) memory_cells: usize,
    pub(crate) strategy: PlacementStrategy,
    pub(crate) backgrounds: Vec<InitialState>,
}

impl ArtifactKey {
    pub(crate) fn new(
        list: &FaultList,
        memory_cells: usize,
        strategy: PlacementStrategy,
        backgrounds: &[InitialState],
    ) -> ArtifactKey {
        ArtifactKey {
            fingerprint: ListFingerprint::new(list),
            memory_cells,
            strategy,
            backgrounds: backgrounds.to_vec(),
        }
    }
}

/// The cache key of one memoised fault dictionary: the march test's identity
/// (name *and* notation, so a renamed or edited test can never alias) crossed
/// with the list fingerprint and **only the scope a dictionary actually
/// depends on**. [`FaultDictionary::build`] always enumerates placements
/// exhaustively and simulates only the first background, so the key pins the
/// exhaustive strategy and carries a single background — two sessions whose
/// scopes differ only in coverage strategy or trailing backgrounds share one
/// dictionary entry instead of recomputing it.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub(crate) struct DictionaryKey {
    pub(crate) test_name: String,
    pub(crate) test_notation: String,
    pub(crate) fingerprint: ListFingerprint,
    pub(crate) memory_cells: usize,
    pub(crate) background: InitialState,
}

impl DictionaryKey {
    pub(crate) fn new(
        test: &MarchTest,
        list: &FaultList,
        memory_cells: usize,
        background: InitialState,
    ) -> DictionaryKey {
        DictionaryKey {
            test_name: test.name().to_string(),
            test_notation: test.notation(),
            fingerprint: ListFingerprint::new(list),
            memory_cells,
            background,
        }
    }
}

/// One build-once entry slot: `None` until the first successful build, then
/// the shared value forever. The slot mutex doubles as the per-key build
/// rendezvous.
type Slot<V> = Arc<Mutex<Option<Arc<V>>>>;

/// A sharded key → build-once-entry map.
#[derive(Debug)]
struct ShardedMap<K, V> {
    shards: Vec<Mutex<HashMap<K, Slot<V>>>>,
}

impl<K: Eq + Hash + Clone, V> ShardedMap<K, V> {
    fn new() -> ShardedMap<K, V> {
        ShardedMap {
            shards: (0..STORE_SHARDS)
                .map(|_| Mutex::new(HashMap::new()))
                .collect(),
        }
    }

    /// The entry slot of `key`, created empty on first sight. Only the shard
    /// mutex is held, and only for the map probe — never across a build.
    fn slot(&self, key: &K) -> Slot<V> {
        let mut hasher = DefaultHasher::new();
        key.hash(&mut hasher);
        let shard = (hasher.finish() as usize) % STORE_SHARDS;
        // Poison recovery: the shard lock only guards the map probe (no user
        // code runs under it), so a panicked builder elsewhere leaves the map
        // consistent and the resident service keeps answering.
        Arc::clone(
            self.shards[shard]
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .entry(key.clone())
                .or_default(),
        )
    }
}

/// The concurrent artifact store: target-lane enumerations and fault
/// dictionaries, memoised under immutable content-fingerprint keys and shared
/// by every [`Session`] handle attached to it.
///
/// Observability counters mirror the per-session counters of PR 4/5, but at
/// store granularity so hits are counted **across** sessions:
///
/// * [`ArtifactStore::hits`] — queries answered from the store;
/// * [`ArtifactStore::enumerations`] — entries built (exactly one per unique
///   key, however many sessions race on it);
/// * [`ArtifactStore::cached_artifacts`] / [`ArtifactStore::cached_dictionaries`]
///   — distinct populated entries per family.
#[derive(Debug)]
pub struct ArtifactStore {
    artifacts: ShardedMap<ArtifactKey, TargetLanes>,
    dictionaries: ShardedMap<DictionaryKey, FaultDictionary>,
    hits: AtomicUsize,
    enumerations: AtomicUsize,
    artifact_entries: AtomicUsize,
    dictionary_entries: AtomicUsize,
    /// The optional crash-safe persistence layer: when attached, build
    /// closures first try to replay a snapshot and persist what they build.
    /// Write-once so racing attachers cannot split the store over two
    /// directories mid-flight.
    snapshots: OnceLock<Arc<SnapshotStore>>,
}

impl Default for ArtifactStore {
    fn default() -> Self {
        ArtifactStore::new()
    }
}

impl ArtifactStore {
    /// An empty store. Wrap it in an [`Arc`] (or use
    /// [`SharedEngine::with_store`]) to share it between sessions.
    #[must_use]
    pub fn new() -> ArtifactStore {
        ArtifactStore {
            artifacts: ShardedMap::new(),
            dictionaries: ShardedMap::new(),
            hits: AtomicUsize::new(0),
            enumerations: AtomicUsize::new(0),
            artifact_entries: AtomicUsize::new(0),
            dictionary_entries: AtomicUsize::new(0),
            snapshots: OnceLock::new(),
        }
    }

    /// Attaches a crash-safe [`SnapshotStore`] to this store: from now on
    /// every artifact build first tries to replay a snapshot, and everything
    /// built is persisted. Returns `false` (and leaves the existing layer in
    /// place) when a snapshot store is already attached — the layer is
    /// write-once per store.
    pub fn attach_snapshots(&self, snapshots: Arc<SnapshotStore>) -> bool {
        self.snapshots.set(snapshots).is_ok()
    }

    /// The attached snapshot layer, if any.
    #[must_use]
    pub fn snapshots(&self) -> Option<Arc<SnapshotStore>> {
        self.snapshots.get().map(Arc::clone)
    }

    /// The snapshot layer's counters, when one is attached.
    #[must_use]
    pub fn snapshot_stats(&self) -> Option<SnapshotStats> {
        self.snapshots.get().map(|snapshots| snapshots.stats())
    }

    /// The process-wide store: one lazily-created instance shared by every
    /// caller of this function for the lifetime of the process.
    #[must_use]
    pub fn global() -> Arc<ArtifactStore> {
        static GLOBAL: OnceLock<Arc<ArtifactStore>> = OnceLock::new();
        Arc::clone(GLOBAL.get_or_init(|| Arc::new(ArtifactStore::new())))
    }

    /// Queries answered from a populated entry instead of building — the
    /// cross-session caching guarantee. A requester that blocked on a
    /// concurrent build of the same key counts as a hit: it did not build.
    #[must_use]
    pub fn hits(&self) -> usize {
        self.hits.load(Ordering::Relaxed)
    }

    /// Successful entry builds. After any number of concurrent queries this
    /// equals the number of distinct keys queried — the exactly-once
    /// guarantee the multi-client stress test pins down.
    #[must_use]
    pub fn enumerations(&self) -> usize {
        self.enumerations.load(Ordering::Relaxed)
    }

    /// Distinct populated target-lane entries.
    #[must_use]
    pub fn cached_artifacts(&self) -> usize {
        self.artifact_entries.load(Ordering::Relaxed)
    }

    /// Distinct populated dictionary entries.
    #[must_use]
    pub fn cached_dictionaries(&self) -> usize {
        self.dictionary_entries.load(Ordering::Relaxed)
    }

    /// Build-once resolution of one slot: a populated slot is a hit; an empty
    /// one runs `build` while holding only this key's lock, so concurrent
    /// same-key requesters block here and then hit, while other keys proceed.
    fn get_or_build<V, F>(&self, slot: &Slot<V>, entries: &AtomicUsize, build: F) -> Result<Arc<V>>
    where
        F: FnOnce() -> Result<Arc<V>>,
    {
        // Poison recovery: a builder that panicked under this lock never
        // published (the slot is written only after `build` returns), so the
        // slot is either still empty — the next requester simply rebuilds —
        // or was populated by an earlier successful build. Propagating the
        // poison instead would permanently wedge this key for the resident
        // service.
        let mut guard = slot.lock().unwrap_or_else(PoisonError::into_inner);
        if let Some(value) = guard.as_ref() {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(Arc::clone(value));
        }
        let built = build()?;
        *guard = Some(Arc::clone(&built));
        self.enumerations.fetch_add(1, Ordering::Relaxed);
        entries.fetch_add(1, Ordering::Relaxed);
        Ok(built)
    }

    /// The target-lane entry of `key`, built at most once via `build`.
    pub(crate) fn target_lanes<F>(&self, key: &ArtifactKey, build: F) -> Result<Arc<TargetLanes>>
    where
        F: FnOnce() -> Result<Arc<TargetLanes>>,
    {
        let slot = self.artifacts.slot(key);
        self.get_or_build(&slot, &self.artifact_entries, build)
    }

    /// The dictionary entry of `key`, built at most once via `build`.
    pub(crate) fn dictionary<F>(&self, key: &DictionaryKey, build: F) -> Arc<FaultDictionary>
    where
        F: FnOnce() -> Arc<FaultDictionary>,
    {
        let slot = self.dictionaries.slot(key);
        self.get_or_build(&slot, &self.dictionary_entries, || Ok(build()))
            // lint: allow(unwrap) — the build closure is wrapped in Ok just
            // above; no error value can reach this expect.
            .expect("dictionary builds are infallible")
    }
}

/// The resident shared engine: one [`ArtifactStore`], one [`WorkerPool`] and
/// one [`ExecPolicy`], stamping out cheap [`Session`] handles that share all
/// three. This is the "many concurrent clients, one shared engine" shape the
/// `serve` front end multiplexes requests over: every handle reads and
/// populates the same warm cache, and every parallel query multiplexes over
/// the same resident workers.
///
/// # Examples
///
/// ```
/// use march_test::catalog;
/// use sram_fault_model::FaultList;
/// use sram_sim::{ExecPolicy, SharedEngine};
///
/// let engine = SharedEngine::new(ExecPolicy::default().with_threads(2));
/// let first = engine.session().coverage(&catalog::march_ss(), &FaultList::list_2());
/// // A brand-new handle hits the cache the first handle populated...
/// let second = engine.session().coverage(&catalog::march_ss(), &FaultList::list_2());
/// assert_eq!(first, second);
/// assert_eq!(engine.cache_hits(), 1);
/// // ...and both handles multiplexed over the same resident workers.
/// assert_eq!(engine.workers_spawned(), 1);
/// ```
#[derive(Debug)]
pub struct SharedEngine {
    policy: ExecPolicy,
    store: Arc<ArtifactStore>,
    pool: Option<Arc<WorkerPool>>,
}

impl SharedEngine {
    /// Builds an engine with a fresh private store, spawning the resident
    /// worker pool when `policy` resolves to more than one thread.
    #[must_use]
    pub fn new(policy: ExecPolicy) -> Arc<SharedEngine> {
        SharedEngine::with_store(policy, Arc::new(ArtifactStore::new()))
    }

    /// Builds an engine on an existing (possibly already warm) store.
    #[must_use]
    pub fn with_store(policy: ExecPolicy, store: Arc<ArtifactStore>) -> Arc<SharedEngine> {
        let pool = match policy.threads {
            1 => None,
            threads => Some(Arc::new(WorkerPool::new(threads))),
        };
        Arc::new(SharedEngine {
            policy,
            store,
            pool,
        })
    }

    /// The process-wide engine: every available core multiplexed over the
    /// [`ArtifactStore::global`] store. Created on first use, shared by every
    /// later caller for the lifetime of the process.
    #[must_use]
    pub fn global() -> Arc<SharedEngine> {
        static GLOBAL: OnceLock<Arc<SharedEngine>> = OnceLock::new();
        Arc::clone(
            GLOBAL.get_or_init(|| {
                SharedEngine::with_store(ExecPolicy::fast(), ArtifactStore::global())
            }),
        )
    }

    /// The policy every session handle inherits.
    #[must_use]
    pub fn policy(&self) -> ExecPolicy {
        self.policy
    }

    /// The engine's store — attach it to another engine to share the cache
    /// across policies.
    #[must_use]
    pub fn store(&self) -> Arc<ArtifactStore> {
        Arc::clone(&self.store)
    }

    /// A cheap session handle onto the engine: shares the store, the worker
    /// pool and the policy; scope builders ([`Session::with_memory_cells`],
    /// …) adjust the handle without touching the shared state.
    #[must_use]
    pub fn session(&self) -> Session {
        Session::with_shared(
            self.policy,
            self.pool.as_ref().map(Arc::clone),
            Arc::clone(&self.store),
        )
    }

    /// Worker threads spawned by the engine's pool — constant across any
    /// number of handles and queries.
    #[must_use]
    pub fn workers_spawned(&self) -> usize {
        self.pool.as_ref().map_or(0, |pool| pool.workers_spawned())
    }

    /// Fan-out jobs executed on the engine's pool across every handle.
    #[must_use]
    pub fn jobs_executed(&self) -> usize {
        self.pool.as_ref().map_or(0, |pool| pool.generation())
    }

    /// Store queries answered from cache across every handle.
    #[must_use]
    pub fn cache_hits(&self) -> usize {
        self.store.hits()
    }

    /// Distinct target-lane enumerations the store holds.
    #[must_use]
    pub fn cached_artifacts(&self) -> usize {
        self.store.cached_artifacts()
    }

    /// Distinct fault dictionaries the store holds.
    #[must_use]
    pub fn cached_dictionaries(&self) -> usize {
        self.store.cached_dictionaries()
    }

    /// The snapshot layer's counters, when the engine's store persists to
    /// disk — what the `serve` stats op surfaces as the `snapshot` object.
    #[must_use]
    pub fn snapshot_stats(&self) -> Option<SnapshotStats> {
        self.store.snapshot_stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BackendKind, CoverageConfig, LaneWidth};
    use march_test::catalog;

    #[test]
    fn engine_handles_share_store_and_pool() {
        let engine = SharedEngine::new(ExecPolicy::default().with_threads(2));
        let list = FaultList::list_2();
        let test = catalog::march_sl();
        let first = engine.session();
        let second = engine.session();
        let a = first.coverage(&test, &list);
        let b = second.coverage(&test, &list);
        assert_eq!(a, b);
        // The second handle's query was answered from the shared store...
        assert_eq!(engine.cache_hits(), 1);
        assert_eq!(engine.cached_artifacts(), 1);
        assert_eq!(engine.store().enumerations(), 1);
        // ...and both handles ran on the one resident pool.
        assert_eq!(engine.workers_spawned(), 1);
        assert_eq!(engine.jobs_executed(), 2);
        assert_eq!(first.workers_spawned(), second.workers_spawned());
    }

    #[test]
    fn sessions_differing_only_in_policy_share_artifacts() {
        // The artifact key carries no execution-policy fields: handles with
        // different backends and lane widths hit the same entry.
        let store = Arc::new(ArtifactStore::new());
        let packed = SharedEngine::with_store(ExecPolicy::default(), Arc::clone(&store));
        let scalar = SharedEngine::with_store(
            ExecPolicy::default()
                .with_backend(BackendKind::Scalar)
                .with_lane_width(LaneWidth::W256),
            Arc::clone(&store),
        );
        let list = FaultList::list_2();
        let a = packed.session().target_lanes(&list).unwrap();
        let b = scalar.session().target_lanes(&list).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(store.hits(), 1);
        assert_eq!(store.enumerations(), 1);
    }

    #[test]
    fn dictionary_key_ignores_strategy_and_trailing_backgrounds() {
        // FaultDictionary::build always enumerates exhaustively and simulates
        // only the first background; the key must not fracture on scope
        // fields the dictionary ignores. (Regression: the PR 4 per-session
        // key carried the full backgrounds vector and the coverage strategy,
        // so otherwise-identical sessions rebuilt identical dictionaries.)
        let store = Arc::new(ArtifactStore::new());
        let engine = SharedEngine::with_store(ExecPolicy::default(), Arc::clone(&store));
        let list = FaultList::list_2();
        let test = catalog::march_abl1();

        let thorough = engine.session().with_memory_cells(6);
        let exhaustive = engine
            .session()
            .with_memory_cells(6)
            .with_strategy(PlacementStrategy::Exhaustive)
            .with_backgrounds(vec![InitialState::AllZero]);
        let a = thorough.dictionary(&test, &list);
        let b = exhaustive.dictionary(&test, &list);
        assert!(
            Arc::ptr_eq(&a, &b),
            "scope fields the dictionary ignores must not fracture the key"
        );
        assert_eq!(store.hits(), 1);
        assert_eq!(store.cached_dictionaries(), 1);

        // The *first* background does change the dictionary: different key.
        let flipped = engine
            .session()
            .with_memory_cells(6)
            .with_backgrounds(vec![InitialState::AllOne]);
        let c = flipped.dictionary(&test, &list);
        assert!(!Arc::ptr_eq(&a, &c));
        assert_eq!(store.cached_dictionaries(), 2);
    }

    #[test]
    fn target_lane_scope_still_keys_distinct_entries() {
        // Unlike dictionaries, target lanes depend on the whole scope: every
        // component must keep keying its own entry.
        let engine = SharedEngine::new(ExecPolicy::default());
        let list = FaultList::list_2();
        let base = engine.session().target_lanes(&list).unwrap();
        let other_cells = engine
            .session()
            .with_memory_cells(6)
            .target_lanes(&list)
            .unwrap();
        let other_strategy = engine
            .session()
            .with_strategy(PlacementStrategy::Exhaustive)
            .target_lanes(&list)
            .unwrap();
        let other_backgrounds = engine
            .session()
            .with_backgrounds(vec![InitialState::AllZero])
            .target_lanes(&list)
            .unwrap();
        assert!(!Arc::ptr_eq(&base, &other_cells));
        assert!(!Arc::ptr_eq(&base, &other_strategy));
        assert!(!Arc::ptr_eq(&base, &other_backgrounds));
        assert_eq!(engine.cache_hits(), 0);
        assert_eq!(engine.cached_artifacts(), 4);
    }

    #[test]
    fn failed_builds_are_not_cached() {
        let engine = SharedEngine::new(ExecPolicy::default());
        let tiny = engine.session().with_memory_cells(2);
        assert!(tiny.target_lanes(&FaultList::list_2()).is_err());
        assert_eq!(engine.cached_artifacts(), 0);
        // The error is re-surfaced (not cached, not a hit) on the retry...
        assert!(tiny.target_lanes(&FaultList::list_2()).is_err());
        assert_eq!(engine.cache_hits(), 0);
        // ...and a valid scope under the same store still populates.
        assert!(engine.session().target_lanes(&FaultList::list_2()).is_ok());
        assert_eq!(engine.cached_artifacts(), 1);
    }

    #[test]
    fn global_engine_is_one_instance() {
        let a = SharedEngine::global();
        let b = SharedEngine::global();
        assert!(Arc::ptr_eq(&a, &b));
        assert!(Arc::ptr_eq(&a.store(), &ArtifactStore::global()));
        assert_eq!(a.policy().threads, 0);
    }

    #[test]
    fn panicked_builder_leaves_the_slot_reusable() {
        // The PR 8 interleave model proves the lock protocol; this pins the
        // poison-recovery behaviour under a *real* panic: a builder that
        // unwinds inside its build slot must leave the slot empty and
        // unpoisoned-in-effect, so the next requester simply rebuilds.
        let store = Arc::new(ArtifactStore::new());
        let key = ArtifactKey::new(
            &FaultList::list_2(),
            8,
            PlacementStrategy::Representative,
            &[InitialState::AllOne],
        );
        let panicked = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            store.target_lanes(&key, || panic!("builder exploded mid-enumeration"))
        }));
        assert!(panicked.is_err(), "the panic must propagate to the caller");
        assert_eq!(store.enumerations(), 0);
        assert_eq!(store.cached_artifacts(), 0);

        // The same key is immediately buildable again...
        let rebuilt = store
            .target_lanes(&key, || Ok(Arc::new(Vec::new())))
            .expect("slot must be reusable after a panicked build");
        assert!(rebuilt.is_empty());
        assert_eq!(store.enumerations(), 1);
        // ...and later requesters hit the published value as usual.
        let hit = store
            .target_lanes(&key, || {
                panic!("a populated slot must never re-run the builder")
            })
            .expect("populated slot answers");
        assert!(Arc::ptr_eq(&rebuilt, &hit));
        assert_eq!(store.hits(), 1);
    }

    #[test]
    fn snapshot_layer_is_write_once() {
        let store = ArtifactStore::new();
        assert!(store.snapshots().is_none());
        assert!(store.snapshot_stats().is_none());
        let first = crate::SnapshotStore::with_io(Arc::new(crate::MemIo::new()), "a");
        let second = crate::SnapshotStore::with_io(Arc::new(crate::MemIo::new()), "b");
        assert!(store.attach_snapshots(Arc::clone(&first)));
        assert!(!store.attach_snapshots(second));
        let attached = store.snapshots().expect("layer attached");
        assert_eq!(attached.dir(), "a");
        assert_eq!(store.snapshot_stats().expect("stats").dir, "a");
    }

    #[test]
    fn engine_matches_legacy_reports() {
        let engine = SharedEngine::new(ExecPolicy::default());
        let list = FaultList::list_1();
        let test = catalog::march_c_minus();
        let legacy = crate::measure_coverage(&test, &list, &CoverageConfig::thorough());
        assert_eq!(engine.session().coverage(&test, &list), legacy);
        assert_eq!(engine.session().coverage(&test, &list), legacy);
    }
}
