//! Deterministic thread fan-out for embarrassingly parallel simulation work.
//!
//! Coverage measurement evaluates every fault target independently — a perfect
//! fan-out. This module provides a dependency-free `parallel_map` built on
//! [`std::thread::scope`]: workers pull item indices from a shared atomic
//! counter (self-scheduling, so uneven targets balance automatically) and
//! results are merged back **in item order**, which keeps parallel runs
//! byte-identical to serial ones.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Resolves a thread-count knob: `0` means "use the available parallelism",
/// and the result is clamped to the number of work items.
#[must_use]
pub fn effective_threads(requested: usize, items: usize) -> usize {
    let threads = if requested == 0 {
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
    } else {
        requested
    };
    threads.clamp(1, items.max(1))
}

/// Applies `map` to every item, fanning the work out over `threads` OS threads
/// (serial when `threads <= 1`). Results are returned in item order regardless
/// of the scheduling, so the output is independent of the thread count.
///
/// # Panics
///
/// Propagates panics from `map` (the worker threads are joined).
pub fn parallel_map<T, R, F>(items: &[T], threads: usize, map: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let threads = effective_threads(threads, items.len());
    if threads <= 1 || items.len() <= 1 {
        return items.iter().map(map).collect();
    }

    let next = AtomicUsize::new(0);
    let mut results: Vec<Option<R>> = Vec::with_capacity(items.len());
    results.resize_with(items.len(), || None);

    std::thread::scope(|scope| {
        let workers: Vec<_> = (0..threads)
            .map(|_| {
                let next = &next;
                let map = &map;
                scope.spawn(move || {
                    let mut local = Vec::new();
                    loop {
                        let index = next.fetch_add(1, Ordering::Relaxed);
                        if index >= items.len() {
                            break;
                        }
                        local.push((index, map(&items[index])));
                    }
                    local
                })
            })
            .collect();
        for worker in workers {
            for (index, result) in worker.join().expect("simulation worker panicked") {
                results[index] = Some(result);
            }
        }
    });

    results
        .into_iter()
        .map(|slot| slot.expect("every work item is scheduled exactly once"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_keep_item_order() {
        let items: Vec<usize> = (0..257).collect();
        let serial = parallel_map(&items, 1, |value| value * 3);
        for threads in [2, 4, 7] {
            let parallel = parallel_map(&items, threads, |value| value * 3);
            assert_eq!(parallel, serial, "threads = {threads}");
        }
    }

    #[test]
    fn zero_threads_means_auto() {
        assert!(effective_threads(0, 100) >= 1);
        assert_eq!(effective_threads(8, 3), 3);
        assert_eq!(effective_threads(2, 100), 2);
        assert_eq!(effective_threads(0, 0), 1);
        let empty: Vec<u32> = Vec::new();
        assert!(parallel_map(&empty, 0, |value| *value).is_empty());
    }

    #[test]
    fn handles_more_threads_than_items() {
        let items = [1u64, 2, 3];
        assert_eq!(parallel_map(&items, 64, |value| value + 1), vec![2, 3, 4]);
    }
}
