//! Deterministic thread fan-out for embarrassingly parallel simulation work.
//!
//! Coverage measurement evaluates every fault target independently — a perfect
//! fan-out. Two implementations share the same contract (self-scheduling
//! workers pulling item indices from an atomic counter, results merged back
//! **in item order**, so parallel runs are byte-identical to serial ones):
//!
//! * [`parallel_map`] spawns scoped threads per call via [`std::thread::scope`]
//!   — the legacy free-function path, still used by the deprecated
//!   free-function pipeline entry points;
//! * [`WorkerPool`] keeps one **resident** set of workers alive across calls —
//!   the engine behind [`Session`](crate::Session), so repeated pipeline
//!   queries stop paying per-call thread spawn and join.

use crate::sync::atomic::{AtomicUsize, Ordering};
use crate::sync::thread::{self, JoinHandle};
use crate::sync::{Arc, Condvar, Mutex, PoisonError};

/// Resolves a thread-count knob: `0` means "use the available parallelism",
/// and the result is clamped to the number of work items.
#[must_use]
pub fn effective_threads(requested: usize, items: usize) -> usize {
    let threads = if requested == 0 {
        thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
    } else {
        requested
    };
    threads.clamp(1, items.max(1))
}

/// Applies `map` to every item, fanning the work out over `threads` OS threads
/// (serial when `threads <= 1`). Results are returned in item order regardless
/// of the scheduling, so the output is independent of the thread count.
///
/// # Panics
///
/// Propagates panics from `map` (the worker threads are joined).
pub fn parallel_map<T, R, F>(items: &[T], threads: usize, map: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let threads = effective_threads(threads, items.len());
    if threads <= 1 || items.len() <= 1 {
        return items.iter().map(map).collect();
    }

    let next = AtomicUsize::new(0);
    let mut results: Vec<Option<R>> = Vec::with_capacity(items.len());
    results.resize_with(items.len(), || None);

    thread::scope(|scope| {
        let workers: Vec<_> = (0..threads)
            .map(|_| {
                let next = &next;
                let map = &map;
                scope.spawn(move || {
                    let mut local = Vec::new();
                    loop {
                        let index = next.fetch_add(1, Ordering::Relaxed);
                        if index >= items.len() {
                            break;
                        }
                        local.push((index, map(&items[index])));
                    }
                    local
                })
            })
            .collect();
        for worker in workers {
            // lint: allow(unwrap) — re-raising a worker's panic on the caller
            // is `parallel_map`'s documented contract; the scoped workers
            // share no locks with the resident pool.
            for (index, result) in worker.join().expect("simulation worker panicked") {
                results[index] = Some(result);
            }
        }
    });

    results
        .into_iter()
        // lint: allow(unwrap) — the chunked index walk above visits every
        // index exactly once; an empty slot is a logic bug worth a panic.
        .map(|slot| slot.expect("every work item is scheduled exactly once"))
        .collect()
}

/// One fan-out job: a type-erased "run item `index`" closure plus the shared
/// scheduling state. Workers clone the job (a handful of `Arc` bumps) and
/// self-schedule over the index range.
#[derive(Clone)]
struct Job {
    run: Arc<dyn Fn(usize) + Send + Sync>,
    next: Arc<AtomicUsize>,
    len: usize,
    done: Arc<Completion>,
}

/// Completion rendezvous of one job: how many items have finished.
#[derive(Default)]
struct Completion {
    finished: Mutex<usize>,
    all_done: Condvar,
}

impl Completion {
    // Poison recovery, not propagation: `add` runs from `ItemGuard::drop`
    // during a worker unwind, which poisons `finished` in std builds. The
    // counter itself is always left consistent (no user code runs under the
    // lock), so recovering keeps the pool serviceable after a panicked job
    // instead of wedging every later `wait` in the resident service.
    fn add(&self, count: usize, len: usize) {
        if count == 0 {
            return;
        }
        let mut finished = self.finished.lock().unwrap_or_else(PoisonError::into_inner);
        *finished += count;
        if *finished >= len {
            self.all_done.notify_all();
        }
    }

    fn wait(&self, len: usize) {
        let mut finished = self.finished.lock().unwrap_or_else(PoisonError::into_inner);
        while *finished < len {
            finished = self
                .all_done
                .wait(finished)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }
}

/// Counts one item as finished even if the map closure unwinds, so a panic on
/// a pool worker turns into a fail-fast "missing result" panic on the calling
/// thread instead of a permanent deadlock in [`Completion::wait`].
struct ItemGuard<'a> {
    done: &'a Completion,
    len: usize,
}

impl Drop for ItemGuard<'_> {
    fn drop(&mut self) {
        self.done.add(1, self.len);
    }
}

/// Drains the job's index queue, completing each claimed item (normally or on
/// unwind) — shared by the calling thread and the resident workers.
fn drain_job(job: &Job) {
    loop {
        let index = job.next.fetch_add(1, Ordering::Relaxed);
        if index >= job.len {
            break;
        }
        let _guard = ItemGuard {
            done: &job.done,
            len: job.len,
        };
        (job.run)(index);
    }
}

/// The state workers wait on: the current job and a generation counter bumped
/// once per [`WorkerPool::map`] call so sleeping workers know fresh work
/// arrived.
struct PoolState {
    job: Option<Job>,
    generation: u64,
    shutdown: bool,
}

struct PoolShared {
    state: Mutex<PoolState>,
    work_ready: Condvar,
    workers_spawned: AtomicUsize,
}

/// A persistent pool of simulation workers with the same deterministic
/// in-order merge as [`parallel_map`].
///
/// Workers are spawned **once**, at construction, and then parked on a
/// condition variable between jobs; every [`WorkerPool::map`] call wakes them,
/// lets them self-schedule over the item indices (the calling thread joins in
/// as an extra worker) and returns the results in item order. Repeated calls
/// re-use the same OS threads — observable through
/// [`WorkerPool::workers_spawned`], which a well-behaved pool never increases
/// after construction.
///
/// Because jobs outlive the borrow of any one call, `map` requires `'static`
/// items and closures: callers hand the pool an `Arc`'d snapshot of the work.
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use sram_sim::WorkerPool;
///
/// let pool = WorkerPool::new(4);
/// let items = Arc::new((0u64..100).collect::<Vec<_>>());
/// let doubled = pool.map(Arc::clone(&items), |value| value * 2);
/// assert_eq!(doubled[7], 14);
/// // A second call re-uses the same workers: nothing new is spawned.
/// let spawned = pool.workers_spawned();
/// let _ = pool.map(items, |value| value + 1);
/// assert_eq!(pool.workers_spawned(), spawned);
/// ```
#[derive(Debug)]
pub struct WorkerPool {
    shared: Arc<PoolShared>,
    handles: Vec<JoinHandle<()>>,
    /// Serialises `map` calls: the pool runs one job at a time.
    call_lock: Mutex<()>,
    generations: AtomicUsize,
}

impl std::fmt::Debug for PoolShared {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PoolShared")
            .field(
                "workers_spawned",
                &self.workers_spawned.load(Ordering::Relaxed),
            )
            .finish_non_exhaustive()
    }
}

impl WorkerPool {
    /// Spawns a pool of `threads` resident workers (`0` = available
    /// parallelism). The calling thread always participates in every job, so
    /// `threads - 1` OS threads are spawned; a pool built with `threads <= 1`
    /// spawns none and runs every job serially on the caller.
    #[must_use]
    pub fn new(threads: usize) -> WorkerPool {
        let threads = effective_threads(threads, usize::MAX);
        let shared = Arc::new(PoolShared {
            state: Mutex::new(PoolState {
                job: None,
                generation: 0,
                shutdown: false,
            }),
            work_ready: Condvar::new(),
            workers_spawned: AtomicUsize::new(0),
        });
        let handles = (1..threads)
            .map(|worker| {
                let shared = Arc::clone(&shared);
                shared.workers_spawned.fetch_add(1, Ordering::Relaxed);
                thread::Builder::new()
                    .name(format!("sram-sim-worker-{worker}"))
                    .spawn(move || worker_loop(&shared))
                    // lint: allow(unwrap) — OS-level spawn failure at pool
                    // construction is unrecoverable and happens before any
                    // request is in flight.
                    .expect("spawn simulation worker")
            })
            .collect();
        WorkerPool {
            shared,
            handles,
            call_lock: Mutex::new(()),
            generations: AtomicUsize::new(0),
        }
    }

    /// Number of workers a job runs on, counting the calling thread.
    #[must_use]
    pub fn threads(&self) -> usize {
        self.handles.len() + 1
    }

    /// Total worker threads spawned since construction. Constant for the
    /// lifetime of the pool — the observable guarantee that repeated `map`
    /// calls do not respawn workers.
    #[must_use]
    pub fn workers_spawned(&self) -> usize {
        self.shared.workers_spawned.load(Ordering::Relaxed)
    }

    /// Number of jobs the pool has executed (one per `map` call that actually
    /// fanned out).
    #[must_use]
    pub fn generation(&self) -> usize {
        self.generations.load(Ordering::Relaxed)
    }

    /// Applies `map` to every item on the resident workers, returning results
    /// in item order — byte-identical to a serial loop, like [`parallel_map`].
    ///
    /// Runs serially on the calling thread when the pool has no spawned
    /// workers or there is at most one item.
    ///
    /// # Panics
    ///
    /// Panics in `map` executed on the calling thread propagate directly. A
    /// panic on a pool worker kills that worker but still counts its claimed
    /// item as finished, so the call unblocks and fails fast with a
    /// missing-result panic on the calling thread (and again when the pool is
    /// dropped and the dead worker is joined) instead of deadlocking.
    pub fn map<T, R, F>(&self, items: Arc<Vec<T>>, map: F) -> Vec<R>
    where
        T: Send + Sync + 'static,
        R: Send + 'static,
        F: Fn(&T) -> R + Send + Sync + 'static,
    {
        let len = items.len();
        if len <= 1 || self.handles.is_empty() {
            return items.iter().map(map).collect();
        }
        let _call = self
            .call_lock
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        self.generations.fetch_add(1, Ordering::Relaxed);

        let results: Arc<Vec<Mutex<Option<R>>>> =
            Arc::new((0..len).map(|_| Mutex::new(None)).collect());
        let job = Job {
            run: {
                let items = Arc::clone(&items);
                let results = Arc::clone(&results);
                Arc::new(move |index| {
                    let value = map(&items[index]);
                    *results[index]
                        .lock()
                        .unwrap_or_else(PoisonError::into_inner) = Some(value);
                })
            },
            next: Arc::new(AtomicUsize::new(0)),
            len,
            done: Arc::new(Completion::default()),
        };

        {
            let mut state = self
                .shared
                .state
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            state.generation += 1;
            state.job = Some(job.clone());
        }
        self.shared.work_ready.notify_all();

        // The calling thread works the same queue as the residents.
        drain_job(&job);
        job.done.wait(len);

        // Unpublish the job so worker-held clones are the only references left
        // and the captured Arcs drop promptly.
        self.shared
            .state
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .job = None;

        results
            .iter()
            .map(|slot| {
                slot.lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .take()
                    // lint: allow(unwrap) — a missing result means a worker
                    // died mid-item; failing fast here is the documented
                    // contract (see the `map` panics section).
                    .expect("every work item is scheduled exactly once")
            })
            .collect()
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut state = self
                .shared
                .state
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            state.shutdown = true;
        }
        self.shared.work_ready.notify_all();
        for handle in self.handles.drain(..) {
            // A worker that panicked mid-job already surfaced as a
            // missing-result panic in `map`; don't double-panic during drop.
            drop(handle.join());
        }
    }
}

/// The resident worker loop: wait for a fresh generation, drain the job's
/// index queue, report completion, go back to sleep.
fn worker_loop(shared: &PoolShared) {
    let mut seen = 0u64;
    loop {
        let job = {
            let mut state = shared.state.lock().unwrap_or_else(PoisonError::into_inner);
            loop {
                if state.shutdown {
                    return;
                }
                if state.generation != seen {
                    if let Some(job) = state.job.clone() {
                        seen = state.generation;
                        break job;
                    }
                }
                state = shared
                    .work_ready
                    .wait(state)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        };
        drain_job(&job);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_keep_item_order() {
        let items: Vec<usize> = (0..257).collect();
        let serial = parallel_map(&items, 1, |value| value * 3);
        for threads in [2, 4, 7] {
            let parallel = parallel_map(&items, threads, |value| value * 3);
            assert_eq!(parallel, serial, "threads = {threads}");
        }
    }

    #[test]
    fn zero_threads_means_auto() {
        assert!(effective_threads(0, 100) >= 1);
        assert_eq!(effective_threads(8, 3), 3);
        assert_eq!(effective_threads(2, 100), 2);
        assert_eq!(effective_threads(0, 0), 1);
        let empty: Vec<u32> = Vec::new();
        assert!(parallel_map(&empty, 0, |value| *value).is_empty());
    }

    #[test]
    fn handles_more_threads_than_items() {
        let items = [1u64, 2, 3];
        assert_eq!(parallel_map(&items, 64, |value| value + 1), vec![2, 3, 4]);
    }

    #[test]
    fn pool_matches_serial_results_in_order() {
        let pool = WorkerPool::new(4);
        let items: Arc<Vec<usize>> = Arc::new((0..257).collect());
        let serial: Vec<usize> = items.iter().map(|value| value * 3).collect();
        for _ in 0..3 {
            assert_eq!(pool.map(Arc::clone(&items), |value| value * 3), serial);
        }
    }

    #[test]
    fn pool_never_respawns_workers_across_jobs() {
        let pool = WorkerPool::new(3);
        assert_eq!(pool.threads(), 3);
        let spawned = pool.workers_spawned();
        assert_eq!(spawned, 2, "caller participates, so threads - 1 spawned");
        let items: Arc<Vec<u64>> = Arc::new((0..1000).collect());
        for round in 1..=5 {
            let sums = pool.map(Arc::clone(&items), |value| value + 1);
            assert_eq!(sums.len(), 1000);
            assert_eq!(pool.workers_spawned(), spawned, "round {round} respawned");
            assert_eq!(pool.generation(), round);
        }
    }

    #[test]
    #[should_panic]
    fn map_panics_fail_fast_instead_of_deadlocking() {
        // Whether the poisoned item lands on the caller (panic propagates
        // directly) or on a resident worker (missing-result panic), the call
        // must panic rather than block forever.
        let pool = WorkerPool::new(2);
        let items: Arc<Vec<usize>> = Arc::new((0..64).collect());
        let _ = pool.map(items, |value| {
            assert_ne!(*value, 13, "poisoned item");
            *value
        });
    }

    #[test]
    fn single_thread_pool_runs_serially() {
        let pool = WorkerPool::new(1);
        assert_eq!(pool.threads(), 1);
        assert_eq!(pool.workers_spawned(), 0);
        let items = Arc::new(vec![5u32, 6, 7]);
        assert_eq!(pool.map(items, |value| value * value), vec![25, 36, 49]);
        assert_eq!(pool.generation(), 0, "serial jobs do not wake the pool");
    }

    #[test]
    fn empty_and_singleton_inputs_short_circuit() {
        let pool = WorkerPool::new(4);
        assert!(pool
            .map(Arc::new(Vec::<u8>::new()), |value| *value)
            .is_empty());
        assert_eq!(pool.map(Arc::new(vec![9u8]), |value| value + 1), vec![10]);
        assert_eq!(pool.generation(), 0);
    }
}
