//! March-test based fault diagnosis: from an observed failure syndrome back to the
//! set of fault candidates that explain it.
//!
//! This extends the validation role of the fault simulator (Section 6 of the paper)
//! into the diagnostic direction used in industrial memory test flows: the march
//! test is applied to a device under test, the failing reads form a *syndrome*, and
//! candidate faults are those whose simulation reproduces exactly that syndrome.

use std::collections::BTreeSet;
use std::fmt;

use march_test::MarchTest;
use sram_fault_model::{Bit, FaultList};

use crate::{
    enumerate_decoder_placements, enumerate_placements, run_march, CoverageConfig,
    DecoderFaultInstance, FaultSimulator, InitialState, InjectedFault, InstanceCells,
    LinkedFaultInstance, MarchRun, TargetKind,
};

/// One failing read of a syndrome: which element/cell/operation failed and what was
/// read.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SyndromeEntry {
    /// Index of the march element in which the failure occurred.
    pub element: usize,
    /// The failing cell address.
    pub cell: usize,
    /// Index of the operation within the element.
    pub operation: usize,
    /// The value returned by the device under test.
    pub observed: Bit,
}

impl fmt::Display for SyndromeEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "E{} op{} cell {} read {}",
            self.element, self.operation, self.cell, self.observed
        )
    }
}

/// The failure syndrome of one march-test run: the set of failing reads.
///
/// # Examples
///
/// ```
/// use march_test::catalog;
/// use sram_fault_model::Ffm;
/// use sram_sim::{FaultSimulator, InitialState, InjectedFault, Syndrome};
///
/// let tf = Ffm::TransitionFault.fault_primitives()[0].clone();
/// let mut simulator = FaultSimulator::new(8, &InitialState::AllOne)?;
/// simulator.inject(InjectedFault::single_cell(tf, 3, 8)?);
/// let syndrome = Syndrome::observe(&catalog::march_ss(), &mut simulator);
/// assert!(!syndrome.is_empty());
/// # Ok::<(), sram_sim::SimulationError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Syndrome {
    entries: BTreeSet<SyndromeEntry>,
}

impl Syndrome {
    /// An empty (passing) syndrome.
    #[must_use]
    pub fn new() -> Syndrome {
        Syndrome::default()
    }

    /// Builds a syndrome from the failures of a march run.
    #[must_use]
    pub fn from_run(run: &MarchRun) -> Syndrome {
        Syndrome {
            entries: run
                .failures()
                .iter()
                .map(|failure| SyndromeEntry {
                    element: failure.element,
                    cell: failure.cell,
                    operation: failure.operation,
                    observed: failure.observed,
                })
                .collect(),
        }
    }

    /// Runs `test` on the given simulator and collects the resulting syndrome.
    #[must_use]
    pub fn observe(test: &MarchTest, simulator: &mut FaultSimulator) -> Syndrome {
        Syndrome::from_run(&run_march(test, simulator))
    }

    /// Rebuilds a syndrome from an already-validated entry set — the snapshot
    /// loader's constructor.
    pub(crate) fn from_entries(entries: BTreeSet<SyndromeEntry>) -> Syndrome {
        Syndrome { entries }
    }

    /// The failing reads, ordered by (element, cell, operation).
    pub fn entries(&self) -> impl Iterator<Item = &SyndromeEntry> {
        self.entries.iter()
    }

    /// Number of failing reads.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` for a passing run (no failing read).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The set of failing cell addresses.
    #[must_use]
    pub fn failing_cells(&self) -> BTreeSet<usize> {
        self.entries.iter().map(|entry| entry.cell).collect()
    }
}

impl fmt::Display for Syndrome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.entries.is_empty() {
            return write!(f, "pass");
        }
        write!(
            f,
            "{} failing reads on cells {:?}",
            self.entries.len(),
            self.failing_cells()
        )
    }
}

/// A fault hypothesis consistent with an observed syndrome.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DiagnosisCandidate {
    /// The fault (simple primitive or linked fault) explaining the syndrome.
    pub target: TargetKind,
    /// The cell assignment under which its simulation reproduces the syndrome.
    pub cells: InstanceCells,
}

impl fmt::Display for DiagnosisCandidate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} @ {}", self.target, self.cells)
    }
}

/// Searches `list` for the fault instances whose simulated syndrome under `test`
/// (with the memory size and background of `config`) equals the observed
/// `syndrome`, enumerating placements with the strategy of `config`.
///
/// An empty result means the syndrome cannot be explained by any single fault of
/// the list (e.g. multiple independent defects); an empty syndrome returns an empty
/// candidate list as well, since a passing device needs no diagnosis.
///
/// # Examples
///
/// ```
/// use march_test::catalog;
/// use sram_fault_model::FaultList;
/// use sram_sim::{diagnose, CoverageConfig, FaultSimulator, InitialState, InjectedFault, Syndrome};
///
/// // A device with an (unknown to us) transition fault on cell 5.
/// let tf = sram_fault_model::Ffm::TransitionFault.fault_primitives()[0].clone();
/// let mut device = FaultSimulator::new(8, &InitialState::AllOne)?;
/// device.inject(InjectedFault::single_cell(tf.clone(), 5, 8)?);
/// let syndrome = Syndrome::observe(&catalog::march_ss(), &mut device);
///
/// // Diagnosis over the unlinked static fault space finds it back.
/// let candidates = diagnose(
///     &catalog::march_ss(),
///     &syndrome,
///     &FaultList::unlinked_static(),
///     &CoverageConfig::default(),
/// );
/// assert!(candidates.iter().any(|c| c.cells.victim == 5));
/// # Ok::<(), sram_sim::SimulationError>(())
/// ```
#[must_use]
pub fn diagnose(
    test: &MarchTest,
    syndrome: &Syndrome,
    list: &FaultList,
    config: &CoverageConfig,
) -> Vec<DiagnosisCandidate> {
    if syndrome.is_empty() {
        return Vec::new();
    }
    let background = config
        .backgrounds
        .first()
        .cloned()
        .unwrap_or(InitialState::AllOne);
    let pristine = FaultSimulator::new(config.memory_cells, &background)
        .expect("diagnosis memory configuration is valid");
    let mut scratch = pristine.clone();
    let mut candidates = Vec::new();
    for (target, cells) in enumerate_diagnosis_instances(list, config) {
        scratch.clone_from(&pristine);
        inject_diagnosis_instance(&mut scratch, &target, cells, config.memory_cells);
        if &Syndrome::observe(test, &mut scratch) == syndrome {
            candidates.push(DiagnosisCandidate { target, cells });
        }
    }
    candidates
}

/// Enumerates every fault instance a diagnosis sweep simulates — simple
/// primitives first, then linked faults, then decoder faults, placements in
/// enumeration order. Both the free [`diagnose`] function and the session's
/// sharded [`diagnose_sweep`](crate::Session::diagnose_sweep) walk exactly
/// this sequence, which is what keeps their candidate order identical at any
/// worker-thread count.
pub(crate) fn enumerate_diagnosis_instances(
    list: &FaultList,
    config: &CoverageConfig,
) -> Vec<(TargetKind, InstanceCells)> {
    let mut instances = Vec::new();
    for primitive in list.simple() {
        for cells in enumerate_exhaustive_like(primitive.diagnosis_topology(), config) {
            instances.push((TargetKind::Simple(primitive.clone()), cells));
        }
    }
    for fault in list.linked() {
        for cells in enumerate_exhaustive_like(fault.topology(), config) {
            instances.push((TargetKind::Linked(fault.clone()), cells));
        }
    }
    for fault in list.decoders() {
        for cells in enumerate_decoder_placements(
            *fault,
            config.memory_cells,
            crate::PlacementStrategy::Exhaustive,
        )
        .expect("diagnosis memory hosts the placements")
        {
            instances.push((TargetKind::Decoder(*fault), cells));
        }
    }
    instances
}

/// Injects one enumerated diagnosis instance into a fault-free simulator.
pub(crate) fn inject_diagnosis_instance(
    simulator: &mut FaultSimulator,
    target: &TargetKind,
    cells: InstanceCells,
    memory_cells: usize,
) {
    match target {
        TargetKind::Simple(primitive) => {
            let injected = if primitive.is_coupling() {
                InjectedFault::coupling(
                    primitive.clone(),
                    cells.aggressor_first.expect("pair placement"),
                    cells.victim,
                    memory_cells,
                )
            } else {
                InjectedFault::single_cell(primitive.clone(), cells.victim, memory_cells)
            }
            .expect("enumerated placements are valid");
            simulator.inject(injected);
        }
        TargetKind::Linked(fault) => {
            let instance = LinkedFaultInstance::new(fault.clone(), cells, memory_cells)
                .expect("enumerated placements are valid");
            simulator.inject_linked(&instance);
        }
        TargetKind::Decoder(fault) => {
            let instance = DecoderFaultInstance::new(*fault, cells, memory_cells)
                .expect("enumerated placements are valid");
            simulator.inject_decoder(instance);
        }
    }
}

/// Diagnosis must localise faults, so placements are always enumerated
/// exhaustively regardless of the coverage strategy of `config`.
fn enumerate_exhaustive_like(
    topology: sram_fault_model::LinkTopology,
    config: &CoverageConfig,
) -> Vec<InstanceCells> {
    enumerate_placements(
        topology,
        config.memory_cells,
        crate::PlacementStrategy::Exhaustive,
    )
    .expect("diagnosis memory hosts the placements")
}

/// Extension mapping a simple fault primitive onto the placement topology used to
/// enumerate its cell assignments during diagnosis.
pub trait LinkTopologyExt {
    /// The placement topology to use when enumerating cell assignments for this
    /// primitive during diagnosis.
    fn diagnosis_topology(&self) -> sram_fault_model::LinkTopology;
}

impl LinkTopologyExt for sram_fault_model::FaultPrimitive {
    fn diagnosis_topology(&self) -> sram_fault_model::LinkTopology {
        if self.is_coupling() {
            sram_fault_model::LinkTopology::Lf2CouplingThenSingle
        } else {
            sram_fault_model::LinkTopology::Lf1
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use march_test::catalog;
    use sram_fault_model::{FaultListBuilder, Ffm};

    fn config() -> CoverageConfig {
        CoverageConfig {
            memory_cells: 6,
            ..CoverageConfig::default()
        }
    }

    #[test]
    fn passing_syndrome_yields_no_candidates() {
        let mut simulator = FaultSimulator::new(6, &InitialState::AllOne).unwrap();
        let syndrome = Syndrome::observe(&catalog::march_ss(), &mut simulator);
        assert!(syndrome.is_empty());
        assert_eq!(syndrome.to_string(), "pass");
        let candidates = diagnose(
            &catalog::march_ss(),
            &syndrome,
            &FaultList::unlinked_static(),
            &config(),
        );
        assert!(candidates.is_empty());
    }

    #[test]
    fn single_cell_fault_is_localised() {
        let tf = Ffm::TransitionFault.fault_primitives()[0].clone();
        let mut device = FaultSimulator::new(6, &InitialState::AllOne).unwrap();
        device.inject(InjectedFault::single_cell(tf.clone(), 2, 6).unwrap());
        let syndrome = Syndrome::observe(&catalog::march_ss(), &mut device);
        assert!(!syndrome.is_empty());
        assert!(syndrome.failing_cells().contains(&2));

        let list = FaultListBuilder::new("single-cell space")
            .family(Ffm::TransitionFault)
            .family(Ffm::WriteDestructiveFault)
            .family(Ffm::StateFault)
            .build()
            .unwrap();
        let candidates = diagnose(&catalog::march_ss(), &syndrome, &list, &config());
        assert!(!candidates.is_empty());
        // Every candidate that explains the syndrome must involve the failing cell.
        assert!(candidates
            .iter()
            .all(|candidate| candidate.cells.victim == 2));
        // The true fault is among the candidates.
        assert!(candidates.iter().any(|candidate| match &candidate.target {
            TargetKind::Simple(fp) => fp == &tf,
            _ => false,
        }));
    }

    #[test]
    fn coupling_fault_diagnosis_recovers_the_aggressor() {
        let cfds = Ffm::DisturbCoupling
            .fault_primitives()
            .into_iter()
            .find(|fp| fp.notation() == "<0w1;0/1/->")
            .unwrap();
        let mut device = FaultSimulator::new(6, &InitialState::AllOne).unwrap();
        device.inject(InjectedFault::coupling(cfds.clone(), 1, 4, 6).unwrap());
        let syndrome = Syndrome::observe(&catalog::march_ss(), &mut device);
        assert!(!syndrome.is_empty());

        let list = FaultListBuilder::new("cfds space")
            .family(Ffm::DisturbCoupling)
            .build()
            .unwrap();
        let candidates = diagnose(&catalog::march_ss(), &syndrome, &list, &config());
        assert!(candidates.iter().any(|candidate| {
            candidate.cells.victim == 4 && candidate.cells.aggressor_first == Some(1)
        }));
        for candidate in &candidates {
            assert!(!candidate.to_string().is_empty());
        }
    }

    #[test]
    fn syndrome_round_trip_from_run() {
        let irf = Ffm::IncorrectReadFault.fault_primitives()[0].clone();
        let mut device = FaultSimulator::new(6, &InitialState::AllOne).unwrap();
        device.inject(InjectedFault::single_cell(irf, 3, 6).unwrap());
        let run = run_march(&catalog::march_c_minus(), &mut device);
        let syndrome = Syndrome::from_run(&run);
        assert_eq!(syndrome.len(), run.mismatches());
        let first = syndrome.entries().next().unwrap();
        assert_eq!(first.cell, 3);
        assert!(!first.to_string().is_empty());
    }
}
