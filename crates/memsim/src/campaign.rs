//! Monte-Carlo fault-injection campaigns: seeded sampling over the
//! `(target, placement, background)` instance space.
//!
//! Exhaustive placement enumeration caps the memory sizes coverage
//! measurement can reach — all-pairs coupling spaces are quadratic in the
//! cell count. A *campaign* instead draws a seeded, reproducible sample of
//! instance lanes from the exhaustive space (never materialising it: every
//! draw index is **unranked** directly into its [`InstanceCells`] /
//! background pair with closed-form arithmetic mirroring
//! [`enumerate_placements`](crate::enumerate_placements) and
//! [`enumerate_decoder_placements`](crate::enumerate_decoder_placements)),
//! streams the drawn lanes through the session's packed engine, and reports
//! a point coverage estimate with a Wilson-score confidence interval.
//!
//! The draw sequence is a pure function of the seed, so campaigns are
//! replayable: the same `(seed, scope, list)` triple visits the same lanes in
//! the same order on every backend, thread count and lane width. When the
//! requested sample covers the whole space, the campaign degenerates to an
//! exhaustive sweep (sampling without replacement, in lane order) and its
//! verdicts match exhaustive enumeration exactly.

use std::fmt;

use sram_fault_model::{FaultList, LinkTopology};

use crate::coverage::{enumerate_targets, Escape, TargetKind};
use crate::placement::MIN_PLACEMENT_CELLS;
use crate::report::{JsonObject, Report};
use crate::{CoverageLane, InitialState, InstanceCells, SimulationError};

/// How a target's exhaustive placement space is shaped — the key that picks
/// the closed-form count/unrank arithmetic below. Derived from the target the
/// same way [`enumerate_lanes`](crate::enumerate_lanes) picks its enumeration
/// loop, so unranked placements land in the exact lane order of the
/// exhaustive path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PlacementKind {
    /// Every single victim cell (LF1 and non-coupling simples).
    Single,
    /// Every ordered `(aggressor, victim)` pair of distinct cells (LF2
    /// topologies and coupling simples).
    Pair,
    /// Every ordered `(a1, a2, v)` triple of distinct cells (LF3).
    Triple,
    /// Every address (single-address decoder classes).
    DecoderSingle,
    /// Every `(primary, partner = primary ^ stride)` pair per power-of-two
    /// address stride (partner-address decoder classes).
    DecoderPair,
}

impl PlacementKind {
    /// The placement shape of `target`, mirroring the topology selection of
    /// the exhaustive enumeration.
    fn of(target: &TargetKind) -> PlacementKind {
        match target {
            TargetKind::Simple(primitive) => {
                if primitive.is_coupling() {
                    PlacementKind::Pair
                } else {
                    PlacementKind::Single
                }
            }
            TargetKind::Linked(fault) => match fault.topology() {
                LinkTopology::Lf1 => PlacementKind::Single,
                LinkTopology::Lf2CouplingThenSingle
                | LinkTopology::Lf2SingleThenCoupling
                | LinkTopology::Lf2SharedAggressor => PlacementKind::Pair,
                LinkTopology::Lf3 => PlacementKind::Triple,
            },
            TargetKind::Decoder(fault) => {
                if fault.involves_partner() {
                    PlacementKind::DecoderPair
                } else {
                    PlacementKind::DecoderSingle
                }
            }
        }
    }

    /// The smallest memory hosting this shape's placements — the same bound
    /// the materialising enumerators enforce.
    fn min_cells(self, target: &TargetKind) -> usize {
        match (self, target) {
            (PlacementKind::DecoderSingle | PlacementKind::DecoderPair, TargetKind::Decoder(f)) => {
                f.address_count()
            }
            _ => MIN_PLACEMENT_CELLS,
        }
    }

    /// The size of the exhaustive placement space on a `cells`-cell memory.
    fn count(self, cells: usize) -> u64 {
        let n = cells as u64;
        match self {
            PlacementKind::Single | PlacementKind::DecoderSingle => n,
            PlacementKind::Pair => n * (n - 1),
            PlacementKind::Triple => n * (n - 1) * (n - 2),
            PlacementKind::DecoderPair => address_strides(cells)
                .map(|stride| decoder_stride_count(cells, stride))
                .sum(),
        }
    }

    /// The `index`-th placement of the exhaustive enumeration order —
    /// byte-identical to `enumerate_placements(…, Exhaustive)[index]` (or the
    /// decoder counterpart) without materialising the space.
    fn unrank(self, cells: usize, index: u64) -> InstanceCells {
        match self {
            PlacementKind::Single | PlacementKind::DecoderSingle => {
                InstanceCells::single(index as usize)
            }
            PlacementKind::Pair => {
                let others = (cells - 1) as u64;
                let aggressor = (index / others) as usize;
                let slot = (index % others) as usize;
                let victim = if slot < aggressor { slot } else { slot + 1 };
                InstanceCells::pair(aggressor, victim)
            }
            PlacementKind::Triple => {
                let block = ((cells - 1) * (cells - 2)) as u64;
                let a1 = (index / block) as usize;
                let rest = index % block;
                let a2_slot = (rest / (cells - 2) as u64) as usize;
                let a2 = if a2_slot < a1 { a2_slot } else { a2_slot + 1 };
                let mut v = (rest % (cells - 2) as u64) as usize;
                let (lo, hi) = if a1 < a2 { (a1, a2) } else { (a2, a1) };
                if v >= lo {
                    v += 1;
                }
                if v >= hi {
                    v += 1;
                }
                InstanceCells::triple(a1, a2, v)
            }
            PlacementKind::DecoderPair => {
                let mut remaining = index;
                for stride in address_strides(cells) {
                    let count = decoder_stride_count(cells, stride);
                    if remaining < count {
                        let primary = decoder_stride_unrank(cells, stride, remaining);
                        return InstanceCells::pair(primary ^ stride, primary);
                    }
                    remaining -= count;
                }
                unreachable!("decoder placement index out of range");
            }
        }
    }
}

/// The single-bit address strides `1, 2, 4, …` below `cells` — duplicated
/// from the placement module so the count arithmetic and the materialising
/// enumerator cannot drift apart silently (the unit tests pin them equal).
fn address_strides(cells: usize) -> impl Iterator<Item = usize> {
    (0..usize::BITS)
        .map(|bit| 1usize << bit)
        .take_while(move |&stride| stride < cells)
}

/// How many primaries `p` in `0..cells` have `p ^ stride < cells`: every
/// primary of each full `2·stride` block, plus the mirrored pairs of the
/// partial tail block.
fn decoder_stride_count(cells: usize, stride: usize) -> u64 {
    let block = 2 * stride;
    let full = (cells / block) * block;
    let tail = cells % block;
    (full + 2 * tail.saturating_sub(stride)) as u64
}

/// The `index`-th valid primary of the stride's enumeration order (primary
/// ascending, skipping primaries whose partner falls outside the memory).
fn decoder_stride_unrank(cells: usize, stride: usize, index: u64) -> usize {
    let block = 2 * stride;
    let full = ((cells / block) * block) as u64;
    if index < full {
        return index as usize;
    }
    // Tail block: primaries `full + r` are valid for `r < tail - stride`
    // (partner above) and `stride <= r < tail` (partner below).
    let tail_pairs = (cells % block - stride) as u64;
    let offset = index - full;
    let r = if offset < tail_pairs {
        offset
    } else {
        stride as u64 + (offset - tail_pairs)
    };
    full as usize + r as usize
}

/// One fault target of a campaign space: its identity, placement shape and
/// the number of `(placement, background)` lanes it contributes.
#[derive(Debug, Clone)]
struct SpaceTarget {
    target: TargetKind,
    kind: PlacementKind,
    /// Exclusive prefix sum of lane counts — the first global lane index of
    /// this target.
    first_lane: u64,
}

/// The exhaustive `(target, placement, background)` instance space of a fault
/// list on a given memory, addressable by a single `u64` lane index without
/// ever being materialised.
///
/// Lane indices follow the exhaustive enumeration order end to end: targets
/// in [`enumerate_targets`] order, placements outermost within each target,
/// backgrounds innermost — so lane `i` of the space is exactly lane `i` of
/// the concatenated [`enumerate_lanes`](crate::enumerate_lanes) output.
#[derive(Debug, Clone)]
pub struct CampaignSpace {
    targets: Vec<SpaceTarget>,
    backgrounds: Vec<InitialState>,
    memory_cells: usize,
    total: u64,
}

impl CampaignSpace {
    /// Builds the space descriptor for `list` on a `memory_cells`-cell memory
    /// under the given backgrounds.
    ///
    /// # Errors
    ///
    /// Returns [`SimulationError::MemoryTooSmall`] when the memory cannot
    /// host a target's placements, and
    /// [`SimulationError::InvalidCampaign`] when the list or the background
    /// set is empty (an empty space cannot be sampled) or the space exceeds
    /// `u64` addressing.
    pub fn build(
        list: &FaultList,
        memory_cells: usize,
        backgrounds: &[InitialState],
    ) -> Result<CampaignSpace, SimulationError> {
        if backgrounds.is_empty() {
            return Err(SimulationError::InvalidCampaign(
                "campaigns need at least one data background".to_string(),
            ));
        }
        let mut targets = Vec::new();
        let mut total: u128 = 0;
        for target in enumerate_targets(list) {
            let kind = PlacementKind::of(&target);
            let min_cells = kind.min_cells(&target);
            if memory_cells < min_cells {
                return Err(SimulationError::MemoryTooSmall {
                    cells: memory_cells,
                    min_cells,
                });
            }
            let lanes = u128::from(kind.count(memory_cells)) * backgrounds.len() as u128;
            if total + lanes > u128::from(u64::MAX) {
                return Err(SimulationError::InvalidCampaign(format!(
                    "the campaign space of `{}` on {memory_cells} cells exceeds 2^64 lanes",
                    list.name()
                )));
            }
            targets.push(SpaceTarget {
                target,
                kind,
                first_lane: total as u64,
            });
            total += lanes;
        }
        if total == 0 {
            return Err(SimulationError::InvalidCampaign(format!(
                "fault list `{}` yields an empty campaign space",
                list.name()
            )));
        }
        Ok(CampaignSpace {
            targets,
            backgrounds: backgrounds.to_vec(),
            memory_cells,
            total: total as u64,
        })
    }

    /// Total number of `(target, placement, background)` lanes of the space.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Number of fault targets contributing lanes.
    #[must_use]
    pub fn target_count(&self) -> usize {
        self.targets.len()
    }

    /// The fault target owning lanes of the `index`-th slot.
    pub(crate) fn target(&self, target_index: usize) -> &TargetKind {
        &self.targets[target_index].target
    }

    /// Decodes a global lane index into its owning target slot and concrete
    /// coverage lane.
    ///
    /// # Panics
    ///
    /// Panics when `index >= self.total()` — campaign draws are always
    /// sampled below the total.
    #[must_use]
    pub fn decode(&self, index: u64) -> (usize, CoverageLane) {
        assert!(index < self.total, "lane index {index} out of space");
        // The last target whose first lane is <= index.
        let slot = match self.targets.binary_search_by(|t| t.first_lane.cmp(&index)) {
            Ok(exact) => exact,
            Err(insertion) => insertion - 1,
        };
        let entry = &self.targets[slot];
        let local = index - entry.first_lane;
        let n_backgrounds = self.backgrounds.len() as u64;
        let placement = entry.kind.unrank(self.memory_cells, local / n_backgrounds);
        let background = self.backgrounds[(local % n_backgrounds) as usize].clone();
        (
            slot,
            CoverageLane {
                cells: placement,
                background,
            },
        )
    }
}

/// A xorshift64 generator behind a splitmix64-style seed scrambler, so that
/// adjacent seeds (0, 1, 2, …) produce unrelated streams. Dependency-free and
/// byte-identical on every platform.
#[derive(Debug, Clone)]
struct Xorshift64 {
    state: u64,
}

impl Xorshift64 {
    fn new(seed: u64) -> Xorshift64 {
        // splitmix64 finaliser; xorshift must never sit at the all-zero
        // fixed point.
        let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        Xorshift64 {
            state: if z == 0 { 0x9E37_79B9_7F4A_7C15 } else { z },
        }
    }

    fn next(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x
    }

    /// An unbiased draw in `0..bound` by rejection sampling: the lowest
    /// `2^64 mod bound` raw values are rejected so every residue is equally
    /// likely.
    fn next_below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        let reject_below = bound.wrapping_neg() % bound;
        loop {
            let value = self.next();
            if value >= reject_below {
                return value % bound;
            }
        }
    }
}

/// The seeded draw sequence of a campaign over a `space_total`-lane space:
/// `draws` lane indices sampled uniformly **with replacement** — except when
/// the request covers the whole space, where the campaign degenerates to the
/// full lane sequence in order (sampling without replacement), making it
/// verdict-identical to exhaustive enumeration.
///
/// Pure function of its arguments: this is the replayability contract behind
/// `--seed`.
#[must_use]
pub fn sample_draw_indices(seed: u64, space_total: u64, draws: u64) -> Vec<u64> {
    if draws >= space_total {
        return (0..space_total).collect();
    }
    let mut rng = Xorshift64::new(seed);
    (0..draws).map(|_| rng.next_below(space_total)).collect()
}

/// The largest sample size a campaign accepts — a guard against a typo'd
/// `--sample` exhausting memory on the draw-index buffer (2^32 draws ≈ 32 GiB
/// of indices), far above what the statistics ever need.
pub const MAX_CAMPAIGN_DRAWS: u64 = 1 << 32;

/// Configuration of a Monte-Carlo coverage campaign.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignConfig {
    /// Number of lanes to draw. Requests at or above the space size
    /// degenerate to a full exhaustive sweep (sampling without replacement).
    pub draws: u64,
    /// The xorshift seed fixing the draw sequence.
    pub seed: u64,
    /// The confidence level of the Wilson-score interval, strictly inside
    /// `(0, 1)`.
    pub confidence: f64,
    /// At most this many escape draws are kept in the replayable trace.
    pub max_escapes: usize,
}

impl Default for CampaignConfig {
    fn default() -> CampaignConfig {
        CampaignConfig {
            draws: 4096,
            seed: 0,
            confidence: 0.95,
            max_escapes: 32,
        }
    }
}

impl CampaignConfig {
    /// Replaces the number of draws.
    #[must_use]
    pub fn with_draws(mut self, draws: u64) -> CampaignConfig {
        self.draws = draws;
        self
    }

    /// Replaces the seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> CampaignConfig {
        self.seed = seed;
        self
    }

    /// Replaces the confidence level.
    #[must_use]
    pub fn with_confidence(mut self, confidence: f64) -> CampaignConfig {
        self.confidence = confidence;
        self
    }

    /// Replaces the escape-trace bound.
    #[must_use]
    pub fn with_max_escapes(mut self, max_escapes: usize) -> CampaignConfig {
        self.max_escapes = max_escapes;
        self
    }

    /// Checks the configuration is sane.
    ///
    /// # Errors
    ///
    /// Returns [`SimulationError::InvalidCampaign`] for zero draws, draw
    /// counts above [`MAX_CAMPAIGN_DRAWS`], or a confidence level that is not
    /// a finite number strictly inside `(0, 1)`.
    pub fn validate(&self) -> Result<(), SimulationError> {
        if self.draws == 0 {
            return Err(SimulationError::InvalidCampaign(
                "campaigns need at least one draw".to_string(),
            ));
        }
        if self.draws > MAX_CAMPAIGN_DRAWS {
            return Err(SimulationError::InvalidCampaign(format!(
                "campaign draw count {} exceeds the {MAX_CAMPAIGN_DRAWS} cap",
                self.draws
            )));
        }
        if !self.confidence.is_finite() || self.confidence <= 0.0 || self.confidence >= 1.0 {
            return Err(SimulationError::InvalidCampaign(format!(
                "confidence level {} is not strictly inside (0, 1)",
                self.confidence
            )));
        }
        Ok(())
    }
}

/// One undetected draw of a campaign: the position in the seeded draw
/// sequence (so `--seed` replays land on the same lane) plus the escaping
/// instance itself.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CampaignEscape {
    /// Zero-based position in the draw sequence.
    pub draw: u64,
    /// The escaping `(target, placement, background)` instance.
    pub escape: Escape,
}

/// The result of a Monte-Carlo coverage campaign: a point estimate of the
/// detected fraction of the instance space with a Wilson-score confidence
/// interval, plus a bounded replayable trace of the escapes found.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignReport {
    test_name: String,
    list_name: String,
    space: u64,
    draws: u64,
    detected: u64,
    seed: u64,
    confidence: f64,
    without_replacement: bool,
    estimate: f64,
    ci_low: f64,
    ci_high: f64,
    trace: Vec<CampaignEscape>,
    trace_truncated: bool,
}

impl CampaignReport {
    /// Assembles a report from the campaign outcome (used by
    /// `Session::campaign`).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        test_name: &str,
        list_name: &str,
        space: u64,
        draws: u64,
        detected: u64,
        seed: u64,
        confidence: f64,
        without_replacement: bool,
        trace: Vec<CampaignEscape>,
        trace_truncated: bool,
    ) -> CampaignReport {
        let estimate = detected as f64 / draws as f64;
        let (ci_low, ci_high) = wilson_interval(detected, draws, confidence);
        CampaignReport {
            test_name: test_name.to_string(),
            list_name: list_name.to_string(),
            space,
            draws,
            detected,
            seed,
            confidence,
            without_replacement,
            estimate,
            ci_low,
            ci_high,
            trace,
            trace_truncated,
        }
    }

    /// The march test that was evaluated.
    #[must_use]
    pub fn test_name(&self) -> &str {
        &self.test_name
    }

    /// The fault list whose instance space was sampled.
    #[must_use]
    pub fn list_name(&self) -> &str {
        &self.list_name
    }

    /// Total number of `(target, placement, background)` lanes of the
    /// exhaustive space the campaign sampled from.
    #[must_use]
    pub fn space(&self) -> u64 {
        self.space
    }

    /// Number of lanes drawn and simulated.
    #[must_use]
    pub fn draws(&self) -> u64 {
        self.draws
    }

    /// Number of drawn lanes the test detected.
    #[must_use]
    pub fn detected(&self) -> u64 {
        self.detected
    }

    /// Number of drawn lanes the test missed.
    #[must_use]
    pub fn escapes_found(&self) -> u64 {
        self.draws - self.detected
    }

    /// The seed that replays this campaign's draw sequence.
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The confidence level of [`CampaignReport::interval`].
    #[must_use]
    pub fn confidence(&self) -> f64 {
        self.confidence
    }

    /// `true` when the campaign covered the whole space in lane order
    /// (sampling without replacement) — its verdict then equals exhaustive
    /// enumeration.
    #[must_use]
    pub fn without_replacement(&self) -> bool {
        self.without_replacement
    }

    /// The point estimate of the detected fraction, in `0..=1`.
    #[must_use]
    pub fn estimate(&self) -> f64 {
        self.estimate
    }

    /// The Wilson-score confidence interval `(low, high)` of the detected
    /// fraction at [`CampaignReport::confidence`].
    #[must_use]
    pub fn interval(&self) -> (f64, f64) {
        (self.ci_low, self.ci_high)
    }

    /// The bounded escape trace, in draw order.
    #[must_use]
    pub fn trace(&self) -> &[CampaignEscape] {
        &self.trace
    }

    /// `true` when more escapes were drawn than the trace bound kept.
    #[must_use]
    pub fn trace_truncated(&self) -> bool {
        self.trace_truncated
    }
}

impl fmt::Display for CampaignReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} vs {}: {}/{} draws detected ({:.2}%), {:.0}% CI [{:.2}%, {:.2}%] over {} lanes",
            self.test_name,
            self.list_name,
            self.detected,
            self.draws,
            100.0 * self.estimate,
            100.0 * self.confidence,
            100.0 * self.ci_low,
            100.0 * self.ci_high,
            self.space
        )
    }
}

impl Report for CampaignReport {
    fn kind(&self) -> &'static str {
        "campaign"
    }

    fn summary(&self) -> String {
        self.to_string()
    }

    fn detail_lines(&self) -> Vec<String> {
        self.trace
            .iter()
            .map(|entry| format!("draw {}: {}", entry.draw, entry.escape))
            .collect()
    }

    fn to_json(&self) -> String {
        let trace = self.trace.iter().map(|entry| {
            JsonObject::new()
                .number("draw", entry.draw)
                .string("target", &entry.escape.target.to_string())
                .string("cells", &entry.escape.cells.to_string())
                .string("background", &format!("{:?}", entry.escape.background))
                .build()
        });
        JsonObject::new()
            .string("report", self.kind())
            .string("test", &self.test_name)
            .string("list", &self.list_name)
            .number("space", self.space)
            .number("draws", self.draws)
            .number("detected", self.detected)
            .number("escapes", self.escapes_found())
            .float("estimate_percent", 100.0 * self.estimate)
            .float("confidence", self.confidence)
            .float("ci_low_percent", 100.0 * self.ci_low)
            .float("ci_high_percent", 100.0 * self.ci_high)
            .number("seed", self.seed)
            .boolean("without_replacement", self.without_replacement)
            .boolean("trace_truncated", self.trace_truncated)
            .raw_array("trace", trace)
            .build()
    }
}

/// The Wilson-score interval `(low, high)` for `detected` successes out of
/// `draws` Bernoulli trials at the given confidence level — well-behaved at
/// the 0%/100% boundaries where the naive normal interval collapses.
#[must_use]
pub fn wilson_interval(detected: u64, draws: u64, confidence: f64) -> (f64, f64) {
    if draws == 0 {
        return (0.0, 1.0);
    }
    let n = draws as f64;
    let p = detected as f64 / n;
    let z = probit(1.0 - (1.0 - confidence) / 2.0);
    let z2 = z * z;
    let denominator = 1.0 + z2 / n;
    let center = (p + z2 / (2.0 * n)) / denominator;
    let half = (z / denominator) * (p * (1.0 - p) / n + z2 / (4.0 * n * n)).sqrt();
    ((center - half).max(0.0), (center + half).min(1.0))
}

/// The standard normal quantile function (inverse CDF), via Acklam's
/// rational approximation — relative error below `1.15e-9` over `(0, 1)`,
/// plenty for confidence-interval z-scores, and dependency-free.
fn probit(p: f64) -> f64 {
    const A: [f64; 6] = [
        -3.969_683_028_665_376e1,
        2.209_460_984_245_205e2,
        -2.759_285_104_469_687e2,
        1.383_577_518_672_69e2,
        -3.066_479_806_614_716e1,
        2.506_628_277_459_239,
    ];
    const B: [f64; 5] = [
        -5.447_609_879_822_406e1,
        1.615_858_368_580_409e2,
        -1.556_989_798_598_866e2,
        6.680_131_188_771_972e1,
        -1.328_068_155_288_572e1,
    ];
    const C: [f64; 6] = [
        -7.784_894_002_430_293e-3,
        -3.223_964_580_411_365e-1,
        -2.400_758_277_161_838,
        -2.549_732_539_343_734,
        4.374_664_141_464_968,
        2.938_163_982_698_783,
    ];
    const D: [f64; 4] = [
        7.784_695_709_041_462e-3,
        3.224_671_290_700_398e-1,
        2.445_134_137_142_996,
        3.754_408_661_907_416,
    ];
    const P_LOW: f64 = 0.02425;

    debug_assert!(p > 0.0 && p < 1.0);
    if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -((((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::enumerate_lanes;
    use crate::placement::{enumerate_decoder_placements, enumerate_placements};
    use crate::PlacementStrategy;
    use sram_fault_model::DecoderFault;

    fn both_backgrounds() -> Vec<InitialState> {
        vec![InitialState::AllZero, InitialState::AllOne]
    }

    #[test]
    fn unranking_matches_exhaustive_cell_array_enumeration() {
        for cells in [4usize, 5, 6, 7, 8, 12] {
            for (topology, kind) in [
                (LinkTopology::Lf1, PlacementKind::Single),
                (LinkTopology::Lf2SharedAggressor, PlacementKind::Pair),
                (LinkTopology::Lf3, PlacementKind::Triple),
            ] {
                let reference =
                    enumerate_placements(topology, cells, PlacementStrategy::Exhaustive).unwrap();
                assert_eq!(kind.count(cells), reference.len() as u64, "{cells} cells");
                for (index, expected) in reference.iter().enumerate() {
                    assert_eq!(
                        kind.unrank(cells, index as u64),
                        *expected,
                        "{kind:?} index {index} on {cells} cells"
                    );
                }
            }
        }
    }

    #[test]
    fn unranking_matches_exhaustive_decoder_enumeration() {
        for cells in [2usize, 3, 5, 6, 7, 8, 12, 16, 1024] {
            let singles = enumerate_decoder_placements(
                DecoderFault::NoCellAccessed {
                    open_read: sram_fault_model::Bit::Zero,
                },
                cells,
                PlacementStrategy::Exhaustive,
            )
            .unwrap();
            assert_eq!(
                PlacementKind::DecoderSingle.count(cells),
                singles.len() as u64
            );
            let pairs = enumerate_decoder_placements(
                DecoderFault::NoAddressMaps,
                cells,
                PlacementStrategy::Exhaustive,
            )
            .unwrap();
            assert_eq!(
                PlacementKind::DecoderPair.count(cells),
                pairs.len() as u64,
                "{cells} cells"
            );
            for (index, expected) in pairs.iter().enumerate() {
                assert_eq!(
                    PlacementKind::DecoderPair.unrank(cells, index as u64),
                    *expected,
                    "index {index} on {cells} cells"
                );
            }
        }
    }

    #[test]
    fn space_decode_walks_the_concatenated_lane_order() {
        for (list, cells) in [
            (FaultList::list_2(), 6usize),
            (FaultList::address_decoder(), 6),
            (FaultList::list_1().with_address_decoder_faults(), 5),
        ] {
            let backgrounds = both_backgrounds();
            let space = CampaignSpace::build(&list, cells, &backgrounds).unwrap();
            let mut reference = Vec::new();
            for (slot, target) in enumerate_targets(&list).iter().enumerate() {
                let lanes =
                    enumerate_lanes(target, cells, PlacementStrategy::Exhaustive, &backgrounds)
                        .unwrap();
                for lane in lanes {
                    reference.push((slot, lane));
                }
            }
            assert_eq!(space.total(), reference.len() as u64, "{}", list.name());
            assert_eq!(space.target_count(), enumerate_targets(&list).len());
            for (index, expected) in reference.iter().enumerate() {
                let (slot, lane) = space.decode(index as u64);
                assert_eq!(slot, expected.0, "slot at index {index} of {}", list.name());
                assert_eq!(lane, expected.1, "lane at index {index} of {}", list.name());
            }
        }
    }

    #[test]
    fn space_build_rejects_degenerate_inputs() {
        assert!(matches!(
            CampaignSpace::build(&FaultList::list_2(), 3, &both_backgrounds()),
            Err(SimulationError::MemoryTooSmall { cells: 3, .. })
        ));
        assert!(matches!(
            CampaignSpace::build(&FaultList::list_2(), 8, &[]),
            Err(SimulationError::InvalidCampaign(_))
        ));
        assert!(matches!(
            CampaignSpace::build(&FaultList::new("empty"), 8, &both_backgrounds()),
            Err(SimulationError::InvalidCampaign(_))
        ));
    }

    #[test]
    fn draw_sequences_are_seed_deterministic_and_in_range() {
        let space = 1_000_003u64;
        let first = sample_draw_indices(7, space, 256);
        let replay = sample_draw_indices(7, space, 256);
        assert_eq!(first, replay);
        assert_eq!(first.len(), 256);
        assert!(first.iter().all(|&index| index < space));
        // Adjacent seeds must not alias (the raw xorshift state is scrambled).
        for other_seed in [0u64, 1, 2, 6, 8, u64::MAX] {
            if other_seed == 7 {
                continue;
            }
            let other = sample_draw_indices(other_seed, space, 256);
            assert_ne!(first, other, "seed {other_seed} aliased seed 7");
        }
    }

    #[test]
    fn full_space_requests_degenerate_to_lane_order() {
        let full = sample_draw_indices(42, 100, 100);
        assert_eq!(full, (0..100).collect::<Vec<u64>>());
        let beyond = sample_draw_indices(42, 100, 1000);
        assert_eq!(beyond, full);
    }

    #[test]
    fn rejection_sampling_is_unbiased_over_tiny_bounds() {
        let mut rng = Xorshift64::new(3);
        let mut buckets = [0usize; 3];
        for _ in 0..30_000 {
            buckets[rng.next_below(3) as usize] += 1;
        }
        for bucket in buckets {
            assert!((9_000..11_000).contains(&bucket), "{buckets:?}");
        }
    }

    #[test]
    fn probit_matches_tabulated_quantiles() {
        for (p, expected) in [
            (0.975, 1.959_964),
            (0.995, 2.575_829),
            (0.5, 0.0),
            (0.025, -1.959_964),
            (0.01, -2.326_348),
        ] {
            assert!(
                (probit(p) - expected).abs() < 1e-5,
                "probit({p}) = {}",
                probit(p)
            );
        }
    }

    #[test]
    fn wilson_interval_brackets_the_estimate() {
        let (low, high) = wilson_interval(90, 100, 0.95);
        assert!(low < 0.9 && 0.9 < high);
        assert!(low > 0.8 && high < 0.97);
        // Boundaries stay inside [0, 1] even at p = 0 and p = 1.
        let (zero_low, zero_high) = wilson_interval(0, 50, 0.95);
        assert!(zero_low == 0.0 && zero_high > 0.0 && zero_high < 0.2);
        let (one_low, one_high) = wilson_interval(50, 50, 0.95);
        assert!(one_high > 0.999_999 && one_low < 1.0 && one_low > 0.8);
        // Higher confidence widens the interval.
        let (wide_low, wide_high) = wilson_interval(90, 100, 0.99);
        assert!(wide_low < low && wide_high > high);
        assert_eq!(wilson_interval(0, 0, 0.95), (0.0, 1.0));
    }

    #[test]
    fn config_validation_rejects_degenerate_values() {
        assert!(CampaignConfig::default().validate().is_ok());
        for bad in [
            CampaignConfig::default().with_draws(0),
            CampaignConfig::default().with_draws(MAX_CAMPAIGN_DRAWS + 1),
            CampaignConfig::default().with_confidence(0.0),
            CampaignConfig::default().with_confidence(1.0),
            CampaignConfig::default().with_confidence(f64::NAN),
            CampaignConfig::default().with_confidence(f64::INFINITY),
            CampaignConfig::default().with_confidence(-0.5),
        ] {
            assert!(
                matches!(bad.validate(), Err(SimulationError::InvalidCampaign(_))),
                "{bad:?}"
            );
        }
    }
}
