//! # `sram-sim`
//!
//! A bit-accurate SRAM **functional fault simulator**: the Rust counterpart of the
//! in-house memory fault simulator the DATE 2006 paper uses to validate its
//! generated march tests ("all generated Tests have been fault simulated by an
//! in-house developed memory fault simulator").
//!
//! The simulator:
//!
//! * models an `n`-cell one-bit-per-cell SRAM ([`Memory`]);
//! * injects *simple* fault primitives and *linked* faults on arbitrary cell
//!   assignments ([`InjectedFault`], [`LinkedFaultInstance`]);
//! * executes [`march_test::MarchTest`]s against the faulty memory in lock-step
//!   with a fault-free reference memory ([`FaultSimulator`], [`MarchRun`]);
//! * measures the **coverage** of a march test over a
//!   [`sram_fault_model::FaultList`], enumerating cell placements and data
//!   backgrounds ([`CoverageReport`]);
//! * evaluates coverage through pluggable [`SimulationBackend`]s — the scalar
//!   dual-memory engine ([`ScalarBackend`]) or the bit-parallel packed engine
//!   ([`PackedBackend`], one fault instance per bit of a [`LaneWord`]: 64 per
//!   `u64` word, 128/256 per [`W128`]/[`W256`] block, selected by
//!   [`LaneWidth`]) — fanning the fault targets out over worker threads
//!   ([`parallel_map`]);
//! * runs seeded Monte-Carlo **campaigns** over the exhaustive instance
//!   space — unranked draws streamed through the packed engine, reported
//!   with a Wilson-score confidence interval ([`CampaignReport`]) —
//!   for memories where exhaustive enumeration is intractable;
//! * exposes the whole pipeline through one long-lived engine handle
//!   ([`Session`]), built from a unified [`ExecPolicy`] and owning a
//!   persistent [`WorkerPool`], whose methods return [`Report`]s with
//!   dependency-free JSON serialisation;
//! * shares one warm cache between any number of concurrent sessions: a
//!   process-wide [`ArtifactStore`] of immutable-keyed artifacts behind a
//!   resident [`SharedEngine`] that stamps out cheap [`Session`] handles —
//!   the substrate of the CLI's `serve` mode;
//! * optionally persists that cache crash-safely: a content-addressed,
//!   checksummed [`SnapshotStore`] replays target-lane enumerations and fault
//!   dictionaries across process restarts, quarantining corrupt files and
//!   degrading to an in-memory rebuild on any I/O failure.
//!
//! Masking between the two components of a linked fault is *emergent*: both fault
//! primitives are injected as independent behavioural rules and masking happens
//! exactly when the second primitive restores the victim cell before any read
//! observes it — mirroring Definition 6 of the paper.
//!
//! # Quick example
//!
//! ```
//! use march_test::catalog;
//! use sram_fault_model::FaultList;
//! use sram_sim::{CoverageConfig, measure_coverage};
//!
//! // March SS covers the unlinked realistic static faults...
//! let unlinked = FaultList::unlinked_static();
//! let report = measure_coverage(&catalog::march_ss(), &unlinked, &CoverageConfig::default());
//! assert_eq!(report.covered(), report.total());
//!
//! // ...but MATS+ does not.
//! let weak = measure_coverage(&catalog::mats_plus(), &unlinked, &CoverageConfig::default());
//! assert!(weak.covered() < weak.total());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod backend;
mod batch;
mod campaign;
mod coverage;
mod diagnose;
mod dictionary;
mod engine;
mod error;
mod inject;
mod lane;
mod memory;
mod parallel;
mod placement;
mod policy;
mod report;
mod run;
mod session;
mod snapshot;
mod store;
pub(crate) mod sync;

#[cfg(all(test, interleave))]
mod models;

pub use backend::{
    enumerate_lanes, BackendKind, CoverageLane, PackedBackend, PackedSimulator, ScalarBackend,
    SimulationBackend,
};
pub use batch::{BatchSnapshot, CandidateBatch, TargetBatch};
pub use campaign::{
    sample_draw_indices, wilson_interval, CampaignConfig, CampaignEscape, CampaignReport,
    CampaignSpace, MAX_CAMPAIGN_DRAWS,
};
pub use coverage::{
    detects_linked, detects_simple, enumerate_targets, measure_coverage, CoverageConfig,
    CoverageReport, Escape, EscapeSortKey, TargetKind,
};
pub use diagnose::{diagnose, DiagnosisCandidate, LinkTopologyExt, Syndrome, SyndromeEntry};
pub use dictionary::{DictionaryEntry, FaultDictionary};
pub use engine::{FaultSimulator, OperationOutcome};
pub use error::SimulationError;
pub use inject::{DecoderFaultInstance, InjectedFault, InstanceCells, LinkedFaultInstance};
pub use lane::{LaneWidth, LaneWord, WideWord, W128, W256};
pub use memory::{InitialState, Memory};
pub use parallel::{effective_threads, parallel_map, WorkerPool};
pub use placement::{
    enumerate_decoder_placements, enumerate_placements, PlacementStrategy, MIN_PLACEMENT_CELLS,
};
pub use policy::{ExecPolicy, DEFAULT_WAVE_COST_FACTOR};
pub use report::{json_escape, DiagnosisReport, JsonObject, Report};
pub use run::{run_march, Failure, MarchRun};
pub use session::{Session, TargetLanes};
pub use snapshot::{
    FsIo, IoOp, MemIo, SnapshotError, SnapshotFileInfo, SnapshotIo, SnapshotStats, SnapshotStore,
    SNAPSHOT_VERSION,
};
pub use store::{ArtifactStore, SharedEngine};

/// Convenience result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, SimulationError>;
