//! The session execution API: one long-lived engine handle for the whole
//! pipeline.
//!
//! A [`Session`] is built **once** from an [`ExecPolicy`] and owns everything
//! execution-related: the simulation backend instance, the candidate-batching
//! and cost-model knobs, and — when the policy asks for more than one worker
//! thread — a persistent [`WorkerPool`] that outlives individual queries, so
//! repeated coverage / generation / diagnosis calls stop paying per-call
//! thread spawn. Every result is byte-identical to the legacy free functions
//! (`measure_coverage`, `run_march`, `diagnose`), which are now thin shims
//! constructing a throwaway session.
//!
//! A session built with [`Session::new`] owns a *private*
//! [`ArtifactStore`](crate::ArtifactStore) and pool; sessions handed out by a
//! [`SharedEngine`](crate::SharedEngine) are cheap handles onto one shared
//! store and one resident pool, so many concurrent sessions amortise the same
//! warm cache.

use std::collections::BTreeMap;
use std::sync::Arc;

use march_test::MarchTest;
use sram_fault_model::FaultList;

use crate::backend::{enumerate_lanes, SimulationBackend};
use crate::campaign::{sample_draw_indices, CampaignConfig, CampaignEscape, CampaignReport};
use crate::coverage::{
    assemble_coverage_report, enumerate_targets, lane_escape, Escape, TargetKind,
};
use crate::diagnose::{enumerate_diagnosis_instances, inject_diagnosis_instance};
use crate::parallel::WorkerPool;
use crate::report::DiagnosisReport;
use crate::run::run_march;
use crate::store::{ArtifactKey, ArtifactStore, DictionaryKey};
use crate::{
    CampaignSpace, CoverageConfig, CoverageLane, CoverageReport, DiagnosisCandidate, ExecPolicy,
    FaultDictionary, FaultSimulator, InitialState, InjectedFault, InstanceCells,
    LinkedFaultInstance, MarchRun, PlacementStrategy, Result, Syndrome,
};

/// How many diagnosis instances one sweep shard simulates: large enough to
/// amortise the per-shard fault-free simulator, small enough that the shards
/// of a representative sweep still spread over every worker.
const DIAGNOSIS_SHARD: usize = 256;

/// How many campaign draws one shard decodes and simulates: a multiple of
/// the widest packed lane word (256), so each shard's per-target lane groups
/// fill whole simulation waves, while typical sample sizes still shard over
/// every worker.
const CAMPAIGN_SHARD: usize = 2048;

/// Every fault target of a list together with its enumerated coverage lanes —
/// the session-cached setup artifact shared by coverage measurement, the
/// greedy generator and the redundancy-removal pass.
pub type TargetLanes = Vec<(TargetKind, Vec<CoverageLane>)>;

/// A reusable engine handle owning the execution policy and the resident
/// worker pool of the simulation pipeline.
///
/// The session also carries the *simulation scope* — memory size, placement
/// strategy and data backgrounds — defaulting to the paper's thorough
/// verification setup (8 cells, representative placements, both uniform
/// backgrounds). Execution policy is fixed at construction; the scope is
/// adjustable with the builder methods.
///
/// # Examples
///
/// ```
/// use march_test::catalog;
/// use sram_fault_model::FaultList;
/// use sram_sim::{ExecPolicy, Session};
///
/// let session = Session::new(ExecPolicy::default().with_threads(2));
/// // Repeated queries re-use the same worker pool...
/// let ss = session.coverage(&catalog::march_ss(), &FaultList::unlinked_static());
/// let sl = session.coverage(&catalog::march_sl(), &FaultList::list_2());
/// assert!(ss.is_complete() && sl.is_complete());
/// // ...no new workers were spawned between the calls.
/// assert_eq!(session.workers_spawned(), 1);
/// ```
#[derive(Debug)]
pub struct Session {
    policy: ExecPolicy,
    memory_cells: usize,
    strategy: PlacementStrategy,
    backgrounds: Vec<InitialState>,
    backend: Arc<dyn SimulationBackend>,
    /// `Arc`'d so sessions handed out by one
    /// [`SharedEngine`](crate::SharedEngine) multiplex over a single resident
    /// pool instead of spawning per handle.
    pool: Option<Arc<WorkerPool>>,
    /// The artifact store backing the session: memoised per-`(list, scope)`
    /// target-lane enumerations and per-`(test, list contents, scope)` fault
    /// dictionaries under immutable content-fingerprint keys. Private per
    /// session by default; shared process-wide behind a
    /// [`SharedEngine`](crate::SharedEngine).
    store: Arc<ArtifactStore>,
}

impl Default for Session {
    fn default() -> Self {
        Session::new(ExecPolicy::default())
    }
}

impl Session {
    /// Builds a session from `policy`, spawning the resident worker pool when
    /// the policy resolves to more than one thread. The simulation scope
    /// defaults to [`CoverageConfig::thorough`]: an 8-cell memory,
    /// representative placements, detection required under both uniform
    /// backgrounds.
    #[must_use]
    pub fn new(policy: ExecPolicy) -> Session {
        let pool = match policy.threads {
            1 => None,
            threads => Some(Arc::new(WorkerPool::new(threads))),
        };
        Session::with_shared(policy, pool, Arc::new(ArtifactStore::new()))
    }

    /// Builds a cheap handle over already-shared state: the pool and store
    /// are `Arc` bumps, not fresh resources. This is how
    /// [`SharedEngine::session`](crate::SharedEngine::session) stamps out
    /// handles.
    pub(crate) fn with_shared(
        policy: ExecPolicy,
        pool: Option<Arc<WorkerPool>>,
        store: Arc<ArtifactStore>,
    ) -> Session {
        let scope = CoverageConfig::thorough();
        Session {
            policy,
            memory_cells: scope.memory_cells,
            strategy: scope.strategy,
            backgrounds: scope.backgrounds,
            backend: Arc::from(policy.backend.instance_with(policy.lane_width)),
            pool,
            store,
        }
    }

    /// Builds a session whose scope *and* policy mirror a legacy
    /// [`CoverageConfig`] — the bridge the deprecated free functions use.
    #[must_use]
    pub fn from_coverage_config(config: &CoverageConfig) -> Session {
        Session::new(
            ExecPolicy::default()
                .with_backend(config.backend)
                .with_threads(config.threads)
                .with_lane_width(config.lane_width),
        )
        .with_memory_cells(config.memory_cells)
        .with_strategy(config.strategy)
        .with_backgrounds(config.backgrounds.clone())
    }

    /// Replaces the simulated memory size (≥ 4 cells).
    #[must_use]
    pub fn with_memory_cells(mut self, memory_cells: usize) -> Session {
        self.memory_cells = memory_cells;
        self
    }

    /// Replaces the placement-enumeration strategy.
    #[must_use]
    pub fn with_strategy(mut self, strategy: PlacementStrategy) -> Session {
        self.strategy = strategy;
        self
    }

    /// Replaces the data backgrounds each fault must be detected under.
    #[must_use]
    pub fn with_backgrounds(mut self, backgrounds: Vec<InitialState>) -> Session {
        self.backgrounds = backgrounds;
        self
    }

    /// The execution policy the session was built from.
    #[must_use]
    pub fn policy(&self) -> ExecPolicy {
        self.policy
    }

    /// The simulated memory size in cells.
    #[must_use]
    pub fn memory_cells(&self) -> usize {
        self.memory_cells
    }

    /// The placement-enumeration strategy.
    #[must_use]
    pub fn strategy(&self) -> PlacementStrategy {
        self.strategy
    }

    /// The data backgrounds each fault must be detected under.
    #[must_use]
    pub fn backgrounds(&self) -> &[InitialState] {
        &self.backgrounds
    }

    /// The session's backend instance (shared, stateless).
    #[must_use]
    pub fn backend_instance(&self) -> Arc<dyn SimulationBackend> {
        Arc::clone(&self.backend)
    }

    /// The legacy [`CoverageConfig`] equivalent of this session — what the
    /// deprecated free-function path would have been called with.
    #[must_use]
    pub fn coverage_config(&self) -> CoverageConfig {
        CoverageConfig {
            memory_cells: self.memory_cells,
            strategy: self.strategy,
            backgrounds: self.backgrounds.clone(),
            backend: self.policy.backend,
            threads: self.policy.threads,
            lane_width: self.policy.lane_width,
        }
    }

    /// Returns `true` when the session owns a worker pool (resolved thread
    /// count > 1); `false` means every query runs serially on the caller.
    #[must_use]
    pub fn is_parallel(&self) -> bool {
        self.pool.is_some()
    }

    /// Total worker threads spawned since the session was built. Stays
    /// constant across queries — the observable pool-reuse guarantee.
    #[must_use]
    pub fn workers_spawned(&self) -> usize {
        self.pool.as_ref().map_or(0, |pool| pool.workers_spawned())
    }

    /// Number of fan-out jobs the session's pool has executed.
    #[must_use]
    pub fn jobs_executed(&self) -> usize {
        self.pool.as_ref().map_or(0, |pool| pool.generation())
    }

    /// Number of times a query was answered from the session's artifact store
    /// instead of re-enumerating target lanes — the observable caching
    /// guarantee, mirroring [`Session::workers_spawned`] for the pool. When
    /// the store is shared, this counts hits **across** every attached
    /// session.
    #[must_use]
    pub fn cache_hits(&self) -> usize {
        self.store.hits()
    }

    /// Number of distinct `(list, scope)` enumerations the session's store
    /// has cached.
    #[must_use]
    pub fn cached_artifacts(&self) -> usize {
        self.store.cached_artifacts()
    }

    /// Number of distinct `(test, list, scope)` fault dictionaries the
    /// session's store has cached.
    #[must_use]
    pub fn cached_dictionaries(&self) -> usize {
        self.store.cached_dictionaries()
    }

    /// The artifact store backing the session — shared with every other
    /// session handle of the same [`SharedEngine`](crate::SharedEngine).
    #[must_use]
    pub fn store(&self) -> Arc<ArtifactStore> {
        Arc::clone(&self.store)
    }

    /// Every fault target of `list` with its coverage lanes under the
    /// session's scope, memoised for the session's lifetime: the first call
    /// per `(list, scope)` enumerates, every later one returns the shared
    /// [`Arc`] (observable through [`Session::cache_hits`]).
    ///
    /// # Errors
    ///
    /// Returns [`SimulationError::MemoryTooSmall`](crate::SimulationError)
    /// when the session's memory cannot host the list's placements.
    ///
    /// # Examples
    ///
    /// ```
    /// use sram_fault_model::FaultList;
    /// use sram_sim::Session;
    ///
    /// let session = Session::default();
    /// let first = session.target_lanes(&FaultList::list_2()).unwrap();
    /// let second = session.target_lanes(&FaultList::list_2()).unwrap();
    /// assert!(std::sync::Arc::ptr_eq(&first, &second));
    /// assert_eq!(session.cache_hits(), 1);
    /// ```
    pub fn target_lanes(&self, list: &FaultList) -> Result<Arc<TargetLanes>> {
        self.target_lanes_scoped(list, self.memory_cells, self.strategy, &self.backgrounds)
    }

    /// Like [`Session::target_lanes`] with an explicit simulation scope —
    /// the entry point for pipeline stages (generator, minimiser) whose
    /// configuration may override the session's own scope. The cache is
    /// shared: entries are keyed by `(list contents, scope)`.
    ///
    /// # Errors
    ///
    /// Returns [`SimulationError::MemoryTooSmall`](crate::SimulationError)
    /// when `memory_cells` cannot host the list's placements.
    pub fn target_lanes_scoped(
        &self,
        list: &FaultList,
        memory_cells: usize,
        strategy: PlacementStrategy,
        backgrounds: &[InitialState],
    ) -> Result<Arc<TargetLanes>> {
        let key = ArtifactKey::new(list, memory_cells, strategy, backgrounds);
        let snapshots = self.store.snapshots();
        self.store.target_lanes(&key, || {
            // Replay the crash-safe snapshot first, when one is attached: a
            // valid file short-circuits the whole enumeration, anything else
            // (miss, corruption, I/O failure) degrades to the build below.
            if let Some(snapshots) = &snapshots {
                if let Some(lanes) = snapshots.load_lanes(&key, list) {
                    return Ok(Arc::new(lanes));
                }
            }
            let mut entries = Vec::new();
            for target in enumerate_targets(list) {
                let lanes = enumerate_lanes(&target, memory_cells, strategy, backgrounds)?;
                entries.push((target, lanes));
            }
            let built = Arc::new(entries);
            if let Some(snapshots) = &snapshots {
                snapshots.store_lanes(&key, &built);
            }
            Ok(built)
        })
    }

    /// Fans `map` out over the session's resident workers, returning results
    /// in item order (serially on the caller when the session is not
    /// parallel). This is the deterministic-merge primitive the downstream
    /// crates (generator, minimiser) build their sharding on.
    pub fn execute<T, R, F>(&self, items: Arc<Vec<T>>, map: F) -> Vec<R>
    where
        T: Send + Sync + 'static,
        R: Send + 'static,
        F: Fn(&T) -> R + Send + Sync + 'static,
    {
        match &self.pool {
            Some(pool) => pool.map(items, map),
            None => items.iter().map(map).collect(),
        }
    }

    /// Measures the coverage of `test` over `list` under the session's scope
    /// and policy — the session form of
    /// [`measure_coverage`](crate::measure_coverage), byte-identical to it for
    /// every backend and thread count.
    ///
    /// # Examples
    ///
    /// ```
    /// use march_test::catalog;
    /// use sram_fault_model::FaultList;
    /// use sram_sim::Session;
    ///
    /// let session = Session::default();
    /// let report = session.coverage(&catalog::march_ss(), &FaultList::unlinked_static());
    /// assert!(report.is_complete());
    /// ```
    #[must_use]
    pub fn coverage(&self, test: &MarchTest, list: &FaultList) -> CoverageReport {
        // lint: allow(unwrap) — the infallible convenience wrapper; callers
        // that can see scope errors use `try_coverage` instead.
        self.try_coverage(test, list).expect(
            "session scope hosts the fault-list placements (try_coverage surfaces the error)",
        )
    }

    /// Fallible form of [`Session::coverage`]: the byte-identical report, or
    /// a typed error when the session's memory scope cannot host the list's
    /// placements (e.g. fewer than 4 cells for linked faults).
    ///
    /// # Errors
    ///
    /// Returns [`SimulationError::MemoryTooSmall`](crate::SimulationError)
    /// for undersized memories.
    pub fn try_coverage(&self, test: &MarchTest, list: &FaultList) -> Result<CoverageReport> {
        let target_lanes = self.target_lanes(list)?;
        let first_escapes: Vec<Option<Escape>> = match &self.pool {
            Some(pool) => {
                let test = test.clone();
                let backend = Arc::clone(&self.backend);
                let memory_cells = self.memory_cells;
                pool.map(Arc::clone(&target_lanes), move |(target, lanes)| {
                    lane_escape(backend.as_ref(), &test, target, lanes, memory_cells)
                })
            }
            None => target_lanes
                .iter()
                .map(|(target, lanes)| {
                    lane_escape(
                        self.backend.as_ref(),
                        test,
                        target,
                        lanes,
                        self.memory_cells,
                    )
                })
                .collect(),
        };
        let targets: Vec<TargetKind> = target_lanes
            .iter()
            .map(|(target, _)| target.clone())
            .collect();
        Ok(assemble_coverage_report(
            test.name(),
            list.name(),
            &targets,
            first_escapes,
        ))
    }

    /// Runs a seeded Monte-Carlo coverage campaign of `test` over `list`:
    /// `config.draws` lanes are sampled from the **exhaustive**
    /// `(target, placement, background)` instance space (regardless of the
    /// session's placement strategy — sampling only makes sense over the full
    /// space), simulated by the session's backend in packed lane batches, and
    /// summarised as a point estimate with a Wilson-score confidence
    /// interval.
    ///
    /// The draw sequence is a pure function of `config.seed` and the space,
    /// and shards merge deterministically in draw order, so the report is
    /// byte-identical across backends, thread counts and lane widths. A
    /// request covering the whole space degenerates to sampling without
    /// replacement in lane order — verdict-identical to
    /// [`Session::try_coverage`] under exhaustive placements.
    ///
    /// # Errors
    ///
    /// Returns [`SimulationError::InvalidCampaign`](crate::SimulationError)
    /// for a degenerate configuration or an empty space, and
    /// [`SimulationError::MemoryTooSmall`](crate::SimulationError) when the
    /// session's memory cannot host the list's placements.
    pub fn try_campaign(
        &self,
        test: &MarchTest,
        list: &FaultList,
        config: &CampaignConfig,
    ) -> Result<CampaignReport> {
        config.validate()?;
        let space = Arc::new(CampaignSpace::build(
            list,
            self.memory_cells,
            &self.backgrounds,
        )?);
        let without_replacement = config.draws >= space.total();
        let indices = sample_draw_indices(config.seed, space.total(), config.draws);
        let draws = indices.len() as u64;
        let shards: Vec<Vec<u64>> = indices.chunks(CAMPAIGN_SHARD).map(<[_]>::to_vec).collect();
        let verdict_shards: Vec<Vec<bool>> = {
            let test = test.clone();
            let backend = Arc::clone(&self.backend);
            let space = Arc::clone(&space);
            let memory_cells = self.memory_cells;
            self.execute(Arc::new(shards), move |shard| {
                campaign_shard_verdicts(backend.as_ref(), &test, &space, shard, memory_cells)
            })
        };
        let verdicts: Vec<bool> = verdict_shards.into_iter().flatten().collect();
        let detected = verdicts.iter().filter(|&&lane| lane).count() as u64;
        let mut trace = Vec::new();
        let mut truncated = false;
        for (position, (&index, _)) in indices
            .iter()
            .zip(&verdicts)
            .enumerate()
            .filter(|(_, (_, &detected_lane))| !detected_lane)
        {
            if trace.len() >= config.max_escapes {
                truncated = true;
                break;
            }
            let (slot, lane) = space.decode(index);
            trace.push(CampaignEscape {
                draw: position as u64,
                escape: Escape {
                    target: space.target(slot).clone(),
                    cells: lane.cells,
                    background: lane.background,
                },
            });
        }
        Ok(CampaignReport::new(
            test.name(),
            list.name(),
            space.total(),
            draws,
            detected,
            config.seed,
            config.confidence,
            without_replacement,
            trace,
            truncated,
        ))
    }

    /// Infallible form of [`Session::try_campaign`] for validated
    /// configurations.
    ///
    /// # Panics
    ///
    /// Panics when the configuration or the session scope is degenerate —
    /// callers that can see those errors use [`Session::try_campaign`].
    #[must_use]
    pub fn campaign(
        &self,
        test: &MarchTest,
        list: &FaultList,
        config: &CampaignConfig,
    ) -> CampaignReport {
        self.try_campaign(test, list, config)
            // lint: allow(unwrap) — the infallible convenience wrapper; callers
            // that can see configuration errors use `try_campaign` instead.
            .expect("campaign configuration is valid (try_campaign surfaces the error)")
    }

    /// Executes `test` against a memory with `fault` injected, under the
    /// session's memory size and first background — the session form of
    /// [`run_march`](crate::run_march).
    ///
    /// # Errors
    ///
    /// Returns [`SimulationError`](crate::SimulationError) when the session's
    /// memory scope cannot host the fault instance.
    ///
    /// # Examples
    ///
    /// ```
    /// use march_test::catalog;
    /// use sram_fault_model::Ffm;
    /// use sram_sim::{InjectedFault, Session};
    ///
    /// let session = Session::default();
    /// let tf = Ffm::TransitionFault.fault_primitives()[0].clone();
    /// let fault = InjectedFault::single_cell(tf, 3, session.memory_cells())?;
    /// let run = session.run(&catalog::march_ss(), &fault)?;
    /// assert!(run.detected());
    /// # Ok::<(), sram_sim::SimulationError>(())
    /// ```
    pub fn run(&self, test: &MarchTest, fault: &InjectedFault) -> Result<MarchRun> {
        let mut simulator = self.device()?;
        simulator.inject(fault.clone());
        Ok(run_march(test, &mut simulator))
    }

    /// Like [`Session::run`] for a linked-fault instance.
    ///
    /// # Errors
    ///
    /// Returns [`SimulationError`](crate::SimulationError) when the session's
    /// memory scope cannot host the instance.
    pub fn run_linked(&self, test: &MarchTest, fault: &LinkedFaultInstance) -> Result<MarchRun> {
        let mut simulator = self.device()?;
        simulator.inject_linked(fault);
        Ok(run_march(test, &mut simulator))
    }

    /// Builds a [`FaultDictionary`] for `test` over `list` under the session's
    /// scope — the pre-computed syndrome database
    /// [`Session::diagnose`] looks candidates up in.
    ///
    /// Dictionaries are memoised per `(test, list contents, scope)` through
    /// the session's artifact cache: the first call per key simulates the
    /// whole fault space, every later one returns the shared [`Arc`]
    /// (observable through [`Session::cache_hits`], exactly like the
    /// target-lane cache). Keys are immutable, so entries are never
    /// invalidated.
    #[must_use]
    pub fn dictionary(&self, test: &MarchTest, list: &FaultList) -> Arc<FaultDictionary> {
        // Dictionaries always enumerate placements exhaustively (diagnosis
        // needs localisation) and simulate only the first data background, so
        // the key carries exactly that scope: sessions differing only in
        // coverage strategy or trailing backgrounds share one entry.
        let background = self
            .backgrounds
            .first()
            .cloned()
            .unwrap_or(InitialState::AllOne);
        let key = DictionaryKey::new(test, list, self.memory_cells, background);
        let snapshots = self.store.snapshots();
        self.store.dictionary(&key, || {
            if let Some(snapshots) = &snapshots {
                if let Some(dictionary) = snapshots.load_dictionary(&key, list) {
                    return Arc::new(dictionary);
                }
            }
            let built = Arc::new(FaultDictionary::build(test, list, &self.coverage_config()));
            if let Some(snapshots) = &snapshots {
                snapshots.store_dictionary(&key, &built, list);
            }
            built
        })
    }

    /// Diagnoses an observed `syndrome` against a pre-computed fault
    /// `dictionary`: the returned report holds every fault instance whose
    /// recorded syndrome equals the observed one (one index lookup — the fast
    /// path for repeated queries against the same test and fault space).
    ///
    /// # Examples
    ///
    /// ```
    /// use march_test::catalog;
    /// use sram_fault_model::{FaultListBuilder, Ffm};
    /// use sram_sim::{InjectedFault, Report, Session, Syndrome};
    ///
    /// let session = Session::default().with_memory_cells(6);
    /// let list = FaultListBuilder::new("tf").family(Ffm::TransitionFault).build()?;
    /// let dictionary = session.dictionary(&catalog::march_ss(), &list);
    ///
    /// // A device with an (unknown to us) transition fault on cell 4.
    /// let tf = Ffm::TransitionFault.fault_primitives()[0].clone();
    /// let fault = InjectedFault::single_cell(tf, 4, 6)?;
    /// let syndrome = session.observe(&catalog::march_ss(), &fault)?;
    ///
    /// let report = session.diagnose(&syndrome, &dictionary);
    /// assert!(report.candidates().iter().all(|c| c.cells.victim == 4));
    /// println!("{}", report.to_json());
    /// # Ok::<(), Box<dyn std::error::Error>>(())
    /// ```
    #[must_use]
    pub fn diagnose(&self, syndrome: &Syndrome, dictionary: &FaultDictionary) -> DiagnosisReport {
        let candidates = dictionary
            .lookup(syndrome)
            .into_iter()
            .filter(|entry| !entry.syndrome.is_empty())
            .map(|entry| crate::DiagnosisCandidate {
                target: entry.target.clone(),
                cells: entry.cells,
            })
            .collect();
        DiagnosisReport::new(dictionary.test_name(), syndrome.clone(), candidates)
    }

    /// Diagnoses `syndrome` by a full simulation sweep of `list` under `test`
    /// — the session form of [`diagnose`](crate::diagnose()), for one-off
    /// queries where building a dictionary would not amortise.
    ///
    /// The sweep shards its instance space over the session's resident worker
    /// pool in fixed-size ranges; each shard re-uses one scratch simulator
    /// (reset per instance with `clone_from`, so the memory buffers are
    /// allocated once per shard, not once per instance). Shard results are
    /// concatenated in enumeration order, so the report is byte-identical to
    /// the free function at every thread count.
    #[must_use]
    pub fn diagnose_sweep(
        &self,
        test: &MarchTest,
        syndrome: &Syndrome,
        list: &FaultList,
    ) -> DiagnosisReport {
        if syndrome.is_empty() {
            return DiagnosisReport::new(test.name(), syndrome.clone(), Vec::new());
        }
        let instances = enumerate_diagnosis_instances(list, &self.coverage_config());
        let shards: Vec<Vec<(TargetKind, InstanceCells)>> = instances
            .chunks(DIAGNOSIS_SHARD)
            .map(<[_]>::to_vec)
            .collect();
        let test_owned = test.clone();
        let observed = syndrome.clone();
        let memory_cells = self.memory_cells;
        let background = self
            .backgrounds
            .first()
            .cloned()
            .unwrap_or(InitialState::AllOne);
        let matches: Vec<Vec<DiagnosisCandidate>> = self.execute(Arc::new(shards), move |shard| {
            let pristine = FaultSimulator::new(memory_cells, &background)
                // lint: allow(unwrap) — the same scope was validated when the
                // session enumerated the fault list; a failure here means the
                // validation upstream regressed.
                .expect("diagnosis memory configuration is valid");
            let mut scratch = pristine.clone();
            let mut found = Vec::new();
            for (target, cells) in shard {
                scratch.clone_from(&pristine);
                inject_diagnosis_instance(&mut scratch, target, *cells, memory_cells);
                if Syndrome::observe(&test_owned, &mut scratch) == observed {
                    found.push(DiagnosisCandidate {
                        target: target.clone(),
                        cells: *cells,
                    });
                }
            }
            found
        });
        DiagnosisReport::new(
            test.name(),
            syndrome.clone(),
            matches.into_iter().flatten().collect(),
        )
    }

    /// Runs `test` on a device carrying `fault` and returns the observed
    /// syndrome — the input to [`Session::diagnose`].
    ///
    /// # Errors
    ///
    /// Returns [`SimulationError`](crate::SimulationError) when the session's
    /// memory scope cannot host the fault instance.
    pub fn observe(&self, test: &MarchTest, fault: &InjectedFault) -> Result<Syndrome> {
        let mut simulator = self.device()?;
        simulator.inject(fault.clone());
        Ok(Syndrome::observe(test, &mut simulator))
    }

    /// A fresh fault-free simulator with the session's memory size and first
    /// background (all-zero under the default thorough scope).
    fn device(&self) -> Result<FaultSimulator> {
        let background = self
            .backgrounds
            .first()
            .cloned()
            .unwrap_or(InitialState::AllOne);
        FaultSimulator::new(self.memory_cells, &background)
    }
}

/// The detection verdicts of one campaign shard, in draw order: the shard's
/// draws are decoded, grouped per target (remembering each draw's slot), and
/// every group streams through the backend's lane batching — `LaneWidth`-sized
/// packed waves with dead-lane masking on the ragged final word — before the
/// verdicts scatter back to their draw positions.
fn campaign_shard_verdicts(
    backend: &dyn SimulationBackend,
    test: &MarchTest,
    space: &CampaignSpace,
    shard: &[u64],
    memory_cells: usize,
) -> Vec<bool> {
    let mut groups: BTreeMap<usize, (Vec<usize>, Vec<CoverageLane>)> = BTreeMap::new();
    for (position, &index) in shard.iter().enumerate() {
        let (slot, lane) = space.decode(index);
        let entry = groups.entry(slot).or_default();
        entry.0.push(position);
        entry.1.push(lane);
    }
    let mut verdicts = vec![false; shard.len()];
    for (slot, (positions, lanes)) in groups {
        let group = backend.lane_verdicts(test, space.target(slot), &lanes, memory_cells);
        for (position, verdict) in positions.into_iter().zip(group) {
            verdicts[position] = verdict;
        }
    }
    verdicts
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{diagnose, measure_coverage, BackendKind, LaneWidth, Report as _};
    use march_test::catalog;
    use sram_fault_model::Ffm;

    #[test]
    fn session_coverage_matches_the_legacy_path() {
        let list = FaultList::list_2();
        let test = catalog::march_c_minus();
        let legacy = measure_coverage(&test, &list, &CoverageConfig::thorough());
        for threads in [1usize, 2, 0] {
            for backend in [BackendKind::Scalar, BackendKind::Packed] {
                let session = Session::new(
                    ExecPolicy::default()
                        .with_backend(backend)
                        .with_threads(threads),
                );
                assert_eq!(
                    session.coverage(&test, &list),
                    legacy,
                    "backend {backend}, {threads} threads"
                );
            }
        }
    }

    #[test]
    fn two_sequential_calls_share_the_pool() {
        let session = Session::new(ExecPolicy::default().with_threads(4));
        assert!(session.is_parallel());
        let spawned = session.workers_spawned();
        assert_eq!(spawned, 3);
        let list = FaultList::list_1();
        let _ = session.coverage(&catalog::march_sl(), &list);
        assert_eq!(session.workers_spawned(), spawned);
        let _ = session.coverage(&catalog::march_ss(), &list);
        assert_eq!(session.workers_spawned(), spawned);
        assert_eq!(session.jobs_executed(), 2);
    }

    #[test]
    fn serial_sessions_spawn_nothing() {
        let session = Session::default();
        assert!(!session.is_parallel());
        assert_eq!(session.workers_spawned(), 0);
        let _ = session.coverage(&catalog::march_ss(), &FaultList::unlinked_static());
        assert_eq!(session.workers_spawned(), 0);
        assert_eq!(session.jobs_executed(), 0);
    }

    #[test]
    fn run_and_observe_match_the_manual_simulator() {
        let session = Session::default();
        let tf = Ffm::TransitionFault.fault_primitives()[0].clone();
        let fault = InjectedFault::single_cell(tf, 3, 8).unwrap();
        let run = session.run(&catalog::march_ss(), &fault).unwrap();

        let mut manual = FaultSimulator::new(8, &InitialState::AllZero).unwrap();
        manual.inject(fault.clone());
        let reference = run_march(&catalog::march_ss(), &mut manual);
        assert_eq!(run, reference);
        assert_eq!(
            session.observe(&catalog::march_ss(), &fault).unwrap(),
            Syndrome::from_run(&reference)
        );
    }

    #[test]
    fn dictionary_diagnosis_round_trip() {
        let session = Session::default().with_memory_cells(6);
        let list = FaultList::list_2();
        let dictionary = session.dictionary(&catalog::march_abl1(), &list);
        let fault = list.linked()[0].clone();
        let cells =
            crate::enumerate_placements(fault.topology(), 6, PlacementStrategy::Representative)
                .unwrap()[0];
        let instance = LinkedFaultInstance::new(fault, cells, 6).unwrap();
        let run = session
            .run_linked(&catalog::march_abl1(), &instance)
            .unwrap();
        let syndrome = Syndrome::from_run(&run);
        assert!(!syndrome.is_empty());
        let report = session.diagnose(&syndrome, &dictionary);
        assert!(!report.is_unexplained());
        assert!(report
            .candidates()
            .iter()
            .any(|candidate| candidate.cells == cells));
    }

    #[test]
    fn sweep_diagnosis_matches_the_free_function() {
        let session = Session::default().with_memory_cells(6);
        let tf = Ffm::TransitionFault.fault_primitives()[0].clone();
        let fault = InjectedFault::single_cell(tf, 2, 6).unwrap();
        let syndrome = session.observe(&catalog::march_ss(), &fault).unwrap();
        let list = FaultList::unlinked_static();
        let report = session.diagnose_sweep(&catalog::march_ss(), &syndrome, &list);
        let reference = diagnose(
            &catalog::march_ss(),
            &syndrome,
            &list,
            &session.coverage_config(),
        );
        assert_eq!(report.candidates(), &reference[..]);
        assert_eq!(report.test_name(), "March SS");

        // The sharded parallel sweep is byte-identical to the serial one,
        // and an empty syndrome short-circuits to an unexplained report.
        for threads in [2usize, 0] {
            let parallel =
                Session::new(ExecPolicy::default().with_threads(threads)).with_memory_cells(6);
            let sharded = parallel.diagnose_sweep(&catalog::march_ss(), &syndrome, &list);
            assert_eq!(sharded, report, "{threads} threads");
        }
        let passing = session.diagnose_sweep(&catalog::march_ss(), &Syndrome::new(), &list);
        assert!(passing.candidates().is_empty());
        assert!(!passing.is_unexplained());
    }

    #[test]
    fn lane_width_threads_through_the_session() {
        let list = FaultList::list_2();
        let test = catalog::march_sl();
        let baseline = Session::default().coverage(&test, &list);
        for width in LaneWidth::ALL {
            let session = Session::new(ExecPolicy::default().with_lane_width(width));
            assert_eq!(session.coverage_config().lane_width, width);
            assert_eq!(session.coverage(&test, &list), baseline, "width {width}");
            let rebuilt = Session::from_coverage_config(&session.coverage_config());
            assert_eq!(rebuilt.policy().lane_width, width);
        }
    }

    #[test]
    fn artifact_cache_memoises_target_lanes_per_list_and_scope() {
        let session = Session::default();
        assert_eq!(session.cache_hits(), 0);
        assert_eq!(session.cached_artifacts(), 0);

        // Same list, same scope: one enumeration, then hits sharing the Arc.
        let first = session.target_lanes(&FaultList::list_2()).unwrap();
        assert_eq!(session.cache_hits(), 0);
        assert_eq!(session.cached_artifacts(), 1);
        let second = session.target_lanes(&FaultList::list_2()).unwrap();
        assert!(Arc::ptr_eq(&first, &second));
        assert_eq!(session.cache_hits(), 1);

        // A different scope keys a different entry.
        let exhaustive = session
            .target_lanes_scoped(
                &FaultList::list_2(),
                6,
                PlacementStrategy::Exhaustive,
                session.backgrounds(),
            )
            .unwrap();
        assert!(!Arc::ptr_eq(&first, &exhaustive));
        assert_eq!(session.cache_hits(), 1);
        assert_eq!(session.cached_artifacts(), 2);

        // A different list under the same scope keys a third entry, and the
        // content fingerprint distinguishes lists sharing a name.
        let other = session.target_lanes(&FaultList::unlinked_static()).unwrap();
        assert_eq!(session.cached_artifacts(), 3);
        assert_ne!(other.len(), first.len());
        let renamed = FaultList::new("Fault List #2 (single-cell linked faults)");
        let empty = session.target_lanes(&renamed).unwrap();
        assert!(empty.is_empty());
        assert_eq!(session.cached_artifacts(), 4);
    }

    #[test]
    fn dictionary_cache_memoises_per_test_list_and_scope() {
        let session = Session::default().with_memory_cells(6);
        assert_eq!(session.cached_dictionaries(), 0);
        let list = FaultList::list_2();

        // First build populates the cache; the repeat is a hit sharing the Arc.
        let first = session.dictionary(&catalog::march_abl1(), &list);
        assert_eq!(session.cache_hits(), 0);
        assert_eq!(session.cached_dictionaries(), 1);
        let second = session.dictionary(&catalog::march_abl1(), &list);
        assert!(Arc::ptr_eq(&first, &second));
        assert_eq!(session.cache_hits(), 1);
        assert_eq!(session.cached_dictionaries(), 1);

        // A different test keys a different entry...
        let other_test = session.dictionary(&catalog::march_ss(), &list);
        assert!(!Arc::ptr_eq(&first, &other_test));
        assert_eq!(session.cached_dictionaries(), 2);
        assert_eq!(session.cache_hits(), 1);

        // ...as does a test sharing the name but not the notation.
        let renamed = catalog::march_ss().with_name("March ABL1");
        let aliased = session.dictionary(&renamed, &list);
        assert!(!Arc::ptr_eq(&first, &aliased));
        assert_eq!(session.cached_dictionaries(), 3);

        // The cached dictionary is byte-identical to an uncached build.
        let fresh =
            FaultDictionary::build(&catalog::march_abl1(), &list, &session.coverage_config());
        assert_eq!(first.len(), fresh.len());
        assert_eq!(first.entries(), fresh.entries());

        // The dictionary cache and the target-lane cache share the hit
        // counter but not the entries.
        assert_eq!(session.cached_artifacts(), 0);
    }

    #[test]
    fn repeated_queries_share_the_enumeration() {
        // generate/minimise/verify all funnel through the cache: repeated
        // coverage of the same list re-enumerates nothing.
        let session = Session::default();
        let list = FaultList::list_2();
        let baseline = session.coverage(&catalog::march_sl(), &list);
        assert_eq!(session.cache_hits(), 0);
        let repeat = session.coverage(&catalog::march_sl(), &list);
        assert_eq!(repeat, baseline);
        assert_eq!(session.cache_hits(), 1);
        let other_test = session.coverage(&catalog::march_ss(), &list);
        assert_eq!(session.cache_hits(), 2);
        assert_eq!(other_test.total(), baseline.total());
        // The cached enumeration yields the same report as a fresh session.
        assert_eq!(
            Session::default().coverage(&catalog::march_sl(), &list),
            baseline
        );
    }

    #[test]
    fn full_space_campaign_matches_exhaustive_coverage() {
        let session = Session::default()
            .with_memory_cells(6)
            .with_strategy(PlacementStrategy::Exhaustive);
        let list = FaultList::list_1();
        let test = catalog::mats_plus();
        let exhaustive = session.try_coverage(&test, &list).unwrap();
        let config = CampaignConfig::default()
            .with_draws(crate::MAX_CAMPAIGN_DRAWS)
            .with_max_escapes(usize::MAX);
        let report = session.try_campaign(&test, &list, &config).unwrap();
        assert!(report.without_replacement());
        assert_eq!(report.draws(), report.space());
        assert_eq!(report.detected() + report.escapes_found(), report.draws());
        assert!(!report.trace_truncated());
        // The set of escaping targets is exactly the exhaustive escape set.
        let campaign_targets: std::collections::BTreeSet<String> = report
            .trace()
            .iter()
            .map(|entry| entry.escape.target.to_string())
            .collect();
        let exhaustive_targets: std::collections::BTreeSet<String> = exhaustive
            .escapes()
            .iter()
            .map(|escape| escape.target.to_string())
            .collect();
        assert_eq!(campaign_targets, exhaustive_targets);
        assert_eq!(
            exhaustive.total() - exhaustive.covered(),
            campaign_targets.len()
        );
    }

    #[test]
    fn campaign_reports_are_identical_across_policies() {
        let list = FaultList::list_2().with_address_decoder_faults();
        let test = catalog::march_c_minus();
        let config = CampaignConfig::default().with_draws(512).with_seed(11);
        let baseline = Session::new(ExecPolicy::default().with_threads(1))
            .with_memory_cells(16)
            .try_campaign(&test, &list, &config)
            .unwrap()
            .to_json();
        for threads in [2usize, 0] {
            for backend in [BackendKind::Scalar, BackendKind::Packed] {
                let report = Session::new(
                    ExecPolicy::default()
                        .with_backend(backend)
                        .with_threads(threads),
                )
                .with_memory_cells(16)
                .try_campaign(&test, &list, &config)
                .unwrap();
                assert_eq!(
                    report.to_json(),
                    baseline,
                    "backend {backend}, {threads} threads"
                );
            }
        }
        // A different seed draws a different prefix.
        let other = Session::new(ExecPolicy::default().with_threads(1))
            .with_memory_cells(16)
            .try_campaign(&test, &list, &config.clone().with_seed(12))
            .unwrap();
        assert_ne!(other.to_json(), baseline);
    }

    #[test]
    fn campaign_surfaces_typed_configuration_errors() {
        let session = Session::default();
        let list = FaultList::list_2();
        let bad = CampaignConfig::default().with_confidence(2.0);
        assert!(matches!(
            session.try_campaign(&catalog::march_ss(), &list, &bad),
            Err(crate::SimulationError::InvalidCampaign(_))
        ));
        let small = Session::default().with_memory_cells(2);
        assert!(matches!(
            small.try_campaign(&catalog::march_ss(), &list, &CampaignConfig::default()),
            Err(crate::SimulationError::MemoryTooSmall { .. })
        ));
    }

    #[test]
    fn scope_builders_and_accessors() {
        let session = Session::default()
            .with_memory_cells(6)
            .with_strategy(PlacementStrategy::Exhaustive)
            .with_backgrounds(vec![InitialState::AllOne]);
        assert_eq!(session.memory_cells(), 6);
        assert_eq!(session.strategy(), PlacementStrategy::Exhaustive);
        assert_eq!(session.backgrounds(), &[InitialState::AllOne]);
        let config = session.coverage_config();
        assert_eq!(config.memory_cells, 6);
        assert_eq!(config.backend, BackendKind::Packed);
        let rebuilt = Session::from_coverage_config(&config);
        assert_eq!(rebuilt.coverage_config(), config);
        assert_eq!(session.policy().batch, 0);
        assert_eq!(session.backend_instance().name(), "packed");
    }
}
