//! The session execution API: one long-lived engine handle for the whole
//! pipeline.
//!
//! A [`Session`] is built **once** from an [`ExecPolicy`] and owns everything
//! execution-related: the simulation backend instance, the candidate-batching
//! and cost-model knobs, and — when the policy asks for more than one worker
//! thread — a persistent [`WorkerPool`] that outlives individual queries, so
//! repeated coverage / generation / diagnosis calls stop paying per-call
//! thread spawn. Every result is byte-identical to the legacy free functions
//! (`measure_coverage`, `run_march`, `diagnose`), which are now thin shims
//! constructing a throwaway session.

use std::sync::Arc;

use march_test::MarchTest;
use sram_fault_model::FaultList;

use crate::backend::SimulationBackend;
use crate::coverage::{assemble_coverage_report, enumerate_targets, target_escape, Escape};
use crate::parallel::WorkerPool;
use crate::report::DiagnosisReport;
use crate::run::run_march;
use crate::{
    diagnose, CoverageConfig, CoverageReport, ExecPolicy, FaultDictionary, FaultSimulator,
    InitialState, InjectedFault, LinkedFaultInstance, MarchRun, PlacementStrategy, Result,
    Syndrome,
};

/// A reusable engine handle owning the execution policy and the resident
/// worker pool of the simulation pipeline.
///
/// The session also carries the *simulation scope* — memory size, placement
/// strategy and data backgrounds — defaulting to the paper's thorough
/// verification setup (8 cells, representative placements, both uniform
/// backgrounds). Execution policy is fixed at construction; the scope is
/// adjustable with the builder methods.
///
/// # Examples
///
/// ```
/// use march_test::catalog;
/// use sram_fault_model::FaultList;
/// use sram_sim::{ExecPolicy, Session};
///
/// let session = Session::new(ExecPolicy::default().with_threads(2));
/// // Repeated queries re-use the same worker pool...
/// let ss = session.coverage(&catalog::march_ss(), &FaultList::unlinked_static());
/// let sl = session.coverage(&catalog::march_sl(), &FaultList::list_2());
/// assert!(ss.is_complete() && sl.is_complete());
/// // ...no new workers were spawned between the calls.
/// assert_eq!(session.workers_spawned(), 1);
/// ```
#[derive(Debug)]
pub struct Session {
    policy: ExecPolicy,
    memory_cells: usize,
    strategy: PlacementStrategy,
    backgrounds: Vec<InitialState>,
    backend: Arc<dyn SimulationBackend>,
    pool: Option<WorkerPool>,
}

impl Default for Session {
    fn default() -> Self {
        Session::new(ExecPolicy::default())
    }
}

impl Session {
    /// Builds a session from `policy`, spawning the resident worker pool when
    /// the policy resolves to more than one thread. The simulation scope
    /// defaults to [`CoverageConfig::thorough`]: an 8-cell memory,
    /// representative placements, detection required under both uniform
    /// backgrounds.
    #[must_use]
    pub fn new(policy: ExecPolicy) -> Session {
        let scope = CoverageConfig::thorough();
        let pool = match policy.threads {
            1 => None,
            threads => Some(WorkerPool::new(threads)),
        };
        Session {
            policy,
            memory_cells: scope.memory_cells,
            strategy: scope.strategy,
            backgrounds: scope.backgrounds,
            backend: Arc::from(policy.backend.instance()),
            pool,
        }
    }

    /// Builds a session whose scope *and* policy mirror a legacy
    /// [`CoverageConfig`] — the bridge the deprecated free functions use.
    #[must_use]
    pub fn from_coverage_config(config: &CoverageConfig) -> Session {
        Session::new(
            ExecPolicy::default()
                .with_backend(config.backend)
                .with_threads(config.threads),
        )
        .with_memory_cells(config.memory_cells)
        .with_strategy(config.strategy)
        .with_backgrounds(config.backgrounds.clone())
    }

    /// Replaces the simulated memory size (≥ 4 cells).
    #[must_use]
    pub fn with_memory_cells(mut self, memory_cells: usize) -> Session {
        self.memory_cells = memory_cells;
        self
    }

    /// Replaces the placement-enumeration strategy.
    #[must_use]
    pub fn with_strategy(mut self, strategy: PlacementStrategy) -> Session {
        self.strategy = strategy;
        self
    }

    /// Replaces the data backgrounds each fault must be detected under.
    #[must_use]
    pub fn with_backgrounds(mut self, backgrounds: Vec<InitialState>) -> Session {
        self.backgrounds = backgrounds;
        self
    }

    /// The execution policy the session was built from.
    #[must_use]
    pub fn policy(&self) -> ExecPolicy {
        self.policy
    }

    /// The simulated memory size in cells.
    #[must_use]
    pub fn memory_cells(&self) -> usize {
        self.memory_cells
    }

    /// The placement-enumeration strategy.
    #[must_use]
    pub fn strategy(&self) -> PlacementStrategy {
        self.strategy
    }

    /// The data backgrounds each fault must be detected under.
    #[must_use]
    pub fn backgrounds(&self) -> &[InitialState] {
        &self.backgrounds
    }

    /// The session's backend instance (shared, stateless).
    #[must_use]
    pub fn backend_instance(&self) -> Arc<dyn SimulationBackend> {
        Arc::clone(&self.backend)
    }

    /// The legacy [`CoverageConfig`] equivalent of this session — what the
    /// deprecated free-function path would have been called with.
    #[must_use]
    pub fn coverage_config(&self) -> CoverageConfig {
        CoverageConfig {
            memory_cells: self.memory_cells,
            strategy: self.strategy,
            backgrounds: self.backgrounds.clone(),
            backend: self.policy.backend,
            threads: self.policy.threads,
        }
    }

    /// Returns `true` when the session owns a worker pool (resolved thread
    /// count > 1); `false` means every query runs serially on the caller.
    #[must_use]
    pub fn is_parallel(&self) -> bool {
        self.pool.is_some()
    }

    /// Total worker threads spawned since the session was built. Stays
    /// constant across queries — the observable pool-reuse guarantee.
    #[must_use]
    pub fn workers_spawned(&self) -> usize {
        self.pool.as_ref().map_or(0, WorkerPool::workers_spawned)
    }

    /// Number of fan-out jobs the session's pool has executed.
    #[must_use]
    pub fn jobs_executed(&self) -> usize {
        self.pool.as_ref().map_or(0, WorkerPool::generation)
    }

    /// Fans `map` out over the session's resident workers, returning results
    /// in item order (serially on the caller when the session is not
    /// parallel). This is the deterministic-merge primitive the downstream
    /// crates (generator, minimiser) build their sharding on.
    pub fn execute<T, R, F>(&self, items: Arc<Vec<T>>, map: F) -> Vec<R>
    where
        T: Send + Sync + 'static,
        R: Send + 'static,
        F: Fn(&T) -> R + Send + Sync + 'static,
    {
        match &self.pool {
            Some(pool) => pool.map(items, map),
            None => items.iter().map(map).collect(),
        }
    }

    /// Measures the coverage of `test` over `list` under the session's scope
    /// and policy — the session form of
    /// [`measure_coverage`](crate::measure_coverage), byte-identical to it for
    /// every backend and thread count.
    ///
    /// # Examples
    ///
    /// ```
    /// use march_test::catalog;
    /// use sram_fault_model::FaultList;
    /// use sram_sim::Session;
    ///
    /// let session = Session::default();
    /// let report = session.coverage(&catalog::march_ss(), &FaultList::unlinked_static());
    /// assert!(report.is_complete());
    /// ```
    #[must_use]
    pub fn coverage(&self, test: &MarchTest, list: &FaultList) -> CoverageReport {
        let targets = Arc::new(enumerate_targets(list));
        let first_escapes: Vec<Option<Escape>> = match &self.pool {
            Some(pool) => {
                let test = test.clone();
                let backend = Arc::clone(&self.backend);
                let memory_cells = self.memory_cells;
                let strategy = self.strategy;
                let backgrounds = self.backgrounds.clone();
                pool.map(Arc::clone(&targets), move |target| {
                    target_escape(
                        backend.as_ref(),
                        &test,
                        target,
                        memory_cells,
                        strategy,
                        &backgrounds,
                    )
                })
            }
            None => targets
                .iter()
                .map(|target| {
                    target_escape(
                        self.backend.as_ref(),
                        test,
                        target,
                        self.memory_cells,
                        self.strategy,
                        &self.backgrounds,
                    )
                })
                .collect(),
        };
        assemble_coverage_report(test.name(), list.name(), &targets, first_escapes)
    }

    /// Executes `test` against a memory with `fault` injected, under the
    /// session's memory size and first background — the session form of
    /// [`run_march`](crate::run_march).
    ///
    /// # Errors
    ///
    /// Returns [`SimulationError`](crate::SimulationError) when the session's
    /// memory scope cannot host the fault instance.
    ///
    /// # Examples
    ///
    /// ```
    /// use march_test::catalog;
    /// use sram_fault_model::Ffm;
    /// use sram_sim::{InjectedFault, Session};
    ///
    /// let session = Session::default();
    /// let tf = Ffm::TransitionFault.fault_primitives()[0].clone();
    /// let fault = InjectedFault::single_cell(tf, 3, session.memory_cells())?;
    /// let run = session.run(&catalog::march_ss(), &fault)?;
    /// assert!(run.detected());
    /// # Ok::<(), sram_sim::SimulationError>(())
    /// ```
    pub fn run(&self, test: &MarchTest, fault: &InjectedFault) -> Result<MarchRun> {
        let mut simulator = self.device()?;
        simulator.inject(fault.clone());
        Ok(run_march(test, &mut simulator))
    }

    /// Like [`Session::run`] for a linked-fault instance.
    ///
    /// # Errors
    ///
    /// Returns [`SimulationError`](crate::SimulationError) when the session's
    /// memory scope cannot host the instance.
    pub fn run_linked(&self, test: &MarchTest, fault: &LinkedFaultInstance) -> Result<MarchRun> {
        let mut simulator = self.device()?;
        simulator.inject_linked(fault);
        Ok(run_march(test, &mut simulator))
    }

    /// Builds a [`FaultDictionary`] for `test` over `list` under the session's
    /// scope — the pre-computed syndrome database
    /// [`Session::diagnose`] looks candidates up in.
    #[must_use]
    pub fn dictionary(&self, test: &MarchTest, list: &FaultList) -> FaultDictionary {
        FaultDictionary::build(test, list, &self.coverage_config())
    }

    /// Diagnoses an observed `syndrome` against a pre-computed fault
    /// `dictionary`: the returned report holds every fault instance whose
    /// recorded syndrome equals the observed one (one index lookup — the fast
    /// path for repeated queries against the same test and fault space).
    ///
    /// # Examples
    ///
    /// ```
    /// use march_test::catalog;
    /// use sram_fault_model::{FaultListBuilder, Ffm};
    /// use sram_sim::{InjectedFault, Report, Session, Syndrome};
    ///
    /// let session = Session::default().with_memory_cells(6);
    /// let list = FaultListBuilder::new("tf").family(Ffm::TransitionFault).build()?;
    /// let dictionary = session.dictionary(&catalog::march_ss(), &list);
    ///
    /// // A device with an (unknown to us) transition fault on cell 4.
    /// let tf = Ffm::TransitionFault.fault_primitives()[0].clone();
    /// let fault = InjectedFault::single_cell(tf, 4, 6)?;
    /// let syndrome = session.observe(&catalog::march_ss(), &fault)?;
    ///
    /// let report = session.diagnose(&syndrome, &dictionary);
    /// assert!(report.candidates().iter().all(|c| c.cells.victim == 4));
    /// println!("{}", report.to_json());
    /// # Ok::<(), Box<dyn std::error::Error>>(())
    /// ```
    #[must_use]
    pub fn diagnose(&self, syndrome: &Syndrome, dictionary: &FaultDictionary) -> DiagnosisReport {
        let candidates = dictionary
            .lookup(syndrome)
            .into_iter()
            .filter(|entry| !entry.syndrome.is_empty())
            .map(|entry| crate::DiagnosisCandidate {
                target: entry.target.clone(),
                cells: entry.cells,
            })
            .collect();
        DiagnosisReport::new(dictionary.test_name(), syndrome.clone(), candidates)
    }

    /// Diagnoses `syndrome` by a full simulation sweep of `list` under `test`
    /// — the session form of [`diagnose`](crate::diagnose()), for one-off
    /// queries where building a dictionary would not amortise.
    #[must_use]
    pub fn diagnose_sweep(
        &self,
        test: &MarchTest,
        syndrome: &Syndrome,
        list: &FaultList,
    ) -> DiagnosisReport {
        let candidates = diagnose(test, syndrome, list, &self.coverage_config());
        DiagnosisReport::new(test.name(), syndrome.clone(), candidates)
    }

    /// Runs `test` on a device carrying `fault` and returns the observed
    /// syndrome — the input to [`Session::diagnose`].
    ///
    /// # Errors
    ///
    /// Returns [`SimulationError`](crate::SimulationError) when the session's
    /// memory scope cannot host the fault instance.
    pub fn observe(&self, test: &MarchTest, fault: &InjectedFault) -> Result<Syndrome> {
        let mut simulator = self.device()?;
        simulator.inject(fault.clone());
        Ok(Syndrome::observe(test, &mut simulator))
    }

    /// A fresh fault-free simulator with the session's memory size and first
    /// background (all-zero under the default thorough scope).
    fn device(&self) -> Result<FaultSimulator> {
        let background = self
            .backgrounds
            .first()
            .cloned()
            .unwrap_or(InitialState::AllOne);
        FaultSimulator::new(self.memory_cells, &background)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{measure_coverage, BackendKind};
    use march_test::catalog;
    use sram_fault_model::Ffm;

    #[test]
    fn session_coverage_matches_the_legacy_path() {
        let list = FaultList::list_2();
        let test = catalog::march_c_minus();
        let legacy = measure_coverage(&test, &list, &CoverageConfig::thorough());
        for threads in [1usize, 2, 0] {
            for backend in [BackendKind::Scalar, BackendKind::Packed] {
                let session = Session::new(
                    ExecPolicy::default()
                        .with_backend(backend)
                        .with_threads(threads),
                );
                assert_eq!(
                    session.coverage(&test, &list),
                    legacy,
                    "backend {backend}, {threads} threads"
                );
            }
        }
    }

    #[test]
    fn two_sequential_calls_share_the_pool() {
        let session = Session::new(ExecPolicy::default().with_threads(4));
        assert!(session.is_parallel());
        let spawned = session.workers_spawned();
        assert_eq!(spawned, 3);
        let list = FaultList::list_1();
        let _ = session.coverage(&catalog::march_sl(), &list);
        assert_eq!(session.workers_spawned(), spawned);
        let _ = session.coverage(&catalog::march_ss(), &list);
        assert_eq!(session.workers_spawned(), spawned);
        assert_eq!(session.jobs_executed(), 2);
    }

    #[test]
    fn serial_sessions_spawn_nothing() {
        let session = Session::default();
        assert!(!session.is_parallel());
        assert_eq!(session.workers_spawned(), 0);
        let _ = session.coverage(&catalog::march_ss(), &FaultList::unlinked_static());
        assert_eq!(session.workers_spawned(), 0);
        assert_eq!(session.jobs_executed(), 0);
    }

    #[test]
    fn run_and_observe_match_the_manual_simulator() {
        let session = Session::default();
        let tf = Ffm::TransitionFault.fault_primitives()[0].clone();
        let fault = InjectedFault::single_cell(tf, 3, 8).unwrap();
        let run = session.run(&catalog::march_ss(), &fault).unwrap();

        let mut manual = FaultSimulator::new(8, &InitialState::AllZero).unwrap();
        manual.inject(fault.clone());
        let reference = run_march(&catalog::march_ss(), &mut manual);
        assert_eq!(run, reference);
        assert_eq!(
            session.observe(&catalog::march_ss(), &fault).unwrap(),
            Syndrome::from_run(&reference)
        );
    }

    #[test]
    fn dictionary_diagnosis_round_trip() {
        let session = Session::default().with_memory_cells(6);
        let list = FaultList::list_2();
        let dictionary = session.dictionary(&catalog::march_abl1(), &list);
        let fault = list.linked()[0].clone();
        let cells =
            crate::enumerate_placements(fault.topology(), 6, PlacementStrategy::Representative)[0];
        let instance = LinkedFaultInstance::new(fault, cells, 6).unwrap();
        let run = session
            .run_linked(&catalog::march_abl1(), &instance)
            .unwrap();
        let syndrome = Syndrome::from_run(&run);
        assert!(!syndrome.is_empty());
        let report = session.diagnose(&syndrome, &dictionary);
        assert!(!report.is_unexplained());
        assert!(report
            .candidates()
            .iter()
            .any(|candidate| candidate.cells == cells));
    }

    #[test]
    fn sweep_diagnosis_matches_the_free_function() {
        let session = Session::default().with_memory_cells(6);
        let tf = Ffm::TransitionFault.fault_primitives()[0].clone();
        let fault = InjectedFault::single_cell(tf, 2, 6).unwrap();
        let syndrome = session.observe(&catalog::march_ss(), &fault).unwrap();
        let list = FaultList::unlinked_static();
        let report = session.diagnose_sweep(&catalog::march_ss(), &syndrome, &list);
        let reference = diagnose(
            &catalog::march_ss(),
            &syndrome,
            &list,
            &session.coverage_config(),
        );
        assert_eq!(report.candidates(), &reference[..]);
        assert_eq!(report.test_name(), "March SS");
    }

    #[test]
    fn scope_builders_and_accessors() {
        let session = Session::default()
            .with_memory_cells(6)
            .with_strategy(PlacementStrategy::Exhaustive)
            .with_backgrounds(vec![InitialState::AllOne]);
        assert_eq!(session.memory_cells(), 6);
        assert_eq!(session.strategy(), PlacementStrategy::Exhaustive);
        assert_eq!(session.backgrounds(), &[InitialState::AllOne]);
        let config = session.coverage_config();
        assert_eq!(config.memory_cells, 6);
        assert_eq!(config.backend, BackendKind::Packed);
        let rebuilt = Session::from_coverage_config(&config);
        assert_eq!(rebuilt.coverage_config(), config);
        assert_eq!(session.policy().batch, 0);
        assert_eq!(session.backend_instance().name(), "packed");
    }
}
