//! The common report surface of the session API: every pipeline result can
//! summarise itself, enumerate per-item detail and serialise to JSON without
//! any dependency — the same hand-rolled writer approach as the benchmark
//! trajectory file (`march-bench`'s `trajectory.rs`), whose escaping rules
//! live here so both crates share one implementation.

use std::fmt::Write as _;

use crate::coverage::CoverageReport;
use crate::diagnose::DiagnosisCandidate;
use crate::run::MarchRun;
use crate::Syndrome;

/// A machine- and human-readable pipeline result.
///
/// Implemented by every report a [`Session`](crate::Session) method returns:
/// coverage reports, march runs, diagnosis reports and (in `march_gen`) the
/// generation and minimisation reports.
pub trait Report {
    /// The report family tag, also the `"report"` field of the JSON form
    /// (`"coverage"`, `"run"`, `"diagnosis"`, `"generation"`,
    /// `"minimisation"`).
    fn kind(&self) -> &'static str;

    /// One human-readable summary line.
    fn summary(&self) -> String;

    /// Per-item detail lines (escapes, failing reads, candidates, …), in the
    /// report's deterministic order.
    fn detail_lines(&self) -> Vec<String>;

    /// Dependency-free JSON serialisation of the report. Always a single
    /// object with a `"report"` tag equal to [`Report::kind`].
    fn to_json(&self) -> String;
}

/// Escapes a string for embedding in a JSON string literal — the shared
/// implementation behind every JSON writer in the workspace.
#[must_use]
pub fn json_escape(text: &str) -> String {
    let mut escaped = String::with_capacity(text.len());
    for c in text.chars() {
        match c {
            '"' => escaped.push_str("\\\""),
            '\\' => escaped.push_str("\\\\"),
            '\n' => escaped.push_str("\\n"),
            '\t' => escaped.push_str("\\t"),
            '\r' => escaped.push_str("\\r"),
            control if (control as u32) < 0x20 => {
                let _ = write!(escaped, "\\u{:04x}", control as u32);
            }
            other => escaped.push(other),
        }
    }
    escaped
}

/// A minimal JSON object writer: fields are emitted in insertion order, so the
/// output is deterministic.
#[derive(Debug, Default)]
pub struct JsonObject {
    fields: Vec<(String, String)>,
}

impl JsonObject {
    /// An empty object.
    #[must_use]
    pub fn new() -> JsonObject {
        JsonObject::default()
    }

    /// Adds a string field.
    #[must_use]
    pub fn string(mut self, key: &str, value: &str) -> JsonObject {
        self.fields
            .push((key.to_string(), format!("\"{}\"", json_escape(value))));
        self
    }

    /// Adds an integer field.
    #[must_use]
    pub fn number(mut self, key: &str, value: u64) -> JsonObject {
        self.fields.push((key.to_string(), value.to_string()));
        self
    }

    /// Adds a float field (3 decimal places, matching the trajectory writer).
    #[must_use]
    pub fn float(mut self, key: &str, value: f64) -> JsonObject {
        self.fields.push((key.to_string(), format!("{value:.3}")));
        self
    }

    /// Adds a boolean field.
    #[must_use]
    pub fn boolean(mut self, key: &str, value: bool) -> JsonObject {
        self.fields.push((key.to_string(), value.to_string()));
        self
    }

    /// Adds a pre-serialised JSON value (object, array, …) verbatim.
    #[must_use]
    pub fn raw(mut self, key: &str, value: String) -> JsonObject {
        self.fields.push((key.to_string(), value));
        self
    }

    /// Adds an array of strings.
    #[must_use]
    pub fn strings(self, key: &str, values: impl IntoIterator<Item = String>) -> JsonObject {
        let items: Vec<String> = values
            .into_iter()
            .map(|value| format!("\"{}\"", json_escape(&value)))
            .collect();
        self.raw(key, format!("[{}]", items.join(", ")))
    }

    /// Adds an array of pre-serialised JSON values.
    #[must_use]
    pub fn raw_array(self, key: &str, values: impl IntoIterator<Item = String>) -> JsonObject {
        let items: Vec<String> = values.into_iter().collect();
        self.raw(key, format!("[{}]", items.join(", ")))
    }

    /// Serialises the object.
    #[must_use]
    pub fn build(self) -> String {
        let fields: Vec<String> = self
            .fields
            .into_iter()
            .map(|(key, value)| format!("\"{}\": {}", json_escape(&key), value))
            .collect();
        format!("{{{}}}", fields.join(", "))
    }
}

impl Report for CoverageReport {
    fn kind(&self) -> &'static str {
        "coverage"
    }

    fn summary(&self) -> String {
        self.to_string()
    }

    fn detail_lines(&self) -> Vec<String> {
        self.escapes().iter().map(ToString::to_string).collect()
    }

    fn to_json(&self) -> String {
        let topology = self
            .by_topology()
            .iter()
            .map(|(topology, (covered, total))| {
                JsonObject::new()
                    .string("topology", &topology.to_string())
                    .number("covered", *covered as u64)
                    .number("total", *total as u64)
                    .build()
            });
        let escapes = self.escapes().iter().map(|escape| {
            JsonObject::new()
                .string("target", &escape.target.to_string())
                .string("cells", &escape.cells.to_string())
                .string("background", &format!("{:?}", escape.background))
                .build()
        });
        JsonObject::new()
            .string("report", self.kind())
            .string("test", self.test_name())
            .string("list", self.list_name())
            .number("total", self.total() as u64)
            .number("covered", self.covered() as u64)
            .float("percent", self.percent())
            .boolean("complete", self.is_complete())
            .raw_array("by_topology", topology)
            .raw_array("escapes", escapes)
            .build()
    }
}

impl Report for MarchRun {
    fn kind(&self) -> &'static str {
        "run"
    }

    fn summary(&self) -> String {
        self.to_string()
    }

    fn detail_lines(&self) -> Vec<String> {
        self.failures().iter().map(ToString::to_string).collect()
    }

    fn to_json(&self) -> String {
        let failures = self.failures().iter().map(|failure| {
            JsonObject::new()
                .number("element", failure.element as u64)
                .number("operation", failure.operation as u64)
                .number("cell", failure.cell as u64)
                .number("observed", u64::from(failure.observed.as_u8()))
                .number("expected", u64::from(failure.expected.as_u8()))
                .build()
        });
        JsonObject::new()
            .string("report", self.kind())
            .boolean("detected", self.detected())
            .number("operations", self.operations() as u64)
            .number("mismatches", self.mismatches() as u64)
            .raw_array("failures", failures)
            .build()
    }
}

/// The result of a diagnosis query: the fault hypotheses whose simulated
/// syndrome matches the observed one, plus the context of the query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DiagnosisReport {
    test_name: String,
    syndrome: Syndrome,
    candidates: Vec<DiagnosisCandidate>,
}

impl DiagnosisReport {
    /// Assembles a report (used by the session's diagnosis methods).
    #[must_use]
    pub fn new(
        test_name: impl Into<String>,
        syndrome: Syndrome,
        candidates: Vec<DiagnosisCandidate>,
    ) -> DiagnosisReport {
        DiagnosisReport {
            test_name: test_name.into(),
            syndrome,
            candidates,
        }
    }

    /// The march test the syndrome was observed under.
    #[must_use]
    pub fn test_name(&self) -> &str {
        &self.test_name
    }

    /// The observed syndrome being explained.
    #[must_use]
    pub fn syndrome(&self) -> &Syndrome {
        &self.syndrome
    }

    /// The fault hypotheses consistent with the syndrome.
    #[must_use]
    pub fn candidates(&self) -> &[DiagnosisCandidate] {
        &self.candidates
    }

    /// Returns `true` when no single fault of the searched space explains the
    /// syndrome.
    #[must_use]
    pub fn is_unexplained(&self) -> bool {
        self.candidates.is_empty() && !self.syndrome.is_empty()
    }
}

impl std::fmt::Display for DiagnosisReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} candidates explain {} under {}",
            self.candidates.len(),
            self.syndrome,
            self.test_name
        )
    }
}

impl Report for DiagnosisReport {
    fn kind(&self) -> &'static str {
        "diagnosis"
    }

    fn summary(&self) -> String {
        self.to_string()
    }

    fn detail_lines(&self) -> Vec<String> {
        self.candidates.iter().map(ToString::to_string).collect()
    }

    fn to_json(&self) -> String {
        let syndrome = self.syndrome.entries().map(|entry| {
            JsonObject::new()
                .number("element", entry.element as u64)
                .number("operation", entry.operation as u64)
                .number("cell", entry.cell as u64)
                .number("observed", u64::from(entry.observed.as_u8()))
                .build()
        });
        let candidates = self.candidates.iter().map(|candidate| {
            JsonObject::new()
                .string("target", &candidate.target.to_string())
                .string("cells", &candidate.cells.to_string())
                .build()
        });
        JsonObject::new()
            .string("report", self.kind())
            .string("test", &self.test_name)
            .number("failing_reads", self.syndrome.len() as u64)
            .raw_array("syndrome", syndrome)
            .number("candidate_count", self.candidates.len() as u64)
            .raw_array("candidates", candidates)
            .build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{
        diagnose, measure_coverage, run_march, CoverageConfig, FaultSimulator, InitialState,
        InjectedFault,
    };
    use march_test::catalog;
    use sram_fault_model::{FaultList, Ffm};

    #[test]
    fn json_escape_covers_the_specials() {
        assert_eq!(json_escape("a\"b\\c\nd\te\rf"), "a\\\"b\\\\c\\nd\\te\\rf");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
        assert_eq!(json_escape("⇕(w0)"), "⇕(w0)");
    }

    #[test]
    fn json_object_builder_is_deterministic() {
        let json = JsonObject::new()
            .string("name", "x")
            .number("count", 3)
            .float("ratio", 0.5)
            .boolean("ok", true)
            .strings("tags", vec!["a".to_string(), "b".to_string()])
            .build();
        assert_eq!(
            json,
            "{\"name\": \"x\", \"count\": 3, \"ratio\": 0.500, \"ok\": true, \
             \"tags\": [\"a\", \"b\"]}"
        );
    }

    #[test]
    fn coverage_report_serialises() {
        let report = measure_coverage(
            &catalog::mats_plus(),
            &FaultList::list_2(),
            &CoverageConfig::default(),
        );
        let json = report.to_json();
        assert!(json.starts_with("{\"report\": \"coverage\""));
        assert!(json.contains("\"complete\": false"));
        assert!(json.contains("\"escapes\": ["));
        assert_eq!(report.detail_lines().len(), report.escapes().len());
        assert_eq!(report.summary(), report.to_string());
    }

    #[test]
    fn march_run_serialises() {
        let tf = Ffm::TransitionFault.fault_primitives()[0].clone();
        let mut simulator = FaultSimulator::new(8, &InitialState::AllOne).unwrap();
        simulator.inject(InjectedFault::single_cell(tf, 3, 8).unwrap());
        let run = run_march(&catalog::march_ss(), &mut simulator);
        let json = run.to_json();
        assert!(json.starts_with("{\"report\": \"run\""));
        assert!(json.contains("\"detected\": true"));
        assert!(!run.detail_lines().is_empty());
    }

    #[test]
    fn diagnosis_report_serialises() {
        let tf = Ffm::TransitionFault.fault_primitives()[0].clone();
        let mut device = FaultSimulator::new(6, &InitialState::AllOne).unwrap();
        device.inject(InjectedFault::single_cell(tf, 2, 6).unwrap());
        let syndrome = Syndrome::observe(&catalog::march_ss(), &mut device);
        let config = CoverageConfig {
            memory_cells: 6,
            ..CoverageConfig::default()
        };
        let candidates = diagnose(
            &catalog::march_ss(),
            &syndrome,
            &FaultList::unlinked_static(),
            &config,
        );
        let report = DiagnosisReport::new("March SS", syndrome, candidates);
        assert!(!report.is_unexplained());
        assert!(report.summary().contains("March SS"));
        let json = report.to_json();
        assert!(json.starts_with("{\"report\": \"diagnosis\""));
        assert!(json.contains("\"candidates\": ["));
    }
}
