//! The simulated SRAM cell array.

use std::fmt;

use sram_fault_model::Bit;

use crate::SimulationError;

/// The content used to initialise the simulated memory before a march test runs.
///
/// March tests must detect their target faults regardless of the memory content at
/// power-up, so coverage measurements typically run the test once per background.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
#[non_exhaustive]
pub enum InitialState {
    /// Every cell starts at `0`.
    AllZero,
    /// Every cell starts at `1` (the conventional worst case for tests that begin
    /// with `⇕(w0)`).
    #[default]
    AllOne,
    /// Cells alternate `0,1,0,1,…` starting from address 0.
    Checkerboard,
    /// An explicit per-cell content.
    Custom(Vec<Bit>),
}

impl InitialState {
    /// Materialises the initial content for a memory of `cells` cells.
    ///
    /// # Errors
    ///
    /// Returns [`SimulationError::InitialStateSizeMismatch`] if a
    /// [`InitialState::Custom`] content has the wrong length.
    pub fn materialise(&self, cells: usize) -> Result<Vec<Bit>, SimulationError> {
        match self {
            InitialState::AllZero => Ok(vec![Bit::Zero; cells]),
            InitialState::AllOne => Ok(vec![Bit::One; cells]),
            InitialState::Checkerboard => Ok((0..cells)
                .map(|address| {
                    if address % 2 == 0 {
                        Bit::Zero
                    } else {
                        Bit::One
                    }
                })
                .collect()),
            InitialState::Custom(content) => {
                if content.len() == cells {
                    Ok(content.clone())
                } else {
                    Err(SimulationError::InitialStateSizeMismatch {
                        provided: content.len(),
                        cells,
                    })
                }
            }
        }
    }
}

/// A fault-free `n`-cell one-bit memory.
///
/// The faulty behaviour is layered on top of this type by
/// [`FaultSimulator`](crate::FaultSimulator); `Memory` itself always behaves
/// ideally and doubles as the golden reference during simulation.
///
/// # Examples
///
/// ```
/// use sram_fault_model::Bit;
/// use sram_sim::Memory;
///
/// let mut memory = Memory::new(4)?;
/// memory.write(2, Bit::One);
/// assert_eq!(memory.read(2), Bit::One);
/// assert_eq!(memory.read(0), Bit::Zero);
/// # Ok::<(), sram_sim::SimulationError>(())
/// ```
#[derive(Debug, PartialEq, Eq)]
pub struct Memory {
    cells: Vec<Bit>,
}

impl Clone for Memory {
    fn clone(&self) -> Memory {
        Memory {
            cells: self.cells.clone(),
        }
    }

    /// Reuses the existing cell buffer — the snapshot/restore paths of the
    /// redundancy-removal pass restore memories thousands of times per run.
    fn clone_from(&mut self, source: &Memory) {
        self.cells.clone_from(&source.cells);
    }
}

impl Memory {
    /// Creates a memory of `cells` cells, all initialised to `0`.
    ///
    /// # Errors
    ///
    /// Returns [`SimulationError::EmptyMemory`] if `cells == 0`.
    pub fn new(cells: usize) -> Result<Memory, SimulationError> {
        Memory::with_initial_state(cells, &InitialState::AllZero)
    }

    /// Creates a memory of `cells` cells with the given initial content.
    ///
    /// # Errors
    ///
    /// Returns [`SimulationError::EmptyMemory`] if `cells == 0`, or propagates the
    /// error of [`InitialState::materialise`].
    pub fn with_initial_state(
        cells: usize,
        initial: &InitialState,
    ) -> Result<Memory, SimulationError> {
        if cells == 0 {
            return Err(SimulationError::EmptyMemory);
        }
        Ok(Memory {
            cells: initial.materialise(cells)?,
        })
    }

    /// The number of cells.
    #[must_use]
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Always `false`: memories have at least one cell by construction.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Reads the cell at `address`.
    ///
    /// # Panics
    ///
    /// Panics if `address` is out of range.
    #[must_use]
    pub fn read(&self, address: usize) -> Bit {
        self.cells[address]
    }

    /// Writes `value` into the cell at `address`.
    ///
    /// # Panics
    ///
    /// Panics if `address` is out of range.
    pub fn write(&mut self, address: usize, value: Bit) {
        self.cells[address] = value;
    }

    /// The raw cell contents, cell 0 first.
    #[must_use]
    pub fn as_slice(&self) -> &[Bit] {
        &self.cells
    }

    /// Overwrites the whole content.
    ///
    /// # Errors
    ///
    /// Returns [`SimulationError::InitialStateSizeMismatch`] if the length differs
    /// from the memory size.
    pub fn load(&mut self, content: &[Bit]) -> Result<(), SimulationError> {
        if content.len() != self.cells.len() {
            return Err(SimulationError::InitialStateSizeMismatch {
                provided: content.len(),
                cells: self.cells.len(),
            });
        }
        self.cells.copy_from_slice(content);
        Ok(())
    }
}

impl fmt::Display for Memory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for bit in &self.cells {
            write!(f, "{bit}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction() {
        let memory = Memory::new(4).unwrap();
        assert_eq!(memory.len(), 4);
        assert!(!memory.is_empty());
        assert!(memory.as_slice().iter().all(|bit| *bit == Bit::Zero));
        assert!(matches!(Memory::new(0), Err(SimulationError::EmptyMemory)));
    }

    #[test]
    fn initial_states() {
        assert_eq!(
            InitialState::AllOne.materialise(3).unwrap(),
            vec![Bit::One; 3]
        );
        assert_eq!(
            InitialState::Checkerboard.materialise(4).unwrap(),
            vec![Bit::Zero, Bit::One, Bit::Zero, Bit::One]
        );
        assert_eq!(
            InitialState::Custom(vec![Bit::One, Bit::Zero])
                .materialise(2)
                .unwrap(),
            vec![Bit::One, Bit::Zero]
        );
        assert!(InitialState::Custom(vec![Bit::One]).materialise(2).is_err());
        let memory = Memory::with_initial_state(2, &InitialState::AllOne).unwrap();
        assert_eq!(memory.to_string(), "11");
    }

    #[test]
    fn read_write_round_trip() {
        let mut memory = Memory::new(3).unwrap();
        memory.write(1, Bit::One);
        assert_eq!(memory.read(1), Bit::One);
        assert_eq!(memory.read(0), Bit::Zero);
        memory.write(1, Bit::Zero);
        assert_eq!(memory.read(1), Bit::Zero);
    }

    #[test]
    fn load_replaces_content() {
        let mut memory = Memory::new(2).unwrap();
        memory.load(&[Bit::One, Bit::One]).unwrap();
        assert_eq!(memory.to_string(), "11");
        assert!(memory.load(&[Bit::One]).is_err());
    }
}
