//! Enumeration of cell placements for coverage measurement.

use sram_fault_model::LinkTopology;

use crate::InstanceCells;

/// How exhaustively a coverage measurement enumerates the possible cell assignments
/// of each fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
#[non_exhaustive]
pub enum PlacementStrategy {
    /// A small set of representative placements covering every relative address
    /// ordering of the involved cells (aggressors below/above the victim, both
    /// orderings of the two aggressors of an LF3). Fast; used inside generation
    /// loops.
    #[default]
    Representative,
    /// Every assignment of distinct cell addresses (all pairs / triples). Slow but
    /// complete; used for final verification.
    Exhaustive,
}

/// Enumerates the cell assignments used to instantiate a linked fault of the given
/// topology on a memory with `cells` cells.
///
/// Representative placements always include every *relative ordering* of the
/// involved cells, because march-test detection depends only on the relative address
/// order (which cells are visited first in ⇑ / ⇓ elements), not on the absolute
/// addresses.
///
/// # Panics
///
/// Panics if `cells` is smaller than 4 (too small to host three distinct cells with
/// distinct relative positions).
#[must_use]
pub fn enumerate_placements(
    topology: LinkTopology,
    cells: usize,
    strategy: PlacementStrategy,
) -> Vec<InstanceCells> {
    assert!(cells >= 4, "coverage memories must have at least 4 cells");
    let low = 1;
    let mid = cells / 2;
    let high = cells - 2;

    match strategy {
        PlacementStrategy::Representative => match topology {
            LinkTopology::Lf1 => vec![InstanceCells::single(mid)],
            LinkTopology::Lf2CouplingThenSingle
            | LinkTopology::Lf2SingleThenCoupling
            | LinkTopology::Lf2SharedAggressor => vec![
                InstanceCells::pair(low, high),
                InstanceCells::pair(high, low),
            ],
            LinkTopology::Lf3 => {
                // Every relative ordering of (a1, a2, v) over three fixed cells.
                let cells3 = [low, mid, high];
                let mut placements = Vec::with_capacity(6);
                for &a1 in &cells3 {
                    for &a2 in &cells3 {
                        for &v in &cells3 {
                            if a1 != a2 && a1 != v && a2 != v {
                                placements.push(InstanceCells::triple(a1, a2, v));
                            }
                        }
                    }
                }
                placements
            }
        },
        PlacementStrategy::Exhaustive => match topology {
            LinkTopology::Lf1 => (0..cells).map(InstanceCells::single).collect(),
            LinkTopology::Lf2CouplingThenSingle
            | LinkTopology::Lf2SingleThenCoupling
            | LinkTopology::Lf2SharedAggressor => {
                let mut placements = Vec::new();
                for aggressor in 0..cells {
                    for victim in 0..cells {
                        if aggressor != victim {
                            placements.push(InstanceCells::pair(aggressor, victim));
                        }
                    }
                }
                placements
            }
            LinkTopology::Lf3 => {
                let mut placements = Vec::new();
                for a1 in 0..cells {
                    for a2 in 0..cells {
                        for v in 0..cells {
                            if a1 != a2 && a1 != v && a2 != v {
                                placements.push(InstanceCells::triple(a1, a2, v));
                            }
                        }
                    }
                }
                placements
            }
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn representative_counts() {
        assert_eq!(
            enumerate_placements(LinkTopology::Lf1, 8, PlacementStrategy::Representative).len(),
            1
        );
        assert_eq!(
            enumerate_placements(
                LinkTopology::Lf2SharedAggressor,
                8,
                PlacementStrategy::Representative
            )
            .len(),
            2
        );
        assert_eq!(
            enumerate_placements(LinkTopology::Lf3, 8, PlacementStrategy::Representative).len(),
            6
        );
    }

    #[test]
    fn exhaustive_counts() {
        assert_eq!(
            enumerate_placements(LinkTopology::Lf1, 6, PlacementStrategy::Exhaustive).len(),
            6
        );
        assert_eq!(
            enumerate_placements(
                LinkTopology::Lf2CouplingThenSingle,
                6,
                PlacementStrategy::Exhaustive
            )
            .len(),
            30
        );
        assert_eq!(
            enumerate_placements(LinkTopology::Lf3, 6, PlacementStrategy::Exhaustive).len(),
            120
        );
    }

    #[test]
    fn representative_lf2_covers_both_orderings() {
        let placements = enumerate_placements(
            LinkTopology::Lf2CouplingThenSingle,
            8,
            PlacementStrategy::Representative,
        );
        assert!(placements
            .iter()
            .any(|p| p.aggressor_first.unwrap() < p.victim));
        assert!(placements
            .iter()
            .any(|p| p.aggressor_first.unwrap() > p.victim));
    }

    #[test]
    #[should_panic(expected = "at least 4 cells")]
    fn tiny_memories_are_rejected() {
        let _ = enumerate_placements(LinkTopology::Lf1, 2, PlacementStrategy::Representative);
    }
}
