//! Enumeration of cell placements for coverage measurement.

use sram_fault_model::{DecoderFault, LinkTopology};

use crate::{InstanceCells, SimulationError};

/// The smallest memory linked-fault placement enumeration supports: three
/// distinct cells with distinct relative positions need at least 4 cells.
pub const MIN_PLACEMENT_CELLS: usize = 4;

/// How exhaustively a coverage measurement enumerates the possible cell assignments
/// of each fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
#[non_exhaustive]
pub enum PlacementStrategy {
    /// A small set of representative placements covering every relative address
    /// ordering of the involved cells (aggressors below/above the victim, both
    /// orderings of the two aggressors of an LF3). Fast; used inside generation
    /// loops.
    #[default]
    Representative,
    /// Every assignment of distinct cell addresses (all pairs / triples). Slow but
    /// complete; used for final verification.
    Exhaustive,
}

/// Enumerates the cell assignments used to instantiate a linked fault of the given
/// topology on a memory with `cells` cells.
///
/// Representative placements always include every *relative ordering* of the
/// involved cells, because march-test detection depends only on the relative address
/// order (which cells are visited first in ⇑ / ⇓ elements), not on the absolute
/// addresses.
///
/// # Errors
///
/// Returns [`SimulationError::MemoryTooSmall`] if `cells` is smaller than
/// [`MIN_PLACEMENT_CELLS`] (too small to host three distinct cells with
/// distinct relative positions).
pub fn enumerate_placements(
    topology: LinkTopology,
    cells: usize,
    strategy: PlacementStrategy,
) -> Result<Vec<InstanceCells>, SimulationError> {
    if cells < MIN_PLACEMENT_CELLS {
        return Err(SimulationError::MemoryTooSmall {
            cells,
            min_cells: MIN_PLACEMENT_CELLS,
        });
    }
    let low = 1;
    let mid = cells / 2;
    let high = cells - 2;

    Ok(match strategy {
        PlacementStrategy::Representative => match topology {
            LinkTopology::Lf1 => vec![InstanceCells::single(mid)],
            LinkTopology::Lf2CouplingThenSingle
            | LinkTopology::Lf2SingleThenCoupling
            | LinkTopology::Lf2SharedAggressor => vec![
                InstanceCells::pair(low, high),
                InstanceCells::pair(high, low),
            ],
            LinkTopology::Lf3 => {
                // Every relative ordering of (a1, a2, v) over three fixed cells.
                let cells3 = [low, mid, high];
                let mut placements = Vec::with_capacity(6);
                for &a1 in &cells3 {
                    for &a2 in &cells3 {
                        for &v in &cells3 {
                            if a1 != a2 && a1 != v && a2 != v {
                                placements.push(InstanceCells::triple(a1, a2, v));
                            }
                        }
                    }
                }
                placements
            }
        },
        PlacementStrategy::Exhaustive => match topology {
            LinkTopology::Lf1 => (0..cells).map(InstanceCells::single).collect(),
            LinkTopology::Lf2CouplingThenSingle
            | LinkTopology::Lf2SingleThenCoupling
            | LinkTopology::Lf2SharedAggressor => {
                let mut placements = Vec::new();
                for aggressor in 0..cells {
                    for victim in 0..cells {
                        if aggressor != victim {
                            placements.push(InstanceCells::pair(aggressor, victim));
                        }
                    }
                }
                placements
            }
            LinkTopology::Lf3 => {
                let mut placements = Vec::new();
                for a1 in 0..cells {
                    for a2 in 0..cells {
                        for v in 0..cells {
                            if a1 != a2 && a1 != v && a2 != v {
                                placements.push(InstanceCells::triple(a1, a2, v));
                            }
                        }
                    }
                }
                placements
            }
        },
    })
}

/// Enumerates the address assignments used to instantiate an address-decoder
/// fault on a memory with `cells` cells. The primary address is carried as the
/// placement's `victim`, the partner address (for the pair classes) as
/// `aggressor_first` — so decoder targets pack through the same
/// [`InstanceCells`] lane descriptors as cell-array targets.
///
/// The instance space is the **address-line fault space**: a decoder defect
/// shorts or opens one decoded address line, so the two addresses of a pair
/// instance differ in exactly one address bit. This keeps the enumeration
/// `O(cells · log cells)` under [`PlacementStrategy::Exhaustive`] — tractable
/// at 1k+ cells, where all-pairs enumeration would not be — and lets
/// [`PlacementStrategy::Representative`] pick one relative-order class per
/// address bit (partner above and below the primary, mirroring the
/// relative-order classes of [`enumerate_placements`]) instead of absolute
/// addresses.
///
/// # Errors
///
/// Returns [`SimulationError::MemoryTooSmall`] when the memory cannot host an
/// instance (single-address classes need 1 cell, pair classes 2).
pub fn enumerate_decoder_placements(
    fault: DecoderFault,
    cells: usize,
    strategy: PlacementStrategy,
) -> Result<Vec<InstanceCells>, SimulationError> {
    let min_cells = fault.address_count();
    if cells < min_cells {
        return Err(SimulationError::MemoryTooSmall { cells, min_cells });
    }

    if !fault.involves_partner() {
        // Single-address classes (no cell accessed).
        return Ok(match strategy {
            PlacementStrategy::Representative => {
                let mut addresses: Vec<usize> = vec![0, 1, cells / 2, cells - 1];
                addresses.extend(address_strides(cells));
                addresses.retain(|&address| address < cells);
                addresses.sort_unstable();
                addresses.dedup();
                addresses.into_iter().map(InstanceCells::single).collect()
            }
            PlacementStrategy::Exhaustive => (0..cells).map(InstanceCells::single).collect(),
        });
    }

    // Pair classes: (primary, partner = primary ^ stride) for each address-bit
    // stride, in both relative orders.
    let mut placements = Vec::new();
    match strategy {
        PlacementStrategy::Representative => {
            for stride in address_strides(cells) {
                // Partner above the primary, partner below, and one
                // non-boundary base — the relative-order classes march-test
                // detection distinguishes.
                let mut bases = vec![0, stride];
                let mid = cells / 2;
                if mid != 0 && mid != stride {
                    bases.push(mid);
                }
                for base in bases {
                    let partner = base ^ stride;
                    if base < cells && partner < cells && partner != base {
                        placements.push(decoder_pair(base, partner));
                    }
                }
            }
        }
        PlacementStrategy::Exhaustive => {
            for stride in address_strides(cells) {
                for primary in 0..cells {
                    let partner = primary ^ stride;
                    if partner < cells {
                        placements.push(decoder_pair(primary, partner));
                    }
                }
            }
        }
    }
    placements.dedup();
    if placements.is_empty() {
        // A 2-cell memory with stride 1 always yields placements; this is
        // unreachable but keeps the contract obvious.
        return Err(SimulationError::MemoryTooSmall { cells, min_cells });
    }
    Ok(placements)
}

/// The single-bit address strides `1, 2, 4, …` below `cells` — the address
/// lines a decoder defect can short or open.
fn address_strides(cells: usize) -> impl Iterator<Item = usize> {
    (0..usize::BITS)
        .map(|bit| 1usize << bit)
        .take_while(move |&stride| stride < cells)
}

/// A decoder pair placement: primary address as the victim slot, partner
/// address as the (first) aggressor slot.
fn decoder_pair(primary: usize, partner: usize) -> InstanceCells {
    InstanceCells::pair(partner, primary)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sram_fault_model::Bit;

    #[test]
    fn representative_counts() {
        assert_eq!(
            enumerate_placements(LinkTopology::Lf1, 8, PlacementStrategy::Representative)
                .unwrap()
                .len(),
            1
        );
        assert_eq!(
            enumerate_placements(
                LinkTopology::Lf2SharedAggressor,
                8,
                PlacementStrategy::Representative
            )
            .unwrap()
            .len(),
            2
        );
        assert_eq!(
            enumerate_placements(LinkTopology::Lf3, 8, PlacementStrategy::Representative)
                .unwrap()
                .len(),
            6
        );
    }

    #[test]
    fn exhaustive_counts() {
        assert_eq!(
            enumerate_placements(LinkTopology::Lf1, 6, PlacementStrategy::Exhaustive)
                .unwrap()
                .len(),
            6
        );
        assert_eq!(
            enumerate_placements(
                LinkTopology::Lf2CouplingThenSingle,
                6,
                PlacementStrategy::Exhaustive
            )
            .unwrap()
            .len(),
            30
        );
        assert_eq!(
            enumerate_placements(LinkTopology::Lf3, 6, PlacementStrategy::Exhaustive)
                .unwrap()
                .len(),
            120
        );
    }

    #[test]
    fn representative_lf2_covers_both_orderings() {
        let placements = enumerate_placements(
            LinkTopology::Lf2CouplingThenSingle,
            8,
            PlacementStrategy::Representative,
        )
        .unwrap();
        assert!(placements
            .iter()
            .any(|p| p.aggressor_first.unwrap() < p.victim));
        assert!(placements
            .iter()
            .any(|p| p.aggressor_first.unwrap() > p.victim));
    }

    #[test]
    fn tiny_memories_yield_a_typed_error() {
        // The small-memory edge is a typed `Err`, not a panic.
        assert!(matches!(
            enumerate_placements(LinkTopology::Lf1, 2, PlacementStrategy::Representative),
            Err(SimulationError::MemoryTooSmall {
                cells: 2,
                min_cells: MIN_PLACEMENT_CELLS
            })
        ));
        assert!(matches!(
            enumerate_placements(LinkTopology::Lf3, 3, PlacementStrategy::Exhaustive),
            Err(SimulationError::MemoryTooSmall { cells: 3, .. })
        ));
        assert!(matches!(
            enumerate_decoder_placements(
                DecoderFault::NoAddressMaps,
                1,
                PlacementStrategy::Representative
            ),
            Err(SimulationError::MemoryTooSmall {
                cells: 1,
                min_cells: 2
            })
        ));
        assert!(enumerate_decoder_placements(
            DecoderFault::NoCellAccessed {
                open_read: Bit::Zero
            },
            1,
            PlacementStrategy::Representative
        )
        .is_ok());
    }

    #[test]
    fn decoder_pairs_differ_in_one_address_bit_and_cover_both_orders() {
        for fault in [
            DecoderFault::NoAddressMaps,
            DecoderFault::MultipleCellsAccessed,
            DecoderFault::MultipleAddressesMap,
        ] {
            for strategy in [
                PlacementStrategy::Representative,
                PlacementStrategy::Exhaustive,
            ] {
                let placements = enumerate_decoder_placements(fault, 16, strategy).unwrap();
                assert!(!placements.is_empty());
                for placement in &placements {
                    let partner = placement.aggressor_first.unwrap();
                    let xor = placement.victim ^ partner;
                    assert!(xor.is_power_of_two(), "{placement}");
                }
                // Both relative orders appear.
                assert!(placements
                    .iter()
                    .any(|p| p.aggressor_first.unwrap() > p.victim));
                assert!(placements
                    .iter()
                    .any(|p| p.aggressor_first.unwrap() < p.victim));
            }
        }
    }

    #[test]
    fn decoder_enumeration_scales_logarithmically() {
        // Exhaustive pairs are O(cells · log cells): tractable at 1k+ cells.
        let placements = enumerate_decoder_placements(
            DecoderFault::NoAddressMaps,
            1024,
            PlacementStrategy::Exhaustive,
        )
        .unwrap();
        assert_eq!(placements.len(), 1024 * 10);
        let representative = enumerate_decoder_placements(
            DecoderFault::NoAddressMaps,
            1024,
            PlacementStrategy::Representative,
        )
        .unwrap();
        assert!(representative.len() <= 3 * 10);
        let singles = enumerate_decoder_placements(
            DecoderFault::NoCellAccessed {
                open_read: Bit::One,
            },
            1024,
            PlacementStrategy::Representative,
        )
        .unwrap();
        assert!(singles.len() <= 16);
        assert!(singles.iter().any(|p| p.victim == 1023));
    }
}
