//! Simulation backends: the scalar dual-memory engine and the bit-parallel
//! packed engine behind one common [`SimulationBackend`] trait.
//!
//! A *coverage lane* is one `(cell placement, initial background)` pair a march
//! test must detect a fault target under. The scalar backend simulates lanes
//! one at a time with [`FaultSimulator`]; the packed backend pins each lane to
//! one bit of a lane word ([`LaneWord`]: `u64`, or a `[u64; N]` block for 128
//! and 256 lanes) and evaluates a whole word of lanes per memory operation
//! with branch-free bitwise sensitization/effect arithmetic — the hot-path
//! optimisation that makes the generator's simulation-backed greedy search and
//! the coverage matrix fast. The lane width is a policy knob
//! ([`LaneWidth`](crate::LaneWidth)): verdicts are byte-identical across
//! widths, wider words just carry more lanes per pass.

use std::fmt;
use std::str::FromStr;

use march_test::{MarchElement, MarchTest};
use sram_fault_model::{
    Bit, DecoderFault, FaultPrimitive, LinkTopology, Operation, SensitizingSite,
};

use crate::batch::CandidateBatch;
use crate::coverage::TargetKind;
use crate::lane::{broadcast, condition_mask, LaneWidth, LaneWord, W128, W256};
use crate::{
    enumerate_decoder_placements, enumerate_placements, run_march, DecoderFaultInstance,
    FaultSimulator, InitialState, InjectedFault, InstanceCells, LinkedFaultInstance,
    PlacementStrategy, SimulationError,
};

/// One `(placement, background)` combination a target is simulated under.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CoverageLane {
    /// The cell assignment of the fault instance.
    pub cells: InstanceCells,
    /// The initial memory content of the run.
    pub background: InitialState,
}

/// Enumerates the coverage lanes of `target`: every placement returned by
/// [`enumerate_placements`] (cell-array targets) or
/// [`enumerate_decoder_placements`] (address-decoder targets), crossed with
/// every background — placements outermost, matching the scalar engine's
/// historical escape-reporting order.
///
/// # Errors
///
/// Returns [`SimulationError::MemoryTooSmall`] when the memory cannot host
/// the target's placements.
pub fn enumerate_lanes(
    target: &TargetKind,
    memory_cells: usize,
    strategy: PlacementStrategy,
    backgrounds: &[InitialState],
) -> Result<Vec<CoverageLane>, SimulationError> {
    let placements = match target {
        TargetKind::Simple(primitive) => {
            let topology = if primitive.is_coupling() {
                LinkTopology::Lf2CouplingThenSingle
            } else {
                LinkTopology::Lf1
            };
            enumerate_placements(topology, memory_cells, strategy)?
        }
        TargetKind::Linked(fault) => {
            enumerate_placements(fault.topology(), memory_cells, strategy)?
        }
        TargetKind::Decoder(fault) => enumerate_decoder_placements(*fault, memory_cells, strategy)?,
    };
    let mut lanes = Vec::new();
    for cells in placements {
        for background in backgrounds {
            lanes.push(CoverageLane {
                cells,
                background: background.clone(),
            });
        }
    }
    Ok(lanes)
}

/// Which simulation backend a coverage or generation run uses.
///
/// The packed engine is the default everywhere (its verdicts are proven
/// byte-identical to the scalar reference); `Scalar` is the explicit opt-out.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
#[non_exhaustive]
pub enum BackendKind {
    /// The dual-memory scalar engine: one fault instance at a time.
    Scalar,
    /// The bit-parallel packed engine: one word of fault instances (64–256
    /// lanes, see [`LaneWidth`](crate::LaneWidth)) per pass.
    #[default]
    Packed,
}

impl BackendKind {
    /// Instantiates the backend with its default lane width
    /// ([`LaneWidth::Auto`]).
    #[must_use]
    pub fn instance(self) -> Box<dyn SimulationBackend> {
        self.instance_with(LaneWidth::default())
    }

    /// Instantiates the backend with an explicit packed lane width (ignored
    /// by the scalar backend, which has no lanes to pack).
    #[must_use]
    pub fn instance_with(self, width: LaneWidth) -> Box<dyn SimulationBackend> {
        match self {
            BackendKind::Scalar => Box::new(ScalarBackend),
            BackendKind::Packed => Box::new(PackedBackend::with_width(width)),
        }
    }

    /// The backend's short name (`scalar` / `packed`).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            BackendKind::Scalar => "scalar",
            BackendKind::Packed => "packed",
        }
    }
}

impl fmt::Display for BackendKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for BackendKind {
    type Err = SimulationError;

    fn from_str(text: &str) -> Result<BackendKind, SimulationError> {
        match text.trim().to_ascii_lowercase().as_str() {
            "scalar" => Ok(BackendKind::Scalar),
            "packed" => Ok(BackendKind::Packed),
            other => Err(SimulationError::UnknownBackend(other.to_string())),
        }
    }
}

/// A strategy for fault-simulating a march test against every coverage lane of
/// one fault target.
///
/// Both backends implement the *same* detection semantics (see
/// [`FaultSimulator`] for the reference definition); they differ only in how
/// lanes are evaluated. The packed backend is validated against the scalar one
/// by the `backend_equivalence` property tests.
pub trait SimulationBackend: fmt::Debug + Send + Sync {
    /// The backend's short name, for reports and benchmarks.
    fn name(&self) -> &'static str;

    /// The detection verdict of `test` for every lane, in lane order.
    fn lane_verdicts(
        &self,
        test: &MarchTest,
        target: &TargetKind,
        lanes: &[CoverageLane],
        memory_cells: usize,
    ) -> Vec<bool>;

    /// The index of the first lane `test` fails to detect, or `None` when the
    /// target is fully covered. Backends may early-exit here.
    fn first_undetected(
        &self,
        test: &MarchTest,
        target: &TargetKind,
        lanes: &[CoverageLane],
        memory_cells: usize,
    ) -> Option<usize> {
        self.lane_verdicts(test, target, lanes, memory_cells)
            .iter()
            .position(|detected| !detected)
    }
}

/// Builds the scalar simulator for one lane of `target`.
pub(crate) fn scalar_lane_simulator(
    target: &TargetKind,
    lane: &CoverageLane,
    memory_cells: usize,
) -> FaultSimulator {
    let mut simulator = FaultSimulator::new(memory_cells, &lane.background)
        .expect("coverage memory configuration is valid");
    match target {
        TargetKind::Simple(primitive) => {
            let injected = if primitive.is_coupling() {
                InjectedFault::coupling(
                    primitive.clone(),
                    lane.cells.aggressor_first.expect("pair placement"),
                    lane.cells.victim,
                    memory_cells,
                )
            } else {
                InjectedFault::single_cell(primitive.clone(), lane.cells.victim, memory_cells)
            }
            .expect("enumerated placements are valid");
            simulator.inject(injected);
        }
        TargetKind::Linked(fault) => {
            let instance = LinkedFaultInstance::new(fault.clone(), lane.cells, memory_cells)
                .expect("enumerated placements are valid");
            simulator.inject_linked(&instance);
        }
        TargetKind::Decoder(fault) => {
            let instance = DecoderFaultInstance::new(*fault, lane.cells, memory_cells)
                .expect("enumerated placements are valid");
            simulator.inject_decoder(instance);
        }
    }
    simulator
}

/// The original dual-memory engine exposed through the backend trait: each lane
/// is simulated independently with [`FaultSimulator`] + [`run_march`].
#[derive(Debug, Clone, Copy, Default)]
pub struct ScalarBackend;

impl SimulationBackend for ScalarBackend {
    fn name(&self) -> &'static str {
        "scalar"
    }

    fn lane_verdicts(
        &self,
        test: &MarchTest,
        target: &TargetKind,
        lanes: &[CoverageLane],
        memory_cells: usize,
    ) -> Vec<bool> {
        lanes
            .iter()
            .map(|lane| {
                let mut simulator = scalar_lane_simulator(target, lane, memory_cells);
                run_march(test, &mut simulator).detected()
            })
            .collect()
    }

    fn first_undetected(
        &self,
        test: &MarchTest,
        target: &TargetKind,
        lanes: &[CoverageLane],
        memory_cells: usize,
    ) -> Option<usize> {
        lanes.iter().position(|lane| {
            let mut simulator = scalar_lane_simulator(target, lane, memory_cells);
            !run_march(test, &mut simulator).detected()
        })
    }
}

/// The bit-parallel engine exposed through the backend trait: lanes are packed
/// one word per [`PackedSimulator`], with the word width set by the
/// configured [`LaneWidth`] (`Auto` picks the narrowest width holding the
/// lane count, so small targets keep the cheap `u64` word and large decoder
/// spaces pack 256 lanes per pass).
#[derive(Debug, Clone, Copy, Default)]
pub struct PackedBackend {
    width: LaneWidth,
}

impl PackedBackend {
    /// A packed backend pinned to (or auto-selecting) the given lane width.
    #[must_use]
    pub fn with_width(width: LaneWidth) -> PackedBackend {
        PackedBackend { width }
    }

    /// The configured lane width.
    #[must_use]
    pub fn width(&self) -> LaneWidth {
        self.width
    }
}

/// The width-generic body of [`PackedBackend::lane_verdicts`]. One scratch
/// simulator is re-packed per chunk so the plane allocations are paid once
/// per lane set, not once per chunk.
fn packed_verdicts<W: LaneWord>(
    test: &MarchTest,
    target: &TargetKind,
    lanes: &[CoverageLane],
    memory_cells: usize,
) -> Vec<bool> {
    let mut verdicts = Vec::with_capacity(lanes.len());
    let mut scratch: Option<PackedSimulator<W>> = None;
    for chunk in lanes.chunks(W::BITS) {
        let simulator = repacked(&mut scratch, target, chunk, memory_cells);
        let detected = simulator.run_test(test);
        for lane in 0..chunk.len() {
            verdicts.push(detected.test_bit(lane));
        }
    }
    verdicts
}

/// The width-generic body of [`PackedBackend::first_undetected`]. Chunks
/// re-pack one scratch simulator, exactly like [`packed_verdicts`].
fn packed_first_undetected<W: LaneWord>(
    test: &MarchTest,
    target: &TargetKind,
    lanes: &[CoverageLane],
    memory_cells: usize,
) -> Option<usize> {
    let mut scratch: Option<PackedSimulator<W>> = None;
    for (chunk_index, chunk) in lanes.chunks(W::BITS).enumerate() {
        let simulator = repacked(&mut scratch, target, chunk, memory_cells);
        let detected = simulator.run_test(test);
        if detected != simulator.lane_mask() {
            let undetected = !detected & simulator.lane_mask();
            return Some(chunk_index * W::BITS + undetected.trailing_zeros() as usize);
        }
    }
    None
}

/// Builds the scratch simulator on the first chunk and re-packs it (re-using
/// its plane buffers) on every later one.
fn repacked<'scratch, W: LaneWord>(
    scratch: &'scratch mut Option<PackedSimulator<W>>,
    target: &TargetKind,
    chunk: &[CoverageLane],
    memory_cells: usize,
) -> &'scratch mut PackedSimulator<W> {
    match scratch {
        None => scratch.insert(
            PackedSimulator::new(target, chunk, memory_cells)
                .expect("enumerated placements are valid"),
        ),
        Some(simulator) => {
            simulator
                .repack(target, chunk)
                .expect("enumerated placements are valid");
            simulator
        }
    }
}

impl SimulationBackend for PackedBackend {
    fn name(&self) -> &'static str {
        "packed"
    }

    fn lane_verdicts(
        &self,
        test: &MarchTest,
        target: &TargetKind,
        lanes: &[CoverageLane],
        memory_cells: usize,
    ) -> Vec<bool> {
        match self.width.resolve(lanes.len()) {
            LaneWidth::W128 => packed_verdicts::<W128>(test, target, lanes, memory_cells),
            LaneWidth::W256 => packed_verdicts::<W256>(test, target, lanes, memory_cells),
            _ => packed_verdicts::<u64>(test, target, lanes, memory_cells),
        }
    }

    fn first_undetected(
        &self,
        test: &MarchTest,
        target: &TargetKind,
        lanes: &[CoverageLane],
        memory_cells: usize,
    ) -> Option<usize> {
        match self.width.resolve(lanes.len()) {
            LaneWidth::W128 => packed_first_undetected::<W128>(test, target, lanes, memory_cells),
            LaneWidth::W256 => packed_first_undetected::<W256>(test, target, lanes, memory_cells),
            _ => packed_first_undetected::<u64>(test, target, lanes, memory_cells),
        }
    }
}

/// One fault-primitive component of the packed target, with its per-lane cell
/// bindings encoded as bit-plane masks.
#[derive(Debug)]
struct PackedComponent<W: LaneWord> {
    /// The primitive — identical across lanes (lanes vary only placement and
    /// background).
    primitive: FaultPrimitive,
    /// `victim_at[cell]`: lanes whose victim is bound to `cell`.
    victim_at: Vec<W>,
    /// `aggressor_at[cell]`: lanes whose aggressor is bound to `cell` (all-zero
    /// planes for single-cell primitives).
    aggressor_at: Vec<W>,
}

impl<W: LaneWord> Clone for PackedComponent<W> {
    fn clone(&self) -> PackedComponent<W> {
        PackedComponent {
            primitive: self.primitive.clone(),
            victim_at: self.victim_at.clone(),
            aggressor_at: self.aggressor_at.clone(),
        }
    }

    fn clone_from(&mut self, source: &PackedComponent<W>) {
        self.primitive.clone_from(&source.primitive);
        self.victim_at.clone_from(&source.victim_at);
        self.aggressor_at.clone_from(&source.aggressor_at);
    }
}

impl<W: LaneWord> PackedComponent<W> {
    fn new(primitive: FaultPrimitive, cells: usize) -> PackedComponent<W> {
        PackedComponent {
            primitive,
            victim_at: vec![W::ZERO; cells],
            aggressor_at: vec![W::ZERO; cells],
        }
    }

    fn bind(&mut self, lane: usize, victim: usize, aggressor: Option<usize>) {
        *self.victim_at[victim].limb_mut(lane >> 6) |= 1 << (lane & 63);
        if let Some(aggressor) = aggressor {
            *self.aggressor_at[aggressor].limb_mut(lane >> 6) |= 1 << (lane & 63);
        }
    }

    /// Clears every lane binding so the planes can be re-bound to a new chunk.
    fn reset(&mut self) {
        self.victim_at.fill(W::ZERO);
        self.aggressor_at.fill(W::ZERO);
    }
}

/// The packed lane descriptors of an address-decoder target: the fault class
/// (identical across lanes), a bit-plane binding each lane's perturbed
/// *source* address — the decoder analogue of [`PackedComponent`]'s
/// victim/aggressor planes, so AF targets pack exactly like FFM targets —
/// and a dense per-lane *destination* table. The destination is a table
/// rather than a bit-plane on purpose: resolving a redirected access then
/// costs `O(popcount(redirected lanes))` random accesses instead of an
/// `O(cells)` plane scan, which is what keeps the decode perturbation cheap
/// on 1k+-cell memories.
#[derive(Debug)]
struct PackedDecoder<W: LaneWord> {
    fault: DecoderFault,
    /// `source_at[cell]`: lanes whose perturbed address is `cell`.
    source_at: Vec<W>,
    /// `dest_of_lane[lane]`: the destination cell of the lane's instance
    /// (`usize::MAX` for the destination-less *no cell accessed* class, which
    /// never reads the table).
    dest_of_lane: Vec<usize>,
    /// The cells with at least one bit set in `source_at`, so `reset` clears
    /// a handful of plane words instead of sweeping the whole plane. Lanes
    /// cluster by perturbed address (the enumeration orders placements by
    /// primary), so this stays far smaller than the cell count per chunk.
    bound_sources: Vec<usize>,
}

impl<W: LaneWord> Clone for PackedDecoder<W> {
    fn clone(&self) -> PackedDecoder<W> {
        PackedDecoder {
            fault: self.fault,
            source_at: self.source_at.clone(),
            dest_of_lane: self.dest_of_lane.clone(),
            bound_sources: self.bound_sources.clone(),
        }
    }

    fn clone_from(&mut self, source: &PackedDecoder<W>) {
        self.fault = source.fault;
        self.source_at.clone_from(&source.source_at);
        self.dest_of_lane.clone_from(&source.dest_of_lane);
        self.bound_sources.clone_from(&source.bound_sources);
    }
}

impl<W: LaneWord> PackedDecoder<W> {
    fn new(fault: DecoderFault, cells: usize) -> PackedDecoder<W> {
        PackedDecoder {
            fault,
            source_at: vec![W::ZERO; cells],
            dest_of_lane: Vec::new(),
            bound_sources: Vec::new(),
        }
    }

    fn bind(&mut self, lane: usize, instance: &DecoderFaultInstance) {
        let source = instance.source();
        if self.source_at[source].is_zero() {
            self.bound_sources.push(source);
        }
        *self.source_at[source].limb_mut(lane >> 6) |= 1 << (lane & 63);
        if self.dest_of_lane.len() <= lane {
            self.dest_of_lane.resize(lane + 1, usize::MAX);
        }
        self.dest_of_lane[lane] = instance.destination().unwrap_or(usize::MAX);
    }

    /// Clears every lane binding so the planes can be re-bound to a new
    /// chunk. Only the plane words actually bound since the last reset are
    /// touched, so re-packing does not re-sweep the whole plane.
    fn reset(&mut self) {
        for source in self.bound_sources.drain(..) {
            self.source_at[source] = W::ZERO;
        }
        self.dest_of_lane.clear();
    }

    /// The destination cell of `lane`, if its instance has one.
    fn destination(&self, lane: usize) -> Option<usize> {
        self.dest_of_lane
            .get(lane)
            .copied()
            .filter(|&cell| cell != usize::MAX)
    }

    /// Per-lane value of each redirected lane's destination cell, gathered in
    /// lane position. Walks the word limb by limb so the per-lane cost stays
    /// `O(1)` at every width — `O(popcount(lanes))` total, not
    /// `O(popcount · LIMBS)`.
    fn gather_destinations(&self, planes: &[W], lanes: W) -> W {
        let mut values = W::ZERO;
        for index in 0..W::LIMBS {
            let mut pending = lanes.limb(index);
            if pending == 0 {
                continue;
            }
            let base = index * 64;
            let mut gathered = 0u64;
            while pending != 0 {
                let lane = pending.trailing_zeros() as usize;
                pending &= pending - 1;
                gathered |= planes[self.dest_of_lane[base + lane]].limb(index) & (1u64 << lane);
            }
            *values.limb_mut(index) = gathered;
        }
        values
    }

    /// Forces the broadcast `bits` into each redirected lane's destination
    /// cell, limb by limb: `O(popcount(lanes))` total at every width. `bits`
    /// is a written value broadcast over every lane, so each limb is all-ones
    /// or all-zeros — the per-lane write is a plain set or clear, picked once
    /// per limb.
    fn scatter_destinations(&self, planes: &mut [W], lanes: W, bits: W) {
        for index in 0..W::LIMBS {
            let mut pending = lanes.limb(index);
            if pending == 0 {
                continue;
            }
            let base = index * 64;
            let ones = bits.limb(index) != 0;
            while pending != 0 {
                let lane = pending.trailing_zeros() as usize;
                pending &= pending - 1;
                let bit = 1u64 << lane;
                let limb = planes[self.dest_of_lane[base + lane]].limb_mut(index);
                if ones {
                    *limb |= bit;
                } else {
                    *limb &= !bit;
                }
            }
        }
    }
}

/// A bit-parallel fault simulator: one word of independent fault instances of
/// the *same* target (one lane per `(placement, background)` pair) simulated
/// simultaneously, one bit per lane. The word type `W` sets the lane capacity:
/// `u64` (the default) carries 64 lanes, the [`W128`]/[`W256`] blocks carry
/// 128/256 — wider words quarter the chunk count on large lane sets while
/// producing bit-identical verdicts.
///
/// The memory is stored as bit-planes: `faulty[cell]` holds the faulty value of
/// `cell` in every lane, `golden[cell]` the fault-free reference. Each march
/// operation is evaluated with pure bitwise arithmetic — sensitization
/// conditions become AND/NOT masks over gathered victim/aggressor planes, fault
/// effects become masked scatter writes — so the per-operation cost is
/// independent of the number of lanes.
///
/// The semantics mirror [`FaultSimulator`] exactly, step for step (fire
/// detection on the pre-operation state, read override, fault-free effect,
/// fault effects in injection order, then one settle pass of the
/// state-sensitized primitives).
///
/// # Examples
///
/// ```
/// use march_test::catalog;
/// use sram_fault_model::FaultList;
/// use sram_sim::{
///     enumerate_lanes, PackedSimulator, PlacementStrategy, InitialState, TargetKind, W256,
/// };
///
/// let fault = FaultList::list_2().linked()[0].clone();
/// let target = TargetKind::Linked(fault);
/// let lanes = enumerate_lanes(
///     &target,
///     8,
///     PlacementStrategy::Exhaustive,
///     &[InitialState::AllZero, InitialState::AllOne],
/// )?;
/// // The default word packs 64 lanes ...
/// let mut simulator: PackedSimulator = PackedSimulator::new(&target, &lanes, 8)?;
/// let detected = simulator.run_test(&catalog::march_sl());
/// assert_eq!(detected, simulator.lane_mask(), "March SL covers every lane");
/// // ... and a `[u64; 4]` block packs 256 with identical verdicts.
/// let mut wide = PackedSimulator::<W256>::new(&target, &lanes, 8)?;
/// let wide_detected = wide.run_test(&catalog::march_sl());
/// assert_eq!(wide_detected, wide.lane_mask());
/// # Ok::<(), sram_sim::SimulationError>(())
/// ```
#[derive(Debug)]
pub struct PackedSimulator<W: LaneWord = u64> {
    cells: usize,
    lanes: usize,
    lane_mask: W,
    faulty: Vec<W>,
    golden: Vec<W>,
    components: Vec<PackedComponent<W>>,
    decoder: Option<PackedDecoder<W>>,
    /// Whether any component is state-sensitized (SF, CFst): when `false`,
    /// the per-operation settle pass — an `O(cells)` gather — is skipped
    /// entirely, which matters on large memories and on decoder targets
    /// (whose component list is empty).
    has_state_faults: bool,
    detected: W,
}

impl<W: LaneWord> Clone for PackedSimulator<W> {
    fn clone(&self) -> PackedSimulator<W> {
        PackedSimulator {
            cells: self.cells,
            lanes: self.lanes,
            lane_mask: self.lane_mask,
            faulty: self.faulty.clone(),
            golden: self.golden.clone(),
            components: self.components.clone(),
            decoder: self.decoder.clone(),
            has_state_faults: self.has_state_faults,
            detected: self.detected,
        }
    }

    /// Field-wise `clone_from` so the bit-plane buffers are re-used when a
    /// snapshot is restored into an existing simulator of the same memory size
    /// — the hot restore of the suffix-only redundancy-removal trials.
    fn clone_from(&mut self, source: &PackedSimulator<W>) {
        self.cells = source.cells;
        self.lanes = source.lanes;
        self.lane_mask = source.lane_mask;
        self.faulty.clone_from(&source.faulty);
        self.golden.clone_from(&source.golden);
        self.components.clone_from(&source.components);
        match (&mut self.decoder, &source.decoder) {
            (Some(into), Some(from)) => into.clone_from(from),
            (into, from) => *into = from.clone(),
        }
        self.has_state_faults = source.has_state_faults;
        self.detected = source.detected;
    }
}

impl<W: LaneWord> PackedSimulator<W> {
    /// The maximum number of lanes this simulator's word holds.
    pub const MAX_LANES: usize = W::BITS;

    /// Packs every lane of `target` into one simulator.
    ///
    /// # Errors
    ///
    /// * [`SimulationError::LaneCountOutOfRange`] if `lanes` is empty or holds
    ///   more than [`PackedSimulator::MAX_LANES`] entries (split larger lane
    ///   sets into chunks, as [`PackedBackend`] does);
    /// * otherwise propagates the placement-validation errors of
    ///   [`InjectedFault`] / [`LinkedFaultInstance`] and the
    ///   background-materialisation errors of [`InitialState`].
    pub fn new(
        target: &TargetKind,
        lanes: &[CoverageLane],
        memory_cells: usize,
    ) -> Result<PackedSimulator<W>, SimulationError> {
        // One component per fault primitive, bound lane by lane through the
        // scalar constructors so that validation and aggressor resolution are
        // byte-for-byte the scalar engine's. Decoder targets have no array
        // component; their lane bindings live in the packed decoder planes.
        let components: Vec<PackedComponent<W>> = match target {
            TargetKind::Simple(primitive) => {
                vec![PackedComponent::new(primitive.clone(), memory_cells)]
            }
            TargetKind::Linked(fault) => vec![
                PackedComponent::new(fault.first().clone(), memory_cells),
                PackedComponent::new(fault.second().clone(), memory_cells),
            ],
            TargetKind::Decoder(_) => Vec::new(),
        };
        let decoder = match target {
            TargetKind::Decoder(fault) => Some(PackedDecoder::new(*fault, memory_cells)),
            _ => None,
        };
        let has_state_faults = components
            .iter()
            .any(|component| component.primitive.sensitizing_site() == SensitizingSite::None);
        let mut simulator = PackedSimulator {
            cells: memory_cells,
            lanes: 0,
            lane_mask: W::ZERO,
            faulty: vec![W::ZERO; memory_cells],
            golden: vec![W::ZERO; memory_cells],
            components,
            decoder,
            has_state_faults,
            detected: W::ZERO,
        };
        simulator.pack(target, lanes)?;
        Ok(simulator)
    }

    /// Re-packs this simulator onto a new chunk of lanes of the *same*
    /// `target` it was constructed for, re-using every plane allocation — the
    /// chunk-loop companion of `new` that keeps per-chunk construction free of
    /// allocator traffic when a backend walks a large lane set
    /// (`first_undetected` / `lane_verdicts` re-pack one scratch simulator
    /// per chunk instead of building hundreds of fresh ones).
    ///
    /// # Errors
    ///
    /// Exactly the errors of [`PackedSimulator::new`]. On error the simulator
    /// is left partially re-bound and must not be run until a later `repack`
    /// succeeds.
    pub fn repack(
        &mut self,
        target: &TargetKind,
        lanes: &[CoverageLane],
    ) -> Result<(), SimulationError> {
        for component in &mut self.components {
            component.reset();
        }
        if let Some(decoder) = &mut self.decoder {
            decoder.reset();
        }
        self.pack(target, lanes)
    }

    /// The shared body of `new` and `repack`: binds every lane of `lanes`
    /// into the (cleared) planes and initialises the memory state. `target`
    /// must be the target the component/decoder planes were allocated for.
    fn pack(&mut self, target: &TargetKind, lanes: &[CoverageLane]) -> Result<(), SimulationError> {
        if lanes.is_empty() || lanes.len() > Self::MAX_LANES {
            return Err(SimulationError::LaneCountOutOfRange {
                requested: lanes.len(),
            });
        }
        let memory_cells = self.cells;

        // Lanes sharing a background share one mask. The two uniform
        // backgrounds — by far the common case — collapse into a single word
        // each (`ones`: lanes whose every cell starts at one), so the memory
        // fill below is one `fill` over the planes instead of a per-cell
        // branch per background; only patterned backgrounds (checkerboard,
        // custom images) pay the `O(cells)` materialise-and-scan.
        let mut ones = W::ZERO;
        let mut patterned: Vec<(&InitialState, W)> = Vec::new();
        for (lane, coverage_lane) in lanes.iter().enumerate() {
            match target {
                TargetKind::Simple(primitive) => {
                    let injected = if primitive.is_coupling() {
                        InjectedFault::coupling(
                            primitive.clone(),
                            coverage_lane.cells.aggressor_first.ok_or_else(|| {
                                SimulationError::MissingCells(
                                    "coupling primitive requires an aggressor cell".to_string(),
                                )
                            })?,
                            coverage_lane.cells.victim,
                            memory_cells,
                        )?
                    } else {
                        InjectedFault::single_cell(
                            primitive.clone(),
                            coverage_lane.cells.victim,
                            memory_cells,
                        )?
                    };
                    self.components[0].bind(lane, injected.victim(), injected.aggressor());
                }
                TargetKind::Linked(fault) => {
                    let instance =
                        LinkedFaultInstance::new(fault.clone(), coverage_lane.cells, memory_cells)?;
                    for (component, injected) in
                        self.components.iter_mut().zip(instance.components())
                    {
                        component.bind(lane, injected.victim(), injected.aggressor());
                    }
                }
                TargetKind::Decoder(fault) => {
                    let instance =
                        DecoderFaultInstance::new(*fault, coverage_lane.cells, memory_cells)?;
                    self.decoder
                        .as_mut()
                        .expect("decoder targets allocate decoder planes")
                        .bind(lane, &instance);
                }
            }

            match &coverage_lane.background {
                InitialState::AllZero => {}
                InitialState::AllOne => *ones.limb_mut(lane >> 6) |= 1 << (lane & 63),
                background => {
                    let bit = W::bit(lane);
                    match patterned
                        .iter_mut()
                        .find(|(candidate, _)| *candidate == background)
                    {
                        Some((_, mask)) => *mask |= bit,
                        None => patterned.push((background, bit)),
                    }
                }
            }
        }

        self.faulty.fill(ones);
        if patterned.is_empty() {
            self.golden.fill(ones);
        } else {
            for (background, mask) in patterned {
                let content = background.materialise(memory_cells)?;
                for (cell, bit) in content.iter().enumerate() {
                    if *bit == Bit::One {
                        self.faulty[cell] |= mask;
                    }
                }
            }
            self.golden.clone_from(&self.faulty);
        }

        // One shared width-generic boundary: `full_mask` handles the
        // n == width case that used to be special-cased here and in
        // `merge_lanes`.
        self.lanes = lanes.len();
        self.lane_mask = W::full_mask(lanes.len());
        self.detected = W::ZERO;
        // State-sensitized primitives settle once right after initialisation,
        // exactly like the scalar engine's post-inject pass.
        self.settle_state_faults();
        Ok(())
    }

    /// The number of packed lanes.
    #[must_use]
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// The number of memory cells.
    #[must_use]
    pub fn cells(&self) -> usize {
        self.cells
    }

    /// The mask with one bit set per packed lane.
    #[must_use]
    pub fn lane_mask(&self) -> W {
        self.lane_mask
    }

    /// Lanes on which at least one read has mismatched so far.
    #[must_use]
    pub fn detected_mask(&self) -> W {
        self.detected
    }

    /// Returns `true` once every lane has detected its fault instance.
    #[must_use]
    pub fn all_detected(&self) -> bool {
        self.detected == self.lane_mask
    }

    /// Per-lane value of the component's bound cell: OR of the memory planes
    /// masked by the binding planes (each lane has exactly one bound cell).
    #[inline]
    fn gather(planes: &[W], bound_at: &[W]) -> W {
        let mut values = W::ZERO;
        for (plane, bound) in planes.iter().zip(bound_at) {
            values |= *plane & *bound;
        }
        values
    }

    /// Lanes in which `component` is sensitized by applying `operation` to
    /// `address`, evaluated on the pre-operation faulty state.
    fn sensitized_mask(
        &self,
        component: &PackedComponent<W>,
        address: usize,
        operation: Operation,
    ) -> W {
        let primitive = &component.primitive;
        let site_mask = match primitive.sensitizing_site() {
            SensitizingSite::None => return W::ZERO,
            SensitizingSite::Victim => component.victim_at[address],
            SensitizingSite::Aggressor => component.aggressor_at[address],
        };
        if site_mask.is_zero() {
            return W::ZERO;
        }
        let required = primitive
            .sensitizing_operation()
            .expect("operation-sensitized primitive has an operation");
        if !required.matches(operation) {
            return W::ZERO;
        }
        let victim_values = Self::gather(&self.faulty, &component.victim_at);
        let mut mask = site_mask & condition_mask(primitive.victim().initial(), victim_values);
        if let Some(aggressor) = primitive.aggressor() {
            let aggressor_values = Self::gather(&self.faulty, &component.aggressor_at);
            mask &= condition_mask(aggressor.initial(), aggressor_values);
        }
        mask
    }

    /// Masked scatter: forces `bit` into the component's victim cells on the
    /// lanes of `mask`.
    fn scatter_victim(faulty: &mut [W], component: &PackedComponent<W>, bit: Bit, mask: W) {
        if mask.is_zero() {
            return;
        }
        let bits = broadcast::<W>(bit);
        for (plane, victim) in faulty.iter_mut().zip(&component.victim_at) {
            let write = mask & *victim;
            *plane = (*plane & !write) | (bits & write);
        }
    }

    /// One pass over the state-sensitized primitives in injection order,
    /// flipping the victims of every lane whose state condition holds.
    /// Free when the target has no state-sensitized primitive.
    fn settle_state_faults(&mut self) {
        if !self.has_state_faults {
            return;
        }
        for index in 0..self.components.len() {
            let component = &self.components[index];
            let primitive = &component.primitive;
            if primitive.sensitizing_site() != SensitizingSite::None {
                continue;
            }
            let victim_values = Self::gather(&self.faulty, &component.victim_at);
            let mut mask =
                self.lane_mask & condition_mask(primitive.victim().initial(), victim_values);
            if let Some(aggressor) = primitive.aggressor() {
                let aggressor_values = Self::gather(&self.faulty, &component.aggressor_at);
                mask &= condition_mask(aggressor.initial(), aggressor_values);
            }
            if let Some(forced) = primitive.effect().victim_value().to_bit() {
                let component = &self.components[index];
                Self::scatter_victim(&mut self.faulty, component, forced, mask);
            }
        }
    }

    /// Applies one memory operation to cell `address` of every lane.
    ///
    /// # Panics
    ///
    /// Panics if `address` is out of range.
    pub fn apply(&mut self, address: usize, operation: Operation) {
        assert!(
            address < self.cells,
            "cell address {address} out of range for a {}-cell memory",
            self.cells
        );

        // 1. Which operation-sensitized primitives fire, per lane?
        let mut fired = [W::ZERO; 2];
        for (index, component) in self.components.iter().enumerate() {
            fired[index] = self.sensitized_mask(component, address, operation);
        }

        // 2. Read return values and detection. The decoder perturbation (if
        // any) resolves first — it sits in front of the array — then the
        // fired primitives' read overrides, exactly as in the scalar engine.
        if operation.is_read() {
            let golden_read = self.golden[address];
            let mut observed = self.faulty[address];
            if let Some(decoder) = &self.decoder {
                // Detected lanes are dead: their verdict bit is already latched
                // (`detected` only ever ORs), so their redirections no longer
                // need resolving. Masking them out caps the per-lane
                // gather/scatter tail at the *undetected* population — the
                // dominant run-phase cost on exhaustive AF spaces, where most
                // lanes detect within the first elements.
                let redirected = decoder.source_at[address] & !self.detected;
                if !redirected.is_zero() {
                    observed = match decoder.fault {
                        DecoderFault::NoCellAccessed { open_read } => {
                            (observed & !redirected) | (broadcast::<W>(open_read) & redirected)
                        }
                        DecoderFault::NoAddressMaps | DecoderFault::MultipleAddressesMap => {
                            let destination = decoder.gather_destinations(&self.faulty, redirected);
                            (observed & !redirected) | (destination & redirected)
                        }
                        DecoderFault::MultipleCellsAccessed => {
                            // Wired-AND of the own cell and the extra cell on
                            // the redirected lanes.
                            let destination = decoder.gather_destinations(&self.faulty, redirected);
                            observed & (destination | !redirected)
                        }
                    };
                }
            }
            for (index, component) in self.components.iter().enumerate() {
                if let Some(read_output) = component.primitive.effect().read_output() {
                    let lanes = fired[index] & component.victim_at[address];
                    let bits = broadcast::<W>(read_output);
                    observed = (observed & !lanes) | (bits & lanes);
                }
            }
            self.detected |= (observed ^ golden_read) & self.lane_mask;
        }

        // 3. Fault-free effect of the operation, routed through the perturbed
        // decode on the faulty side (the golden reference always decodes
        // correctly).
        if let Operation::Write(value) = operation {
            let bits = broadcast::<W>(value);
            self.golden[address] = bits;
            match &self.decoder {
                None => self.faulty[address] = bits,
                Some(decoder) => {
                    // Dead (detected) lanes are dropped from the perturbed
                    // decode, as in the read path: their array state is never
                    // observed again.
                    let redirected = decoder.source_at[address] & !self.detected;
                    // Lanes whose write still reaches the addressed cell: all
                    // of them for the fan-out class, the unperturbed ones
                    // otherwise.
                    let own_mask = match decoder.fault {
                        DecoderFault::MultipleCellsAccessed => W::ALL,
                        _ => !redirected,
                    };
                    self.faulty[address] = (self.faulty[address] & !own_mask) | (bits & own_mask);
                    if !redirected.is_zero()
                        && !matches!(decoder.fault, DecoderFault::NoCellAccessed { .. })
                    {
                        decoder.scatter_destinations(&mut self.faulty, redirected, bits);
                    }
                }
            }
        }

        // 4. Fault effects of the fired primitives, in injection order.
        for (index, component) in self.components.iter().enumerate() {
            if let Some(forced) = component.primitive.effect().victim_value().to_bit() {
                Self::scatter_victim(&mut self.faulty, component, forced, fired[index]);
            }
        }

        // 5. One pass of the state-sensitized primitives.
        self.settle_state_faults();
    }

    /// Executes one march element on every lane (elements with
    /// [`march_test::AddressOrder::Any`] run in ascending order, as in
    /// [`run_march`]).
    pub fn apply_element(&mut self, element: &MarchElement) {
        for cell in element.order().addresses(self.cells) {
            if self.all_detected() {
                return;
            }
            for operation in element.operations() {
                self.apply(cell, *operation);
            }
        }
    }

    /// Executes a full march test and returns the per-lane detection mask.
    /// Early-exits once every lane has detected its instance.
    pub fn run_test(&mut self, test: &MarchTest) -> W {
        for (_, element) in test.iter() {
            self.apply_element(element);
            if self.all_detected() {
                break;
            }
        }
        self.detected
    }

    /// Re-packs one coverage lane of this simulator as a [`CandidateWave`]: the
    /// lane's memory state broadcast across up to one candidate word of
    /// *candidate* lanes, so a whole [`CandidateBatch`] can be scored against
    /// it in one bit-parallel pass.
    ///
    /// # Panics
    ///
    /// Panics if `lane` is not a packed lane of this simulator.
    #[must_use]
    pub(crate) fn candidate_wave<C: LaneWord>(&self, lane: usize) -> CandidateWave<'_, C> {
        assert!(lane < self.lanes, "lane {lane} out of range");
        let broadcast_lane = |plane: &W| {
            if plane.test_bit(lane) {
                C::ALL
            } else {
                C::ZERO
            }
        };
        CandidateWave {
            cells: self.cells,
            faulty: self.faulty.iter().map(broadcast_lane).collect(),
            golden: self.golden.iter().map(broadcast_lane).collect(),
            components: self
                .components
                .iter()
                .map(|component| WaveComponent {
                    primitive: &component.primitive,
                    victim: component
                        .victim_at
                        .iter()
                        .position(|plane| plane.test_bit(lane))
                        .expect("every packed lane binds a victim cell"),
                    aggressor: component
                        .aggressor_at
                        .iter()
                        .position(|plane| plane.test_bit(lane)),
                })
                .collect(),
            decoder: self.decoder.as_ref().map(|decoder| WaveDecoder {
                fault: decoder.fault,
                source: decoder
                    .source_at
                    .iter()
                    .position(|plane| plane.test_bit(lane))
                    .expect("every packed decoder lane binds a source address"),
                destination: decoder.destination(lane),
            }),
            detected: C::ZERO,
        }
    }

    /// Merges selected lane columns of several same-target simulators into one
    /// dense simulator (used by [`TargetBatch`](crate::TargetBatch) to compact
    /// pending lanes after detected ones drop out). Lane order follows the
    /// source order, so escape/pending reporting stays deterministic.
    ///
    /// Returns `None` when no lanes are selected.
    ///
    /// # Panics
    ///
    /// Panics if more than [`PackedSimulator::MAX_LANES`] lanes are selected or
    /// the sources disagree on memory size / component structure.
    pub(crate) fn merge_lanes(sources: &[(&PackedSimulator<W>, W)]) -> Option<PackedSimulator<W>> {
        let first = sources.iter().find(|(_, mask)| !mask.is_zero())?.0;
        let cells = first.cells;
        let mut merged = PackedSimulator {
            cells,
            lanes: 0,
            lane_mask: W::ZERO,
            faulty: vec![W::ZERO; cells],
            golden: vec![W::ZERO; cells],
            components: first
                .components
                .iter()
                .map(|component| PackedComponent::new(component.primitive.clone(), cells))
                .collect(),
            decoder: first
                .decoder
                .as_ref()
                .map(|decoder| PackedDecoder::new(decoder.fault, cells)),
            has_state_faults: first.has_state_faults,
            detected: W::ZERO,
        };
        let mut dest = 0usize;
        for (source, mask) in sources {
            assert_eq!(source.cells, cells, "merged simulators share the memory");
            assert_eq!(
                source.components.len(),
                merged.components.len(),
                "merged simulators share the target"
            );
            let mut bits = *mask;
            while !bits.is_zero() {
                let lane = bits.trailing_zeros() as usize;
                bits.clear_lowest_bit();
                assert!(
                    dest < Self::MAX_LANES,
                    "compacted more than {} lanes into one word",
                    Self::MAX_LANES
                );
                let dest_bit = W::bit(dest);
                for cell in 0..cells {
                    if source.faulty[cell].test_bit(lane) {
                        merged.faulty[cell] |= dest_bit;
                    }
                    if source.golden[cell].test_bit(lane) {
                        merged.golden[cell] |= dest_bit;
                    }
                }
                for (into, from) in merged.components.iter_mut().zip(&source.components) {
                    for cell in 0..cells {
                        if from.victim_at[cell].test_bit(lane) {
                            into.victim_at[cell] |= dest_bit;
                        }
                        if from.aggressor_at[cell].test_bit(lane) {
                            into.aggressor_at[cell] |= dest_bit;
                        }
                    }
                }
                if let (Some(into), Some(from)) = (merged.decoder.as_mut(), source.decoder.as_ref())
                {
                    for cell in 0..cells {
                        if from.source_at[cell].test_bit(lane) {
                            into.source_at[cell] |= dest_bit;
                        }
                    }
                    if into.dest_of_lane.len() <= dest {
                        into.dest_of_lane.resize(dest + 1, usize::MAX);
                    }
                    into.dest_of_lane[dest] =
                        from.dest_of_lane.get(lane).copied().unwrap_or(usize::MAX);
                }
                if source.detected.test_bit(lane) {
                    merged.detected |= dest_bit;
                }
                dest += 1;
            }
        }
        if dest == 0 {
            return None;
        }
        merged.lanes = dest;
        // The same shared boundary helper as `new`: no width special cases.
        merged.lane_mask = W::full_mask(dest);
        Some(merged)
    }
}

/// One fault-primitive component of a [`CandidateWave`], bound to concrete
/// cells (the wave replicates a *single* coverage lane, so the binding is a
/// scalar address rather than a per-lane bit-plane).
#[derive(Debug)]
struct WaveComponent<'a> {
    primitive: &'a FaultPrimitive,
    victim: usize,
    aggressor: Option<usize>,
}

/// The decoder perturbation of a [`CandidateWave`] (the wave replicates a
/// single coverage lane, so the binding is scalar addresses).
#[derive(Debug, Clone, Copy)]
struct WaveDecoder {
    fault: DecoderFault,
    source: usize,
    destination: Option<usize>,
}

/// A bit-parallel **candidate** evaluator: one still-pending coverage lane's
/// simulator state broadcast across one candidate word of lanes, where each
/// lane executes a *different* candidate march element of a [`CandidateBatch`].
///
/// This is the transpose of [`PackedSimulator`]: instead of a word of fault
/// instances running one program, one fault instance runs a word of programs.
/// Per micro-step (cell visit × operation slot) the lanes are grouped by
/// address order and operation kind — at most two addresses
/// (ascending/descending cursor) and four operation kinds — and each group is
/// applied with masked bitwise arithmetic, so a whole candidate pool is scored
/// in a handful of passes instead of one full simulation per candidate.
///
/// The semantics mirror [`FaultSimulator`](crate::FaultSimulator) exactly: fire
/// detection on the pre-operation state, read override, fault-free effect,
/// fault effects in injection order, then one settle pass of state-sensitized
/// primitives — masked to the lanes that executed an operation this step, just
/// as each scalar simulator settles only after its own operations.
#[derive(Debug)]
pub(crate) struct CandidateWave<'a, C: LaneWord = u64> {
    cells: usize,
    faulty: Vec<C>,
    golden: Vec<C>,
    components: Vec<WaveComponent<'a>>,
    decoder: Option<WaveDecoder>,
    detected: C,
}

impl<C: LaneWord> CandidateWave<'_, C> {
    /// Runs every candidate of `pool` against the replicated lane state and
    /// returns the mask of candidates whose element detects the lane.
    pub(crate) fn run_pool(&mut self, pool: &CandidateBatch<C>) -> C {
        let ascending = pool.ascending_mask();
        let descending = !ascending & pool.lane_mask();
        for index in 0..self.cells {
            let descending_address = self.cells - 1 - index;
            for slot in 0..pool.max_ops() {
                if self.detected == pool.lane_mask() {
                    return self.detected;
                }
                for (operation, kind_mask) in pool.slot_ops(slot) {
                    let up = kind_mask & ascending;
                    if !up.is_zero() {
                        self.apply_masked(index, operation, up);
                    }
                    let down = kind_mask & descending;
                    if !down.is_zero() {
                        self.apply_masked(descending_address, operation, down);
                    }
                }
            }
        }
        self.detected
    }

    /// Applies `operation` to cell `address` on the candidate lanes of
    /// `lanes` only, mirroring [`PackedSimulator::apply`] step for step.
    fn apply_masked(&mut self, address: usize, operation: Operation, lanes: C) {
        // 1. Which operation-sensitized primitives fire, per candidate lane?
        let mut fired = [C::ZERO; 2];
        for (index, component) in self.components.iter().enumerate() {
            fired[index] = self.sensitized_mask(component, address, operation) & lanes;
        }

        // 2. Read return values and detection. The decoder perturbation (if
        // any) resolves first, mirroring the packed engine.
        if operation.is_read() {
            let golden_read = self.golden[address];
            let mut observed = self.faulty[address];
            if let Some(decoder) = self.decoder {
                if decoder.source == address {
                    observed = match decoder.fault {
                        DecoderFault::NoCellAccessed { open_read } => broadcast::<C>(open_read),
                        DecoderFault::NoAddressMaps | DecoderFault::MultipleAddressesMap => {
                            self.faulty
                                [decoder.destination.expect("pair class binds a destination")]
                        }
                        DecoderFault::MultipleCellsAccessed => {
                            observed
                                & self.faulty
                                    [decoder.destination.expect("pair class binds a destination")]
                        }
                    };
                }
            }
            for (index, component) in self.components.iter().enumerate() {
                if component.victim == address {
                    if let Some(read_output) = component.primitive.effect().read_output() {
                        let mask = fired[index];
                        let bits = broadcast::<C>(read_output);
                        observed = (observed & !mask) | (bits & mask);
                    }
                }
            }
            self.detected |= (observed ^ golden_read) & lanes;
        }

        // 3. Fault-free effect of the operation, routed through the perturbed
        // decode on the faulty side.
        if let Operation::Write(value) = operation {
            let bits = broadcast::<C>(value);
            self.golden[address] = (self.golden[address] & !lanes) | (bits & lanes);
            let mut write_own = true;
            if let Some(decoder) = self.decoder {
                if decoder.source == address {
                    match decoder.fault {
                        DecoderFault::NoCellAccessed { .. } => write_own = false,
                        DecoderFault::NoAddressMaps | DecoderFault::MultipleAddressesMap => {
                            write_own = false;
                            let destination =
                                decoder.destination.expect("pair class binds a destination");
                            self.faulty[destination] =
                                (self.faulty[destination] & !lanes) | (bits & lanes);
                        }
                        DecoderFault::MultipleCellsAccessed => {
                            let destination =
                                decoder.destination.expect("pair class binds a destination");
                            self.faulty[destination] =
                                (self.faulty[destination] & !lanes) | (bits & lanes);
                        }
                    }
                }
            }
            if write_own {
                self.faulty[address] = (self.faulty[address] & !lanes) | (bits & lanes);
            }
        }

        // 4. Fault effects of the fired primitives, in injection order.
        for (index, component) in self.components.iter().enumerate() {
            if let Some(forced) = component.primitive.effect().victim_value().to_bit() {
                let mask = fired[index];
                if !mask.is_zero() {
                    let bits = broadcast::<C>(forced);
                    self.faulty[component.victim] =
                        (self.faulty[component.victim] & !mask) | (bits & mask);
                }
            }
        }

        // 5. One settle pass of the state-sensitized primitives, on the lanes
        // that executed this operation.
        self.settle_state_faults(lanes);
    }

    /// Candidate lanes of `component` sensitized by applying `operation` to
    /// `address`, evaluated on the pre-operation faulty state.
    fn sensitized_mask(
        &self,
        component: &WaveComponent<'_>,
        address: usize,
        operation: Operation,
    ) -> C {
        let primitive = component.primitive;
        let site = match primitive.sensitizing_site() {
            SensitizingSite::None => return C::ZERO,
            SensitizingSite::Victim => component.victim,
            SensitizingSite::Aggressor => match component.aggressor {
                Some(aggressor) => aggressor,
                None => return C::ZERO,
            },
        };
        if site != address {
            return C::ZERO;
        }
        let required = primitive
            .sensitizing_operation()
            .expect("operation-sensitized primitive has an operation");
        if !required.matches(operation) {
            return C::ZERO;
        }
        let mut mask = condition_mask(primitive.victim().initial(), self.faulty[component.victim]);
        if let Some(aggressor) = primitive.aggressor() {
            let values = component
                .aggressor
                .map_or(C::ZERO, |aggressor_cell| self.faulty[aggressor_cell]);
            mask &= condition_mask(aggressor.initial(), values);
        }
        mask
    }

    /// One pass over the state-sensitized primitives in injection order,
    /// restricted to the candidate lanes of `lanes`.
    fn settle_state_faults(&mut self, lanes: C) {
        for index in 0..self.components.len() {
            let component = &self.components[index];
            let primitive = component.primitive;
            if primitive.sensitizing_site() != SensitizingSite::None {
                continue;
            }
            let mut mask =
                lanes & condition_mask(primitive.victim().initial(), self.faulty[component.victim]);
            if let Some(aggressor) = primitive.aggressor() {
                let values = component
                    .aggressor
                    .map_or(C::ZERO, |aggressor_cell| self.faulty[aggressor_cell]);
                mask &= condition_mask(aggressor.initial(), values);
            }
            if let Some(forced) = primitive.effect().victim_value().to_bit() {
                let victim = self.components[index].victim;
                let bits = broadcast::<C>(forced);
                self.faulty[victim] = (self.faulty[victim] & !mask) | (bits & mask);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use march_test::catalog;
    use sram_fault_model::FaultList;

    fn both_verdicts(
        test: &MarchTest,
        target: &TargetKind,
        strategy: PlacementStrategy,
        backgrounds: &[InitialState],
    ) -> (Vec<bool>, Vec<bool>) {
        let lanes = enumerate_lanes(target, 8, strategy, backgrounds).unwrap();
        let scalar = ScalarBackend.lane_verdicts(test, target, &lanes, 8);
        let packed = PackedBackend::default().lane_verdicts(test, target, &lanes, 8);
        (scalar, packed)
    }

    #[test]
    fn backends_agree_on_every_linked_fault_of_list_2() {
        let backgrounds = [InitialState::AllZero, InitialState::AllOne];
        for fault in FaultList::list_2().linked() {
            let target = TargetKind::Linked(fault.clone());
            for test in [
                catalog::march_ss(),
                catalog::march_sl(),
                catalog::mats_plus(),
            ] {
                let (scalar, packed) =
                    both_verdicts(&test, &target, PlacementStrategy::Exhaustive, &backgrounds);
                assert_eq!(scalar, packed, "{fault} under {}", test.name());
            }
        }
    }

    #[test]
    fn backends_agree_on_every_unlinked_primitive() {
        let backgrounds = [InitialState::AllZero, InitialState::AllOne];
        for primitive in FaultList::unlinked_static().simple() {
            let target = TargetKind::Simple(primitive.clone());
            for test in [catalog::march_ss(), catalog::march_c_minus()] {
                let (scalar, packed) = both_verdicts(
                    &test,
                    &target,
                    PlacementStrategy::Representative,
                    &backgrounds,
                );
                assert_eq!(scalar, packed, "{primitive} under {}", test.name());
            }
        }
    }

    #[test]
    fn backends_agree_on_three_cell_topologies() {
        let backgrounds = [InitialState::AllZero, InitialState::AllOne];
        let list = FaultList::list_1();
        for fault in list
            .linked()
            .iter()
            .filter(|fault| fault.cell_count() >= 2)
            .take(40)
        {
            let target = TargetKind::Linked(fault.clone());
            let (scalar, packed) = both_verdicts(
                &catalog::march_rabl(),
                &target,
                PlacementStrategy::Representative,
                &backgrounds,
            );
            assert_eq!(scalar, packed, "{fault}");
        }
    }

    #[test]
    fn packed_chunks_split_beyond_64_lanes() {
        // Exhaustive LF2 placements on 8 cells: 56 placements × 2 backgrounds =
        // 112 lanes — forces chunking at width 64 but fits one W128 word.
        let fault = FaultList::list_1()
            .linked()
            .iter()
            .find(|fault| fault.cell_count() == 2)
            .expect("list #1 has two-cell faults")
            .clone();
        let target = TargetKind::Linked(fault);
        let lanes = enumerate_lanes(
            &target,
            8,
            PlacementStrategy::Exhaustive,
            &[InitialState::AllZero, InitialState::AllOne],
        )
        .unwrap();
        assert!(lanes.len() > PackedSimulator::<u64>::MAX_LANES);
        assert!(lanes.len() <= PackedSimulator::<W128>::MAX_LANES);
        assert!(matches!(
            PackedSimulator::<u64>::new(&target, &lanes, 8),
            Err(SimulationError::LaneCountOutOfRange { requested }) if requested == lanes.len()
        ));
        assert!(matches!(
            PackedSimulator::<u64>::new(&target, &[], 8),
            Err(SimulationError::LaneCountOutOfRange { requested: 0 })
        ));
        // The whole lane set fits a single wide word.
        let mut wide = PackedSimulator::<W128>::new(&target, &lanes, 8).unwrap();
        assert_eq!(wide.lanes(), lanes.len());
        let scalar = ScalarBackend.lane_verdicts(&catalog::march_sl(), &target, &lanes, 8);
        let packed =
            PackedBackend::default().lane_verdicts(&catalog::march_sl(), &target, &lanes, 8);
        assert_eq!(scalar, packed);
        let wide_detected = wide.run_test(&catalog::march_sl());
        let wide_verdicts: Vec<bool> = (0..lanes.len())
            .map(|lane| wide_detected.test_bit(lane))
            .collect();
        assert_eq!(scalar, wide_verdicts);
        assert_eq!(
            ScalarBackend.first_undetected(&catalog::march_sl(), &target, &lanes, 8),
            PackedBackend::default().first_undetected(&catalog::march_sl(), &target, &lanes, 8),
        );
    }

    #[test]
    fn lane_widths_agree_on_verdicts_and_first_undetected() {
        // 112-lane linked target and 320-lane decoder targets: every width
        // (auto, 64, 128, 256) must report identical verdicts and identical
        // first-escape indices, for complete and incomplete tests alike.
        let backgrounds = [InitialState::AllZero, InitialState::AllOne];
        let linked = FaultList::list_1()
            .linked()
            .iter()
            .find(|fault| fault.cell_count() == 2)
            .expect("list #1 has two-cell faults")
            .clone();
        let mut targets = vec![(TargetKind::Linked(linked), 8usize)];
        for fault in DecoderFault::all() {
            targets.push((TargetKind::Decoder(fault), 32));
        }
        for (target, cells) in targets {
            let lanes =
                enumerate_lanes(&target, cells, PlacementStrategy::Exhaustive, &backgrounds)
                    .unwrap();
            for test in [catalog::march_sl(), catalog::mats_plus()] {
                let reference = PackedBackend::with_width(LaneWidth::W64)
                    .lane_verdicts(&test, &target, &lanes, cells);
                let reference_first = PackedBackend::with_width(LaneWidth::W64)
                    .first_undetected(&test, &target, &lanes, cells);
                for width in LaneWidth::ALL {
                    let backend = PackedBackend::with_width(width);
                    assert_eq!(
                        backend.lane_verdicts(&test, &target, &lanes, cells),
                        reference,
                        "{target:?} verdicts at width {width}"
                    );
                    assert_eq!(
                        backend.first_undetected(&test, &target, &lanes, cells),
                        reference_first,
                        "{target:?} first escape at width {width}"
                    );
                }
            }
        }
    }

    #[test]
    fn backends_agree_on_decoder_targets_beyond_64_lanes() {
        use sram_fault_model::DecoderFault;

        // Exhaustive address-line pairs on 32 cells: 32 primaries × 5 strides
        // × 2 backgrounds = 320 lanes — forces chunking, and partial
        // detection exercises the decoder-plane path of `merge_lanes` through
        // `TargetBatch` compaction.
        let backgrounds = [InitialState::AllZero, InitialState::AllOne];
        for fault in DecoderFault::all() {
            let target = TargetKind::Decoder(fault);
            let lanes =
                enumerate_lanes(&target, 32, PlacementStrategy::Exhaustive, &backgrounds).unwrap();
            if fault.involves_partner() {
                assert!(lanes.len() > PackedSimulator::<u64>::MAX_LANES, "{fault}");
            }
            for test in [catalog::mats_plus(), catalog::march_c_minus()] {
                let scalar = ScalarBackend.lane_verdicts(&test, &target, &lanes, 32);
                let packed = PackedBackend::default().lane_verdicts(&test, &target, &lanes, 32);
                assert_eq!(scalar, packed, "{fault} under {}", test.name());
                assert_eq!(
                    ScalarBackend.first_undetected(&test, &target, &lanes, 32),
                    PackedBackend::default().first_undetected(&test, &target, &lanes, 32),
                );
            }

            // Advance the scalar batch and a packed batch of every lane width
            // element by element through a weak test: compaction
            // (decoder-plane lane merging) must not change scores or the
            // surviving lane set at any width.
            for width in LaneWidth::ALL {
                let mut scalar_batch =
                    crate::TargetBatch::new(target.clone(), lanes.clone(), 32, BackendKind::Scalar);
                let mut packed_batch = crate::TargetBatch::new_with_width(
                    target.clone(),
                    lanes.clone(),
                    32,
                    BackendKind::Packed,
                    width,
                );
                for (_, element) in catalog::mats_plus().iter() {
                    assert_eq!(
                        scalar_batch.advance(element),
                        packed_batch.advance(element),
                        "{fault} at width {width}"
                    );
                    assert_eq!(
                        scalar_batch.pending_lanes(),
                        packed_batch.pending_lanes(),
                        "{fault} at width {width}"
                    );
                }
            }
        }
    }

    #[test]
    fn backend_kind_parsing_and_names() {
        assert_eq!(BackendKind::default(), BackendKind::Packed);
        assert_eq!(
            "scalar".parse::<BackendKind>().unwrap(),
            BackendKind::Scalar
        );
        assert_eq!(
            "Packed".parse::<BackendKind>().unwrap(),
            BackendKind::Packed
        );
        assert!("simd".parse::<BackendKind>().is_err());
        assert_eq!(BackendKind::Scalar.to_string(), "scalar");
        assert_eq!(BackendKind::Packed.instance().name(), "packed");
        assert_eq!(
            BackendKind::Packed.instance_with(LaneWidth::W256).name(),
            "packed"
        );
        assert_eq!(
            PackedBackend::with_width(LaneWidth::W128).width(),
            LaneWidth::W128
        );
    }

    #[test]
    fn first_undetected_matches_verdicts_on_incomplete_tests() {
        let backgrounds = [InitialState::AllOne];
        for fault in FaultList::list_2().linked().iter().take(8) {
            let target = TargetKind::Linked(fault.clone());
            let lanes =
                enumerate_lanes(&target, 8, PlacementStrategy::Exhaustive, &backgrounds).unwrap();
            let test = catalog::mats_plus();
            let verdicts = PackedBackend::default().lane_verdicts(&test, &target, &lanes, 8);
            let first = PackedBackend::default().first_undetected(&test, &target, &lanes, 8);
            assert_eq!(first, verdicts.iter().position(|detected| !detected));
        }
    }
}
