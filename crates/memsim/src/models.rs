//! Schedule-exploration model tests of this crate's two lock-step protocols:
//! the [`ArtifactStore`] build-slot exactly-once protocol and the
//! [`WorkerPool`] job lifecycle.
//!
//! Compiled only under `--cfg interleave` (plus `cfg(test)`), where the
//! [`sync`](crate::sync) façade resolves to the instrumented primitives, so
//! every `Mutex`/`Condvar`/atomic/thread operation below is a scheduler yield
//! point and the explorer can drive the protocols through every bounded
//! interleaving. Run with:
//!
//! ```text
//! RUSTFLAGS="--cfg interleave" cargo test -p sram_sim --lib models::
//! ```
//!
//! Alongside the positive proofs sits a mutation test: a copy of the
//! build-slot protocol with the publication bug deliberately injected (slot
//! lock dropped before publishing), asserting the explorer *finds* the
//! double-enumeration — evidence the checker has teeth, not just that the
//! protocols are quiet.

// lint: allow-file(timing) — model tests spawn through the instrumented
// façade `thread`; the whole module compiles only under
// cfg(all(test, interleave)).

use interleave::{check, explore, Config};
use sram_fault_model::FaultList;

use crate::snapshot::{MemIo, SnapshotStore};
use crate::store::{ArtifactKey, ArtifactStore};
use crate::sync::atomic::{AtomicUsize, Ordering};
use crate::sync::{thread, Arc, Mutex, PoisonError};
use crate::{InitialState, PlacementStrategy, WorkerPool};

fn key(name: &str) -> ArtifactKey {
    ArtifactKey::new(
        &FaultList::new(name),
        64,
        PlacementStrategy::Exhaustive,
        &[InitialState::AllZero],
    )
}

/// Exactly-once builds: two sessions racing `target_lanes` on the same key
/// must run the build closure once, and both must observe the built value.
#[test]
fn store_builds_each_key_exactly_once() {
    let outcome = check(&Config::exhaustive(2, 8192), || {
        let store = Arc::new(ArtifactStore::new());
        let builds = Arc::new(AtomicUsize::new(0));
        let racer = {
            let store = Arc::clone(&store);
            let builds = Arc::clone(&builds);
            thread::spawn(move || {
                let lanes = store
                    .target_lanes(&key("race"), || {
                        builds.fetch_add(1, Ordering::SeqCst);
                        Ok(Arc::new(Vec::new()))
                    })
                    .expect("build is infallible");
                assert!(lanes.is_empty());
            })
        };
        let lanes = store
            .target_lanes(&key("race"), || {
                builds.fetch_add(1, Ordering::SeqCst);
                Ok(Arc::new(Vec::new()))
            })
            .expect("build is infallible");
        assert!(lanes.is_empty());
        racer.join().expect("racing session panicked");
        assert_eq!(
            builds.load(Ordering::SeqCst),
            1,
            "the build-slot protocol ran a duplicate enumeration"
        );
        assert_eq!(store.enumerations(), 1, "store counted duplicate builds");
        assert_eq!(store.hits(), 1, "the blocked requester must count as a hit");
    });
    assert!(outcome.complete, "DFS frontier not exhausted");
    assert!(outcome.schedules > 1, "no schedule diversity explored");
}

/// Distinct keys must not serialise on each other's builds, and each still
/// builds exactly once.
#[test]
fn store_keys_are_independent() {
    let outcome = check(&Config::exhaustive(2, 8192), || {
        let store = Arc::new(ArtifactStore::new());
        let other = {
            let store = Arc::clone(&store);
            thread::spawn(move || {
                store
                    .target_lanes(&key("left"), || Ok(Arc::new(Vec::new())))
                    .expect("build is infallible");
            })
        };
        store
            .target_lanes(&key("right"), || Ok(Arc::new(Vec::new())))
            .expect("build is infallible");
        other.join().expect("other session panicked");
        assert_eq!(store.enumerations(), 2);
        assert_eq!(store.hits(), 0);
    });
    assert!(outcome.complete, "DFS frontier not exhausted");
}

/// Mutation test: the build-slot protocol with the publication bug injected —
/// the slot lock is dropped after the emptiness check and reacquired to
/// publish, so two racing requesters can both see `None` and both build. The
/// explorer must find the double-enumeration; if it ever stops finding this,
/// the checker has lost its teeth.
#[test]
fn checker_detects_broken_build_slot_protocol() {
    let outcome = explore(&Config::exhaustive(2, 8192), || {
        let slot: Arc<Mutex<Option<Arc<u32>>>> = Arc::new(Mutex::new(None));
        let builds = Arc::new(AtomicUsize::new(0));
        let broken_get_or_build = |slot: &Mutex<Option<Arc<u32>>>, builds: &AtomicUsize| {
            // BUG under test: check-then-act across a lock release. The
            // correct protocol (ArtifactStore::get_or_build) holds the slot
            // lock from the emptiness check through the publication.
            let populated = slot
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .is_some();
            if !populated {
                builds.fetch_add(1, Ordering::SeqCst);
                let built = Arc::new(42u32);
                *slot.lock().unwrap_or_else(PoisonError::into_inner) = Some(built);
            }
        };
        let racer = {
            let slot = Arc::clone(&slot);
            let builds = Arc::clone(&builds);
            thread::spawn(move || broken_get_or_build(&slot, &builds))
        };
        broken_get_or_build(&slot, &builds);
        racer.join().expect("racing requester panicked");
        assert_eq!(
            builds.load(Ordering::SeqCst),
            1,
            "duplicate enumeration slipped through"
        );
    });
    let failure = outcome
        .failure
        .expect("the model checker failed to detect the broken slot protocol");
    assert!(
        failure.message.contains("duplicate enumeration"),
        "unexpected failure: {}",
        failure.message
    );
}

/// Writer/loader race over one shared snapshot device: a loader running
/// concurrently with the atomic publish protocol (writer lock → temp file →
/// rename → unlock) must either replay the complete artifact or miss and
/// fall back to an in-memory rebuild — at no explored interleaving may it
/// observe a torn file (which would surface as a quarantine) or a wrong
/// artifact. After the publish completes, the snapshot must always replay.
#[test]
fn snapshot_loads_never_observe_torn_writes() {
    let outcome = check(&Config::exhaustive(2, 30_000), || {
        let device: Arc<MemIo> = Arc::new(MemIo::new());
        let list = FaultList::new("race");
        let writer_store = SnapshotStore::with_io(device.clone(), "snaps");
        let loader_store = SnapshotStore::with_io(device.clone(), "snaps");
        let writer = {
            let writer_store = Arc::clone(&writer_store);
            thread::spawn(move || {
                writer_store.store_lanes(&key("race"), &Vec::new());
            })
        };
        if let Some(lanes) = loader_store.load_lanes(&key("race"), &list) {
            assert!(lanes.is_empty(), "the loader observed a wrong artifact");
        }
        assert_eq!(
            loader_store.stats().quarantined,
            0,
            "the loader observed a torn snapshot file"
        );
        writer.join().expect("snapshot writer panicked");
        assert!(
            loader_store.load_lanes(&key("race"), &list).is_some(),
            "a completed publish must be replayable"
        );
    });
    assert!(outcome.schedules > 1, "no schedule diversity explored");
}

/// Pool lifecycle at clients > workers: two client threads funnel jobs
/// through a pool with a single resident worker. Every schedule must
/// complete — a lost `work_ready` wakeup or a completion-rendezvous deadlock
/// would surface as a deadlock failure — and both jobs must return in-order
/// results.
#[test]
fn pool_survives_more_clients_than_workers() {
    let outcome = check(&Config::exhaustive(1, 30_000), || {
        let pool = Arc::new(WorkerPool::new(2));
        let client = {
            let pool = Arc::clone(&pool);
            thread::spawn(move || {
                let items = Arc::new(vec![10u64, 20]);
                let doubled = pool.map(items, |value| value * 2);
                assert_eq!(doubled, vec![20, 40]);
            })
        };
        let items = Arc::new(vec![1u64, 2]);
        let incremented = pool.map(items, |value| value + 1);
        assert_eq!(incremented, vec![2, 3]);
        client.join().expect("client panicked");
        // Dropping the pool inside the model run also exercises the shutdown
        // handshake: a lost shutdown wakeup would deadlock the join.
        drop(pool);
    });
    assert!(
        outcome.failure.is_none(),
        "pool lifecycle failed under exploration"
    );
    assert!(outcome.schedules > 1, "no schedule diversity explored");
}
