//! The fault-simulation engine: a faulty memory simulated in lock-step with a
//! fault-free reference.

use std::fmt;

use sram_fault_model::{Bit, DecoderFault, Operation, SensitizingSite};

use crate::{
    DecoderFaultInstance, InitialState, InjectedFault, LinkedFaultInstance, Memory, SimulationError,
};

/// The outcome of one memory operation applied to the simulated (faulty) memory and
/// to the fault-free reference memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OperationOutcome {
    /// The value returned by the faulty memory, for read operations.
    pub observed: Option<Bit>,
    /// The value returned by the fault-free reference, for read operations.
    pub expected: Option<Bit>,
}

impl OperationOutcome {
    /// Returns `true` if the operation was a read and the faulty memory returned a
    /// value different from the fault-free reference — i.e. the fault was detected
    /// by this operation.
    #[must_use]
    pub fn mismatch(&self) -> bool {
        match (self.observed, self.expected) {
            (Some(observed), Some(expected)) => observed != expected,
            _ => false,
        }
    }
}

impl fmt::Display for OperationOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (self.observed, self.expected) {
            (Some(observed), Some(expected)) => {
                write!(f, "read {observed} (expected {expected})")
            }
            _ => write!(f, "write/wait"),
        }
    }
}

/// A functional fault simulator for a one-bit-per-cell SRAM.
///
/// The simulator keeps two memories: the *faulty* memory, whose behaviour is
/// perturbed by the injected fault primitives, and a *golden* fault-free reference.
/// Detection is defined as any read operation whose faulty return value differs from
/// the golden one — no assumption is made on the expected-value annotations of the
/// march test.
///
/// # Fault semantics
///
/// For every applied operation the engine, in order:
///
/// 1. determines which injected **operation-sensitized** primitives fire: the
///    operation targets their sensitizing cell, matches their sensitizing operation
///    and every involved cell holds the required initial value (evaluated on the
///    pre-operation faulty state);
/// 2. computes the read return value: the pre-operation content of the addressed
///    cell, unless a fired primitive overrides it with its `R` value;
/// 3. applies the fault-free effect of the operation (writes store their value);
/// 4. applies the `F` effect of every fired primitive to its victim cell;
/// 5. performs one pass over the injected **state-sensitized** primitives (SF,
///    CFst), in injection order, flipping the victim of each primitive whose state
///    condition holds. The same pass runs once right after initialisation.
///
/// Masking between the two components of a linked fault therefore emerges naturally:
/// if the second primitive restores the victim before any read observes it, no
/// mismatch is ever produced.
///
/// # Address-decoder faults
///
/// Injected [`DecoderFaultInstance`]s sit *in front of* the faulty cell array:
/// every operation is first resolved through the perturbed decode (the golden
/// reference always decodes correctly). An operation issued to an instance's
/// [`source`](DecoderFaultInstance::source) address selects no cell
/// (*no cell accessed*: writes are lost, reads return the instance's
/// open-bitline value), the destination cell instead of its own
/// (*no address maps* / *multiple addresses map*), or its own cell **and**
/// the destination (*multiple cells accessed*: writes store into both, reads
/// return the wired-AND of both). When several instances perturb the same
/// address, the first injected one wins. Cell-array fault primitives keep
/// matching on the *issued* address — decoder and array defects are distinct
/// fault sites, and coverage targets inject exactly one of them at a time.
///
/// # Examples
///
/// ```
/// use sram_fault_model::{Bit, Ffm, Operation};
/// use sram_sim::{FaultSimulator, InitialState, InjectedFault};
///
/// // Inject an up-transition fault on cell 2 of an 8-cell memory.
/// let tf = Ffm::TransitionFault
///     .fault_primitives()
///     .into_iter()
///     .find(|fp| fp.notation() == "<0w1/0/->")
///     .expect("realistic primitive");
/// let mut sim = FaultSimulator::new(8, &InitialState::AllZero)?;
/// sim.inject(InjectedFault::single_cell(tf, 2, 8)?);
///
/// sim.apply(2, Operation::W1);                    // the write fails...
/// let outcome = sim.apply(2, Operation::R1);      // ...and the read sees 0.
/// assert!(outcome.mismatch());
/// # Ok::<(), sram_sim::SimulationError>(())
/// ```
#[derive(Debug)]
pub struct FaultSimulator {
    faulty: Memory,
    golden: Memory,
    faults: Vec<InjectedFault>,
    decoders: Vec<DecoderFaultInstance>,
    initial: InitialState,
}

impl Clone for FaultSimulator {
    fn clone(&self) -> FaultSimulator {
        FaultSimulator {
            faulty: self.faulty.clone(),
            golden: self.golden.clone(),
            faults: self.faults.clone(),
            decoders: self.decoders.clone(),
            initial: self.initial.clone(),
        }
    }

    /// Field-wise `clone_from` so the scalar snapshot/restore path of
    /// [`TargetBatch`](crate::TargetBatch) re-uses the memory buffers instead
    /// of reallocating them per removal trial.
    fn clone_from(&mut self, source: &FaultSimulator) {
        self.faulty.clone_from(&source.faulty);
        self.golden.clone_from(&source.golden);
        self.faults.clone_from(&source.faults);
        self.decoders.clone_from(&source.decoders);
        self.initial.clone_from(&source.initial);
    }
}

impl FaultSimulator {
    /// Creates a simulator for a memory of `cells` cells initialised with `initial`.
    ///
    /// # Errors
    ///
    /// Propagates [`Memory::with_initial_state`] errors (empty memory, mismatched
    /// custom content).
    pub fn new(cells: usize, initial: &InitialState) -> Result<FaultSimulator, SimulationError> {
        let faulty = Memory::with_initial_state(cells, initial)?;
        let golden = faulty.clone();
        Ok(FaultSimulator {
            faulty,
            golden,
            faults: Vec::new(),
            decoders: Vec::new(),
            initial: initial.clone(),
        })
    }

    /// The number of cells of the simulated memory.
    #[must_use]
    pub fn cells(&self) -> usize {
        self.faulty.len()
    }

    /// Injects a single fault primitive. State-sensitized primitives are evaluated
    /// immediately against the current content.
    pub fn inject(&mut self, fault: InjectedFault) {
        self.faults.push(fault);
        self.settle_state_faults();
    }

    /// Injects both components of a linked fault instance.
    pub fn inject_linked(&mut self, instance: &LinkedFaultInstance) {
        for component in instance.components() {
            self.faults.push(component.clone());
        }
        self.settle_state_faults();
    }

    /// Injects an address-decoder fault instance: from now on, operations
    /// issued to the instance's source address resolve through the perturbed
    /// decode (see the type-level documentation).
    pub fn inject_decoder(&mut self, instance: DecoderFaultInstance) {
        self.decoders.push(instance);
    }

    /// Removes every injected fault — cell-array primitives and decoder
    /// instances alike (the memory contents are preserved).
    pub fn clear_faults(&mut self) {
        self.faults.clear();
        self.decoders.clear();
    }

    /// The injected fault primitives, in injection order.
    #[must_use]
    pub fn faults(&self) -> &[InjectedFault] {
        &self.faults
    }

    /// The injected address-decoder fault instances, in injection order.
    #[must_use]
    pub fn decoder_faults(&self) -> &[DecoderFaultInstance] {
        &self.decoders
    }

    /// Resets both memories to the configured initial content, keeping the injected
    /// faults.
    pub fn reset(&mut self) {
        let content = self
            .initial
            .materialise(self.faulty.len())
            .expect("initial state was validated at construction");
        self.faulty
            .load(&content)
            .expect("content length matches by construction");
        self.golden
            .load(&content)
            .expect("content length matches by construction");
        self.settle_state_faults();
    }

    /// The current content of the faulty memory.
    #[must_use]
    pub fn faulty_memory(&self) -> &Memory {
        &self.faulty
    }

    /// The current content of the fault-free reference memory.
    #[must_use]
    pub fn golden_memory(&self) -> &Memory {
        &self.golden
    }

    /// Applies one memory operation to cell `address` of both memories and reports
    /// the outcome.
    ///
    /// # Panics
    ///
    /// Panics if `address` is out of range for the simulated memory.
    pub fn apply(&mut self, address: usize, operation: Operation) -> OperationOutcome {
        assert!(
            address < self.faulty.len(),
            "cell address {address} out of range for a {}-cell memory",
            self.faulty.len()
        );

        // 1. Which operation-sensitized primitives fire? (pre-operation state)
        let fired: Vec<usize> = self
            .faults
            .iter()
            .enumerate()
            .filter(|(_, fault)| self.is_sensitized_by(fault, address, operation))
            .map(|(index, _)| index)
            .collect();

        // 2. Read return values.
        let golden_read = if operation.is_read() {
            Some(self.golden.read(address))
        } else {
            None
        };
        let observed = if operation.is_read() {
            let mut value = self.decoded_read(address);
            for index in &fired {
                let fault = &self.faults[*index];
                if fault.victim() == address {
                    if let Some(read_output) = fault.primitive().effect().read_output() {
                        value = read_output;
                    }
                }
            }
            Some(value)
        } else {
            None
        };

        // 3. Fault-free effect of the operation.
        if let Operation::Write(value) = operation {
            self.decoded_write(address, value);
            self.golden.write(address, value);
        }

        // 4. Fault effects of the fired primitives.
        for index in fired {
            let (victim, forced) = {
                let fault = &self.faults[index];
                (
                    fault.victim(),
                    fault.primitive().effect().victim_value().to_bit(),
                )
            };
            if let Some(value) = forced {
                self.faulty.write(victim, value);
            }
        }

        // 5. One pass of state-sensitized primitives.
        self.settle_state_faults();

        OperationOutcome {
            observed,
            expected: golden_read,
        }
    }

    /// The decoder instance perturbing `address`, if any (first injected wins).
    fn decoder_at(&self, address: usize) -> Option<&DecoderFaultInstance> {
        self.decoders
            .iter()
            .find(|instance| instance.source() == address)
    }

    /// The value a read of `address` returns from the faulty array, after
    /// resolving the (possibly perturbed) address decode.
    fn decoded_read(&self, address: usize) -> Bit {
        let Some(instance) = self.decoder_at(address) else {
            return self.faulty.read(address);
        };
        match instance.fault() {
            DecoderFault::NoCellAccessed { open_read } => open_read,
            DecoderFault::NoAddressMaps | DecoderFault::MultipleAddressesMap => self.faulty.read(
                instance
                    .destination()
                    .expect("pair class binds a destination"),
            ),
            DecoderFault::MultipleCellsAccessed => {
                // Wired-AND: either selected cell storing 0 pulls the
                // precharged bitline down.
                let own = self.faulty.read(address);
                let extra = self.faulty.read(
                    instance
                        .destination()
                        .expect("pair class binds a destination"),
                );
                if own == Bit::One && extra == Bit::One {
                    Bit::One
                } else {
                    Bit::Zero
                }
            }
        }
    }

    /// Stores `value` into the cell(s) the (possibly perturbed) decode of
    /// `address` selects.
    fn decoded_write(&mut self, address: usize, value: Bit) {
        let Some(instance) = self.decoder_at(address).copied() else {
            self.faulty.write(address, value);
            return;
        };
        match instance.fault() {
            DecoderFault::NoCellAccessed { .. } => {}
            DecoderFault::NoAddressMaps | DecoderFault::MultipleAddressesMap => {
                let destination = instance
                    .destination()
                    .expect("pair class binds a destination");
                self.faulty.write(destination, value);
            }
            DecoderFault::MultipleCellsAccessed => {
                let destination = instance
                    .destination()
                    .expect("pair class binds a destination");
                self.faulty.write(address, value);
                self.faulty.write(destination, value);
            }
        }
    }

    /// Returns `true` if `fault` is sensitized by applying `operation` to `address`
    /// given the current (pre-operation) faulty memory content.
    fn is_sensitized_by(
        &self,
        fault: &InjectedFault,
        address: usize,
        operation: Operation,
    ) -> bool {
        let primitive = fault.primitive();
        let site_cell = match primitive.sensitizing_site() {
            SensitizingSite::None => return false,
            SensitizingSite::Victim => fault.victim(),
            SensitizingSite::Aggressor => match fault.aggressor() {
                Some(aggressor) => aggressor,
                None => return false,
            },
        };
        if site_cell != address {
            return false;
        }
        let required = primitive
            .sensitizing_operation()
            .expect("operation-sensitized primitive has an operation");
        if !required.matches(operation) {
            return false;
        }
        // Initial-state conditions on every involved cell.
        if !primitive
            .victim()
            .initial()
            .matches(self.faulty.read(fault.victim()))
        {
            return false;
        }
        if let (Some(aggressor_cell), Some(aggressor)) = (fault.aggressor(), primitive.aggressor())
        {
            if !aggressor
                .initial()
                .matches(self.faulty.read(aggressor_cell))
            {
                return false;
            }
        }
        true
    }

    /// Performs a single pass over the state-sensitized primitives (SF, CFst) in
    /// injection order, applying the effect of each one whose condition holds.
    fn settle_state_faults(&mut self) {
        for index in 0..self.faults.len() {
            let (applies, victim, forced) = {
                let fault = &self.faults[index];
                let primitive = fault.primitive();
                if primitive.sensitizing_site() != SensitizingSite::None {
                    (false, 0, None)
                } else {
                    let victim_ok = primitive
                        .victim()
                        .initial()
                        .matches(self.faulty.read(fault.victim()));
                    let aggressor_ok = match (fault.aggressor(), primitive.aggressor()) {
                        (Some(cell), Some(condition)) => {
                            condition.initial().matches(self.faulty.read(cell))
                        }
                        _ => true,
                    };
                    (
                        victim_ok && aggressor_ok,
                        fault.victim(),
                        primitive.effect().victim_value().to_bit(),
                    )
                }
            };
            if applies {
                if let Some(value) = forced {
                    self.faulty.write(victim, value);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sram_fault_model::{FaultPrimitive, Ffm};

    fn primitive(ffm: Ffm, notation: &str) -> FaultPrimitive {
        ffm.fault_primitives()
            .into_iter()
            .find(|fp| fp.notation() == notation)
            .unwrap_or_else(|| panic!("primitive {notation} not found"))
    }

    fn simulator(cells: usize) -> FaultSimulator {
        FaultSimulator::new(cells, &InitialState::AllZero).unwrap()
    }

    #[test]
    fn fault_free_memory_never_mismatches() {
        let mut sim = simulator(4);
        for address in 0..4 {
            assert!(!sim.apply(address, Operation::W1).mismatch());
            assert!(!sim.apply(address, Operation::R1).mismatch());
            assert!(!sim.apply(address, Operation::W0).mismatch());
            assert!(!sim.apply(address, Operation::R0).mismatch());
            assert!(!sim.apply(address, Operation::Wait).mismatch());
        }
        assert_eq!(sim.faulty_memory(), sim.golden_memory());
    }

    #[test]
    fn transition_fault_detected_by_read_after_write() {
        let tf = primitive(Ffm::TransitionFault, "<0w1/0/->");
        let mut sim = simulator(4);
        sim.inject(InjectedFault::single_cell(tf, 1, 4).unwrap());
        sim.apply(1, Operation::W1);
        let outcome = sim.apply(1, Operation::R1);
        assert_eq!(outcome.observed, Some(Bit::Zero));
        assert_eq!(outcome.expected, Some(Bit::One));
        assert!(outcome.mismatch());
    }

    #[test]
    fn write_destructive_fault_fires_on_non_transition_write() {
        let wdf = primitive(Ffm::WriteDestructiveFault, "<0w0/1/->");
        let mut sim = simulator(2);
        sim.inject(InjectedFault::single_cell(wdf, 0, 2).unwrap());
        // A transition write 1→0 must not trigger it.
        sim.apply(0, Operation::W1);
        sim.apply(0, Operation::W0);
        assert!(!sim.apply(0, Operation::R0).mismatch());
        // A non-transition write 0→0 must.
        sim.apply(0, Operation::W0);
        assert!(sim.apply(0, Operation::R0).mismatch());
    }

    #[test]
    fn read_fault_family_semantics() {
        // RDF: flips the cell and returns the wrong value.
        let rdf = primitive(Ffm::ReadDestructiveFault, "<0r0/1/1>");
        let mut sim = simulator(2);
        sim.inject(InjectedFault::single_cell(rdf, 0, 2).unwrap());
        let outcome = sim.apply(0, Operation::R0);
        assert!(outcome.mismatch());
        assert_eq!(sim.faulty_memory().read(0), Bit::One);

        // DRDF: flips the cell but the first read returns the correct value.
        let drdf = primitive(Ffm::DeceptiveReadDestructiveFault, "<0r0/1/0>");
        let mut sim = simulator(2);
        sim.inject(InjectedFault::single_cell(drdf, 0, 2).unwrap());
        assert!(!sim.apply(0, Operation::R0).mismatch());
        assert!(sim.apply(0, Operation::R0).mismatch());

        // IRF: returns the wrong value but the cell keeps its content.
        let irf = primitive(Ffm::IncorrectReadFault, "<0r0/0/1>");
        let mut sim = simulator(2);
        sim.inject(InjectedFault::single_cell(irf, 0, 2).unwrap());
        assert!(sim.apply(0, Operation::R0).mismatch());
        assert_eq!(sim.faulty_memory().read(0), Bit::Zero);
        assert!(sim.apply(0, Operation::R0).mismatch());
    }

    #[test]
    fn state_fault_flips_spontaneously() {
        let sf = primitive(Ffm::StateFault, "<0/1/->");
        let mut sim = simulator(2);
        sim.inject(InjectedFault::single_cell(sf, 1, 2).unwrap());
        // The cell starts at 0, so the fault fires as soon as it is injected.
        assert!(sim.apply(1, Operation::R0).mismatch());
        // Writing 1 is stable...
        sim.apply(1, Operation::W1);
        assert!(!sim.apply(1, Operation::R1).mismatch());
        // ...but writing 0 immediately flips back to 1.
        sim.apply(1, Operation::W0);
        assert!(sim.apply(1, Operation::R0).mismatch());
    }

    #[test]
    fn disturb_coupling_fires_on_aggressor_operation() {
        let cfds = primitive(Ffm::DisturbCoupling, "<0w1;0/1/->");
        let mut sim = simulator(4);
        sim.inject(InjectedFault::coupling(cfds, 0, 2, 4).unwrap());
        // Writing 1 into the aggressor (from 0) flips the victim.
        sim.apply(0, Operation::W1);
        assert!(sim.apply(2, Operation::R0).mismatch());
        // The same operation with the aggressor already at 1 does nothing further.
        sim.apply(2, Operation::W0);
        sim.apply(0, Operation::W1);
        assert!(!sim.apply(2, Operation::R0).mismatch());
    }

    #[test]
    fn masking_emerges_for_linked_disturb_couplings() {
        // The paper's example (12): <0w1;0/1/-> → <1w0;1/0/-> with different
        // aggressors. Sensitizing FP1 and then FP2 before reading masks the fault.
        let fp1 = primitive(Ffm::DisturbCoupling, "<0w1;0/1/->");
        let fp2 = primitive(Ffm::DisturbCoupling, "<1w0;1/0/->");
        let mut sim = simulator(4);
        sim.inject(InjectedFault::coupling(fp1, 0, 3, 4).unwrap());
        sim.inject(InjectedFault::coupling(fp2, 1, 3, 4).unwrap());
        // Prepare: aggressor 1 at 1, victim at 0.
        sim.apply(1, Operation::W1);
        sim.apply(3, Operation::W0);
        // Sensitize FP1 (victim flips to 1), then FP2 (victim flips back to 0).
        sim.apply(0, Operation::W1);
        sim.apply(1, Operation::W0);
        // The read sees the expected value: the fault is masked.
        assert!(!sim.apply(3, Operation::R0).mismatch());

        // Reading between the two sensitizations detects FP1 in isolation.
        let mut sim = simulator(4);
        let fp1 = primitive(Ffm::DisturbCoupling, "<0w1;0/1/->");
        let fp2 = primitive(Ffm::DisturbCoupling, "<1w0;1/0/->");
        sim.inject(InjectedFault::coupling(fp1, 0, 3, 4).unwrap());
        sim.inject(InjectedFault::coupling(fp2, 1, 3, 4).unwrap());
        sim.apply(1, Operation::W1);
        sim.apply(3, Operation::W0);
        sim.apply(0, Operation::W1);
        assert!(sim.apply(3, Operation::R0).mismatch());
    }

    #[test]
    fn reset_restores_the_initial_content_and_keeps_faults() {
        let tf = primitive(Ffm::TransitionFault, "<0w1/0/->");
        let mut sim = FaultSimulator::new(2, &InitialState::AllOne).unwrap();
        sim.inject(InjectedFault::single_cell(tf, 0, 2).unwrap());
        sim.apply(0, Operation::W0);
        assert_eq!(sim.faulty_memory().read(0), Bit::Zero);
        sim.reset();
        assert_eq!(sim.faulty_memory().read(0), Bit::One);
        assert_eq!(sim.faults().len(), 1);
        sim.clear_faults();
        assert!(sim.faults().is_empty());
    }

    #[test]
    fn state_coupling_follows_the_aggressor() {
        let cfst = primitive(Ffm::StateCoupling, "<1;0/1/->");
        let mut sim = simulator(4);
        sim.inject(InjectedFault::coupling(cfst, 0, 2, 4).unwrap());
        // Aggressor at 0: nothing happens.
        assert!(!sim.apply(2, Operation::R0).mismatch());
        // Aggressor raised to 1: the victim (currently 0) flips.
        sim.apply(0, Operation::W1);
        assert!(sim.apply(2, Operation::R0).mismatch());
    }

    #[test]
    fn no_cell_accessed_loses_writes_and_reads_the_open_value() {
        let mut sim = simulator(4);
        sim.inject_decoder(
            DecoderFaultInstance::new(
                DecoderFault::NoCellAccessed {
                    open_read: Bit::One,
                },
                crate::InstanceCells::single(2),
                4,
            )
            .unwrap(),
        );
        // The write is lost and the read floats to 1 while golden holds 0.
        sim.apply(2, Operation::W0);
        let outcome = sim.apply(2, Operation::R0);
        assert_eq!(outcome.observed, Some(Bit::One));
        assert_eq!(outcome.expected, Some(Bit::Zero));
        assert!(outcome.mismatch());
        // Other addresses are untouched.
        sim.apply(1, Operation::W1);
        assert!(!sim.apply(1, Operation::R1).mismatch());
        assert_eq!(sim.decoder_faults().len(), 1);
        sim.clear_faults();
        assert!(sim.decoder_faults().is_empty());
    }

    #[test]
    fn no_address_maps_redirects_onto_the_partner_cell() {
        let mut sim = simulator(4);
        sim.inject_decoder(
            DecoderFaultInstance::new(
                DecoderFault::NoAddressMaps,
                crate::InstanceCells::pair(3, 1),
                4,
            )
            .unwrap(),
        );
        // A write to address 1 lands in cell 3.
        sim.apply(1, Operation::W1);
        assert_eq!(sim.faulty_memory().read(1), Bit::Zero);
        assert_eq!(sim.faulty_memory().read(3), Bit::One);
        // Reading address 3 (its own, unperturbed address) now mismatches:
        // golden cell 3 still holds 0.
        assert!(sim.apply(3, Operation::R0).mismatch());
        // Reading address 1 returns cell 3's content (1) vs golden 1: no
        // mismatch here.
        assert!(!sim.apply(1, Operation::R1).mismatch());
    }

    #[test]
    fn multiple_cells_accessed_fans_out_and_reads_wired_and() {
        let mut sim = simulator(4);
        sim.inject_decoder(
            DecoderFaultInstance::new(
                DecoderFault::MultipleCellsAccessed,
                crate::InstanceCells::pair(2, 0),
                4,
            )
            .unwrap(),
        );
        // Writing address 0 stores into cells 0 and 2.
        sim.apply(0, Operation::W1);
        assert_eq!(sim.faulty_memory().read(0), Bit::One);
        assert_eq!(sim.faulty_memory().read(2), Bit::One);
        // Cell 2 read through its own address mismatches (golden is 0).
        assert!(sim.apply(2, Operation::R0).mismatch());
        // After writing 0 into cell 2, the wired-AND read of address 0 sees 0
        // although its own cell holds 1.
        sim.apply(2, Operation::W0);
        let outcome = sim.apply(0, Operation::R1);
        assert_eq!(outcome.observed, Some(Bit::Zero));
        assert!(outcome.mismatch());
    }

    #[test]
    fn multiple_addresses_map_aliases_the_partner_onto_the_primary() {
        let mut sim = simulator(4);
        sim.inject_decoder(
            DecoderFaultInstance::new(
                DecoderFault::MultipleAddressesMap,
                crate::InstanceCells::pair(3, 1),
                4,
            )
            .unwrap(),
        );
        // Address 3 (the alias) writes into cell 1; cell 3 is orphaned.
        sim.apply(3, Operation::W1);
        assert_eq!(sim.faulty_memory().read(3), Bit::Zero);
        assert_eq!(sim.faulty_memory().read(1), Bit::One);
        // Reading the primary address 1 sees the aliased write.
        assert!(sim.apply(1, Operation::R0).mismatch());
        // Reading the alias returns cell 1's content.
        let outcome = sim.apply(3, Operation::R1);
        assert_eq!(outcome.observed, Some(Bit::One));
    }

    #[test]
    fn outcome_display() {
        let mut sim = simulator(2);
        let write = sim.apply(0, Operation::W1);
        assert_eq!(write.to_string(), "write/wait");
        let read = sim.apply(0, Operation::R1);
        assert_eq!(read.to_string(), "read 1 (expected 1)");
    }
}
