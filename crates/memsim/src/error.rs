//! Error type of the simulator crate.

use std::error::Error;
use std::fmt;

/// Errors produced while configuring or running a fault simulation.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SimulationError {
    /// A cell address is outside the simulated memory.
    AddressOutOfRange {
        /// The offending address.
        address: usize,
        /// The number of cells of the memory.
        cells: usize,
    },
    /// Two cells of a fault instance that must be distinct coincide.
    OverlappingCells {
        /// The shared address.
        address: usize,
    },
    /// A fault instance does not provide the aggressor cells its topology requires.
    MissingCells(String),
    /// A memory with zero cells was requested.
    EmptyMemory,
    /// A custom initial state does not match the memory size.
    InitialStateSizeMismatch {
        /// Number of values supplied.
        provided: usize,
        /// Number of cells of the memory.
        cells: usize,
    },
    /// A backend name does not match any known simulation backend.
    UnknownBackend(String),
    /// A lane-width name does not match any packed lane width.
    UnknownLaneWidth(String),
    /// A packed simulator was asked to hold an unsupported number of lanes.
    LaneCountOutOfRange {
        /// Number of lanes requested (must be 1..=width of the lane word).
        requested: usize,
    },
    /// The simulated memory is too small to host the placements of a fault
    /// target (e.g. three-cell linked faults need at least 4 cells).
    MemoryTooSmall {
        /// The number of cells of the configured memory.
        cells: usize,
        /// The smallest memory the requested enumeration supports.
        min_cells: usize,
    },
    /// A Monte-Carlo campaign configuration or sample space is degenerate
    /// (zero draws, a confidence level outside `(0, 1)`, an empty space, …).
    InvalidCampaign(String),
}

impl fmt::Display for SimulationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimulationError::AddressOutOfRange { address, cells } => {
                write!(
                    f,
                    "cell address {address} out of range for a {cells}-cell memory"
                )
            }
            SimulationError::OverlappingCells { address } => {
                write!(f, "fault instance cells overlap at address {address}")
            }
            SimulationError::MissingCells(reason) => {
                write!(f, "fault instance is missing cell assignments: {reason}")
            }
            SimulationError::EmptyMemory => write!(f, "memory must contain at least one cell"),
            SimulationError::InitialStateSizeMismatch { provided, cells } => write!(
                f,
                "initial state has {provided} values but the memory has {cells} cells"
            ),
            SimulationError::UnknownBackend(name) => {
                write!(
                    f,
                    "unknown simulation backend `{name}` (expected scalar or packed)"
                )
            }
            SimulationError::UnknownLaneWidth(name) => {
                write!(
                    f,
                    "unknown lane width `{name}` (expected auto, 64, 128 or 256)"
                )
            }
            SimulationError::LaneCountOutOfRange { requested } => {
                write!(
                    f,
                    "packed simulators hold at most one word of lanes, got {requested}"
                )
            }
            SimulationError::MemoryTooSmall { cells, min_cells } => {
                write!(
                    f,
                    "memory with {cells} cells is too small for the requested placements \
                     (need at least {min_cells} cells)"
                )
            }
            SimulationError::InvalidCampaign(reason) => {
                write!(f, "invalid campaign configuration: {reason}")
            }
        }
    }
}

impl Error for SimulationError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages() {
        for err in [
            SimulationError::AddressOutOfRange {
                address: 9,
                cells: 4,
            },
            SimulationError::OverlappingCells { address: 2 },
            SimulationError::MissingCells("no aggressor".into()),
            SimulationError::EmptyMemory,
            SimulationError::InitialStateSizeMismatch {
                provided: 3,
                cells: 8,
            },
            SimulationError::UnknownBackend("simd".into()),
            SimulationError::UnknownLaneWidth("512".into()),
            SimulationError::LaneCountOutOfRange { requested: 80 },
            SimulationError::MemoryTooSmall {
                cells: 2,
                min_cells: 4,
            },
            SimulationError::InvalidCampaign("zero draws".into()),
        ] {
            assert!(!err.to_string().is_empty());
        }
    }

    #[test]
    fn is_std_error() {
        fn assert_error<E: Error + Send + Sync + 'static>() {}
        assert_error::<SimulationError>();
    }
}
