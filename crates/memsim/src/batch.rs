//! Incremental, backend-agnostic batches of coverage lanes — the simulation
//! state the greedy generator advances element by element.
//!
//! A [`TargetBatch`] holds every still-undetected `(placement, background)`
//! lane of one fault target together with the simulator state reached after
//! the march prefix built so far. Scoring a candidate march element only has
//! to simulate that element: on the scalar backend by cloning each lane's
//! [`FaultSimulator`], on the packed backend by cloning a handful of `u64`
//! bit-planes and running all lanes of a chunk at once.

use std::fmt;

use march_test::MarchElement;
use sram_fault_model::{Bit, Operation};

use crate::backend::{scalar_lane_simulator, BackendKind, CoverageLane, PackedSimulator};
use crate::coverage::TargetKind;
use crate::{FaultSimulator, SimulationError};

/// One scalar lane: its descriptor plus the advanced simulator state.
#[derive(Debug, Clone)]
struct ScalarLane {
    lane: CoverageLane,
    simulator: FaultSimulator,
}

/// The backend-specific simulation state of a batch.
#[derive(Debug, Clone)]
enum BatchState {
    /// One dual-memory simulator per undetected lane.
    Scalar(Vec<ScalarLane>),
    /// Packed chunks of up to 64 lanes; detected lanes are masked out of the
    /// scoring by each chunk's detection mask.
    Packed(Vec<PackedChunk>),
}

#[derive(Debug, Clone)]
struct PackedChunk {
    lanes: Vec<CoverageLane>,
    simulator: PackedSimulator,
}

impl PackedChunk {
    fn pending_mask(&self) -> u64 {
        !self.simulator.detected_mask() & self.simulator.lane_mask()
    }

    fn pending(&self) -> usize {
        self.pending_mask().count_ones() as usize
    }

    /// Newly detected lanes of this chunk if `element` were executed next.
    fn score_one(&self, element: &MarchElement) -> usize {
        let before = self.simulator.detected_mask();
        if before == self.simulator.lane_mask() {
            return 0;
        }
        let mut simulator = self.simulator.clone();
        simulator.apply_element(element);
        (simulator.detected_mask() & !before).count_ones() as usize
    }
}

/// A pool of up to 64 candidate march elements packed one per bit-lane, ready
/// for single-pass scoring against the pending lanes of a [`TargetBatch`].
///
/// Per operation slot the pool pre-computes one lane mask per operation kind
/// (`w0` / `w1` / read / wait — the only distinctions the fault semantics make)
/// plus the mask of lanes that march ascending, so the
/// candidate-wave evaluator can execute all candidates with a handful of
/// masked bitwise operations per cell visit.
///
/// # Examples
///
/// ```
/// use march_test::catalog;
/// use sram_fault_model::FaultList;
/// use sram_sim::{
///     enumerate_lanes, BackendKind, CandidateBatch, InitialState, PlacementStrategy,
///     TargetBatch, TargetKind,
/// };
///
/// let fault = FaultList::list_2().linked()[0].clone();
/// let target = TargetKind::Linked(fault);
/// let lanes = enumerate_lanes(
///     &target,
///     8,
///     PlacementStrategy::Representative,
///     &[InitialState::AllOne],
/// );
/// let batch = TargetBatch::new(target, lanes, 8, BackendKind::Packed);
/// let pool: Vec<_> = catalog::march_sl().elements().to_vec();
/// let packed = CandidateBatch::new(pool.clone())?;
/// // One packed pass scores the whole pool...
/// let batched = batch.score_pool(&packed);
/// // ...and agrees with scoring every candidate on its own.
/// let sequential: Vec<usize> = pool.iter().map(|e| batch.score(e)).collect();
/// assert_eq!(batched, sequential);
/// # Ok::<(), sram_sim::SimulationError>(())
/// ```
#[derive(Debug, Clone)]
pub struct CandidateBatch {
    candidates: Vec<MarchElement>,
    lane_mask: u64,
    ascending: u64,
    max_ops: usize,
    total_ops: usize,
    w0: Vec<u64>,
    w1: Vec<u64>,
    read: Vec<u64>,
    wait: Vec<u64>,
}

impl CandidateBatch {
    /// The maximum number of candidates one batch packs.
    pub const MAX_CANDIDATES: usize = 64;

    /// Packs `candidates` one per bit-lane.
    ///
    /// # Errors
    ///
    /// Returns [`SimulationError::LaneCountOutOfRange`] if `candidates` is
    /// empty or holds more than [`CandidateBatch::MAX_CANDIDATES`] elements
    /// (split larger pools with [`CandidateBatch::chunked`]).
    pub fn new(candidates: Vec<MarchElement>) -> Result<CandidateBatch, SimulationError> {
        if candidates.is_empty() || candidates.len() > CandidateBatch::MAX_CANDIDATES {
            return Err(SimulationError::LaneCountOutOfRange {
                requested: candidates.len(),
            });
        }
        let max_ops = candidates
            .iter()
            .map(MarchElement::len)
            .max()
            .expect("pool is non-empty");
        let total_ops = candidates.iter().map(MarchElement::len).sum();
        let mut batch = CandidateBatch {
            lane_mask: if candidates.len() == 64 {
                u64::MAX
            } else {
                (1u64 << candidates.len()) - 1
            },
            ascending: 0,
            max_ops,
            total_ops,
            w0: vec![0; max_ops],
            w1: vec![0; max_ops],
            read: vec![0; max_ops],
            wait: vec![0; max_ops],
            candidates,
        };
        for (lane, candidate) in batch.candidates.iter().enumerate() {
            let bit = 1u64 << lane;
            // `Any` conventionally executes ascending, as in `run_march`.
            if candidate.order() != march_test::AddressOrder::Descending {
                batch.ascending |= bit;
            }
            for (slot, operation) in candidate.operations().iter().enumerate() {
                match operation {
                    Operation::Write(Bit::Zero) => batch.w0[slot] |= bit,
                    Operation::Write(Bit::One) => batch.w1[slot] |= bit,
                    Operation::Read(_) => batch.read[slot] |= bit,
                    Operation::Wait => batch.wait[slot] |= bit,
                }
            }
        }
        Ok(batch)
    }

    /// Splits a pool of any size into batches of at most `batch` candidates
    /// (`0` = [`CandidateBatch::MAX_CANDIDATES`]; larger values are clamped).
    #[must_use]
    pub fn chunked(pool: &[MarchElement], batch: usize) -> Vec<CandidateBatch> {
        let size = if batch == 0 {
            CandidateBatch::MAX_CANDIDATES
        } else {
            batch.min(CandidateBatch::MAX_CANDIDATES)
        };
        pool.chunks(size)
            .map(|chunk| CandidateBatch::new(chunk.to_vec()).expect("chunk sizes are in range"))
            .collect()
    }

    /// The packed candidates, in lane order.
    #[must_use]
    pub fn candidates(&self) -> &[MarchElement] {
        &self.candidates
    }

    /// Number of packed candidates.
    #[must_use]
    pub fn len(&self) -> usize {
        self.candidates.len()
    }

    /// Always `false`: batches are non-empty by construction.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.candidates.is_empty()
    }

    /// The mask with one bit set per packed candidate.
    #[must_use]
    pub fn lane_mask(&self) -> u64 {
        self.lane_mask
    }

    /// Candidate lanes whose element visits cells in ascending order.
    pub(crate) fn ascending_mask(&self) -> u64 {
        self.ascending
    }

    /// The longest candidate's operation count (the padded slot count).
    pub(crate) fn max_ops(&self) -> usize {
        self.max_ops
    }

    /// Total operation count over all candidates (the per-candidate
    /// scoring cost, used to decide when the wave pass is cheaper).
    pub(crate) fn total_ops(&self) -> usize {
        self.total_ops
    }

    /// The operation kinds executed at `slot` with their candidate-lane masks
    /// (lanes shorter than `slot` appear in no mask and idle).
    pub(crate) fn slot_ops(&self, slot: usize) -> [(Operation, u64); 4] {
        [
            (Operation::W0, self.w0[slot]),
            (Operation::W1, self.w1[slot]),
            (Operation::Read(None), self.read[slot]),
            (Operation::Wait, self.wait[slot]),
        ]
    }
}

/// Every coverage lane of one fault target, advanced in lock-step as march
/// elements are appended.
///
/// # Examples
///
/// ```
/// use march_test::catalog;
/// use sram_fault_model::FaultList;
/// use sram_sim::{
///     enumerate_lanes, BackendKind, InitialState, PlacementStrategy, TargetBatch, TargetKind,
/// };
///
/// let fault = FaultList::list_2().linked()[0].clone();
/// let target = TargetKind::Linked(fault);
/// let lanes = enumerate_lanes(
///     &target,
///     8,
///     PlacementStrategy::Representative,
///     &[InitialState::AllOne],
/// );
/// let mut batch = TargetBatch::new(target, lanes, 8, BackendKind::Packed);
/// for (_, element) in catalog::march_sl().iter() {
///     batch.advance(element);
/// }
/// assert_eq!(batch.pending(), 0, "March SL covers every lane");
/// ```
#[derive(Debug, Clone)]
pub struct TargetBatch {
    target: TargetKind,
    state: BatchState,
    wave_cost_factor: usize,
}

impl TargetBatch {
    /// Builds the batch for `target` over `lanes` on a `memory_cells`-cell
    /// memory, simulated with `backend`.
    ///
    /// # Panics
    ///
    /// Panics if a lane's placement is invalid for the target (the enumerated
    /// placements of [`enumerate_lanes`](crate::enumerate_lanes) always are).
    #[must_use]
    pub fn new(
        target: TargetKind,
        lanes: Vec<CoverageLane>,
        memory_cells: usize,
        backend: BackendKind,
    ) -> TargetBatch {
        let state = match backend {
            BackendKind::Scalar => BatchState::Scalar(
                lanes
                    .into_iter()
                    .map(|lane| ScalarLane {
                        simulator: scalar_lane_simulator(&target, &lane, memory_cells),
                        lane,
                    })
                    .collect(),
            ),
            BackendKind::Packed => BatchState::Packed(
                lanes
                    .chunks(PackedSimulator::MAX_LANES)
                    .map(|chunk| PackedChunk {
                        simulator: PackedSimulator::new(&target, chunk, memory_cells)
                            .expect("enumerated placements are valid"),
                        lanes: chunk.to_vec(),
                    })
                    .collect(),
            ),
        };
        TargetBatch {
            target,
            state,
            wave_cost_factor: crate::DEFAULT_WAVE_COST_FACTOR,
        }
    }

    /// Replaces the wave-vs-per-candidate cost-model factor (see
    /// [`ExecPolicy::wave_cost_factor`](crate::ExecPolicy)): the candidate
    /// wave is chosen when `pending × padded slots × factor ≤ Σ candidate
    /// ops`. Both strategies are exact, so [`TargetBatch::score_pool`] returns
    /// identical scores for every factor — only the wall-clock changes.
    #[must_use]
    pub fn with_wave_cost_factor(mut self, factor: usize) -> TargetBatch {
        self.wave_cost_factor = factor;
        self
    }

    /// The fault target the batch instantiates.
    #[must_use]
    pub fn target(&self) -> &TargetKind {
        &self.target
    }

    /// Number of lanes not yet detected by the march prefix.
    #[must_use]
    pub fn pending(&self) -> usize {
        match &self.state {
            BatchState::Scalar(lanes) => lanes.len(),
            BatchState::Packed(chunks) => chunks.iter().map(PackedChunk::pending).sum(),
        }
    }

    /// The descriptors of the still-undetected lanes.
    #[must_use]
    pub fn pending_lanes(&self) -> Vec<CoverageLane> {
        match &self.state {
            BatchState::Scalar(lanes) => lanes.iter().map(|lane| lane.lane.clone()).collect(),
            BatchState::Packed(chunks) => chunks
                .iter()
                .flat_map(|chunk| {
                    let detected = chunk.simulator.detected_mask();
                    chunk
                        .lanes
                        .iter()
                        .enumerate()
                        .filter(move |(index, _)| detected & (1 << index) == 0)
                        .map(|(_, lane)| lane.clone())
                })
                .collect(),
        }
    }

    /// How many still-undetected lanes executing `element` next would detect,
    /// without advancing the batch.
    #[must_use]
    pub fn score(&self, element: &MarchElement) -> usize {
        match &self.state {
            BatchState::Scalar(lanes) => lanes
                .iter()
                .filter(|lane| {
                    let mut simulator = lane.simulator.clone();
                    run_element(element, &mut simulator)
                })
                .count(),
            BatchState::Packed(chunks) => chunks.iter().map(|chunk| chunk.score_one(element)).sum(),
        }
    }

    /// Scores every candidate of `pool` without advancing the batch, returning
    /// the number of still-undetected lanes each candidate would newly detect,
    /// in candidate order.
    ///
    /// On the scalar backend this is the per-candidate reference loop. On the
    /// packed backend each chunk picks, per pool, the cheaper of two exact
    /// strategies: the classic per-candidate packed pass, or transposing the
    /// problem into a candidate wave — each pending lane's state broadcast
    /// across the pool so one bit-parallel pass scores up to 64 candidates at
    /// once. The verdicts are byte-identical either way.
    #[must_use]
    pub fn score_pool(&self, pool: &CandidateBatch) -> Vec<usize> {
        match &self.state {
            BatchState::Scalar(_) => pool
                .candidates()
                .iter()
                .map(|candidate| self.score(candidate))
                .collect(),
            BatchState::Packed(chunks) => {
                let mut scores = vec![0usize; pool.len()];
                for chunk in chunks {
                    let pending = chunk.pending_mask();
                    if pending == 0 {
                        continue;
                    }
                    // The wave pays ~`wave_cost_factor` masked group passes
                    // per padded slot per pending lane; the per-candidate pass
                    // pays one plain pass per operation of every candidate.
                    let pending_count = pending.count_ones() as usize;
                    let wave_cost = pending_count * pool.max_ops() * self.wave_cost_factor;
                    if wave_cost <= pool.total_ops() {
                        let mut lanes = pending;
                        while lanes != 0 {
                            let lane = lanes.trailing_zeros() as usize;
                            lanes &= lanes - 1;
                            let mut detected = chunk.simulator.candidate_wave(lane).run_pool(pool);
                            while detected != 0 {
                                let candidate = detected.trailing_zeros() as usize;
                                detected &= detected - 1;
                                scores[candidate] += 1;
                            }
                        }
                    } else {
                        for (index, candidate) in pool.candidates().iter().enumerate() {
                            scores[index] += chunk.score_one(candidate);
                        }
                    }
                }
                scores
            }
        }
    }

    /// Advances the batch by executing `element`; returns the number of lanes
    /// it newly detected (those lanes stop being simulated). Detected lanes
    /// are compacted away so later scoring only pays for pending ones.
    pub fn advance(&mut self, element: &MarchElement) -> usize {
        match &mut self.state {
            BatchState::Scalar(lanes) => {
                let before = lanes.len();
                lanes.retain_mut(|lane| !run_element(element, &mut lane.simulator));
                before - lanes.len()
            }
            BatchState::Packed(chunks) => {
                let mut newly = 0usize;
                for chunk in chunks.iter_mut() {
                    let before = chunk.simulator.detected_mask();
                    if before == chunk.simulator.lane_mask() {
                        continue;
                    }
                    chunk.simulator.apply_element(element);
                    newly += (chunk.simulator.detected_mask() & !before).count_ones() as usize;
                }
                Self::compact_packed(chunks);
                newly
            }
        }
    }

    /// Drops fully-detected packed chunks and, when every pending lane fits in
    /// one word, merges the survivors into a single dense chunk — so candidate
    /// scoring after a long march prefix clones and simulates one small word
    /// instead of many sparse ones. Lane order is preserved, keeping pending
    /// reporting and scores byte-identical to the uncompacted state.
    fn compact_packed(chunks: &mut Vec<PackedChunk>) {
        chunks.retain(|chunk| chunk.pending() > 0);
        let total: usize = chunks.iter().map(PackedChunk::pending).sum();
        let compactable = chunks.len() > 1
            || chunks
                .first()
                .is_some_and(|chunk| chunk.lanes.len() > total);
        if total == 0 || total > PackedSimulator::MAX_LANES || !compactable {
            return;
        }
        let sources: Vec<(&PackedSimulator, u64)> = chunks
            .iter()
            .map(|chunk| (&chunk.simulator, chunk.pending_mask()))
            .collect();
        let merged = PackedSimulator::merge_lanes(&sources)
            .expect("at least one pending lane survives compaction");
        let lanes: Vec<CoverageLane> = chunks
            .iter()
            .flat_map(|chunk| {
                let pending = chunk.pending_mask();
                chunk
                    .lanes
                    .iter()
                    .enumerate()
                    .filter(move |(index, _)| pending & (1 << index) != 0)
                    .map(|(_, lane)| lane.clone())
            })
            .collect();
        *chunks = vec![PackedChunk {
            lanes,
            simulator: merged,
        }];
    }
}

impl fmt::Display for TargetBatch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({} pending lanes)", self.target, self.pending())
    }
}

/// Executes one march element against a scalar simulator and reports whether
/// any read mismatched.
fn run_element(element: &MarchElement, simulator: &mut FaultSimulator) -> bool {
    let cells = simulator.cells();
    let mut detected = false;
    for cell in element.order().addresses(cells) {
        for operation in element.operations() {
            if simulator.apply(cell, *operation).mismatch() {
                detected = true;
            }
        }
    }
    detected
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::enumerate_lanes;
    use crate::{InitialState, PlacementStrategy};
    use march_test::catalog;
    use sram_fault_model::FaultList;

    fn batches_for(backend: BackendKind) -> Vec<TargetBatch> {
        let list = FaultList::list_2();
        list.linked()
            .iter()
            .map(|fault| {
                let target = TargetKind::Linked(fault.clone());
                let lanes = enumerate_lanes(
                    &target,
                    8,
                    PlacementStrategy::Representative,
                    &[InitialState::AllZero, InitialState::AllOne],
                );
                TargetBatch::new(target, lanes, 8, backend)
            })
            .collect()
    }

    #[test]
    fn scalar_and_packed_batches_advance_identically() {
        let mut scalar = batches_for(BackendKind::Scalar);
        let mut packed = batches_for(BackendKind::Packed);
        for (_, element) in catalog::march_sl().iter() {
            for (s, p) in scalar.iter_mut().zip(packed.iter_mut()) {
                let score_s = s.score(element);
                let score_p = p.score(element);
                assert_eq!(score_s, score_p, "score diverged on {}", s.target());
                assert_eq!(s.advance(element), score_s);
                assert_eq!(p.advance(element), score_p);
                assert_eq!(s.pending(), p.pending());
            }
        }
        assert!(scalar.iter().all(|batch| batch.pending() == 0));
    }

    #[test]
    fn candidate_batch_construction_and_chunking() {
        let pool = catalog::march_sl().elements().to_vec();
        let batch = CandidateBatch::new(pool.clone()).unwrap();
        assert_eq!(batch.len(), pool.len());
        assert!(!batch.is_empty());
        assert_eq!(batch.lane_mask().count_ones() as usize, pool.len());
        assert_eq!(batch.candidates(), &pool[..]);
        assert!(matches!(
            CandidateBatch::new(Vec::new()),
            Err(SimulationError::LaneCountOutOfRange { requested: 0 })
        ));
        let big: Vec<MarchElement> = vec![pool[0].clone(); 65];
        assert!(CandidateBatch::new(big.clone()).is_err());
        let chunks = CandidateBatch::chunked(&big, 0);
        assert_eq!(chunks.len(), 2);
        assert_eq!(chunks[0].len(), 64);
        assert_eq!(chunks[1].len(), 1);
        let small = CandidateBatch::chunked(&big, 7);
        assert!(small.iter().all(|chunk| chunk.len() <= 7));
        assert_eq!(small.iter().map(CandidateBatch::len).sum::<usize>(), 65);
        assert!(CandidateBatch::chunked(&[], 0).is_empty());
    }

    #[test]
    fn pool_scores_match_sequential_scores_on_both_backends() {
        // A pool mixing lengths, orders and kinds, scored at several march
        // prefixes so both the wave and the per-candidate paths are exercised.
        let mut pool = catalog::march_sl().elements().to_vec();
        pool.extend(catalog::march_ss().elements().iter().cloned());
        pool.extend(catalog::mats_plus().elements().iter().cloned());
        let packed_pool = CandidateBatch::new(pool.clone()).unwrap();
        let mut scalar = batches_for(BackendKind::Scalar);
        let mut packed = batches_for(BackendKind::Packed);
        for (_, element) in catalog::march_ss().iter() {
            for (s, p) in scalar.iter_mut().zip(packed.iter_mut()) {
                let sequential: Vec<usize> =
                    pool.iter().map(|candidate| s.score(candidate)).collect();
                assert_eq!(s.score_pool(&packed_pool), sequential, "{}", s.target());
                assert_eq!(p.score_pool(&packed_pool), sequential, "{}", p.target());
                s.advance(element);
                p.advance(element);
            }
        }
    }

    #[test]
    fn packed_compaction_preserves_scores_beyond_64_lanes() {
        // Exhaustive two-cell placements on 8 cells force multiple chunks;
        // advancing detects lanes and compacts the survivors into one word.
        let fault = FaultList::list_1()
            .linked()
            .iter()
            .find(|fault| fault.cell_count() == 2)
            .expect("list #1 has two-cell faults")
            .clone();
        let target = TargetKind::Linked(fault);
        let lanes = enumerate_lanes(
            &target,
            8,
            PlacementStrategy::Exhaustive,
            &[InitialState::AllZero, InitialState::AllOne],
        );
        assert!(lanes.len() > PackedSimulator::MAX_LANES);
        let mut scalar = TargetBatch::new(target.clone(), lanes.clone(), 8, BackendKind::Scalar);
        let mut packed = TargetBatch::new(target, lanes, 8, BackendKind::Packed);
        let pool = CandidateBatch::new(catalog::march_ss().elements().to_vec()).unwrap();
        for (_, element) in catalog::march_sl().iter() {
            assert_eq!(scalar.advance(element), packed.advance(element));
            assert_eq!(scalar.pending_lanes(), packed.pending_lanes());
            assert_eq!(scalar.score_pool(&pool), packed.score_pool(&pool));
        }
        assert_eq!(packed.pending(), 0);
    }

    #[test]
    fn wave_cost_factor_is_result_invariant() {
        // Factor 0 forces the wave on every chunk, a huge factor forces the
        // per-candidate pass; the scores must not change either way.
        let mut pool = catalog::march_sl().elements().to_vec();
        pool.extend(catalog::mats_plus().elements().iter().cloned());
        let packed_pool = CandidateBatch::new(pool).unwrap();
        let batches = batches_for(BackendKind::Packed);
        for batch in &batches {
            let reference = batch.score_pool(&packed_pool);
            for factor in [0usize, 1, 3, 1_000_000] {
                let tuned = batch.clone().with_wave_cost_factor(factor);
                assert_eq!(
                    tuned.score_pool(&packed_pool),
                    reference,
                    "factor {factor} changed scores on {}",
                    batch.target()
                );
            }
        }
    }

    #[test]
    fn pending_lanes_match_across_backends() {
        let mut scalar = batches_for(BackendKind::Scalar);
        let mut packed = batches_for(BackendKind::Packed);
        // Advance by an incomplete prefix and compare the surviving lanes.
        let element = catalog::mats_plus().elements()[0].clone();
        for (s, p) in scalar.iter_mut().zip(packed.iter_mut()) {
            s.advance(&element);
            p.advance(&element);
            assert_eq!(s.pending_lanes(), p.pending_lanes());
            assert!(!s.to_string().is_empty());
        }
    }
}
