//! Incremental, backend-agnostic batches of coverage lanes — the simulation
//! state the greedy generator advances element by element.
//!
//! A [`TargetBatch`] holds every still-undetected `(placement, background)`
//! lane of one fault target together with the simulator state reached after
//! the march prefix built so far. Scoring a candidate march element only has
//! to simulate that element: on the scalar backend by cloning each lane's
//! [`FaultSimulator`], on the packed backend by cloning a handful of lane-word
//! bit-planes and running all lanes of a chunk at once. The packed chunk word
//! is width-generic ([`LaneWord`]): a `u64` chunk carries 64 lanes, the
//! [`W128`]/[`W256`] blocks carry 128/256 — picked per batch by the
//! [`LaneWidth`] policy, with byte-identical scores and pending sets at every
//! width.

use std::fmt;
use std::sync::Arc;

use march_test::MarchElement;
use sram_fault_model::{Bit, Operation};

use crate::backend::{scalar_lane_simulator, BackendKind, CoverageLane, PackedSimulator};
use crate::coverage::TargetKind;
use crate::lane::{LaneWidth, LaneWord, W128, W256};
use crate::{FaultSimulator, SimulationError};

/// One scalar lane: its descriptor plus the advanced simulator state.
#[derive(Debug)]
struct ScalarLane {
    lane: CoverageLane,
    simulator: FaultSimulator,
}

impl Clone for ScalarLane {
    fn clone(&self) -> ScalarLane {
        ScalarLane {
            lane: self.lane.clone(),
            simulator: self.simulator.clone(),
        }
    }

    fn clone_from(&mut self, source: &ScalarLane) {
        self.lane.clone_from(&source.lane);
        self.simulator.clone_from(&source.simulator);
    }
}

/// The backend-specific simulation state of a batch. The packed variants
/// differ only in the lane-word width of their chunks; every operation on
/// them goes through the same width-generic helpers.
#[derive(Debug)]
enum BatchState {
    /// One dual-memory simulator per undetected lane.
    Scalar(Vec<ScalarLane>),
    /// Packed chunks of up to 64 lanes; detected lanes are masked out of the
    /// scoring by each chunk's detection mask.
    Packed(Vec<PackedChunk>),
    /// Packed chunks of up to 128 lanes (`[u64; 2]` words).
    Packed128(Vec<PackedChunk<W128>>),
    /// Packed chunks of up to 256 lanes (`[u64; 4]` words).
    Packed256(Vec<PackedChunk<W256>>),
}

impl Clone for BatchState {
    fn clone(&self) -> BatchState {
        match self {
            BatchState::Scalar(lanes) => BatchState::Scalar(lanes.clone()),
            BatchState::Packed(chunks) => BatchState::Packed(chunks.clone()),
            BatchState::Packed128(chunks) => BatchState::Packed128(chunks.clone()),
            BatchState::Packed256(chunks) => BatchState::Packed256(chunks.clone()),
        }
    }

    /// Variant-aware `clone_from`: restoring a snapshot into a batch of the
    /// same backend (and lane width) re-uses every lane/plane buffer already
    /// allocated.
    fn clone_from(&mut self, source: &BatchState) {
        match (self, source) {
            (BatchState::Scalar(into), BatchState::Scalar(from)) => into.clone_from(from),
            (BatchState::Packed(into), BatchState::Packed(from)) => into.clone_from(from),
            (BatchState::Packed128(into), BatchState::Packed128(from)) => into.clone_from(from),
            (BatchState::Packed256(into), BatchState::Packed256(from)) => into.clone_from(from),
            (into, from) => *into = from.clone(),
        }
    }
}

#[derive(Debug)]
struct PackedChunk<W: LaneWord = u64> {
    /// The lane descriptors, `Arc`-shared with every snapshot of this chunk:
    /// they only change on compaction, so snapshot/restore pays one refcount
    /// bump instead of cloning the whole descriptor vector.
    lanes: Arc<Vec<CoverageLane>>,
    simulator: PackedSimulator<W>,
}

impl<W: LaneWord> Clone for PackedChunk<W> {
    fn clone(&self) -> PackedChunk<W> {
        PackedChunk {
            lanes: self.lanes.clone(),
            simulator: self.simulator.clone(),
        }
    }

    fn clone_from(&mut self, source: &PackedChunk<W>) {
        self.lanes = Arc::clone(&source.lanes);
        self.simulator.clone_from(&source.simulator);
    }
}

impl<W: LaneWord> PackedChunk<W> {
    fn pending_mask(&self) -> W {
        !self.simulator.detected_mask() & self.simulator.lane_mask()
    }

    fn pending(&self) -> usize {
        self.pending_mask().count_ones() as usize
    }

    /// Newly detected lanes of this chunk if `element` were executed next.
    /// The trial runs on `scratch` (rebuilt from this chunk's state with
    /// buffer-reusing `clone_from`), so repeated scoring never reallocates.
    fn score_one_with(&self, element: &MarchElement, scratch: &mut PackedSimulator<W>) -> usize {
        let before = self.simulator.detected_mask();
        if before == self.simulator.lane_mask() {
            return 0;
        }
        scratch.clone_from(&self.simulator);
        scratch.apply_element(element);
        (scratch.detected_mask() & !before).count_ones() as usize
    }
}

/// A cheap checkpoint of a [`TargetBatch`]'s lane state, taken with
/// [`TargetBatch::snapshot`] and replayed with [`TargetBatch::restore`].
///
/// The redundancy-removal pass records one snapshot per march element as it
/// advances each target, so the trial for "remove operation *i* of element
/// *e*" restores the checkpoint taken before *e* and re-simulates only the
/// suffix — instead of re-running the whole shortened test from scratch.
#[derive(Debug, Clone)]
pub struct BatchSnapshot {
    state: BatchState,
}

/// A pool of candidate march elements packed one per bit-lane of a candidate
/// word, ready for single-pass scoring against the pending lanes of a
/// [`TargetBatch`]. The default `u64` word packs up to 64 candidates.
///
/// Per operation slot the pool pre-computes one lane mask per operation kind
/// (`w0` / `w1` / read / wait — the only distinctions the fault semantics make)
/// plus the mask of lanes that march ascending, so the
/// candidate-wave evaluator can execute all candidates with a handful of
/// masked bitwise operations per cell visit.
///
/// # Examples
///
/// ```
/// use march_test::catalog;
/// use sram_fault_model::FaultList;
/// use sram_sim::{
///     enumerate_lanes, BackendKind, CandidateBatch, InitialState, PlacementStrategy,
///     TargetBatch, TargetKind,
/// };
///
/// let fault = FaultList::list_2().linked()[0].clone();
/// let target = TargetKind::Linked(fault);
/// let lanes = enumerate_lanes(
///     &target,
///     8,
///     PlacementStrategy::Representative,
///     &[InitialState::AllOne],
/// )?;
/// let batch = TargetBatch::new(target, lanes, 8, BackendKind::Packed);
/// let pool: Vec<_> = catalog::march_sl().elements().to_vec();
/// let packed = CandidateBatch::new(pool.clone())?;
/// // One packed pass scores the whole pool...
/// let batched = batch.score_pool(&packed);
/// // ...and agrees with scoring every candidate on its own.
/// let sequential: Vec<usize> = pool.iter().map(|e| batch.score(e)).collect();
/// assert_eq!(batched, sequential);
/// # Ok::<(), sram_sim::SimulationError>(())
/// ```
#[derive(Debug, Clone)]
pub struct CandidateBatch<C: LaneWord = u64> {
    candidates: Vec<MarchElement>,
    lane_mask: C,
    ascending: C,
    max_ops: usize,
    total_ops: usize,
    w0: Vec<C>,
    w1: Vec<C>,
    read: Vec<C>,
    wait: Vec<C>,
}

impl CandidateBatch {
    /// The maximum number of candidates one default-width (`u64`) batch
    /// packs. Wider candidate words hold `C::BITS` candidates.
    pub const MAX_CANDIDATES: usize = 64;

    /// Splits a pool of any size into batches of at most `batch` candidates
    /// (`0` = [`CandidateBatch::MAX_CANDIDATES`]; larger values are clamped).
    #[must_use]
    pub fn chunked(pool: &[MarchElement], batch: usize) -> Vec<CandidateBatch> {
        let size = if batch == 0 {
            CandidateBatch::MAX_CANDIDATES
        } else {
            batch.min(CandidateBatch::MAX_CANDIDATES)
        };
        pool.chunks(size)
            .map(|chunk| CandidateBatch::new(chunk.to_vec()).expect("chunk sizes are in range"))
            .collect()
    }
}

impl<C: LaneWord> CandidateBatch<C> {
    /// Packs `candidates` one per bit-lane.
    ///
    /// # Errors
    ///
    /// Returns [`SimulationError::LaneCountOutOfRange`] if `candidates` is
    /// empty or holds more than one candidate word's worth of elements
    /// (split larger pools with [`CandidateBatch::chunked`]).
    pub fn new(candidates: Vec<MarchElement>) -> Result<CandidateBatch<C>, SimulationError> {
        if candidates.is_empty() || candidates.len() > C::BITS {
            return Err(SimulationError::LaneCountOutOfRange {
                requested: candidates.len(),
            });
        }
        let max_ops = candidates
            .iter()
            .map(MarchElement::len)
            .max()
            .expect("pool is non-empty");
        let total_ops = candidates.iter().map(MarchElement::len).sum();
        let mut batch = CandidateBatch {
            // The shared width-generic boundary helper: no `== 64` special
            // case (see `LaneWord::full_mask`).
            lane_mask: C::full_mask(candidates.len()),
            ascending: C::ZERO,
            max_ops,
            total_ops,
            w0: vec![C::ZERO; max_ops],
            w1: vec![C::ZERO; max_ops],
            read: vec![C::ZERO; max_ops],
            wait: vec![C::ZERO; max_ops],
            candidates,
        };
        for (lane, candidate) in batch.candidates.iter().enumerate() {
            let bit = C::bit(lane);
            // `Any` conventionally executes ascending, as in `run_march`.
            if candidate.order() != march_test::AddressOrder::Descending {
                batch.ascending |= bit;
            }
            for (slot, operation) in candidate.operations().iter().enumerate() {
                match operation {
                    Operation::Write(Bit::Zero) => batch.w0[slot] |= bit,
                    Operation::Write(Bit::One) => batch.w1[slot] |= bit,
                    Operation::Read(_) => batch.read[slot] |= bit,
                    Operation::Wait => batch.wait[slot] |= bit,
                }
            }
        }
        Ok(batch)
    }

    /// The packed candidates, in lane order.
    #[must_use]
    pub fn candidates(&self) -> &[MarchElement] {
        &self.candidates
    }

    /// Number of packed candidates.
    #[must_use]
    pub fn len(&self) -> usize {
        self.candidates.len()
    }

    /// Always `false`: batches are non-empty by construction.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.candidates.is_empty()
    }

    /// The mask with one bit set per packed candidate.
    #[must_use]
    pub fn lane_mask(&self) -> C {
        self.lane_mask
    }

    /// Candidate lanes whose element visits cells in ascending order.
    pub(crate) fn ascending_mask(&self) -> C {
        self.ascending
    }

    /// The longest candidate's operation count (the padded slot count).
    pub(crate) fn max_ops(&self) -> usize {
        self.max_ops
    }

    /// Total operation count over all candidates (the per-candidate
    /// scoring cost, used to decide when the wave pass is cheaper).
    pub(crate) fn total_ops(&self) -> usize {
        self.total_ops
    }

    /// The operation kinds executed at `slot` with their candidate-lane masks
    /// (lanes shorter than `slot` appear in no mask and idle).
    pub(crate) fn slot_ops(&self, slot: usize) -> [(Operation, C); 4] {
        [
            (Operation::W0, self.w0[slot]),
            (Operation::W1, self.w1[slot]),
            (Operation::Read(None), self.read[slot]),
            (Operation::Wait, self.wait[slot]),
        ]
    }
}

/// Every coverage lane of one fault target, advanced in lock-step as march
/// elements are appended.
///
/// # Examples
///
/// ```
/// use march_test::catalog;
/// use sram_fault_model::FaultList;
/// use sram_sim::{
///     enumerate_lanes, BackendKind, InitialState, PlacementStrategy, TargetBatch, TargetKind,
/// };
///
/// let fault = FaultList::list_2().linked()[0].clone();
/// let target = TargetKind::Linked(fault);
/// let lanes = enumerate_lanes(
///     &target,
///     8,
///     PlacementStrategy::Representative,
///     &[InitialState::AllOne],
/// )?;
/// let mut batch = TargetBatch::new(target, lanes, 8, BackendKind::Packed);
/// for (_, element) in catalog::march_sl().iter() {
///     batch.advance(element);
/// }
/// assert_eq!(batch.pending(), 0, "March SL covers every lane");
/// # Ok::<(), sram_sim::SimulationError>(())
/// ```
#[derive(Debug, Clone)]
pub struct TargetBatch {
    target: TargetKind,
    state: BatchState,
    wave_cost_factor: usize,
}

impl TargetBatch {
    /// Builds the batch for `target` over `lanes` on a `memory_cells`-cell
    /// memory, simulated with `backend` at the automatic lane width (the
    /// narrowest word holding the lane count; see
    /// [`TargetBatch::new_with_width`]).
    ///
    /// # Panics
    ///
    /// Panics if a lane's placement is invalid for the target (the enumerated
    /// placements of [`enumerate_lanes`](crate::enumerate_lanes) always are).
    #[must_use]
    pub fn new(
        target: TargetKind,
        lanes: Vec<CoverageLane>,
        memory_cells: usize,
        backend: BackendKind,
    ) -> TargetBatch {
        TargetBatch::new_with_width(target, lanes, memory_cells, backend, LaneWidth::Auto)
    }

    /// Builds the batch with an explicit packed lane width. The width only
    /// changes how many lanes share one chunk word (and hence the wall-clock
    /// cost); scores, pending sets and snapshots are byte-identical across
    /// widths. The scalar backend ignores the width.
    ///
    /// # Panics
    ///
    /// Panics if a lane's placement is invalid for the target.
    #[must_use]
    pub fn new_with_width(
        target: TargetKind,
        lanes: Vec<CoverageLane>,
        memory_cells: usize,
        backend: BackendKind,
        width: LaneWidth,
    ) -> TargetBatch {
        let state = match backend {
            BackendKind::Scalar => BatchState::Scalar(
                lanes
                    .into_iter()
                    .map(|lane| ScalarLane {
                        simulator: scalar_lane_simulator(&target, &lane, memory_cells),
                        lane,
                    })
                    .collect(),
            ),
            BackendKind::Packed => match width.resolve(lanes.len()) {
                LaneWidth::W128 => {
                    BatchState::Packed128(build_chunks::<W128>(&target, &lanes, memory_cells))
                }
                LaneWidth::W256 => {
                    BatchState::Packed256(build_chunks::<W256>(&target, &lanes, memory_cells))
                }
                _ => BatchState::Packed(build_chunks::<u64>(&target, &lanes, memory_cells)),
            },
        };
        TargetBatch {
            target,
            state,
            wave_cost_factor: crate::DEFAULT_WAVE_COST_FACTOR,
        }
    }

    /// Replaces the wave-vs-per-candidate cost-model factor (see
    /// [`ExecPolicy::wave_cost_factor`](crate::ExecPolicy)): the candidate
    /// wave is chosen when `pending × padded slots × factor ≤ Σ candidate
    /// ops`. Both strategies are exact, so [`TargetBatch::score_pool`] returns
    /// identical scores for every factor — only the wall-clock changes.
    #[must_use]
    pub fn with_wave_cost_factor(mut self, factor: usize) -> TargetBatch {
        self.wave_cost_factor = factor;
        self
    }

    /// The fault target the batch instantiates.
    #[must_use]
    pub fn target(&self) -> &TargetKind {
        &self.target
    }

    /// Number of lanes not yet detected by the march prefix.
    #[must_use]
    pub fn pending(&self) -> usize {
        match &self.state {
            BatchState::Scalar(lanes) => lanes.len(),
            BatchState::Packed(chunks) => chunks_pending(chunks),
            BatchState::Packed128(chunks) => chunks_pending(chunks),
            BatchState::Packed256(chunks) => chunks_pending(chunks),
        }
    }

    /// The descriptors of the still-undetected lanes.
    #[must_use]
    pub fn pending_lanes(&self) -> Vec<CoverageLane> {
        let mut lanes = Vec::new();
        self.pending_lanes_into(&mut lanes);
        lanes
    }

    /// Appends the descriptors of the still-undetected lanes to `out` without
    /// allocating a fresh vector — callers looping over many batches (escape
    /// reporting, the minimiser's diagnostics) re-use one buffer.
    pub fn pending_lanes_into(&self, out: &mut Vec<CoverageLane>) {
        match &self.state {
            BatchState::Scalar(lanes) => out.extend(lanes.iter().map(|lane| lane.lane.clone())),
            BatchState::Packed(chunks) => chunks_pending_lanes_into(chunks, out),
            BatchState::Packed128(chunks) => chunks_pending_lanes_into(chunks, out),
            BatchState::Packed256(chunks) => chunks_pending_lanes_into(chunks, out),
        }
    }

    /// Takes a checkpoint of the current lane state. Restoring it with
    /// [`TargetBatch::restore`] rewinds the batch to this exact point of the
    /// march prefix, byte-identically.
    #[must_use]
    pub fn snapshot(&self) -> BatchSnapshot {
        BatchSnapshot {
            state: self.state.clone(),
        }
    }

    /// Overwrites an existing snapshot with the current lane state, re-using
    /// its buffers — the cheap way to refresh a checkpoint slot that went
    /// stale after an accepted removal.
    pub fn snapshot_into(&self, snapshot: &mut BatchSnapshot) {
        snapshot.state.clone_from(&self.state);
    }

    /// Rewinds the batch to a previously taken [`BatchSnapshot`]. The restore
    /// re-uses the buffers the batch already holds (no allocation when the
    /// shapes match), so trial-restore loops are cheap.
    pub fn restore(&mut self, snapshot: &BatchSnapshot) {
        self.state.clone_from(&snapshot.state);
    }

    /// Executes `elements` from the current lane state and returns `true` if
    /// every still-pending lane detects its fault instance by the end — the
    /// suffix-only re-verification primitive of the redundancy-removal pass.
    ///
    /// The batch state is consumed by the trial (lane states advance with no
    /// compaction); callers restore a snapshot before the next trial. The
    /// scan is lane-major with a fail-fast: the first lane (scalar) or chunk
    /// (packed) the suffix leaves undetected ends the trial, mirroring the
    /// early exit of
    /// [`SimulationBackend::first_undetected`](crate::SimulationBackend).
    pub fn covers_suffix(&mut self, elements: &[MarchElement]) -> bool {
        match &mut self.state {
            BatchState::Scalar(lanes) => lanes.iter_mut().all(|lane| {
                elements
                    .iter()
                    .any(|element| run_element(element, &mut lane.simulator))
            }),
            BatchState::Packed(chunks) => chunks_covers_suffix(chunks, elements),
            BatchState::Packed128(chunks) => chunks_covers_suffix(chunks, elements),
            BatchState::Packed256(chunks) => chunks_covers_suffix(chunks, elements),
        }
    }

    /// How many still-undetected lanes executing `element` next would detect,
    /// without advancing the batch.
    #[must_use]
    pub fn score(&self, element: &MarchElement) -> usize {
        match &self.state {
            BatchState::Scalar(lanes) => {
                let mut scratch: Option<FaultSimulator> = None;
                lanes
                    .iter()
                    .filter(|lane| {
                        let simulator = match scratch.as_mut() {
                            Some(simulator) => {
                                simulator.clone_from(&lane.simulator);
                                simulator
                            }
                            None => scratch.insert(lane.simulator.clone()),
                        };
                        run_element(element, simulator)
                    })
                    .count()
            }
            BatchState::Packed(chunks) => chunks_score(chunks, element),
            BatchState::Packed128(chunks) => chunks_score(chunks, element),
            BatchState::Packed256(chunks) => chunks_score(chunks, element),
        }
    }

    /// Scores every candidate of `pool` without advancing the batch, returning
    /// the number of still-undetected lanes each candidate would newly detect,
    /// in candidate order.
    ///
    /// On the scalar backend this is the per-candidate reference loop. On the
    /// packed backend each chunk picks, per pool, the cheaper of two exact
    /// strategies: the classic per-candidate packed pass, or transposing the
    /// problem into a candidate wave — each pending lane's state broadcast
    /// across the pool so one bit-parallel pass scores a whole candidate word
    /// at once. The verdicts are byte-identical either way.
    #[must_use]
    pub fn score_pool(&self, pool: &CandidateBatch) -> Vec<usize> {
        match &self.state {
            BatchState::Scalar(_) => pool
                .candidates()
                .iter()
                .map(|candidate| self.score(candidate))
                .collect(),
            BatchState::Packed(chunks) => chunks_score_pool(chunks, pool, self.wave_cost_factor),
            BatchState::Packed128(chunks) => chunks_score_pool(chunks, pool, self.wave_cost_factor),
            BatchState::Packed256(chunks) => chunks_score_pool(chunks, pool, self.wave_cost_factor),
        }
    }

    /// Advances the batch by executing `element`; returns the number of lanes
    /// it newly detected (those lanes stop being simulated). Detected lanes
    /// are compacted away so later scoring only pays for pending ones.
    pub fn advance(&mut self, element: &MarchElement) -> usize {
        match &mut self.state {
            BatchState::Scalar(lanes) => {
                let before = lanes.len();
                lanes.retain_mut(|lane| !run_element(element, &mut lane.simulator));
                before - lanes.len()
            }
            BatchState::Packed(chunks) => chunks_advance(chunks, element),
            BatchState::Packed128(chunks) => chunks_advance(chunks, element),
            BatchState::Packed256(chunks) => chunks_advance(chunks, element),
        }
    }
}

/// Splits `lanes` into packed chunks of one `W` word each.
fn build_chunks<W: LaneWord>(
    target: &TargetKind,
    lanes: &[CoverageLane],
    memory_cells: usize,
) -> Vec<PackedChunk<W>> {
    lanes
        .chunks(W::BITS)
        .map(|chunk| PackedChunk {
            simulator: PackedSimulator::<W>::new(target, chunk, memory_cells)
                .expect("enumerated placements are valid"),
            lanes: Arc::new(chunk.to_vec()),
        })
        .collect()
}

fn chunks_pending<W: LaneWord>(chunks: &[PackedChunk<W>]) -> usize {
    chunks.iter().map(PackedChunk::pending).sum()
}

fn chunks_pending_lanes_into<W: LaneWord>(chunks: &[PackedChunk<W>], out: &mut Vec<CoverageLane>) {
    for chunk in chunks {
        let detected = chunk.simulator.detected_mask();
        out.extend(
            chunk
                .lanes
                .iter()
                .enumerate()
                .filter(|(index, _)| !detected.test_bit(*index))
                .map(|(_, lane)| lane.clone()),
        );
    }
}

fn chunks_covers_suffix<W: LaneWord>(
    chunks: &mut [PackedChunk<W>],
    elements: &[MarchElement],
) -> bool {
    chunks.iter_mut().all(|chunk| {
        for element in elements {
            if chunk.simulator.all_detected() {
                return true;
            }
            chunk.simulator.apply_element(element);
        }
        chunk.pending_mask().is_zero()
    })
}

fn chunks_score<W: LaneWord>(chunks: &[PackedChunk<W>], element: &MarchElement) -> usize {
    let mut scratch: Option<PackedSimulator<W>> = None;
    chunks
        .iter()
        .map(|chunk| {
            let scratch = match scratch.as_mut() {
                Some(scratch) => scratch,
                None => scratch.insert(chunk.simulator.clone()),
            };
            chunk.score_one_with(element, scratch)
        })
        .sum()
}

fn chunks_score_pool<W: LaneWord>(
    chunks: &[PackedChunk<W>],
    pool: &CandidateBatch,
    wave_cost_factor: usize,
) -> Vec<usize> {
    let mut scores = vec![0usize; pool.len()];
    let mut scratch: Option<PackedSimulator<W>> = None;
    for chunk in chunks {
        let pending = chunk.pending_mask();
        if pending.is_zero() {
            continue;
        }
        // The wave pays ~`wave_cost_factor` masked group passes per padded
        // slot per pending lane; the per-candidate pass pays one plain pass
        // per operation of every candidate. Saturating: a pathological
        // `with_wave_cost_factor` value must degrade to the per-candidate
        // path, not wrap around to a spuriously cheap wave.
        let pending_count = pending.count_ones() as usize;
        let wave_cost = pending_count
            .saturating_mul(pool.max_ops())
            .saturating_mul(wave_cost_factor);
        if wave_cost <= pool.total_ops() {
            let mut lanes = pending;
            while !lanes.is_zero() {
                let lane = lanes.trailing_zeros() as usize;
                lanes.clear_lowest_bit();
                let mut detected = chunk.simulator.candidate_wave(lane).run_pool(pool);
                while detected != 0 {
                    let candidate = detected.trailing_zeros() as usize;
                    detected &= detected - 1;
                    scores[candidate] += 1;
                }
            }
        } else {
            // One scratch simulator serves every candidate of every chunk:
            // the trial state is rebuilt with buffer-reusing `clone_from`
            // instead of a fresh allocation per candidate.
            let scratch = match scratch.as_mut() {
                Some(scratch) => scratch,
                None => scratch.insert(chunk.simulator.clone()),
            };
            for (index, candidate) in pool.candidates().iter().enumerate() {
                scores[index] += chunk.score_one_with(candidate, scratch);
            }
        }
    }
    scores
}

fn chunks_advance<W: LaneWord>(chunks: &mut Vec<PackedChunk<W>>, element: &MarchElement) -> usize {
    let mut newly = 0usize;
    for chunk in chunks.iter_mut() {
        let before = chunk.simulator.detected_mask();
        if before == chunk.simulator.lane_mask() {
            continue;
        }
        chunk.simulator.apply_element(element);
        newly += (chunk.simulator.detected_mask() & !before).count_ones() as usize;
    }
    compact_chunks(chunks);
    newly
}

/// Drops fully-detected packed chunks and, when every pending lane fits in
/// one word, merges the survivors into a single dense chunk — so candidate
/// scoring after a long march prefix clones and simulates one small word
/// instead of many sparse ones. Lane order is preserved, keeping pending
/// reporting and scores byte-identical to the uncompacted state.
fn compact_chunks<W: LaneWord>(chunks: &mut Vec<PackedChunk<W>>) {
    chunks.retain(|chunk| chunk.pending() > 0);
    let total: usize = chunks.iter().map(PackedChunk::pending).sum();
    let compactable = chunks.len() > 1
        || chunks
            .first()
            .is_some_and(|chunk| chunk.lanes.len() > total);
    if total == 0 || total > W::BITS || !compactable {
        return;
    }
    let sources: Vec<(&PackedSimulator<W>, W)> = chunks
        .iter()
        .map(|chunk| (&chunk.simulator, chunk.pending_mask()))
        .collect();
    let merged = PackedSimulator::merge_lanes(&sources)
        .expect("at least one pending lane survives compaction");
    let lanes: Vec<CoverageLane> = chunks
        .iter()
        .flat_map(|chunk| {
            let pending = chunk.pending_mask();
            chunk
                .lanes
                .iter()
                .enumerate()
                .filter(move |(index, _)| pending.test_bit(*index))
                .map(|(_, lane)| lane.clone())
        })
        .collect();
    *chunks = vec![PackedChunk {
        lanes: Arc::new(lanes),
        simulator: merged,
    }];
}

impl fmt::Display for TargetBatch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({} pending lanes)", self.target, self.pending())
    }
}

/// Executes one march element against a scalar simulator and reports whether
/// any read mismatched.
fn run_element(element: &MarchElement, simulator: &mut FaultSimulator) -> bool {
    let cells = simulator.cells();
    let mut detected = false;
    for cell in element.order().addresses(cells) {
        for operation in element.operations() {
            if simulator.apply(cell, *operation).mismatch() {
                detected = true;
            }
        }
    }
    detected
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::enumerate_lanes;
    use crate::{InitialState, PlacementStrategy};
    use march_test::catalog;
    use sram_fault_model::FaultList;

    fn batches_for(backend: BackendKind) -> Vec<TargetBatch> {
        let list = FaultList::list_2();
        list.linked()
            .iter()
            .map(|fault| {
                let target = TargetKind::Linked(fault.clone());
                let lanes = enumerate_lanes(
                    &target,
                    8,
                    PlacementStrategy::Representative,
                    &[InitialState::AllZero, InitialState::AllOne],
                )
                .unwrap();
                TargetBatch::new(target, lanes, 8, backend)
            })
            .collect()
    }

    /// The 112-lane linked target the width tests use: chunked at width 64,
    /// one word at 128/256.
    fn wide_target() -> (TargetKind, Vec<CoverageLane>) {
        let fault = FaultList::list_1()
            .linked()
            .iter()
            .find(|fault| fault.cell_count() == 2)
            .expect("list #1 has two-cell faults")
            .clone();
        let target = TargetKind::Linked(fault);
        let lanes = enumerate_lanes(
            &target,
            8,
            PlacementStrategy::Exhaustive,
            &[InitialState::AllZero, InitialState::AllOne],
        )
        .unwrap();
        (target, lanes)
    }

    #[test]
    fn scalar_and_packed_batches_advance_identically() {
        let mut scalar = batches_for(BackendKind::Scalar);
        let mut packed = batches_for(BackendKind::Packed);
        for (_, element) in catalog::march_sl().iter() {
            for (s, p) in scalar.iter_mut().zip(packed.iter_mut()) {
                let score_s = s.score(element);
                let score_p = p.score(element);
                assert_eq!(score_s, score_p, "score diverged on {}", s.target());
                assert_eq!(s.advance(element), score_s);
                assert_eq!(p.advance(element), score_p);
                assert_eq!(s.pending(), p.pending());
            }
        }
        assert!(scalar.iter().all(|batch| batch.pending() == 0));
    }

    #[test]
    fn candidate_batch_construction_and_chunking() {
        let pool = catalog::march_sl().elements().to_vec();
        let batch: CandidateBatch = CandidateBatch::new(pool.clone()).unwrap();
        assert_eq!(batch.len(), pool.len());
        assert!(!batch.is_empty());
        assert_eq!(batch.lane_mask().count_ones() as usize, pool.len());
        assert_eq!(batch.candidates(), &pool[..]);
        assert!(matches!(
            CandidateBatch::<u64>::new(Vec::new()),
            Err(SimulationError::LaneCountOutOfRange { requested: 0 })
        ));
        let big: Vec<MarchElement> = vec![pool[0].clone(); 65];
        assert!(CandidateBatch::<u64>::new(big.clone()).is_err());
        // A wider candidate word packs the same 65-element pool whole.
        let wide = CandidateBatch::<W128>::new(big.clone()).unwrap();
        assert_eq!(wide.len(), 65);
        assert_eq!(wide.lane_mask().count_ones(), 65);
        let chunks = CandidateBatch::chunked(&big, 0);
        assert_eq!(chunks.len(), 2);
        assert_eq!(chunks[0].len(), 64);
        assert_eq!(chunks[1].len(), 1);
        let small = CandidateBatch::chunked(&big, 7);
        assert!(small.iter().all(|chunk| chunk.len() <= 7));
        assert_eq!(small.iter().map(CandidateBatch::len).sum::<usize>(), 65);
        assert!(CandidateBatch::chunked(&[], 0).is_empty());
    }

    #[test]
    fn pool_scores_match_sequential_scores_on_both_backends() {
        // A pool mixing lengths, orders and kinds, scored at several march
        // prefixes so both the wave and the per-candidate paths are exercised.
        let mut pool = catalog::march_sl().elements().to_vec();
        pool.extend(catalog::march_ss().elements().iter().cloned());
        pool.extend(catalog::mats_plus().elements().iter().cloned());
        let packed_pool: CandidateBatch = CandidateBatch::new(pool.clone()).unwrap();
        let mut scalar = batches_for(BackendKind::Scalar);
        let mut packed = batches_for(BackendKind::Packed);
        for (_, element) in catalog::march_ss().iter() {
            for (s, p) in scalar.iter_mut().zip(packed.iter_mut()) {
                let sequential: Vec<usize> =
                    pool.iter().map(|candidate| s.score(candidate)).collect();
                assert_eq!(s.score_pool(&packed_pool), sequential, "{}", s.target());
                assert_eq!(p.score_pool(&packed_pool), sequential, "{}", p.target());
                s.advance(element);
                p.advance(element);
            }
        }
    }

    #[test]
    fn packed_compaction_preserves_scores_beyond_64_lanes() {
        // Exhaustive two-cell placements on 8 cells force multiple chunks at
        // width 64 (pinned: `Auto` would pick one 128-lane word and never
        // chunk); advancing detects lanes and compacts the survivors.
        let (target, lanes) = wide_target();
        assert!(lanes.len() > PackedSimulator::<u64>::MAX_LANES);
        let mut scalar = TargetBatch::new(target.clone(), lanes.clone(), 8, BackendKind::Scalar);
        let mut packed =
            TargetBatch::new_with_width(target, lanes, 8, BackendKind::Packed, LaneWidth::W64);
        let pool: CandidateBatch =
            CandidateBatch::new(catalog::march_ss().elements().to_vec()).unwrap();
        for (_, element) in catalog::march_sl().iter() {
            assert_eq!(scalar.advance(element), packed.advance(element));
            assert_eq!(scalar.pending_lanes(), packed.pending_lanes());
            assert_eq!(scalar.score_pool(&pool), packed.score_pool(&pool));
        }
        assert_eq!(packed.pending(), 0);
    }

    #[test]
    fn lane_widths_advance_and_score_identically() {
        // Every lane width must produce the same scores, pending sets and
        // pool scores at every march prefix — the batch-level byte-identity
        // the pipeline-wide differential harness builds on.
        let (target, lanes) = wide_target();
        let mut reference = TargetBatch::new_with_width(
            target.clone(),
            lanes.clone(),
            8,
            BackendKind::Packed,
            LaneWidth::W64,
        );
        let mut wide: Vec<TargetBatch> = [LaneWidth::Auto, LaneWidth::W128, LaneWidth::W256]
            .into_iter()
            .map(|width| {
                TargetBatch::new_with_width(
                    target.clone(),
                    lanes.clone(),
                    8,
                    BackendKind::Packed,
                    width,
                )
            })
            .collect();
        let pool: CandidateBatch =
            CandidateBatch::new(catalog::march_ss().elements().to_vec()).unwrap();
        for (_, element) in catalog::march_sl().iter() {
            let scores = reference.score_pool(&pool);
            let newly = reference.advance(element);
            for batch in wide.iter_mut() {
                assert_eq!(batch.score_pool(&pool), scores);
                assert_eq!(batch.advance(element), newly);
                assert_eq!(batch.pending_lanes(), reference.pending_lanes());
            }
        }
        assert_eq!(reference.pending(), 0);
    }

    #[test]
    fn wave_cost_factor_is_result_invariant() {
        // Factor 0 forces the wave on every chunk, a huge factor forces the
        // per-candidate pass; the scores must not change either way.
        let mut pool = catalog::march_sl().elements().to_vec();
        pool.extend(catalog::mats_plus().elements().iter().cloned());
        let packed_pool: CandidateBatch = CandidateBatch::new(pool).unwrap();
        let batches = batches_for(BackendKind::Packed);
        for batch in &batches {
            let reference = batch.score_pool(&packed_pool);
            for factor in [0usize, 1, 3, 1_000_000] {
                let tuned = batch.clone().with_wave_cost_factor(factor);
                assert_eq!(
                    tuned.score_pool(&packed_pool),
                    reference,
                    "factor {factor} changed scores on {}",
                    batch.target()
                );
            }
        }
    }

    #[test]
    fn pathological_wave_cost_factors_degrade_to_per_candidate_scoring() {
        // `usize::MAX`-adjacent factors used to overflow the wave-cost
        // product (wrapping to a spuriously cheap wave in release builds);
        // saturating arithmetic must pin them to the per-candidate path with
        // byte-identical scores.
        let pool: CandidateBatch =
            CandidateBatch::new(catalog::march_ss().elements().to_vec()).unwrap();
        let batches = batches_for(BackendKind::Packed);
        for batch in &batches {
            let reference = batch.score_pool(&pool);
            for factor in [
                usize::MAX,
                usize::MAX - 1,
                usize::MAX / 2,
                usize::MAX / 3 + 1,
            ] {
                let tuned = batch.clone().with_wave_cost_factor(factor);
                assert_eq!(
                    tuned.score_pool(&pool),
                    reference,
                    "factor {factor} changed scores on {}",
                    batch.target()
                );
            }
        }
    }

    #[test]
    fn snapshots_restore_byte_identical_state() {
        // Advance through March SL, snapshotting before every element; each
        // restored snapshot must behave exactly like a batch advanced from
        // scratch through the same prefix.
        let elements: Vec<MarchElement> = catalog::march_sl().elements().to_vec();
        for backend in [BackendKind::Scalar, BackendKind::Packed] {
            for mut batch in batches_for(backend) {
                let mut snapshots = vec![batch.snapshot()];
                for element in &elements {
                    batch.advance(element);
                    snapshots.push(batch.snapshot());
                }
                let mut scratch = batch.clone();
                for (prefix_len, snapshot) in snapshots.iter().enumerate() {
                    scratch.restore(snapshot);
                    let mut reference = batches_for(backend)
                        .into_iter()
                        .find(|candidate| candidate.target() == batch.target())
                        .expect("same target set");
                    for element in &elements[..prefix_len] {
                        reference.advance(element);
                    }
                    assert_eq!(
                        scratch.pending(),
                        reference.pending(),
                        "prefix {prefix_len}"
                    );
                    assert_eq!(scratch.pending_lanes(), reference.pending_lanes());
                    // The restored state scores candidates identically too.
                    let probe = &elements[0];
                    assert_eq!(scratch.score(probe), reference.score(probe));
                }
            }
        }
    }

    #[test]
    fn wide_snapshots_restore_byte_identical_state() {
        // The snapshot/restore chain carries the wide chunk variants too:
        // restoring across a compaction boundary must rewind exactly.
        let (target, lanes) = wide_target();
        for width in [LaneWidth::W128, LaneWidth::W256] {
            let mut batch = TargetBatch::new_with_width(
                target.clone(),
                lanes.clone(),
                8,
                BackendKind::Packed,
                width,
            );
            let baseline = batch.snapshot();
            let pending_before = batch.pending_lanes();
            let mut slot = batch.snapshot();
            for (_, element) in catalog::march_sl().iter() {
                batch.advance(element);
                batch.snapshot_into(&mut slot);
            }
            assert_eq!(batch.pending(), 0);
            let mut restored = batch.clone();
            restored.restore(&slot);
            assert_eq!(restored.pending(), 0, "width {width}");
            restored.restore(&baseline);
            assert_eq!(restored.pending_lanes(), pending_before, "width {width}");
        }
    }

    #[test]
    fn covers_suffix_matches_the_full_run_verdict() {
        // From the checkpoint before element k, the suffix covers the batch
        // iff the full test covers it — the invariant the suffix-only
        // redundancy-removal pass is built on.
        let complete: Vec<MarchElement> = catalog::march_sl().elements().to_vec();
        let incomplete: Vec<MarchElement> = catalog::mats_plus().elements().to_vec();
        for backend in [BackendKind::Scalar, BackendKind::Packed] {
            for (elements, expected) in [(&complete, true), (&incomplete, false)] {
                for batch in batches_for(backend) {
                    let full_expected = expected || {
                        // Some targets are covered even by MATS+.
                        let mut probe = batch.clone();
                        elements.iter().for_each(|element| {
                            probe.advance(element);
                        });
                        probe.pending() == 0
                    };
                    let mut advanced = batch.clone();
                    for split in 0..=elements.len() {
                        let mut trial = batch.clone();
                        trial.restore(&advanced.snapshot());
                        assert_eq!(
                            trial.covers_suffix(&elements[split.min(elements.len())..]),
                            full_expected,
                            "{} split {split} ({backend:?})",
                            batch.target()
                        );
                        if split < elements.len() {
                            advanced.advance(&elements[split]);
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn snapshot_into_reuses_slots_identically() {
        let elements: Vec<MarchElement> = catalog::march_ss().elements().to_vec();
        let mut batch = batches_for(BackendKind::Packed).remove(0);
        let mut slot = batch.snapshot();
        for element in &elements {
            batch.advance(element);
            batch.snapshot_into(&mut slot);
            let fresh = batch.snapshot();
            let mut restored_slot = batch.clone();
            restored_slot.restore(&slot);
            let mut restored_fresh = batch.clone();
            restored_fresh.restore(&fresh);
            assert_eq!(restored_slot.pending(), restored_fresh.pending());
            assert_eq!(
                restored_slot.pending_lanes(),
                restored_fresh.pending_lanes()
            );
        }
    }

    #[test]
    fn pending_lanes_match_across_backends() {
        let mut scalar = batches_for(BackendKind::Scalar);
        let mut packed = batches_for(BackendKind::Packed);
        // Advance by an incomplete prefix and compare the surviving lanes.
        let element = catalog::mats_plus().elements()[0].clone();
        for (s, p) in scalar.iter_mut().zip(packed.iter_mut()) {
            s.advance(&element);
            p.advance(&element);
            assert_eq!(s.pending_lanes(), p.pending_lanes());
            assert!(!s.to_string().is_empty());
        }
    }
}
