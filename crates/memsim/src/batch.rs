//! Incremental, backend-agnostic batches of coverage lanes — the simulation
//! state the greedy generator advances element by element.
//!
//! A [`TargetBatch`] holds every still-undetected `(placement, background)`
//! lane of one fault target together with the simulator state reached after
//! the march prefix built so far. Scoring a candidate march element only has
//! to simulate that element: on the scalar backend by cloning each lane's
//! [`FaultSimulator`], on the packed backend by cloning a handful of `u64`
//! bit-planes and running all lanes of a chunk at once.

use std::fmt;

use march_test::MarchElement;

use crate::backend::{scalar_lane_simulator, BackendKind, CoverageLane, PackedSimulator};
use crate::coverage::TargetKind;
use crate::FaultSimulator;

/// One scalar lane: its descriptor plus the advanced simulator state.
#[derive(Debug, Clone)]
struct ScalarLane {
    lane: CoverageLane,
    simulator: FaultSimulator,
}

/// The backend-specific simulation state of a batch.
#[derive(Debug, Clone)]
enum BatchState {
    /// One dual-memory simulator per undetected lane.
    Scalar(Vec<ScalarLane>),
    /// Packed chunks of up to 64 lanes; detected lanes are masked out of the
    /// scoring by each chunk's detection mask.
    Packed(Vec<PackedChunk>),
}

#[derive(Debug, Clone)]
struct PackedChunk {
    lanes: Vec<CoverageLane>,
    simulator: PackedSimulator,
}

impl PackedChunk {
    fn pending(&self) -> usize {
        let undetected = !self.simulator.detected_mask() & self.simulator.lane_mask();
        undetected.count_ones() as usize
    }
}

/// Every coverage lane of one fault target, advanced in lock-step as march
/// elements are appended.
///
/// # Examples
///
/// ```
/// use march_test::catalog;
/// use sram_fault_model::FaultList;
/// use sram_sim::{
///     enumerate_lanes, BackendKind, InitialState, PlacementStrategy, TargetBatch, TargetKind,
/// };
///
/// let fault = FaultList::list_2().linked()[0].clone();
/// let target = TargetKind::Linked(fault);
/// let lanes = enumerate_lanes(
///     &target,
///     8,
///     PlacementStrategy::Representative,
///     &[InitialState::AllOne],
/// );
/// let mut batch = TargetBatch::new(target, lanes, 8, BackendKind::Packed);
/// for (_, element) in catalog::march_sl().iter() {
///     batch.advance(element);
/// }
/// assert_eq!(batch.pending(), 0, "March SL covers every lane");
/// ```
#[derive(Debug, Clone)]
pub struct TargetBatch {
    target: TargetKind,
    state: BatchState,
}

impl TargetBatch {
    /// Builds the batch for `target` over `lanes` on a `memory_cells`-cell
    /// memory, simulated with `backend`.
    ///
    /// # Panics
    ///
    /// Panics if a lane's placement is invalid for the target (the enumerated
    /// placements of [`enumerate_lanes`](crate::enumerate_lanes) always are).
    #[must_use]
    pub fn new(
        target: TargetKind,
        lanes: Vec<CoverageLane>,
        memory_cells: usize,
        backend: BackendKind,
    ) -> TargetBatch {
        let state = match backend {
            BackendKind::Scalar => BatchState::Scalar(
                lanes
                    .into_iter()
                    .map(|lane| ScalarLane {
                        simulator: scalar_lane_simulator(&target, &lane, memory_cells),
                        lane,
                    })
                    .collect(),
            ),
            BackendKind::Packed => BatchState::Packed(
                lanes
                    .chunks(PackedSimulator::MAX_LANES)
                    .map(|chunk| PackedChunk {
                        simulator: PackedSimulator::new(&target, chunk, memory_cells)
                            .expect("enumerated placements are valid"),
                        lanes: chunk.to_vec(),
                    })
                    .collect(),
            ),
        };
        TargetBatch { target, state }
    }

    /// The fault target the batch instantiates.
    #[must_use]
    pub fn target(&self) -> &TargetKind {
        &self.target
    }

    /// Number of lanes not yet detected by the march prefix.
    #[must_use]
    pub fn pending(&self) -> usize {
        match &self.state {
            BatchState::Scalar(lanes) => lanes.len(),
            BatchState::Packed(chunks) => chunks.iter().map(PackedChunk::pending).sum(),
        }
    }

    /// The descriptors of the still-undetected lanes.
    #[must_use]
    pub fn pending_lanes(&self) -> Vec<CoverageLane> {
        match &self.state {
            BatchState::Scalar(lanes) => lanes.iter().map(|lane| lane.lane.clone()).collect(),
            BatchState::Packed(chunks) => chunks
                .iter()
                .flat_map(|chunk| {
                    let detected = chunk.simulator.detected_mask();
                    chunk
                        .lanes
                        .iter()
                        .enumerate()
                        .filter(move |(index, _)| detected & (1 << index) == 0)
                        .map(|(_, lane)| lane.clone())
                })
                .collect(),
        }
    }

    /// How many still-undetected lanes executing `element` next would detect,
    /// without advancing the batch.
    #[must_use]
    pub fn score(&self, element: &MarchElement) -> usize {
        match &self.state {
            BatchState::Scalar(lanes) => lanes
                .iter()
                .filter(|lane| {
                    let mut simulator = lane.simulator.clone();
                    run_element(element, &mut simulator)
                })
                .count(),
            BatchState::Packed(chunks) => chunks
                .iter()
                .map(|chunk| {
                    let before = chunk.simulator.detected_mask();
                    if before == chunk.simulator.lane_mask() {
                        return 0;
                    }
                    let mut simulator = chunk.simulator.clone();
                    simulator.apply_element(element);
                    (simulator.detected_mask() & !before).count_ones() as usize
                })
                .sum(),
        }
    }

    /// Advances the batch by executing `element`; returns the number of lanes
    /// it newly detected (those lanes stop being simulated).
    pub fn advance(&mut self, element: &MarchElement) -> usize {
        match &mut self.state {
            BatchState::Scalar(lanes) => {
                let before = lanes.len();
                lanes.retain_mut(|lane| !run_element(element, &mut lane.simulator));
                before - lanes.len()
            }
            BatchState::Packed(chunks) => {
                let mut newly = 0usize;
                for chunk in chunks.iter_mut() {
                    let before = chunk.simulator.detected_mask();
                    if before == chunk.simulator.lane_mask() {
                        continue;
                    }
                    chunk.simulator.apply_element(element);
                    newly += (chunk.simulator.detected_mask() & !before).count_ones() as usize;
                }
                newly
            }
        }
    }
}

impl fmt::Display for TargetBatch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({} pending lanes)", self.target, self.pending())
    }
}

/// Executes one march element against a scalar simulator and reports whether
/// any read mismatched.
fn run_element(element: &MarchElement, simulator: &mut FaultSimulator) -> bool {
    let cells = simulator.cells();
    let mut detected = false;
    for cell in element.order().addresses(cells) {
        for operation in element.operations() {
            if simulator.apply(cell, *operation).mismatch() {
                detected = true;
            }
        }
    }
    detected
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::enumerate_lanes;
    use crate::{InitialState, PlacementStrategy};
    use march_test::catalog;
    use sram_fault_model::FaultList;

    fn batches_for(backend: BackendKind) -> Vec<TargetBatch> {
        let list = FaultList::list_2();
        list.linked()
            .iter()
            .map(|fault| {
                let target = TargetKind::Linked(fault.clone());
                let lanes = enumerate_lanes(
                    &target,
                    8,
                    PlacementStrategy::Representative,
                    &[InitialState::AllZero, InitialState::AllOne],
                );
                TargetBatch::new(target, lanes, 8, backend)
            })
            .collect()
    }

    #[test]
    fn scalar_and_packed_batches_advance_identically() {
        let mut scalar = batches_for(BackendKind::Scalar);
        let mut packed = batches_for(BackendKind::Packed);
        for (_, element) in catalog::march_sl().iter() {
            for (s, p) in scalar.iter_mut().zip(packed.iter_mut()) {
                let score_s = s.score(element);
                let score_p = p.score(element);
                assert_eq!(score_s, score_p, "score diverged on {}", s.target());
                assert_eq!(s.advance(element), score_s);
                assert_eq!(p.advance(element), score_p);
                assert_eq!(s.pending(), p.pending());
            }
        }
        assert!(scalar.iter().all(|batch| batch.pending() == 0));
    }

    #[test]
    fn pending_lanes_match_across_backends() {
        let mut scalar = batches_for(BackendKind::Scalar);
        let mut packed = batches_for(BackendKind::Packed);
        // Advance by an incomplete prefix and compare the surviving lanes.
        let element = catalog::mats_plus().elements()[0].clone();
        for (s, p) in scalar.iter_mut().zip(packed.iter_mut()) {
            s.advance(&element);
            p.advance(&element);
            assert_eq!(s.pending_lanes(), p.pending_lanes());
            assert!(!s.to_string().is_empty());
        }
    }
}
